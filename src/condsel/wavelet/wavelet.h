// Haar-wavelet synopses over attribute distributions.
//
// The second of the paper's named alternative estimators ("wavelets or
// samples"). A WaveletSynopsis stores the top-B Haar coefficients of an
// attribute's cumulative-friendly frequency vector over a fixed value
// grid; range selectivities are reconstructed by inverting the retained
// coefficients. Compared with histograms, wavelets capture globally
// smooth structure with very few coefficients but ring around sharp
// spikes (quantified in bench_ablation_wavelets).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace condsel {

class WaveletSynopsis {
 public:
  WaveletSynopsis() = default;

  // Number of retained (non-zero) coefficients.
  size_t num_coefficients() const { return coefficients_.size(); }
  bool empty() const { return coefficients_.empty(); }
  double source_cardinality() const { return source_cardinality_; }

  // Estimated fraction of source tuples with value in [lo, hi].
  double RangeSelectivity(int64_t lo, int64_t hi) const;

  // Total estimated non-NULL mass (should be ~ fraction of non-NULLs).
  double TotalFrequency() const;

 private:
  friend WaveletSynopsis BuildWavelet(const std::vector<int64_t>&, double,
                                      int);

  struct Coefficient {
    uint32_t index = 0;  // position in the Haar coefficient array
    double value = 0.0;
  };

  // Reconstructs the frequency of grid cell `cell`.
  double CellFrequency(uint32_t cell) const;

  std::vector<Coefficient> coefficients_;
  double source_cardinality_ = 0.0;
  // Value grid: cell k covers [grid_lo_ + k*cell_width_,
  //                            grid_lo_ + (k+1)*cell_width_ - 1].
  int64_t grid_lo_ = 0;
  int64_t cell_width_ = 1;
  uint32_t grid_cells_ = 0;  // power of two
};

// Builds a synopsis from the attribute's non-NULL values (with
// multiplicity); `source_cardinality` >= values.size() as for histograms.
// Keeps the `budget` largest-magnitude normalized coefficients.
WaveletSynopsis BuildWavelet(const std::vector<int64_t>& values,
                             double source_cardinality, int budget);

}  // namespace condsel

