#include "condsel/wavelet/wavelet.h"

#include <algorithm>
#include <cmath>

#include "condsel/common/macros.h"

namespace condsel {
namespace {

uint32_t NextPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

double WaveletSynopsis::CellFrequency(uint32_t cell) const {
  // Error-tree traversal: c[0] is the overall average; node j (heap
  // indexing, children 2j and 2j+1) adds its value on the left half of
  // its support and subtracts it on the right half.
  auto get = [&](uint32_t index) {
    auto it = std::lower_bound(
        coefficients_.begin(), coefficients_.end(), index,
        [](const Coefficient& c, uint32_t i) { return c.index < i; });
    return (it != coefficients_.end() && it->index == index) ? it->value
                                                             : 0.0;
  };
  double val = get(0);
  uint32_t j = 1;
  uint32_t lo = 0;
  uint32_t size = grid_cells_;
  while (j < grid_cells_) {
    const uint32_t half = size / 2;
    if (cell < lo + half) {
      val += get(j);
      j = 2 * j;
    } else {
      val -= get(j);
      j = 2 * j + 1;
      lo += half;
    }
    size = half;
  }
  return val;
}

double WaveletSynopsis::RangeSelectivity(int64_t lo, int64_t hi) const {
  if (empty() || lo > hi) return 0.0;
  double sel = 0.0;
  for (uint32_t cell = 0; cell < grid_cells_; ++cell) {
    const int64_t c_lo = grid_lo_ + static_cast<int64_t>(cell) * cell_width_;
    const int64_t c_hi = c_lo + cell_width_ - 1;
    const int64_t olo = std::max(lo, c_lo);
    const int64_t ohi = std::min(hi, c_hi);
    if (olo > ohi) continue;
    const double frac = static_cast<double>(ohi - olo + 1) /
                        static_cast<double>(cell_width_);
    sel += std::max(0.0, CellFrequency(cell)) * frac;
  }
  return sel;
}

double WaveletSynopsis::TotalFrequency() const {
  // Sum over all cells: the differences cancel, leaving N * average.
  for (const Coefficient& c : coefficients_) {
    if (c.index == 0) return c.value * static_cast<double>(grid_cells_);
  }
  return 0.0;
}

WaveletSynopsis BuildWavelet(const std::vector<int64_t>& values,
                             double source_cardinality, int budget) {
  CONDSEL_CHECK(budget >= 1);
  WaveletSynopsis out;
  out.source_cardinality_ = source_cardinality;
  if (values.empty()) return out;

  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const int64_t lo = *min_it;
  const int64_t hi = *max_it;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;

  // Grid: at most 1024 cells, power of two, cells wide enough to cover.
  const uint32_t cells = std::min<uint32_t>(
      1024, NextPow2(static_cast<uint32_t>(std::min<uint64_t>(span, 1024))));
  const int64_t width = static_cast<int64_t>((span + cells - 1) / cells);
  out.grid_lo_ = lo;
  out.cell_width_ = std::max<int64_t>(1, width);
  out.grid_cells_ = cells;

  // Frequency vector (fractions of the source relation).
  std::vector<double> freq(cells, 0.0);
  const double w = source_cardinality > 0.0 ? 1.0 / source_cardinality : 0.0;
  for (int64_t v : values) {
    uint32_t cell =
        static_cast<uint32_t>((v - lo) / out.cell_width_);
    if (cell >= cells) cell = cells - 1;
    freq[cell] += w;
  }

  // Haar decomposition: repeated pairwise average / half-difference.
  // Layout: c[0] = overall average; c[2^l + i] = difference node i of
  // level l (support cells / 2^l), matching heap child indices 2j, 2j+1.
  std::vector<double> coef(cells, 0.0);
  std::vector<double> work = freq;
  uint32_t n = cells;
  while (n > 1) {
    const uint32_t half = n / 2;
    std::vector<double> avg(half);
    for (uint32_t i = 0; i < half; ++i) {
      avg[i] = (work[2 * i] + work[2 * i + 1]) / 2.0;
      coef[half + i] = (work[2 * i] - work[2 * i + 1]) / 2.0;
    }
    work = std::move(avg);
    n = half;
  }
  coef[0] = work[0];

  // Keep the top-`budget` coefficients by L2 importance: |c| * sqrt of
  // the node's support.
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(cells);
  for (uint32_t j = 0; j < cells; ++j) {
    if (coef[j] == 0.0) continue;
    uint32_t support = cells;
    if (j > 0) {
      uint32_t level_start = 1;
      support = cells;
      while (level_start * 2 <= j) {
        level_start *= 2;
        support /= 2;
      }
    }
    ranked.emplace_back(std::abs(coef[j]) *
                            std::sqrt(static_cast<double>(support)),
                        j);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (static_cast<int>(ranked.size()) > budget) {
    ranked.resize(static_cast<size_t>(budget));
  }
  for (const auto& [weight, j] : ranked) {
    out.coefficients_.push_back({j, coef[j]});
  }
  std::sort(out.coefficients_.begin(), out.coefficients_.end(),
            [](const WaveletSynopsis::Coefficient& a,
               const WaveletSynopsis::Coefficient& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace condsel
