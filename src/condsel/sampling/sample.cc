#include "condsel/sampling/sample.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"
#include "condsel/storage/column.h"

namespace condsel {

double SampleSit::Selectivity(
    const std::vector<Predicate>& filters) const {
  if (num_rows_ == 0) return 0.0;
  // Resolve each filter's column to its slot in the reservoir rows.
  std::vector<std::pair<size_t, const Predicate*>> tests;
  for (const Predicate& f : filters) {
    CONDSEL_CHECK(f.is_filter());
    size_t slot = attrs_.size();
    for (size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i] == f.column()) {
        slot = i;
        break;
      }
    }
    CONDSEL_CHECK_MSG(slot < attrs_.size(),
                      "filter attribute not covered by this sample");
    tests.emplace_back(slot, &f);
  }

  const size_t width = attrs_.size();
  size_t matches = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    bool ok = true;
    for (const auto& [slot, f] : tests) {
      const int64_t v = rows_[r * width + slot];
      if (IsNull(v) || v < f->lo() || v > f->hi()) {
        ok = false;
        break;
      }
    }
    matches += ok;
  }
  return static_cast<double>(matches) / static_cast<double>(num_rows_);
}

double SampleSit::EstimateDistinct(ColumnRef col) const {
  size_t slot = attrs_.size();
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == col) {
      slot = i;
      break;
    }
  }
  CONDSEL_CHECK_MSG(slot < attrs_.size(),
                    "attribute not covered by this sample");
  if (num_rows_ == 0) return 0.0;

  std::map<int64_t, size_t> counts;
  const size_t width = attrs_.size();
  for (size_t r = 0; r < num_rows_; ++r) {
    const int64_t v = rows_[r * width + slot];
    if (!IsNull(v)) ++counts[v];
  }
  size_t f1 = 0, rest = 0;
  for (const auto& [v, c] : counts) {
    if (c == 1) {
      ++f1;
    } else {
      ++rest;
    }
  }
  const double scale = source_cardinality_ > 0.0
                           ? std::sqrt(source_cardinality_ /
                                       static_cast<double>(num_rows_))
                           : 1.0;
  return std::max(1.0, scale) * static_cast<double>(f1) +
         static_cast<double>(rest);
}

SampleSitBuilder::SampleSitBuilder(Evaluator* evaluator,
                                   size_t reservoir_size, uint64_t seed)
    : evaluator_(evaluator),
      reservoir_size_(reservoir_size),
      seed_(seed) {
  CONDSEL_CHECK(evaluator != nullptr);
  CONDSEL_CHECK(reservoir_size > 0);
}

SampleSit SampleSitBuilder::Build(
    const std::vector<ColumnRef>& attrs,
    std::vector<Predicate> expression) const {
  CONDSEL_CHECK(!attrs.empty());
  std::sort(expression.begin(), expression.end());

  SampleSit out;
  out.attrs_ = attrs;
  out.expression_ = expression;
  const size_t width = attrs.size();
  const Catalog& catalog = evaluator_->catalog();
  Rng rng(seed_);

  // Materialize one projected row into `row`.
  std::vector<int64_t> row(width);

  auto reservoir_offer = [&](uint64_t index) -> bool {
    // Returns true if the row should be stored, filling `store_at_`.
    if (index < reservoir_size_) {
      out.rows_.insert(out.rows_.end(), row.begin(), row.end());
      ++out.num_rows_;
      return true;
    }
    const uint64_t j = rng.NextBelow(index + 1);
    if (j < reservoir_size_) {
      std::copy(row.begin(), row.end(),
                out.rows_.begin() + static_cast<long>(j * width));
    }
    return true;
  };

  if (expression.empty()) {
    const TableId t = attrs[0].table;
    for (const ColumnRef& a : attrs) {
      CONDSEL_CHECK_MSG(a.table == t,
                        "base sample needs same-table attributes");
    }
    const Table& table = catalog.table(t);
    out.source_cardinality_ = static_cast<double>(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < width; ++c) {
        row[c] = table.value(r, attrs[c].column);
      }
      reservoir_offer(r);
    }
    return out;
  }

  const Query expr_query(expression);
  const PredSet all = expr_query.all_predicates();
  CONDSEL_CHECK_MSG(
      ConnectedComponents(expr_query.predicates(), all).size() == 1,
      "sample expression must be connected");
  const JoinResult jr = evaluator_->EvaluateComponent(expr_query, all);
  out.source_cardinality_ = static_cast<double>(jr.num_tuples);
  std::vector<int> slots(width);
  for (size_t c = 0; c < width; ++c) {
    slots[c] = jr.TableSlot(attrs[c].table);
    CONDSEL_CHECK_MSG(slots[c] >= 0,
                      "attribute's table missing from the expression");
  }
  const size_t jr_width = jr.tables.size();
  for (size_t i = 0; i < jr.num_tuples; ++i) {
    for (size_t c = 0; c < width; ++c) {
      const Table& t = catalog.table(attrs[c].table);
      row[c] = t.value(
          jr.tuple_rows[i * jr_width + static_cast<size_t>(slots[c])],
          attrs[c].column);
    }
    reservoir_offer(i);
  }
  return out;
}

}  // namespace condsel
