// Sample-based statistics on query expressions.
//
// The paper notes its ideas "can be applied to other statistical
// estimators, such as wavelets or samples" (and cites join synopses [2]).
// This module provides the sample flavour: a SampleSit is a fixed-size
// uniform reservoir sample of an expression's result, projected onto a
// set of attributes. Selectivity of conjunctive range predicates over the
// sampled attributes is estimated by scanning the reservoir — trivially
// capturing arbitrary cross-attribute correlation, at the cost of
// variance that grows as selectivities shrink (quantified by
// bench_ablation_samples against histogram SITs).

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/predicate.h"
#include "condsel/query/query.h"

namespace condsel {

class SampleSit {
 public:
  SampleSit() = default;

  const std::vector<ColumnRef>& attrs() const { return attrs_; }
  const std::vector<Predicate>& expression() const { return expression_; }
  size_t sample_size() const { return num_rows_; }
  double source_cardinality() const { return source_cardinality_; }

  // Estimated fraction of the expression's result satisfying all the
  // range predicates; every predicate's column must be in attrs().
  // Rows with NULL in a tested attribute never match (SQL semantics).
  double Selectivity(const std::vector<Predicate>& filters) const;

  // Estimated number of distinct values of `col` (which must be in
  // attrs()) in the expression result, scaled up from the sample with
  // the GEE estimator: d_hat = sqrt(N/n) * f1 + sum_{i>=2} f_i, where
  // f_i counts sample values seen exactly i times.
  double EstimateDistinct(ColumnRef col) const;

 private:
  friend class SampleSitBuilder;

  std::vector<ColumnRef> attrs_;
  std::vector<Predicate> expression_;
  // Row-major reservoir: num_rows_ x attrs_.size().
  std::vector<int64_t> rows_;
  size_t num_rows_ = 0;
  double source_cardinality_ = 0.0;
};

class SampleSitBuilder {
 public:
  SampleSitBuilder(Evaluator* evaluator, size_t reservoir_size,
                   uint64_t seed = 4242);

  // Samples the result of `expression` (empty = base table of the
  // attrs', which must then share one table), projecting `attrs`.
  SampleSit Build(const std::vector<ColumnRef>& attrs,
                  std::vector<Predicate> expression) const;

 private:
  Evaluator* evaluator_;
  size_t reservoir_size_;
  uint64_t seed_;
};

}  // namespace condsel

