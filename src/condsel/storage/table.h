// Column-major in-memory table.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/storage/column.h"

namespace condsel {

class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  ColumnId num_columns() const { return schema_.num_columns(); }

  const Column& column(ColumnId c) const {
    return columns_[static_cast<size_t>(c)];
  }
  Column& mutable_column(ColumnId c) {
    return columns_[static_cast<size_t>(c)];
  }

  int64_t value(size_t row, ColumnId c) const {
    return columns_[static_cast<size_t>(c)][row];
  }

  // Appends one row; `row` must have exactly num_columns() entries.
  void AppendRow(const std::vector<int64_t>& row);

  // Declares the row count after columns were filled directly through
  // mutable_column(); checks that every column has that many entries.
  void SealRows();

 private:
  TableSchema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace condsel

