// Column-major in-memory table, organized as immutable parts + a tail.
//
// Sealed rows live in immutable Part segments (part.h) shared by
// shared_ptr; freshly appended rows accumulate in a mutable column-major
// tail until SealTail() turns them into the next part. Row addressing is
// global and stable across sealing: row r lives in the part whose
// [offset, offset + part rows) range covers r, or in the tail past the
// last sealed row. value()/num_rows() therefore behave exactly as they
// did when the table was one flat column set — the executor and the
// histogram builders are oblivious to partitioning.
//
// Mutation model:
//  - AppendRow() extends the tail; SealTail() freezes it into a new part
//    (fresh id, fresh generation);
//  - LoadPart() bulk-loads prebuilt columns as one sealed part (datagen,
//    deserialization);
//  - DeleteRows() rewrites each part that lost rows in place — same id,
//    bumped generation — so per-part statistics can be invalidated
//    precisely; a part whose rows are all deleted disappears.
//
// Because parts are immutable and shared, copying a Table is O(parts):
// snapshot epochs that differ by one delta share every untouched segment.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/storage/column.h"
#include "condsel/storage/part.h"

namespace condsel {

class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return sealed_rows_ + tail_rows_; }
  ColumnId num_columns() const { return schema_.num_columns(); }

  int64_t value(size_t row, ColumnId c) const {
    if (row >= sealed_rows_) {
      return tail_[static_cast<size_t>(c)][row - sealed_rows_];
    }
    const size_t pi = PartIndexOfRow(row);
    return parts_[pi]->value(row - offsets_[pi], c);
  }

  // Appends one row to the tail; `row` must have exactly num_columns()
  // entries.
  void AppendRow(const std::vector<int64_t>& row);

  // Freezes the tail into a new immutable part and returns its id, or
  // kInvalidPartId when the tail is empty (no part is created).
  PartId SealTail();

  // Bulk-loads prebuilt columns (one per schema column, equal sizes) as
  // one sealed part and returns its id.
  PartId LoadPart(std::vector<Column> columns);

  // Deserialization hooks: restore a sealed part under an explicit
  // identity (parts must be restored in row order; the id/generation
  // counters advance past the restored values), and restore the tail
  // column set. Callers validate shape first — these CHECK.
  void RestorePart(PartId id, uint64_t generation,
                   std::vector<Column> columns);
  void RestoreTail(std::vector<Column> columns);

  // Deletes the given global row indices (any order, duplicates allowed;
  // each must be < num_rows()). Every sealed part that lost rows is
  // rewritten under its id with a bumped generation — or dropped when it
  // lost all of them; tail rows are removed directly. Returns the ids of
  // the touched parts (dropped ones included), in part order.
  std::vector<PartId> DeleteRows(std::vector<size_t> rows);

  // --- part inspection ---
  size_t num_parts() const { return parts_.size(); }
  const Part& part(size_t index) const { return *parts_[index]; }
  // Shared ownership of a sealed segment; lets tests and the stats
  // maintainer verify structural sharing across table copies.
  std::shared_ptr<const Part> part_handle(size_t index) const {
    return parts_[index];
  }
  // First global row of part `index`.
  size_t part_row_offset(size_t index) const { return offsets_[index]; }
  // Index of the part with id `id`, or -1 when no such part exists.
  int part_index(PartId id) const;
  // Rows sealed into parts (the tail starts at this global row).
  size_t sealed_rows() const { return sealed_rows_; }
  size_t tail_rows() const { return tail_rows_; }

  // Concatenated copy of one column across parts and tail, in global row
  // order. Cold-path convenience (generators, serialization, tests); the
  // executor reads through value() instead.
  Column MaterializeColumn(ColumnId c) const;

 private:
  size_t PartIndexOfRow(size_t row) const {
    // offsets_ is sorted; the owning part is the last offset <= row.
    const auto it =
        std::upper_bound(offsets_.begin(), offsets_.end(), row);
    return static_cast<size_t>(it - offsets_.begin()) - 1;
  }
  void RecomputeOffsets();
  void ResetTail();

  TableSchema schema_;
  std::vector<std::shared_ptr<const Part>> parts_;
  std::vector<size_t> offsets_;  // start row of each part; offsets_[0] == 0
  size_t sealed_rows_ = 0;
  std::vector<Column> tail_;  // one per schema column
  size_t tail_rows_ = 0;
  PartId next_part_id_ = 0;
  uint64_t next_generation_ = 1;
};

}  // namespace condsel
