#include "condsel/storage/part.h"

#include <utility>

#include "condsel/common/macros.h"

namespace condsel {

Part::Part(PartId id, uint64_t generation, std::vector<Column> columns)
    : id_(id), generation_(generation), columns_(std::move(columns)) {
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  // invariant: a part is rectangular.
  for (const Column& c : columns_) CONDSEL_CHECK(c.size() == num_rows_);
}

}  // namespace condsel
