#include "condsel/storage/table.h"

#include <utility>

#include "condsel/common/macros.h"

namespace condsel {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  tail_.resize(schema_.columns.size());
}

void Table::AppendRow(const std::vector<int64_t>& row) {
  CONDSEL_CHECK(row.size() == tail_.size());
  for (size_t c = 0; c < row.size(); ++c) tail_[c].Append(row[c]);
  ++tail_rows_;
}

PartId Table::SealTail() {
  if (tail_rows_ == 0) return kInvalidPartId;
  const PartId id = next_part_id_++;
  parts_.push_back(std::make_shared<const Part>(id, next_generation_++,
                                                std::move(tail_)));
  ResetTail();
  RecomputeOffsets();
  return id;
}

PartId Table::LoadPart(std::vector<Column> columns) {
  CONDSEL_CHECK(columns.size() == schema_.columns.size());
  const PartId id = next_part_id_++;
  parts_.push_back(std::make_shared<const Part>(id, next_generation_++,
                                                std::move(columns)));
  RecomputeOffsets();
  return id;
}

void Table::RestorePart(PartId id, uint64_t generation,
                        std::vector<Column> columns) {
  CONDSEL_CHECK(columns.size() == schema_.columns.size());
  CONDSEL_CHECK(part_index(id) < 0);  // invariant: ids are unique
  parts_.push_back(std::make_shared<const Part>(id, generation,
                                                std::move(columns)));
  if (id >= next_part_id_) next_part_id_ = id + 1;
  if (generation >= next_generation_) next_generation_ = generation + 1;
  RecomputeOffsets();
}

void Table::RestoreTail(std::vector<Column> columns) {
  CONDSEL_CHECK(columns.size() == schema_.columns.size());
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (const Column& c : columns) CONDSEL_CHECK(c.size() == rows);
  tail_ = std::move(columns);
  tail_rows_ = rows;
}

int Table::part_index(PartId id) const {
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i]->id() == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<PartId> Table::DeleteRows(std::vector<size_t> rows) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (size_t r : rows) CONDSEL_CHECK(r < num_rows());
  if (rows.empty()) return {};

  std::vector<PartId> touched;
  std::vector<std::shared_ptr<const Part>> rebuilt;
  size_t next = 0;  // cursor into `rows`
  for (size_t pi = 0; pi < parts_.size(); ++pi) {
    const Part& p = *parts_[pi];
    const size_t begin = offsets_[pi];
    const size_t end = begin + p.num_rows();
    // Local (part-relative) delete set for this part.
    std::vector<size_t> local;
    while (next < rows.size() && rows[next] < end) {
      local.push_back(rows[next] - begin);
      ++next;
    }
    if (local.empty()) {
      rebuilt.push_back(parts_[pi]);
      continue;
    }
    touched.push_back(p.id());
    if (local.size() == p.num_rows()) continue;  // part fully deleted
    std::vector<Column> cols(p.num_columns());
    size_t li = 0;
    std::vector<bool> gone(p.num_rows(), false);
    for (size_t r : local) gone[r] = true;
    for (size_t c = 0; c < p.num_columns(); ++c) {
      std::vector<int64_t>& v = cols[c].mutable_values();
      v.reserve(p.num_rows() - local.size());
      const Column& src = p.column(static_cast<ColumnId>(c));
      for (size_t r = 0; r < p.num_rows(); ++r) {
        if (!gone[r]) v.push_back(src[r]);
      }
    }
    (void)li;
    rebuilt.push_back(std::make_shared<const Part>(
        p.id(), next_generation_++, std::move(cols)));
  }
  parts_ = std::move(rebuilt);

  // Tail deletes (global rows >= sealed_rows_, relative to the *old*
  // sealed row count recorded in offsets_ before the rebuild).
  if (next < rows.size()) {
    std::vector<bool> gone(tail_rows_, false);
    size_t removed = 0;
    for (; next < rows.size(); ++next) {
      gone[rows[next] - sealed_rows_] = true;
      ++removed;
    }
    for (Column& col : tail_) {
      std::vector<int64_t>& v = col.mutable_values();
      std::vector<int64_t> kept;
      kept.reserve(v.size() - removed);
      for (size_t r = 0; r < v.size(); ++r) {
        if (!gone[r]) kept.push_back(v[r]);
      }
      v = std::move(kept);
    }
    tail_rows_ -= removed;
  }
  RecomputeOffsets();
  return touched;
}

Column Table::MaterializeColumn(ColumnId c) const {
  Column out;
  out.Reserve(num_rows());
  for (const auto& p : parts_) {
    for (const int64_t v : p->column(c).values()) out.Append(v);
  }
  const Column& tail = tail_[static_cast<size_t>(c)];
  for (const int64_t v : tail.values()) out.Append(v);
  return out;
}

void Table::RecomputeOffsets() {
  offsets_.resize(parts_.size());
  size_t off = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    offsets_[i] = off;
    off += parts_[i]->num_rows();
  }
  sealed_rows_ = off;
}

void Table::ResetTail() {
  tail_.clear();
  tail_.resize(schema_.columns.size());
  tail_rows_ = 0;
}

}  // namespace condsel
