#include "condsel/storage/table.h"

#include "condsel/common/macros.h"

namespace condsel {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.columns.size());
}

void Table::AppendRow(const std::vector<int64_t>& row) {
  CONDSEL_CHECK(row.size() == columns_.size());
  for (size_t c = 0; c < row.size(); ++c) columns_[c].Append(row[c]);
  ++num_rows_;
}

void Table::SealRows() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  num_rows_ = columns_[0].size();
  for (const Column& c : columns_) CONDSEL_CHECK(c.size() == num_rows_);
}

}  // namespace condsel
