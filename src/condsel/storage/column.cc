#include "condsel/storage/column.h"

#include <algorithm>

namespace condsel {

size_t Column::CountNonNull() const {
  size_t n = 0;
  for (int64_t v : values_) {
    if (!IsNull(v)) ++n;
  }
  return n;
}

std::pair<int64_t, int64_t> Column::MinMax() const {
  int64_t lo = 0, hi = -1;
  bool seen = false;
  for (int64_t v : values_) {
    if (IsNull(v)) continue;
    if (!seen) {
      lo = hi = v;
      seen = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return {lo, hi};
}

}  // namespace condsel
