// In-memory column vector.
//
// Values are int64. NULL (used for dangling foreign-key tuples, as in the
// paper's data generator) is represented by the sentinel kNullValue, which
// is outside every generated domain. SQL semantics apply: NULL matches no
// filter or join predicate and is excluded from histograms.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace condsel {

inline constexpr int64_t kNullValue = std::numeric_limits<int64_t>::min();

inline bool IsNull(int64_t v) { return v == kNullValue; }

class Column {
 public:
  Column() = default;
  explicit Column(std::vector<int64_t> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  int64_t operator[](size_t i) const { return values_[i]; }

  void Append(int64_t v) { values_.push_back(v); }
  void Reserve(size_t n) { values_.reserve(n); }

  const std::vector<int64_t>& values() const { return values_; }
  std::vector<int64_t>& mutable_values() { return values_; }

  // Number of non-NULL entries.
  size_t CountNonNull() const;

  // Min/max over non-NULL entries; returns {0, -1} (empty range) when all
  // entries are NULL or the column is empty.
  std::pair<int64_t, int64_t> MinMax() const;

 private:
  std::vector<int64_t> values_;
};

}  // namespace condsel

