// Immutable storage segment of a Table.
//
// A Part owns a column-major slice of a table's rows and never changes
// after construction. Tables are a sequence of parts plus a mutable tail
// (table.h); deletes rewrite the owning part under the same id with a
// bumped generation, and inserts seal the tail into a brand-new part.
// Statistics are built per part and tagged with (id, generation), so a
// maintainer can tell exactly which statistics a delta invalidated
// (catalog/part_stats.h). Parts are shared by shared_ptr: copying a
// Table — e.g. into a service snapshot — shares every sealed segment
// structurally, which is what makes delta refreshes cheap.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/storage/column.h"

namespace condsel {

// Identifies a part within its table. Ids are assigned sequentially at
// seal time and survive rewrites (a delete bumps the generation, not the
// id); an id disappears only when every row of the part is deleted.
using PartId = int32_t;

inline constexpr PartId kInvalidPartId = -1;

class Part {
 public:
  // All columns must agree on the row count.
  Part(PartId id, uint64_t generation, std::vector<Column> columns);

  PartId id() const { return id_; }
  // Monotonically increasing per table; bumped when a delete rewrites
  // the part. Statistics stamped with an older generation are stale.
  uint64_t generation() const { return generation_; }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(ColumnId c) const {
    return columns_[static_cast<size_t>(c)];
  }
  int64_t value(size_t row, ColumnId c) const {
    return columns_[static_cast<size_t>(c)][row];
  }

 private:
  PartId id_;
  uint64_t generation_;
  size_t num_rows_;
  std::vector<Column> columns_;
};

}  // namespace condsel
