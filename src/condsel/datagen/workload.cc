#include "condsel/datagen/workload.h"

#include <algorithm>
#include <set>

#include "condsel/common/macros.h"

namespace condsel {
namespace {

// Picks a random connected subset of `num_joins` FK edges: seed with a
// random edge, then repeatedly attach a random edge adjacent to the
// tables reached so far.
std::vector<ForeignKey> RandomConnectedEdges(const Catalog& catalog,
                                             int num_joins, Rng& rng) {
  const std::vector<ForeignKey>& fks = catalog.foreign_keys();
  CONDSEL_CHECK_MSG(static_cast<int>(fks.size()) >= num_joins,
                    "not enough FK edges for the requested join count");

  std::vector<ForeignKey> chosen;
  std::set<size_t> used;
  TableSet reached = 0;
  const size_t first = static_cast<size_t>(rng.NextBelow(fks.size()));
  chosen.push_back(fks[first]);
  used.insert(first);
  reached |= (1u << fks[first].fk_table) | (1u << fks[first].pk_table);

  while (static_cast<int>(chosen.size()) < num_joins) {
    std::vector<size_t> frontier;
    for (size_t i = 0; i < fks.size(); ++i) {
      if (used.count(i)) continue;
      if (Contains(reached, fks[i].fk_table) ||
          Contains(reached, fks[i].pk_table)) {
        frontier.push_back(i);
      }
    }
    CONDSEL_CHECK_MSG(!frontier.empty(),
                      "FK graph too small/disconnected for join count");
    const size_t pick =
        frontier[static_cast<size_t>(rng.NextBelow(frontier.size()))];
    chosen.push_back(fks[pick]);
    used.insert(pick);
    reached |=
        (1u << fks[pick].fk_table) | (1u << fks[pick].pk_table);
  }
  return chosen;
}

// Sorted non-NULL values of a column (for selectivity-targeted ranges).
std::vector<int64_t> SortedValues(const Catalog& catalog, ColumnRef col) {
  const Column c = catalog.table(col.table).MaterializeColumn(col.column);
  std::vector<int64_t> vals;
  vals.reserve(c.size());
  for (int64_t v : c.values()) {
    if (!IsNull(v)) vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  return vals;
}

struct FilterSpec {
  ColumnRef col;
  size_t start = 0;   // index into the sorted values
  size_t span = 1;    // number of sorted values covered
  std::vector<int64_t> sorted;

  Predicate ToPredicate() const {
    const size_t end = std::min(start + span, sorted.size()) - 1;
    return Predicate::Filter(col, sorted[start], sorted[end]);
  }
};

}  // namespace

Query GenerateQuery(const Catalog& catalog, Evaluator* evaluator,
                    const WorkloadOptions& opt, Rng& rng) {
  const std::vector<ForeignKey> edges =
      RandomConnectedEdges(catalog, opt.num_joins, rng);

  std::vector<Predicate> preds;
  TableSet joined = 0;
  for (const ForeignKey& fk : edges) {
    preds.push_back(Predicate::Join(ColumnRef{fk.fk_table, fk.fk_column},
                                    ColumnRef{fk.pk_table, fk.pk_column}));
    joined |= (1u << fk.fk_table) | (1u << fk.pk_table);
  }

  // Candidate filter columns: non-key columns of the joined tables.
  std::vector<ColumnRef> candidates;
  for (int t : SetElements(joined)) {
    const TableSchema& schema = catalog.table(t).schema();
    for (ColumnId c = 0; c < schema.num_columns(); ++c) {
      if (!schema.columns[static_cast<size_t>(c)].is_key) {
        candidates.push_back(ColumnRef{t, c});
      }
    }
  }
  CONDSEL_CHECK_MSG(static_cast<int>(candidates.size()) >= opt.num_filters,
                    "not enough non-key columns for the filter count");

  // Choose distinct filter columns and selectivity-targeted ranges.
  std::vector<FilterSpec> filters;
  std::set<std::pair<TableId, ColumnId>> taken;
  while (static_cast<int>(filters.size()) < opt.num_filters) {
    const ColumnRef col =
        candidates[static_cast<size_t>(rng.NextBelow(candidates.size()))];
    if (!taken.insert({col.table, col.column}).second) continue;
    FilterSpec spec;
    spec.col = col;
    spec.sorted = SortedValues(catalog, col);
    CONDSEL_CHECK(!spec.sorted.empty());
    const size_t n = spec.sorted.size();
    spec.span = std::max<size_t>(
        1, static_cast<size_t>(opt.filter_selectivity *
                               static_cast<double>(n)));
    spec.start = static_cast<size_t>(
        rng.NextBelow(n - std::min(n - 1, spec.span) ));
    filters.push_back(std::move(spec));
  }

  // Assemble; progressively stretch the ranges until the result is
  // non-empty (the paper's rule).
  for (int round = 0; round <= opt.max_stretch_rounds; ++round) {
    std::vector<Predicate> all = preds;
    for (const FilterSpec& f : filters) all.push_back(f.ToPredicate());
    Query q(std::move(all));
    if (evaluator == nullptr) return q;
    if (evaluator->Cardinality(q, q.all_predicates()) > 0.0) return q;
    for (FilterSpec& f : filters) {
      f.span = std::min(f.sorted.size(), f.span * 2);
      if (f.start + f.span > f.sorted.size()) {
        f.start = f.sorted.size() - f.span;
      }
    }
  }
  // Give up stretching: fall back to full-domain filters (selectivity 1
  // on each filter; the joins alone determine the result).
  std::vector<Predicate> all = preds;
  for (FilterSpec& f : filters) {
    f.start = 0;
    f.span = f.sorted.size();
    all.push_back(f.ToPredicate());
  }
  return Query(std::move(all));
}

std::vector<Query> GenerateWorkload(const Catalog& catalog,
                                    Evaluator* evaluator,
                                    const WorkloadOptions& opt) {
  Rng rng(opt.seed);
  std::vector<Query> out;
  out.reserve(static_cast<size_t>(opt.num_queries));
  for (int i = 0; i < opt.num_queries; ++i) {
    out.push_back(GenerateQuery(catalog, evaluator, opt, rng));
  }
  return out;
}

}  // namespace condsel
