// Random SPJ workload generation (Section 5 "Workloads").
//
// Each query has J join predicates — a random connected subgraph of the
// catalog's foreign-key graph — and F filter predicates over non-key
// attributes of the joined tables, each sized for a target selectivity
// (the paper uses ~0.05). Queries with empty results have their filter
// ranges progressively stretched until at least one tuple survives.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/common/rng.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"

namespace condsel {

struct WorkloadOptions {
  int num_queries = 100;
  int num_joins = 3;               // J
  int num_filters = 3;             // F
  double filter_selectivity = 0.05;
  uint64_t seed = 1234;
  int max_stretch_rounds = 12;
};

std::vector<Query> GenerateWorkload(const Catalog& catalog,
                                    Evaluator* evaluator,
                                    const WorkloadOptions& options);

// A single random query (exposed for tests).
Query GenerateQuery(const Catalog& catalog, Evaluator* evaluator,
                    const WorkloadOptions& options, Rng& rng);

}  // namespace condsel

