#include "condsel/datagen/column_gen.h"

#include <algorithm>
#include <numeric>

#include "condsel/common/macros.h"
#include "condsel/common/zipf.h"
#include "condsel/storage/column.h"

namespace condsel {

std::vector<int64_t> GenUniform(Rng& rng, size_t n, int64_t lo, int64_t hi) {
  CONDSEL_CHECK(lo <= hi);
  std::vector<int64_t> out(n);
  for (auto& v : out) v = rng.NextInRange(lo, hi);
  return out;
}

std::vector<int64_t> GenZipf(Rng& rng, size_t n, int64_t lo, int64_t hi,
                             double theta) {
  CONDSEL_CHECK(lo <= hi);
  const ZipfSampler zipf(hi - lo + 1, theta);
  std::vector<int64_t> out(n);
  for (auto& v : out) v = lo + zipf.Next(rng);
  return out;
}

std::vector<int64_t> GenCorrelated(Rng& rng,
                                   const std::vector<int64_t>& driver,
                                   int64_t lo, int64_t hi,
                                   double noise_frac) {
  CONDSEL_CHECK(lo <= hi);
  int64_t dlo = 0, dhi = 0;
  bool seen = false;
  for (int64_t v : driver) {
    if (IsNull(v)) continue;
    if (!seen) {
      dlo = dhi = v;
      seen = true;
    } else {
      dlo = std::min(dlo, v);
      dhi = std::max(dhi, v);
    }
  }
  const double span = static_cast<double>(hi - lo);
  const double dspan = seen ? static_cast<double>(dhi - dlo) : 0.0;
  const int64_t noise =
      std::max<int64_t>(0, static_cast<int64_t>(noise_frac * span));

  std::vector<int64_t> out(driver.size());
  for (size_t i = 0; i < driver.size(); ++i) {
    if (IsNull(driver[i]) || !seen) {
      out[i] = rng.NextInRange(lo, hi);
      continue;
    }
    const double norm =
        dspan > 0.0 ? static_cast<double>(driver[i] - dlo) / dspan : 0.5;
    int64_t v = lo + static_cast<int64_t>(norm * span);
    if (noise > 0) v += rng.NextInRange(-noise, noise);
    out[i] = std::clamp(v, lo, hi);
  }
  return out;
}

void InjectDangling(Rng& rng, std::vector<int64_t>& fk, double fraction,
                    const std::vector<int64_t>* correlate_with) {
  CONDSEL_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const size_t n = fk.size();
  const size_t k = static_cast<size_t>(fraction * static_cast<double>(n));
  if (k == 0) return;

  if (correlate_with != nullptr) {
    CONDSEL_CHECK(correlate_with->size() == n);
    // NULL the rows with the k largest correlated values.
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::nth_element(idx.begin(), idx.begin() + static_cast<long>(n - k),
                     idx.end(), [&](size_t a, size_t b) {
                       return (*correlate_with)[a] < (*correlate_with)[b];
                     });
    for (size_t i = n - k; i < n; ++i) fk[idx[i]] = kNullValue;
    return;
  }
  // Random selection without replacement (Floyd-like simple loop).
  size_t nulled = 0;
  while (nulled < k) {
    const size_t i = static_cast<size_t>(rng.NextBelow(n));
    if (!IsNull(fk[i])) {
      fk[i] = kNullValue;
      ++nulled;
    }
  }
}

}  // namespace condsel
