#include "condsel/datagen/snowflake.h"

#include <algorithm>
#include <cstdlib>

#include "condsel/common/macros.h"
#include "condsel/common/rng.h"
#include "condsel/datagen/column_gen.h"

namespace condsel {
namespace {

size_t Scaled(double scale, size_t paper_rows) {
  return std::max<size_t>(
      50, static_cast<size_t>(scale * static_cast<double>(paper_rows)));
}

TableSchema MakeSchema(const std::string& name,
                       const std::vector<std::pair<std::string, bool>>&
                           columns_and_keyness,
                       int64_t attr_domain) {
  TableSchema s;
  s.name = name;
  for (const auto& [col, is_key] : columns_and_keyness) {
    ColumnSchema c;
    c.name = col;
    c.is_key = is_key;
    c.min_value = 0;
    c.max_value = attr_domain - 1;
    s.columns.push_back(c);
  }
  return s;
}

Table MakeTable(TableSchema schema,
                std::vector<std::vector<int64_t>> columns) {
  Table t(std::move(schema));
  std::vector<Column> cols;
  cols.reserve(columns.size());
  for (auto& values : columns) cols.emplace_back(std::move(values));
  t.LoadPart(std::move(cols));
  return t;
}

// Sequential primary key column 0..n-1.
std::vector<int64_t> Pk(size_t n) {
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int64_t>(i);
  return v;
}

}  // namespace

SnowflakeOptions SnowflakeOptionsFromEnv(SnowflakeOptions base) {
  if (const char* s = std::getenv("CONDSEL_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) base.scale = v;
  }
  return base;
}

Catalog BuildSnowflake(const SnowflakeOptions& opt) {
  Rng rng(opt.seed);
  const int64_t dom = opt.attr_domain;
  const double noise = opt.correlation_noise;

  const size_t n_fact = Scaled(opt.scale, 1000000);
  const size_t n_dim1 = Scaled(opt.scale, 100000);
  const size_t n_dim2 = Scaled(opt.scale, 50000);
  const size_t n_dim3 = Scaled(opt.scale, 20000);
  const size_t n_dim4 = Scaled(opt.scale, 10000);
  const size_t n_sub1 = Scaled(opt.scale, 5000);
  const size_t n_sub2 = Scaled(opt.scale, 2000);
  const size_t n_sub3 = Scaled(opt.scale, 1000);

  Catalog catalog;

  // --- Sub-dimensions: pk + 3 attributes each. Attributes correlate
  // with the pk so that a filter on them carves out a popularity slice.
  auto build_sub = [&](const std::string& name, size_t n) {
    const std::vector<int64_t> pk = Pk(n);
    std::vector<std::vector<int64_t>> cols;
    cols.push_back(pk);
    cols.push_back(GenCorrelated(rng, pk, 0, dom - 1, noise));
    cols.push_back(GenZipf(rng, n, 0, dom - 1, opt.zipf_theta));
    cols.push_back(GenUniform(rng, n, 0, dom - 1));
    return MakeTable(MakeSchema(name,
                                {{"pk", true},
                                 {"a_corr", false},
                                 {"a_zipf", false},
                                 {"a_unif", false}},
                                dom),
                     std::move(cols));
  };
  const TableId sub1 = catalog.AddTable(build_sub("sub1", n_sub1));
  const TableId sub2 = catalog.AddTable(build_sub("sub2", n_sub2));
  const TableId sub3 = catalog.AddTable(build_sub("sub3", n_sub3));

  // --- Dimensions: pk, (optional fk to a sub-dimension), attributes.
  // fk draws are Zipfian, so popular sub-rows dominate; a_corr correlates
  // with the pk (i.e. with the fact table's popularity ranking of this
  // dimension), which is what makes SITs on dim attributes valuable.
  auto build_dim = [&](const std::string& name, size_t n, bool with_sub,
                       size_t sub_n, bool dangle, bool dangle_correlated) {
    const std::vector<int64_t> pk = Pk(n);
    std::vector<std::vector<int64_t>> cols;
    std::vector<std::pair<std::string, bool>> schema_cols = {{"pk", true}};
    cols.push_back(pk);
    std::vector<int64_t> corr = GenCorrelated(rng, pk, 0, dom - 1, noise);
    if (with_sub) {
      std::vector<int64_t> fk = GenZipf(
          rng, n, 0, static_cast<int64_t>(sub_n) - 1, opt.zipf_theta);
      if (dangle) {
        InjectDangling(rng, fk, opt.dangling_fraction,
                       dangle_correlated ? &corr : nullptr);
      }
      schema_cols.emplace_back("fk_sub", true);
      cols.push_back(std::move(fk));
    }
    schema_cols.emplace_back("a_corr", false);
    cols.push_back(std::move(corr));
    schema_cols.emplace_back("a_zipf", false);
    cols.push_back(GenZipf(rng, n, 0, dom - 1, opt.zipf_theta));
    schema_cols.emplace_back("a_unif", false);
    cols.push_back(GenUniform(rng, n, 0, dom - 1));
    return MakeTable(MakeSchema(name, schema_cols, dom), std::move(cols));
  };
  const TableId dim1 = catalog.AddTable(build_dim(
      "dim1", n_dim1, true, n_sub1, true, opt.correlated_dangling));
  const TableId dim2 =
      catalog.AddTable(build_dim("dim2", n_dim2, true, n_sub2, false, false));
  const TableId dim3 =
      catalog.AddTable(build_dim("dim3", n_dim3, true, n_sub3, false, false));
  const TableId dim4 =
      catalog.AddTable(build_dim("dim4", n_dim4, false, 0, false, false));

  // --- Fact table: four Zipf-skewed FKs + four attributes (8 columns).
  // a_corr1 correlates with fk_d1, tying a fact attribute to the joined
  // dimension's popularity.
  {
    std::vector<std::vector<int64_t>> cols;
    std::vector<int64_t> fk1 = GenZipf(
        rng, n_fact, 0, static_cast<int64_t>(n_dim1) - 1, opt.zipf_theta);
    std::vector<int64_t> fk2 = GenZipf(
        rng, n_fact, 0, static_cast<int64_t>(n_dim2) - 1, opt.zipf_theta);
    std::vector<int64_t> fk3 = GenZipf(
        rng, n_fact, 0, static_cast<int64_t>(n_dim3) - 1, opt.zipf_theta);
    std::vector<int64_t> fk4 = GenZipf(
        rng, n_fact, 0, static_cast<int64_t>(n_dim4) - 1, opt.zipf_theta);
    InjectDangling(rng, fk2, opt.dangling_fraction, nullptr);
    std::vector<int64_t> a_corr1 =
        GenCorrelated(rng, fk1, 0, dom - 1, noise);
    cols.push_back(std::move(fk1));
    cols.push_back(std::move(fk2));
    cols.push_back(std::move(fk3));
    cols.push_back(std::move(fk4));
    cols.push_back(std::move(a_corr1));
    cols.push_back(GenZipf(rng, n_fact, 0, dom - 1, opt.zipf_theta));
    cols.push_back(GenUniform(rng, n_fact, 0, dom - 1));
    cols.push_back(GenUniform(rng, n_fact, 0, dom - 1));
    catalog.AddTable(MakeTable(MakeSchema("fact",
                                          {{"fk_d1", true},
                                           {"fk_d2", true},
                                           {"fk_d3", true},
                                           {"fk_d4", true},
                                           {"a_corr1", false},
                                           {"a_zipf", false},
                                           {"a_unif1", false},
                                           {"a_unif2", false}},
                                          dom),
                               std::move(cols)));
  }
  const TableId fact = catalog.FindTable("fact");

  // --- Foreign-key edges (the join graph).
  catalog.AddForeignKey({fact, 0, dim1, 0});
  catalog.AddForeignKey({fact, 1, dim2, 0});
  catalog.AddForeignKey({fact, 2, dim3, 0});
  catalog.AddForeignKey({fact, 3, dim4, 0});
  catalog.AddForeignKey({dim1, 1, sub1, 0});
  catalog.AddForeignKey({dim2, 1, sub2, 0});
  catalog.AddForeignKey({dim3, 1, sub3, 0});

  return catalog;
}

}  // namespace condsel
