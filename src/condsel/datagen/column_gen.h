// Column value generators used by the synthetic databases.
//
// The paper's data generator produces attributes "with different degrees
// of skew and correlation"; these primitives realize that: uniform and
// Zipfian draws over an integer domain, values correlated with a driver
// column, and dangling-foreign-key injection (NULLing a slice of an FK
// column, chosen randomly or correlated with another attribute).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "condsel/common/rng.h"

namespace condsel {

// n values uniform in [lo, hi].
std::vector<int64_t> GenUniform(Rng& rng, size_t n, int64_t lo, int64_t hi);

// n values Zipf-distributed over [lo, hi]: rank r (0 most likely) maps to
// value lo + r, so low values are the popular ones. theta = 0 is uniform.
std::vector<int64_t> GenZipf(Rng& rng, size_t n, int64_t lo, int64_t hi,
                             double theta);

// Values correlated with `driver`: each output is the driver value
// affinely rescaled from [driver_lo, driver_hi] into [lo, hi], plus
// uniform noise of amplitude noise_frac * (hi - lo). NULL driver entries
// produce independent uniform values.
std::vector<int64_t> GenCorrelated(Rng& rng,
                                   const std::vector<int64_t>& driver,
                                   int64_t lo, int64_t hi,
                                   double noise_frac);

// Sets `fraction` of the entries of `fk` to NULL. When `correlate_with`
// is non-null, the NULLed entries are those with the largest correlated
// values (deterministic, value-correlated dangling tuples); otherwise the
// choice is random.
void InjectDangling(Rng& rng, std::vector<int64_t>& fk, double fraction,
                    const std::vector<int64_t>* correlate_with);

}  // namespace condsel

