// A TPC-H-flavoured micro-schema reproducing the paper's introduction.
//
// customer(c_custkey, c_nation, c_acctbal)
// orders(o_orderkey, o_custkey -> customer, o_totalprice)
// lineitem(l_orderkey -> orders, l_quantity, l_extendedprice)
//
// The skew matches Figure 1's discussion: the number of line-items per
// order is Zipfian and o_totalprice grows with that count, so expensive
// orders join with disproportionately many line-items (base-table
// histograms underestimate sigma_{totalprice>c}(lineitem x orders) badly);
// and most customers live in one nation (c_nation = 0, "USA").

#pragma once

#include <cstdint>

#include "condsel/catalog/catalog.h"

namespace condsel {

struct TpchLiteOptions {
  uint64_t seed = 7;
  double scale = 0.1;        // 1.0 -> 150K orders
  double zipf_theta = 1.2;   // line-items-per-order skew
  double usa_fraction = 0.7; // customers in the dominant nation
  // Fraction of orders placed by dominant-nation customers; above
  // usa_fraction, nation correlates with the orders-customer join (the
  // effect SIT(nation | O JOIN C) captures in Figure 1c).
  double usa_order_fraction = 0.9;
  int64_t max_lineitems_per_order = 40;
  int64_t num_nations = 25;
};

Catalog BuildTpchLite(const TpchLiteOptions& options);

}  // namespace condsel

