// The synthetic snowflake database of Section 5.
//
// Eight tables — a fact table, four dimensions, three sub-dimensions —
// with 1K to 1M tuples (at scale = 1.0) and 4 to 8 attributes each.
// Foreign keys from the fact table are Zipf-skewed, dimension attributes
// correlate with key popularity (so base-table histograms mispredict
// selectivities over joins — the effect SITs capture), and a slice of the
// foreign keys dangles (NULL), chosen randomly or correlated with an
// attribute, breaking referential integrity as in the paper.
//
// Layout (arrows are FK edges; 7 edges, supporting up to 7-way joins):
//
//   fact ──> dim1 ──> sub1
//     ├────> dim2 ──> sub2
//     ├────> dim3 ──> sub3
//     └────> dim4

#pragma once

#include <cstdint>

#include "condsel/catalog/catalog.h"

namespace condsel {

struct SnowflakeOptions {
  uint64_t seed = 42;
  // 1.0 reproduces the paper's 1K..1M table sizes; the default keeps the
  // single-core benchmark run tractable. Override via CONDSEL_SCALE.
  double scale = 0.1;
  double zipf_theta = 1.0;          // FK and attribute skew
  double dangling_fraction = 0.10;  // the paper uses 5%..20%
  bool correlated_dangling = false;
  int64_t attr_domain = 1000;       // non-key attributes live in [0, this)
  double correlation_noise = 0.05;  // noise on correlated attributes
};

// Reads CONDSEL_SCALE from the environment (if set) into options.scale.
SnowflakeOptions SnowflakeOptionsFromEnv(SnowflakeOptions base = {});

Catalog BuildSnowflake(const SnowflakeOptions& options);

}  // namespace condsel

