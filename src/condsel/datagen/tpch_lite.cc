#include "condsel/datagen/tpch_lite.h"

#include <algorithm>

#include "condsel/common/macros.h"
#include "condsel/common/rng.h"
#include "condsel/common/zipf.h"
#include "condsel/datagen/column_gen.h"

namespace condsel {

Catalog BuildTpchLite(const TpchLiteOptions& opt) {
  Rng rng(opt.seed);
  const size_t n_customer = std::max<size_t>(
      100, static_cast<size_t>(15000.0 * opt.scale));
  const size_t n_orders = std::max<size_t>(
      200, static_cast<size_t>(150000.0 * opt.scale));

  Catalog catalog;

  // customer: most customers in nation 0 ("USA"), the rest uniform.
  std::vector<int64_t> usa_keys;
  std::vector<int64_t> other_keys;
  {
    TableSchema s;
    s.name = "customer";
    s.columns = {{"c_custkey", 0, static_cast<int64_t>(n_customer) - 1, true},
                 {"c_nation", 0, opt.num_nations - 1, false},
                 {"c_acctbal", 0, 9999, false}};
    Table t(s);
    for (size_t i = 0; i < n_customer; ++i) {
      const bool usa = rng.NextBool(opt.usa_fraction);
      const int64_t nation =
          usa ? 0 : rng.NextInRange(1, opt.num_nations - 1);
      (usa ? usa_keys : other_keys).push_back(static_cast<int64_t>(i));
      t.AppendRow({static_cast<int64_t>(i), nation,
                   rng.NextInRange(0, 9999)});
    }
    t.SealTail();
    catalog.AddTable(std::move(t));
    // Degenerate draws could leave a side empty; fall back to everyone.
    if (usa_keys.empty() || other_keys.empty()) {
      usa_keys.clear();
      other_keys.clear();
      for (size_t i = 0; i < n_customer; ++i) {
        usa_keys.push_back(static_cast<int64_t>(i));
        other_keys.push_back(static_cast<int64_t>(i));
      }
    }
  }

  // orders: Zipfian line-item count per order; totalprice tracks it.
  std::vector<int64_t> items_per_order(n_orders);
  {
    const ZipfSampler zipf(opt.max_lineitems_per_order, opt.zipf_theta);
    TableSchema s;
    s.name = "orders";
    s.columns = {{"o_orderkey", 0, static_cast<int64_t>(n_orders) - 1, true},
                 {"o_custkey", 0, static_cast<int64_t>(n_customer) - 1, true},
                 {"o_totalprice", 0, 1000000, false}};
    Table t(s);
    for (size_t i = 0; i < n_orders; ++i) {
      // Rank 0 (one line-item) is most probable; a thin Zipf tail of
      // orders carries up to max_lineitems_per_order items.
      const int64_t count = 1 + zipf.Next(rng);
      items_per_order[i] = count;
      const int64_t price =
          count * 2500 + rng.NextInRange(0, 2499);  // grows with count
      // Orders skew toward dominant-nation customers.
      const std::vector<int64_t>& pick =
          rng.NextBool(opt.usa_order_fraction) ? usa_keys : other_keys;
      const int64_t cust =
          pick[static_cast<size_t>(rng.NextBelow(pick.size()))];
      t.AppendRow({static_cast<int64_t>(i), cust, price});
    }
    t.SealTail();
    catalog.AddTable(std::move(t));
  }

  // lineitem: items_per_order[i] rows per order i.
  {
    TableSchema s;
    s.name = "lineitem";
    s.columns = {{"l_orderkey", 0, static_cast<int64_t>(n_orders) - 1, true},
                 {"l_quantity", 1, 50, false},
                 {"l_extendedprice", 1, 5000, false}};
    Table t(s);
    for (size_t i = 0; i < n_orders; ++i) {
      for (int64_t k = 0; k < items_per_order[i]; ++k) {
        t.AppendRow({static_cast<int64_t>(i), rng.NextInRange(1, 50),
                     rng.NextInRange(1, 5000)});
      }
    }
    t.SealTail();
    catalog.AddTable(std::move(t));
  }

  const TableId customer = catalog.FindTable("customer");
  const TableId orders = catalog.FindTable("orders");
  const TableId lineitem = catalog.FindTable("lineitem");
  catalog.AddForeignKey({orders, 1, customer, 0});
  catalog.AddForeignKey({lineitem, 0, orders, 0});
  return catalog;
}

}  // namespace condsel
