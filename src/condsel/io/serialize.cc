#include "condsel/io/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

namespace condsel {
namespace {

constexpr uint32_t kCatalogMagic = 0x43435444;    // "CCTD"
constexpr uint32_t kPoolMagic = 0x43435354;       // "CCST"
constexpr uint32_t kPartStatsMagic = 0x43435053;  // "CCPS"
constexpr uint32_t kVersion = 2;
// Catalog v3 serializes the part structure (per-part id/generation/columns
// plus the unsealed tail); v2 files — one flat column set per table — are
// still readable and load as a single part.
constexpr uint32_t kCatalogVersion = 3;
constexpr uint32_t kPartStatsVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

// --- primitive writers/readers (little-endian host assumed; checked by
// the magic number on read) ---

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  bool ok() const { return ok_; }

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void I64Vec(const std::vector<int64_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(int64_t));
  }

 private:
  void Raw(const void* p, size_t n) {
    if (ok_ && n > 0 && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {
    // Element counts read from the file are validated against the bytes
    // actually present, so a corrupt count can never trigger a giant
    // allocation before the read fails.
    if (std::fseek(f_, 0, SEEK_END) == 0) {
      const long size = std::ftell(f_);
      if (size > 0) remaining_ = static_cast<uint64_t>(size);
    }
    if (std::fseek(f_, 0, SEEK_SET) != 0) ok_ = false;
  }

  bool ok() const { return ok_; }

  // Could `count` records of `record_bytes` still be present in the file?
  bool Plausible(uint64_t count, uint64_t record_bytes) const {
    return record_bytes == 0 || count <= remaining_ / record_bytes;
  }

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok_ || n > (1u << 20) || !Plausible(n, 1)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }
  std::vector<int64_t> I64Vec() {
    const uint64_t n = U64();
    if (!ok_ || !Plausible(n, sizeof(int64_t))) {
      ok_ = false;
      return {};
    }
    std::vector<int64_t> v(n);
    Raw(v.data(), n * sizeof(int64_t));
    return v;
  }

 private:
  void Raw(void* p, size_t n) {
    if (!ok_ || n == 0) return;
    if (std::fread(p, 1, n, f_) != n) {
      ok_ = false;
      remaining_ = 0;
      return;
    }
    remaining_ -= n <= remaining_ ? n : remaining_;
  }
  std::FILE* f_;
  uint64_t remaining_ = 0;
  bool ok_ = true;
};

// --- shared sub-structures ---

void WriteHistogram(Writer& w, const Histogram& h) {
  w.F64(h.source_cardinality());
  w.U64(h.num_buckets());
  for (const Bucket& b : h.buckets()) {
    w.I64(b.lo);
    w.I64(b.hi);
    w.F64(b.frequency);
    w.F64(b.distinct);
  }
}

bool ReadHistogram(Reader& r, Histogram* out) {
  const double card = r.F64();
  const uint64_t n = r.U64();
  if (!r.ok() || n > (1u << 24) || !r.Plausible(n, 4 * sizeof(int64_t))) {
    return false;
  }
  std::vector<Bucket> buckets(n);
  for (auto& b : buckets) {
    b.lo = r.I64();
    b.hi = r.I64();
    b.frequency = r.F64();
    b.distinct = r.F64();
    // Negated comparisons so NaN (a flipped double) is rejected here
    // rather than CHECK-aborting in the Histogram constructor.
    if (!r.ok() || b.lo > b.hi || !(b.frequency >= 0)) return false;
  }
  // Ordering is re-checked by the Histogram constructor's CHECKs; guard
  // here so corrupt files fail softly instead.
  for (size_t i = 1; i < buckets.size(); ++i) {
    if (buckets[i - 1].hi >= buckets[i].lo) return false;
  }
  *out = Histogram(std::move(buckets), card);
  return true;
}

void WriteHistogram2d(Writer& w, const Histogram2d& h) {
  w.F64(h.source_cardinality());
  w.U64(h.num_buckets());
  for (const Bucket2d& b : h.buckets()) {
    w.I64(b.x_lo);
    w.I64(b.x_hi);
    w.I64(b.y_lo);
    w.I64(b.y_hi);
    w.F64(b.frequency);
  }
}

bool ReadHistogram2d(Reader& r, Histogram2d* out) {
  const double card = r.F64();
  const uint64_t n = r.U64();
  if (!r.ok() || n > (1u << 24) || !r.Plausible(n, 5 * sizeof(int64_t))) {
    return false;
  }
  std::vector<Bucket2d> buckets(n);
  for (auto& b : buckets) {
    b.x_lo = r.I64();
    b.x_hi = r.I64();
    b.y_lo = r.I64();
    b.y_hi = r.I64();
    b.frequency = r.F64();
    if (!r.ok() || b.x_lo > b.x_hi || b.y_lo > b.y_hi ||
        !(b.frequency >= 0)) {
      return false;
    }
  }
  *out = Histogram2d(std::move(buckets), card);
  return true;
}

void WritePredicate(Writer& w, const Predicate& p) {
  w.U32(p.is_join() ? 1 : 0);
  if (p.is_join()) {
    w.U32(static_cast<uint32_t>(p.left().table));
    w.U32(static_cast<uint32_t>(p.left().column));
    w.U32(static_cast<uint32_t>(p.right().table));
    w.U32(static_cast<uint32_t>(p.right().column));
  } else {
    w.U32(static_cast<uint32_t>(p.column().table));
    w.U32(static_cast<uint32_t>(p.column().column));
    w.I64(p.lo());
    w.I64(p.hi());
  }
}

bool ValidColumn(const Catalog& catalog, ColumnRef c) {
  return c.table >= 0 && c.table < catalog.num_tables() && c.column >= 0 &&
         c.column < catalog.table(c.table).num_columns();
}

bool ReadPredicate(Reader& r, const Catalog& catalog, Predicate* out) {
  const uint32_t is_join = r.U32();
  if (is_join == 1) {
    const ColumnRef l{static_cast<TableId>(r.U32()),
                      static_cast<ColumnId>(r.U32())};
    const ColumnRef rt{static_cast<TableId>(r.U32()),
                       static_cast<ColumnId>(r.U32())};
    if (!r.ok() || !ValidColumn(catalog, l) || !ValidColumn(catalog, rt) ||
        l.table == rt.table) {
      return false;
    }
    *out = Predicate::Join(l, rt);
    return true;
  }
  if (is_join != 0) return false;
  const ColumnRef c{static_cast<TableId>(r.U32()),
                    static_cast<ColumnId>(r.U32())};
  const int64_t lo = r.I64();
  const int64_t hi = r.I64();
  if (!r.ok() || !ValidColumn(catalog, c) || lo > hi) return false;
  *out = Predicate::Filter(c, lo, hi);
  return true;
}

}  // namespace

IoResult WriteCatalog(const Catalog& catalog, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "' for writing");
  Writer w(f.get());
  w.U32(kCatalogMagic);
  w.U32(kCatalogVersion);
  w.U32(static_cast<uint32_t>(catalog.num_tables()));
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const Table& table = catalog.table(t);
    w.Str(table.schema().name);
    w.U32(static_cast<uint32_t>(table.num_columns()));
    for (const ColumnSchema& c : table.schema().columns) {
      w.Str(c.name);
      w.I64(c.min_value);
      w.I64(c.max_value);
      w.U32(c.is_key ? 1 : 0);
    }
    w.U32(static_cast<uint32_t>(table.num_parts()));
    for (size_t pi = 0; pi < table.num_parts(); ++pi) {
      const Part& part = table.part(pi);
      w.U32(static_cast<uint32_t>(part.id()));
      w.U64(part.generation());
      for (ColumnId c = 0; c < table.num_columns(); ++c) {
        w.I64Vec(part.column(c).values());
      }
    }
    // The unsealed tail rides along so a mid-churn catalog round-trips
    // without forcing a seal (the writer takes the table by const ref).
    w.U64(table.tail_rows());
    for (ColumnId c = 0; c < table.num_columns(); ++c) {
      std::vector<int64_t> tail;
      tail.reserve(table.tail_rows());
      for (size_t r = table.sealed_rows(); r < table.num_rows(); ++r) {
        tail.push_back(table.value(r, c));
      }
      w.I64Vec(tail);
    }
  }
  w.U32(static_cast<uint32_t>(catalog.foreign_keys().size()));
  for (const ForeignKey& fk : catalog.foreign_keys()) {
    w.U32(static_cast<uint32_t>(fk.fk_table));
    w.U32(static_cast<uint32_t>(fk.fk_column));
    w.U32(static_cast<uint32_t>(fk.pk_table));
    w.U32(static_cast<uint32_t>(fk.pk_column));
  }
  if (!w.ok()) return IoResult::Fail("write failed for '" + path + "'");
  return IoResult::Ok();
}

namespace {

IoResult ReadCatalogStream(std::FILE* file, const std::string& name,
                           Catalog* out) {
  Reader r(file);
  if (r.U32() != kCatalogMagic) {
    return IoResult::Fail(name + " is not a condsel catalog file");
  }
  const uint32_t version = r.U32();
  if (version != kVersion && version != kCatalogVersion) {
    return IoResult::Fail("unsupported catalog version in " + name);
  }
  Catalog catalog;
  const uint32_t num_tables = r.U32();
  if (!r.ok() || num_tables > 1024) {
    return IoResult::Fail("corrupt table count");
  }
  for (uint32_t t = 0; t < num_tables; ++t) {
    TableSchema schema;
    schema.name = r.Str();
    const uint32_t num_cols = r.U32();
    if (!r.ok() || num_cols > 4096) {
      return IoResult::Fail("corrupt column count");
    }
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnSchema cs;
      cs.name = r.Str();
      cs.min_value = r.I64();
      cs.max_value = r.I64();
      cs.is_key = r.U32() == 1;
      schema.columns.push_back(std::move(cs));
    }
    Table table(schema);

    // Reads num_cols vectors and validates they agree on the row count
    // (Part/RestoreTail treat a mismatch as an internal invariant
    // violation — abort — so corrupt files are rejected here instead).
    // nullptr on success, else the rejection message.
    auto read_column_set = [&](std::vector<Column>* cols) -> const char* {
      cols->clear();
      for (uint32_t c = 0; c < num_cols; ++c) {
        cols->emplace_back(r.I64Vec());
      }
      if (!r.ok()) return "corrupt column data";
      for (const Column& c : *cols) {
        if (c.size() != (*cols)[0].size()) {
          return "column lengths disagree";
        }
      }
      return nullptr;
    };

    if (version == kVersion) {
      // v2: one flat column set; loads as a single sealed part (empty
      // tables stay part-free, matching LoadPart-built catalogs).
      std::vector<Column> cols;
      if (const char* err = read_column_set(&cols)) {
        return IoResult::Fail(err);
      }
      if (num_cols > 0 && cols[0].size() > 0) {
        table.LoadPart(std::move(cols));
      }
    } else {
      const uint32_t num_parts = r.U32();
      if (!r.ok() || num_parts > 4096) {
        return IoResult::Fail("corrupt part count");
      }
      std::set<uint32_t> seen_ids;
      for (uint32_t pi = 0; pi < num_parts; ++pi) {
        const uint32_t id = r.U32();
        const uint64_t generation = r.U64();
        std::vector<Column> cols;
        if (const char* err = read_column_set(&cols)) {
          return IoResult::Fail(err);
        }
        // RestorePart CHECKs id uniqueness; reject corrupt files softly.
        if (id > (1u << 20) || !seen_ids.insert(id).second) {
          return IoResult::Fail("corrupt part id");
        }
        table.RestorePart(static_cast<PartId>(id), generation,
                          std::move(cols));
      }
      const uint64_t tail_rows = r.U64();
      if (!r.ok() || !r.Plausible(tail_rows, num_cols * sizeof(int64_t))) {
        return IoResult::Fail("corrupt tail row count");
      }
      std::vector<Column> tail;
      if (const char* err = read_column_set(&tail)) {
        return IoResult::Fail(err);
      }
      if (!tail.empty() && tail[0].size() != tail_rows) {
        return IoResult::Fail("tail rows disagree with tail columns");
      }
      table.RestoreTail(std::move(tail));
    }
    catalog.AddTable(std::move(table));
  }
  const uint32_t num_fks = r.U32();
  if (!r.ok() || num_fks > 4096) {
    return IoResult::Fail("corrupt foreign-key count");
  }
  for (uint32_t i = 0; i < num_fks; ++i) {
    ForeignKey fk;
    fk.fk_table = static_cast<TableId>(r.U32());
    fk.fk_column = static_cast<ColumnId>(r.U32());
    fk.pk_table = static_cast<TableId>(r.U32());
    fk.pk_column = static_cast<ColumnId>(r.U32());
    // AddForeignKey treats out-of-range table ids as an internal invariant
    // violation (abort); validate the corrupt-file case here.
    if (!r.ok() || !ValidColumn(catalog, {fk.fk_table, fk.fk_column}) ||
        !ValidColumn(catalog, {fk.pk_table, fk.pk_column})) {
      return IoResult::Fail("corrupt foreign key");
    }
    catalog.AddForeignKey(fk);
  }
  *out = std::move(catalog);
  return IoResult::Ok();
}

}  // namespace

IoResult ReadCatalog(const std::string& path, Catalog* out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "'");
  return ReadCatalogStream(f.get(), "'" + path + "'", out);
}

IoResult ReadCatalogFromBuffer(const void* data, size_t size, Catalog* out) {
  if (data == nullptr || size == 0) {
    return IoResult::Fail("empty catalog buffer");
  }
  // fmemopen's read mode never writes through the pointer.
  File f(fmemopen(const_cast<void*>(data), size, "rb"));
  if (!f) return IoResult::Fail("cannot map catalog buffer");
  return ReadCatalogStream(f.get(), "buffer", out);
}

IoResult WriteSitPool(const SitPool& pool, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "' for writing");
  Writer w(f.get());
  w.U32(kPoolMagic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(pool.size()));
  for (const Sit& s : pool.sits()) {
    w.U32(static_cast<uint32_t>(s.attr.table));
    w.U32(static_cast<uint32_t>(s.attr.column));
    w.U32(s.is_multidim() ? 1 : 0);
    if (s.is_multidim()) {
      w.U32(static_cast<uint32_t>(s.attr2.table));
      w.U32(static_cast<uint32_t>(s.attr2.column));
    }
    w.U32(static_cast<uint32_t>(s.expression.size()));
    for (const Predicate& p : s.expression) WritePredicate(w, p);
    w.F64(s.diff);
    if (s.is_multidim()) {
      WriteHistogram2d(w, s.histogram2d);
    } else {
      WriteHistogram(w, s.histogram);
    }
  }
  if (!w.ok()) return IoResult::Fail("write failed for '" + path + "'");
  return IoResult::Ok();
}

namespace {

IoResult ReadSitPoolStream(std::FILE* file, const std::string& name,
                           const Catalog& catalog, SitPool* out) {
  Reader r(file);
  if (r.U32() != kPoolMagic) {
    return IoResult::Fail(name + " is not a condsel SIT pool file");
  }
  if (r.U32() != kVersion) {
    return IoResult::Fail("unsupported pool version in " + name);
  }
  SitPool pool;
  const uint32_t num_sits = r.U32();
  if (!r.ok() || num_sits > (1u << 20)) {
    return IoResult::Fail("corrupt SIT count");
  }
  for (uint32_t i = 0; i < num_sits; ++i) {
    Sit sit;
    sit.attr = ColumnRef{static_cast<TableId>(r.U32()),
                         static_cast<ColumnId>(r.U32())};
    if (!ValidColumn(catalog, sit.attr)) {
      return IoResult::Fail("SIT attribute does not exist in the catalog");
    }
    const uint32_t multidim = r.U32();
    if (multidim == 1) {
      sit.attr2 = ColumnRef{static_cast<TableId>(r.U32()),
                            static_cast<ColumnId>(r.U32())};
      if (!ValidColumn(catalog, sit.attr2)) {
        return IoResult::Fail(
            "SIT second attribute does not exist in the catalog");
      }
    } else if (multidim != 0) {
      return IoResult::Fail("corrupt SIT header");
    }
    const uint32_t num_preds = r.U32();
    if (!r.ok() || num_preds > 64) {
      return IoResult::Fail("corrupt SIT expression");
    }
    for (uint32_t p = 0; p < num_preds; ++p) {
      Predicate pred = Predicate::Filter(ColumnRef{0, 0}, 0, 0);
      if (!ReadPredicate(r, catalog, &pred)) {
        return IoResult::Fail("corrupt SIT expression predicate");
      }
      sit.expression.push_back(pred);
    }
    sit.diff = r.F64();
    if (multidim == 1) {
      if (!ReadHistogram2d(r, &sit.histogram2d)) {
        return IoResult::Fail("corrupt 2-d histogram");
      }
    } else {
      if (!ReadHistogram(r, &sit.histogram)) {
        return IoResult::Fail("corrupt histogram");
      }
    }
    // Negated form rejects NaN diffs too.
    if (!r.ok() || !(sit.diff >= 0.0 && sit.diff <= 1.0)) {
      return IoResult::Fail("corrupt SIT payload");
    }
    pool.Add(std::move(sit));
  }
  *out = std::move(pool);
  return IoResult::Ok();
}

}  // namespace

IoResult WritePartStats(const PartStatsSet& stats, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "' for writing");
  Writer w(f.get());
  w.U32(kPartStatsMagic);
  w.U32(kPartStatsVersion);
  w.U32(static_cast<uint32_t>(stats.specs().size()));
  for (const SitSpec& spec : stats.specs()) {
    w.U32(static_cast<uint32_t>(spec.attr.table));
    w.U32(static_cast<uint32_t>(spec.attr.column));
    w.U32(static_cast<uint32_t>(spec.expression.size()));
    for (const Predicate& p : spec.expression) WritePredicate(w, p);
  }
  w.U32(static_cast<uint32_t>(stats.entries().size()));
  for (const auto& [key, entry] : stats.entries()) {
    w.U32(static_cast<uint32_t>(entry.table));
    w.U32(static_cast<uint32_t>(entry.part));
    w.U64(entry.generation);
    w.F64(entry.rows);
    w.U32(static_cast<uint32_t>(entry.pieces.size()));
    for (size_t i = 0; i < entry.pieces.size(); ++i) {
      WriteHistogram(w, entry.pieces[i]);
      w.F64(entry.diffs[i]);
    }
  }
  if (!w.ok()) return IoResult::Fail("write failed for '" + path + "'");
  return IoResult::Ok();
}

namespace {

IoResult ReadPartStatsStream(std::FILE* file, const std::string& name,
                             const Catalog& catalog, PartStatsSet* out) {
  Reader r(file);
  if (r.U32() != kPartStatsMagic) {
    return IoResult::Fail(name + " is not a condsel part-stats file");
  }
  if (r.U32() != kPartStatsVersion) {
    return IoResult::Fail("unsupported part-stats version in " + name);
  }
  PartStatsSet stats;
  const uint32_t num_specs = r.U32();
  if (!r.ok() || num_specs > (1u << 20)) {
    return IoResult::Fail("corrupt spec count");
  }
  std::vector<SitSpec> specs;
  specs.reserve(num_specs);
  for (uint32_t i = 0; i < num_specs; ++i) {
    SitSpec spec;
    spec.attr = ColumnRef{static_cast<TableId>(r.U32()),
                          static_cast<ColumnId>(r.U32())};
    if (!r.ok() || !ValidColumn(catalog, spec.attr)) {
      return IoResult::Fail("spec attribute does not exist in the catalog");
    }
    const uint32_t num_preds = r.U32();
    if (!r.ok() || num_preds > 64) {
      return IoResult::Fail("corrupt spec expression");
    }
    for (uint32_t p = 0; p < num_preds; ++p) {
      Predicate pred = Predicate::Filter(ColumnRef{0, 0}, 0, 0);
      if (!ReadPredicate(r, catalog, &pred)) {
        return IoResult::Fail("corrupt spec expression predicate");
      }
      spec.expression.push_back(pred);
    }
    specs.push_back(std::move(spec));
  }
  stats.SetSpecs(std::move(specs));
  const uint32_t num_entries = r.U32();
  if (!r.ok() || num_entries > (1u << 20)) {
    return IoResult::Fail("corrupt entry count");
  }
  for (uint32_t i = 0; i < num_entries; ++i) {
    PartStatsEntry entry;
    entry.table = static_cast<TableId>(r.U32());
    entry.part = static_cast<PartId>(r.U32());
    entry.generation = r.U64();
    entry.rows = r.F64();
    if (!r.ok() || entry.table < 0 || entry.table >= catalog.num_tables()) {
      return IoResult::Fail("part-stats entry references an unknown table");
    }
    const Table& table = catalog.table(entry.table);
    const int pi = table.part_index(entry.part);
    if (pi < 0) {
      return IoResult::Fail("part-stats entry references an unknown part");
    }
    // A stamp from before (or after) the live part's generation means the
    // pieces describe rows this part no longer holds: stale statistics
    // must be rebuilt, not loaded.
    if (entry.generation != table.part(static_cast<size_t>(pi)).generation()) {
      return IoResult::Fail("stale part-stats entry (generation mismatch)");
    }
    // Negated form rejects a NaN row count.
    if (!(entry.rows >= 0.0)) {
      return IoResult::Fail("corrupt part-stats row count");
    }
    const uint32_t num_pieces = r.U32();
    const size_t owned = stats.SpecsOwnedBy(entry.table).size();
    if (!r.ok() || num_pieces != owned) {
      return IoResult::Fail("part-stats pieces disagree with the spec list");
    }
    for (uint32_t p = 0; p < num_pieces; ++p) {
      Histogram piece;
      // ReadHistogram validates bucket shape before the Histogram
      // constructor runs, so NaN frequencies fail softly here.
      if (!ReadHistogram(r, &piece)) {
        return IoResult::Fail("corrupt part-stats piece");
      }
      // The constructor does not check the cardinality; the merge weights
      // divide by it, so reject NaN/negative values here.
      if (!(piece.source_cardinality() >= 0.0)) {
        return IoResult::Fail("corrupt part-stats piece cardinality");
      }
      const double diff = r.F64();
      if (!r.ok() || !(diff >= 0.0 && diff <= 1.0)) {
        return IoResult::Fail("corrupt part-stats diff");
      }
      entry.pieces.push_back(std::move(piece));
      entry.diffs.push_back(diff);
    }
    if (stats.FindEntry(entry.table, entry.part) != nullptr) {
      return IoResult::Fail("duplicate part-stats entry");
    }
    stats.PutEntry(std::move(entry));
  }
  *out = std::move(stats);
  return IoResult::Ok();
}

}  // namespace

IoResult ReadPartStats(const std::string& path, const Catalog& catalog,
                       PartStatsSet* out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "'");
  return ReadPartStatsStream(f.get(), "'" + path + "'", catalog, out);
}

IoResult ReadPartStatsFromBuffer(const void* data, size_t size,
                                 const Catalog& catalog, PartStatsSet* out) {
  if (data == nullptr || size == 0) {
    return IoResult::Fail("empty part-stats buffer");
  }
  File f(fmemopen(const_cast<void*>(data), size, "rb"));
  if (!f) return IoResult::Fail("cannot map part-stats buffer");
  return ReadPartStatsStream(f.get(), "buffer", catalog, out);
}

IoResult ReadSitPool(const std::string& path, const Catalog& catalog,
                     SitPool* out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return IoResult::Fail("cannot open '" + path + "'");
  return ReadSitPoolStream(f.get(), "'" + path + "'", catalog, out);
}

IoResult ReadSitPoolFromBuffer(const void* data, size_t size,
                               const Catalog& catalog, SitPool* out) {
  if (data == nullptr || size == 0) {
    return IoResult::Fail("empty SIT pool buffer");
  }
  File f(fmemopen(const_cast<void*>(data), size, "rb"));
  if (!f) return IoResult::Fail("cannot map SIT pool buffer");
  return ReadSitPoolStream(f.get(), "buffer", catalog, out);
}

}  // namespace condsel
