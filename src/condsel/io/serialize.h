// Binary (de)serialization for catalogs and SIT pools.
//
// A real deployment builds SITs offline and ships them to the optimizer;
// this module provides that persistence: a versioned little-endian binary
// format for Catalog (schemas + column data) and SitPool (expressions,
// 1-d and 2-d histograms, diff values). Readers validate magic numbers,
// version, and structural invariants, and report failures by value.

#pragma once

#include <string>

#include "condsel/catalog/catalog.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

struct IoResult {
  bool ok = false;
  std::string error;

  static IoResult Ok() { return {true, ""}; }
  static IoResult Fail(std::string message) {
    return {false, std::move(message)};
  }
};

// Catalog <-> file.
IoResult WriteCatalog(const Catalog& catalog, const std::string& path);
IoResult ReadCatalog(const std::string& path, Catalog* out);

// SitPool <-> file. Reading validates that every SIT's tables/columns
// exist in `catalog` (a pool is only meaningful against its database).
IoResult WriteSitPool(const SitPool& pool, const std::string& path);
IoResult ReadSitPool(const std::string& path, const Catalog& catalog,
                     SitPool* out);

// In-memory variants: parse a serialized image without touching the
// filesystem. Same validation and failure modes as the file readers;
// used by embedders that ship statistics over the network, and by the
// fuzz harnesses, which drive them with adversarial bytes.
IoResult ReadCatalogFromBuffer(const void* data, size_t size, Catalog* out);
IoResult ReadSitPoolFromBuffer(const void* data, size_t size,
                               const Catalog& catalog, SitPool* out);

}  // namespace condsel

