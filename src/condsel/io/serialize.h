// Binary (de)serialization for catalogs and SIT pools.
//
// A real deployment builds SITs offline and ships them to the optimizer;
// this module provides that persistence: a versioned little-endian binary
// format for Catalog (schemas + column data) and SitPool (expressions,
// 1-d and 2-d histograms, diff values). Readers validate magic numbers,
// version, and structural invariants, and report failures by value.

#pragma once

#include <string>
#include <utility>

#include "condsel/catalog/catalog.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/common/status.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

struct IoResult {
  bool ok = false;
  std::string error;

  static IoResult Ok() { return {true, ""}; }
  static IoResult Fail(std::string message) {
    return {false, std::move(message)};
  }
};

// Lifts an IoResult into the library's Status vocabulary so callers that
// already route Status (the service, CONDSEL_RETURN_IF_ERROR users) can
// propagate (de)serialization failures without a second error type. A
// failed read/write is DATA_LOSS: the bytes on disk (or the buffer) do
// not decode into a usable catalog/pool.
inline Status IoStatus(const IoResult& r) {
  if (r.ok) return Status::Ok();
  return Status::DataLoss(r.error);
}

// Catalog <-> file.
IoResult WriteCatalog(const Catalog& catalog, const std::string& path);
IoResult ReadCatalog(const std::string& path, Catalog* out);

// SitPool <-> file. Reading validates that every SIT's tables/columns
// exist in `catalog` (a pool is only meaningful against its database).
IoResult WriteSitPool(const SitPool& pool, const std::string& path);
IoResult ReadSitPool(const std::string& path, const Catalog& catalog,
                     SitPool* out);

// Per-part statistics (catalog/part_stats.h) <-> file. Reading validates
// the image against `catalog` before any Histogram is constructed:
// unknown columns or parts, corrupt pieces (NaN frequencies,
// cardinalities, or diffs), misaligned piece vectors, and entries whose
// generation stamp disagrees with the live part (stale statistics from
// before a delta) are all rejected by value.
IoResult WritePartStats(const PartStatsSet& stats, const std::string& path);
IoResult ReadPartStats(const std::string& path, const Catalog& catalog,
                       PartStatsSet* out);

// In-memory variants: parse a serialized image without touching the
// filesystem. Same validation and failure modes as the file readers;
// used by embedders that ship statistics over the network, and by the
// fuzz harnesses, which drive them with adversarial bytes.
IoResult ReadCatalogFromBuffer(const void* data, size_t size, Catalog* out);
IoResult ReadSitPoolFromBuffer(const void* data, size_t size,
                               const Catalog& catalog, SitPool* out);
IoResult ReadPartStatsFromBuffer(const void* data, size_t size,
                                 const Catalog& catalog, PartStatsSet* out);

}  // namespace condsel

