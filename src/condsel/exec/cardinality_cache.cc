#include "condsel/exec/cardinality_cache.h"

namespace condsel {

const double* CardinalityCache::Lookup(
    const std::vector<Predicate>& key) const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Safe to hand out without the lock: map nodes are stable and the cache
  // never erases, so the pointee outlives every borrower.
  return &it->second;
}

void CardinalityCache::Insert(const std::vector<Predicate>& key,
                              double cardinality) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  cache_.emplace(key, cardinality);
}

size_t CardinalityCache::size() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return cache_.size();
}

void CardinalityCache::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace condsel
