#include "condsel/exec/cardinality_cache.h"

namespace condsel {

const double* CardinalityCache::Lookup(
    const std::vector<Predicate>& key) const {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void CardinalityCache::Insert(const std::vector<Predicate>& key,
                              double cardinality) {
  cache_.emplace(key, cardinality);
}

void CardinalityCache::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace condsel
