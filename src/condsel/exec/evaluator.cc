#include "condsel/exec/evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"

namespace condsel {

int JoinResult::TableSlot(TableId t) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == t) return static_cast<int>(i);
  }
  return -1;
}

Evaluator::Evaluator(const Catalog* catalog, CardinalityCache* cache)
    : catalog_(catalog), cache_(cache) {
  CONDSEL_CHECK(catalog != nullptr);  // invariant: constructor contract
}

std::vector<uint32_t> Evaluator::FilteredRows(
    const Query& q, PredSet filters, TableId table,
    const RowRestriction* restriction) const {
  const Table& t = catalog_->table(table);
  // Collect the filters that apply to this table.
  std::vector<const Predicate*> preds;
  for (int i : SetElements(filters)) {
    const Predicate& p = q.predicate(i);
    if (p.is_filter() && p.column().table == table) preds.push_back(&p);
  }
  size_t begin = 0;
  size_t end = t.num_rows();
  if (restriction != nullptr && restriction->table == table) {
    begin = restriction->begin;
    end = restriction->end;
    CONDSEL_CHECK(begin <= end && end <= t.num_rows());  // invariant
  }
  std::vector<uint32_t> rows;
  rows.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) {
    bool ok = true;
    for (const Predicate* p : preds) {
      const int64_t v = t.value(r, p->column().column);
      if (IsNull(v) || v < p->lo() || v > p->hi()) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

JoinResult Evaluator::EvaluateComponent(const Query& q, PredSet component,
                                        const RowRestriction* restriction) {
  JoinResult result;
  CONDSEL_CHECK(component != 0);  // invariant: caller passes components

  const std::vector<int> table_ids = SetElements(TablesOf(q.predicates(), component));
  CONDSEL_CHECK(!table_ids.empty());  // invariant: components touch tables

  // Per-table filtered row lists.
  std::unordered_map<TableId, std::vector<uint32_t>> live;
  for (int t : table_ids) {
    live[t] = FilteredRows(q, component, static_cast<TableId>(t), restriction);
  }

  // Collect the component's join predicates.
  std::vector<int> join_preds;
  for (int i : SetElements(component)) {
    if (q.predicate(i).is_join()) join_preds.push_back(i);
  }

  if (table_ids.size() == 1) {
    // invariant: a one-table component cannot carry a join.
    CONDSEL_CHECK(join_preds.empty());
    const TableId t = table_ids[0];
    result.tables = {t};
    result.tuple_rows = live[t];
    result.num_tuples = result.tuple_rows.size();
    return result;
  }

  // Start from the table with the fewest live rows to keep intermediates
  // small; the component's tables are join-connected, so we can always
  // extend with a join predicate that has exactly one side joined already.
  TableId start = table_ids[0];
  for (int t : table_ids) {
    if (live[t].size() < live[start].size()) start = t;
  }
  result.tables = {start};
  result.tuple_rows = live[start];
  result.num_tuples = result.tuple_rows.size();

  std::vector<bool> used(join_preds.size(), false);
  size_t remaining = join_preds.size();
  while (remaining > 0) {
    // Find an unused join with exactly one side already in the result, or
    // with both sides in the result (a cycle edge, applied as a filter).
    int pick = -1;
    bool pick_is_cycle = false;
    for (size_t k = 0; k < join_preds.size(); ++k) {
      if (used[k]) continue;
      const Predicate& p = q.predicate(join_preds[k]);
      const bool l_in = result.TableSlot(p.left().table) >= 0;
      const bool r_in = result.TableSlot(p.right().table) >= 0;
      if (l_in && r_in) {
        pick = static_cast<int>(k);
        pick_is_cycle = true;
        break;
      }
      if (l_in != r_in) {
        pick = static_cast<int>(k);
        pick_is_cycle = false;
        // Keep scanning in case a cycle edge exists (cheaper to apply).
      }
    }
    // invariant: ConnectedComponents only emits connected subsets.
    CONDSEL_CHECK_MSG(pick >= 0, "join component not connected");
    const Predicate& p = q.predicate(join_preds[static_cast<size_t>(pick)]);
    used[static_cast<size_t>(pick)] = true;
    --remaining;

    const size_t width = result.tables.size();
    if (pick_is_cycle) {
      // Both sides are joined already: filter existing tuples.
      const int ls = result.TableSlot(p.left().table);
      const int rs = result.TableSlot(p.right().table);
      const Table& lt = catalog_->table(p.left().table);
      const Table& rt = catalog_->table(p.right().table);
      std::vector<uint32_t> kept;
      kept.reserve(result.tuple_rows.size());
      for (size_t i = 0; i < result.num_tuples; ++i) {
        const uint32_t* tup = &result.tuple_rows[i * width];
        const int64_t lv = lt.value(tup[ls], p.left().column);
        const int64_t rv = rt.value(tup[rs], p.right().column);
        if (!IsNull(lv) && lv == rv) {
          kept.insert(kept.end(), tup, tup + width);
        }
      }
      result.tuple_rows = std::move(kept);
      result.num_tuples = result.tuple_rows.size() / width;
      continue;
    }

    // Tree edge: hash-join the new table in.
    const bool left_in = result.TableSlot(p.left().table) >= 0;
    const ColumnRef probe_col = left_in ? p.left() : p.right();
    const ColumnRef build_col = left_in ? p.right() : p.left();
    const Table& build_table = catalog_->table(build_col.table);

    std::unordered_map<int64_t, std::vector<uint32_t>> hash;
    hash.reserve(live[build_col.table].size());
    for (uint32_t r : live[build_col.table]) {
      const int64_t v = build_table.value(r, build_col.column);
      if (!IsNull(v)) hash[v].push_back(r);
    }

    const Table& probe_table = catalog_->table(probe_col.table);
    const int probe_slot = result.TableSlot(probe_col.table);
    std::vector<uint32_t> out;
    for (size_t i = 0; i < result.num_tuples; ++i) {
      const uint32_t* tup = &result.tuple_rows[i * width];
      const int64_t v =
          probe_table.value(tup[static_cast<size_t>(probe_slot)],
                            probe_col.column);
      if (IsNull(v)) continue;
      auto it = hash.find(v);
      if (it == hash.end()) continue;
      for (uint32_t match : it->second) {
        out.insert(out.end(), tup, tup + width);
        out.push_back(match);
      }
    }
    result.tables.push_back(build_col.table);
    result.tuple_rows = std::move(out);
    result.num_tuples = result.tuple_rows.size() / result.tables.size();
  }
  return result;
}

StatusOr<double> Evaluator::TryCardinality(const Query& q, PredSet subset) {
  if ((subset & ~q.all_predicates()) != 0) {
    return Status::InvalidArgument(
        "subset selects predicates the query does not have");
  }
  for (int i : SetElements(subset)) {
    for (const ColumnRef& c : q.predicate(i).attrs()) {
      if (c.table < 0 || c.table >= catalog_->num_tables() || c.column < 0 ||
          c.column >= catalog_->table(c.table).num_columns()) {
        return Status::InvalidArgument(
            "predicate " + std::to_string(i) +
            " references a column outside the catalog");
      }
    }
  }
  return Cardinality(q, subset);
}

StatusOr<double> Evaluator::TryTrueSelectivity(const Query& q, PredSet p) {
  StatusOr<double> card = TryCardinality(q, p);
  if (!card.ok()) return card;
  if (p == 0) return 1.0;
  const std::vector<int> tables = SetElements(q.TablesOfSubset(p));
  double cross = 1.0;
  for (int t : tables) {
    cross *= static_cast<double>(catalog_->table(t).num_rows());
  }
  if (cross == 0.0) return 0.0;
  return *card / cross;
}

double Evaluator::Cardinality(const Query& q, PredSet subset) {
  if (subset == 0) return 1.0;
  double card = 1.0;
  for (PredSet comp : ConnectedComponents(q.predicates(), subset)) {
    const std::vector<Predicate> key = q.CanonicalSubset(comp);
    if (cache_ != nullptr) {
      if (const double* cached = cache_->Lookup(key)) {
        card *= *cached;
        continue;
      }
    }
    const double comp_card =
        static_cast<double>(EvaluateComponent(q, comp).num_tuples);
    if (cache_ != nullptr) cache_->Insert(key, comp_card);
    card *= comp_card;
  }
  return card;
}

double Evaluator::TrueSelectivity(const Query& q, PredSet p) {
  if (p == 0) return 1.0;
  const std::vector<int> tables = SetElements(q.TablesOfSubset(p));
  double cross = 1.0;
  for (int t : tables) {
    cross *= static_cast<double>(catalog_->table(t).num_rows());
  }
  if (cross == 0.0) return 0.0;
  return Cardinality(q, p) / cross;
}

double Evaluator::TrueConditionalSelectivity(const Query& q, PredSet p,
                                             PredSet q_set) {
  // Sel_R(P|Q) = card(P ∪ Q) / (card(Q) * |tables(P∪Q) - tables(Q)|^x).
  // The extra-table factor accounts for tables P introduces, which are
  // unconstrained in the denominator's cross product.
  const PredSet pq = p | q_set;
  if (p == 0) return 1.0;
  const double denom_card = Cardinality(q, q_set);
  if (denom_card == 0.0) return 0.0;
  const TableSet extra = q.TablesOfSubset(pq) & ~q.TablesOfSubset(q_set);
  double extra_cross = 1.0;
  for (int t : SetElements(extra)) {
    extra_cross *= static_cast<double>(catalog_->table(t).num_rows());
  }
  if (extra_cross == 0.0) return 0.0;
  return Cardinality(q, pq) / (denom_card * extra_cross);
}

double Evaluator::CountDistinct(const Query& q, PredSet subset,
                                ColumnRef col) {
  ColumnProjection proj = ProjectColumn(q, subset, col);
  std::sort(proj.values.begin(), proj.values.end());
  proj.values.erase(std::unique(proj.values.begin(), proj.values.end()),
                    proj.values.end());
  return static_cast<double>(proj.values.size());
}

ColumnProjection Evaluator::ProjectColumn(const Query& q, PredSet subset,
                                          ColumnRef col,
                                          const RowRestriction* restriction) {
  ColumnProjection out;
  if (subset == 0) {
    const Table& t = catalog_->table(col.table);
    if (restriction != nullptr && restriction->table == col.table) {
      const size_t begin = restriction->begin;
      const size_t end = restriction->end;
      CONDSEL_CHECK(begin <= end && end <= t.num_rows());  // invariant
      out.total_tuples = end - begin;
      out.values.reserve(end - begin);
      for (size_t r = begin; r < end; ++r) {
        const int64_t v = t.value(r, col.column);
        if (!IsNull(v)) out.values.push_back(v);
      }
      return out;
    }
    out.total_tuples = t.num_rows();
    out.values.reserve(t.num_rows());
    // Walk sealed parts column-wise (no per-row part lookup), then the
    // tail through value(); global row order is preserved.
    for (size_t pi = 0; pi < t.num_parts(); ++pi) {
      for (const int64_t v : t.part(pi).column(col.column).values()) {
        if (!IsNull(v)) out.values.push_back(v);
      }
    }
    for (size_t r = t.sealed_rows(); r < t.num_rows(); ++r) {
      const int64_t v = t.value(r, col.column);
      if (!IsNull(v)) out.values.push_back(v);
    }
    return out;
  }

  const std::vector<PredSet> comps =
      ConnectedComponents(q.predicates(), subset);
  for (PredSet comp : comps) {
    if (!Contains(q.TablesOfSubset(comp), col.table)) continue;
    const JoinResult jr = EvaluateComponent(q, comp, restriction);
    const int slot = jr.TableSlot(col.table);
    CONDSEL_CHECK(slot >= 0);  // invariant: comp covers col.table
    const Table& t = catalog_->table(col.table);
    const size_t width = jr.tables.size();
    out.total_tuples = jr.num_tuples;
    out.values.reserve(jr.num_tuples);
    for (size_t i = 0; i < jr.num_tuples; ++i) {
      const int64_t v = t.value(
          jr.tuple_rows[i * width + static_cast<size_t>(slot)], col.column);
      if (!IsNull(v)) out.values.push_back(v);
    }
    return out;
  }
  // invariant: callers project columns of tables inside `subset`.
  CONDSEL_CHECK_MSG(false, "ProjectColumn: column's table not in subset");
  return out;
}

}  // namespace condsel
