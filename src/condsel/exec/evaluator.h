// Exact SPJ evaluation over the in-memory catalog.
//
// The evaluator answers three questions the rest of the system depends on:
//  - exact cardinality of sigma_P(tables(P)^x) for any predicate subset
//    (ground truth for the error metric, and the oracle behind GS-Opt);
//  - exact conditional selectivities Sel_R(P|Q) (Definition 1);
//  - materialized projections of one column over a query-expression result
//    (the input to SIT construction and to the diff metric of Sec 3.5).
//
// Evaluation strategy: predicates are split into connected components
// (standard decomposition); per component, filters are applied per table
// and the component's tables — which are necessarily linked by its join
// predicates — are combined with hash joins, materializing row-id tuples.
// Component cardinalities multiply. Results are memoized per component in
// a shared CardinalityCache.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/common/status.h"
#include "condsel/exec/cardinality_cache.h"
#include "condsel/query/query.h"

namespace condsel {

// Materialized join result: `tuple_rows` is row-major with one row index
// per table in `tables` for each output tuple.
struct JoinResult {
  std::vector<TableId> tables;
  std::vector<uint32_t> tuple_rows;
  size_t num_tuples = 0;

  // Position of `t` within `tables`; -1 when absent.
  int TableSlot(TableId t) const;
};

// A column projected over a query-expression result: the non-NULL values
// (with multiplicity) plus the total tuple count of the result, so callers
// can normalize frequencies against the full result including NULLs.
struct ColumnProjection {
  std::vector<int64_t> values;
  size_t total_tuples = 0;
};

// Restricts evaluation to rows [begin, end) of one table; every other
// table contributes all of its rows. This is how per-part statistics are
// built (catalog/part_stats.h): restricting the owning table to one part
// partitions the expression result, because each result tuple selects
// exactly one row of that table. A full-range restriction is equivalent
// to none.
struct RowRestriction {
  TableId table = kInvalidTableId;
  size_t begin = 0;
  size_t end = 0;  // exclusive
};

class Evaluator {
 public:
  // `cache` may be nullptr to disable memoization (tests). Both pointers
  // must outlive the evaluator.
  Evaluator(const Catalog* catalog, CardinalityCache* cache);

  // |sigma_P(tables(P)^x)| for P = the predicates of `q` selected by
  // `subset`. An empty subset yields 1.0 (empty product of components).
  double Cardinality(const Query& q, PredSet subset);

  // Recoverable variants for untrusted requests (e.g. a deserialized or
  // user-assembled query): validate that `subset` selects existing
  // predicates and that every referenced table/column exists in the
  // catalog before evaluating, instead of CHECK-aborting mid-join.
  StatusOr<double> TryCardinality(const Query& q, PredSet subset);
  StatusOr<double> TryTrueSelectivity(const Query& q, PredSet p);

  // Sel_R(P) with R = tables(q) (Definition 1 with Q empty):
  // Cardinality(P) scaled by the cross-product of tables(q).
  double TrueSelectivity(const Query& q, PredSet p);

  // Sel_R(P|Q) (Definition 1). Tables referenced by P but not by Q enter
  // the denominator as unconstrained cross-product factors.
  double TrueConditionalSelectivity(const Query& q, PredSet p, PredSet q_set);

  // Fully evaluates one *connected* predicate subset (a single component).
  // `restriction` (optional) limits one table to a row range; restricted
  // evaluations never touch the CardinalityCache (the cache is keyed by
  // predicates alone).
  JoinResult EvaluateComponent(const Query& q, PredSet component,
                               const RowRestriction* restriction = nullptr);

  // Exact count of distinct non-NULL values of `col` over
  // sigma_subset(...) — ground truth for GROUP BY cardinalities.
  double CountDistinct(const Query& q, PredSet subset, ColumnRef col);

  // Projects `col` over sigma_subset(...). `col.table` must belong to
  // tables(subset), or `subset` must be empty (base-table projection).
  // Only the component containing `col.table` is materialized: the other
  // components scale every frequency uniformly and cancel out of any
  // normalized distribution.
  ColumnProjection ProjectColumn(const Query& q, PredSet subset,
                                 ColumnRef col,
                                 const RowRestriction* restriction = nullptr);

  const Catalog& catalog() const { return *catalog_; }

 private:
  // Row indices of `table` passing all filters in `filters` (bitmask over
  // q's predicates; only filters on `table` are applied). A restriction
  // on `table` narrows the scanned row range.
  std::vector<uint32_t> FilteredRows(const Query& q, PredSet filters,
                                     TableId table,
                                     const RowRestriction* restriction) const;

  const Catalog* catalog_;
  CardinalityCache* cache_;
};

}  // namespace condsel

