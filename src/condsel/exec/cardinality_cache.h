// Cross-query cache of exact cardinalities.
//
// Ground-truth evaluation is the dominant cost of the experiments: every
// technique is scored against exact sub-query cardinalities, and GS-Opt
// additionally consults them during search. Sub-queries repeat heavily both
// within one query (the DP touches many subsets) and across workload
// queries (same join sub-expressions), so results are memoized keyed by the
// canonical (sorted) predicate list.

#ifndef CONDSEL_EXEC_CARDINALITY_CACHE_H_
#define CONDSEL_EXEC_CARDINALITY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "condsel/query/predicate.h"

namespace condsel {

class CardinalityCache {
 public:
  // Returns the cached cardinality for `key`, or nullptr.
  const double* Lookup(const std::vector<Predicate>& key) const;

  void Insert(const std::vector<Predicate>& key, double cardinality);

  size_t size() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters();

 private:
  std::map<std::vector<Predicate>, double> cache_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace condsel

#endif  // CONDSEL_EXEC_CARDINALITY_CACHE_H_
