// Cross-query cache of exact cardinalities.
//
// Ground-truth evaluation is the dominant cost of the experiments: every
// technique is scored against exact sub-query cardinalities, and GS-Opt
// additionally consults them during search. Sub-queries repeat heavily both
// within one query (the DP touches many subsets) and across workload
// queries (same join sub-expressions), so results are memoized keyed by the
// canonical (sorted) predicate list.
//
// The cache is the structure concurrent estimator threads will share, so
// it synchronizes internally: map accesses hold mu_, entries are never
// erased (node pointers returned by Lookup stay valid for the cache's
// lifetime), and the hit/miss counters are relaxed atomics so readers of
// the statistics never contend with the lookup path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/query/predicate.h"

namespace condsel {

class CardinalityCache {
 public:
  // Returns the cached cardinality for `key`, or nullptr. The returned
  // pointer stays valid until the cache is destroyed (entries are never
  // erased or overwritten).
  const double* Lookup(const std::vector<Predicate>& key) const
      CONDSEL_EXCLUDES(mu_);

  void Insert(const std::vector<Predicate>& key, double cardinality)
      CONDSEL_EXCLUDES(mu_);

  size_t size() const CONDSEL_EXCLUDES(mu_);
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetCounters();

 private:
  // Locked under EstimationService::feedback_mu_ by the feedback path.
  mutable OrderedMutex mu_{lock_rank::kCardinalityCache,
                           "CardinalityCache::mu_"};
  std::map<std::vector<Predicate>, double> cache_ CONDSEL_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace condsel
