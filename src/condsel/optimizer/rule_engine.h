// A rule-driven Cascades exploration engine (Section 4.1, faithful form).
//
// rules.cc generates each group's entries in closed form (every predicate
// that can be applied last); a real Cascades optimizer instead *derives*
// that fixpoint by seeding the memo with one initial plan and repeatedly
// applying transformation rules until nothing new appears:
//
//   [SELECT-COMMUTE]   sigma_p(sigma_q(T))        => sigma_q(sigma_p(T))
//   [SELECT-PUSH]      sigma_p(T1 join T2)        => sigma_p(T1) join T2
//                                                     (p touches only T1)
//   [SELECT-PULL]      sigma_p(T1) join T2        => sigma_p(T1 join T2)
//   [JOIN-COMMUTE]     T1 join T2                 => T2 join T1
//   [JOIN-ASSOC]       (T1 join_a T2) join_b T3   => T1 join_a (T2 join_b T3)
//                                                     (b touches T2/T3 only)
//
// The engine exists both as a faithful reconstruction and as a validator:
// optimizer tests assert its fixpoint contains exactly the closed-form
// exploration's logical entries.

#pragma once

#include <cstdint>

#include "condsel/optimizer/memo.h"

namespace condsel {

struct RuleEngineStats {
  uint64_t rule_applications = 0;  // rule firings that produced anything
  uint64_t entries_added = 0;      // new memo entries discovered
  int rounds = 0;                  // fixpoint iterations
};

// Seeds the memo with a canonical initial plan for `preds` (filters over a
// left-deep join chain in predicate order) and applies the rule set to
// fixpoint. Returns the root group id.
int ExploreWithRules(Memo* memo, PredSet preds, RuleEngineStats* stats);

}  // namespace condsel

