// Logical exploration rules.
//
// A Cascades optimizer populates memo groups by applying transformation
// rules (join commutativity/associativity, filter pull-up/push-down)
// until fixpoint. For SPJ queries in canonical predicate-set form, that
// fixpoint has a closed form: a group for predicate set P holds one entry
// per predicate that can be applied *last* —
//   - every filter p of P:  [SELECT, p, {group(P - p)}];
//   - every join j of P whose removal splits the group's tables in two:
//     [JOIN, j, {group(side1), group(side2)}];
// plus [SCAN] entries at the leaves. ExploreGroup generates exactly that
// fixpoint, recursively.

#pragma once

#include "condsel/optimizer/memo.h"

namespace condsel {

// Fully explores `group_id` and (transitively) its inputs.
void ExploreGroup(Memo* memo, int group_id);

// Creates and fully explores the group for predicate subset `preds` of
// the memo's query. Returns its id.
int BuildAndExplore(Memo* memo, PredSet preds);

}  // namespace condsel

