// Cost-based join ordering on top of pluggable cardinality estimates.
//
// The paper defers "how plans are affected by the estimation techniques"
// to future work; this module provides that study's machinery. A
// Selinger-style dynamic program enumerates bushy join trees over the
// query's (acyclic or cyclic) join graph, costing plans with the C_out
// model — the sum of estimated intermediate-result cardinalities, the
// standard estimator-sensitivity metric. Feeding it estimates from
// different techniques (noSit, GVM, GS-*) and re-costing the chosen plans
// with exact cardinalities quantifies how much better plans get when the
// optimizer believes better numbers (bench/bench_plan_quality).

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "condsel/query/query.h"

namespace condsel {

class Catalog;

// Maps a plan node (a predicate subset: its joins plus the filters
// applied below/at it) to an estimated cardinality.
using CardinalityFn = std::function<double(PredSet)>;

// A binary join tree. Node 0..n-1 are in `nodes`; `root` indexes it.
struct JoinTree {
  struct Node {
    bool is_leaf = true;
    TableId table = kInvalidTableId;  // leaves
    int left = -1;                    // internal nodes
    int right = -1;
    // Plan-node predicate set: joins of the subtree + applicable filters.
    PredSet preds = 0;
  };
  std::vector<Node> nodes;
  int root = -1;

  std::string ToString(const Query& query, const Catalog& catalog) const;
};

struct PlanResult {
  JoinTree tree;
  // C_out under the estimates the optimizer used.
  double estimated_cost = 0.0;
};

class JoinOrderOptimizer {
 public:
  // `query` must have a connected join graph covering all its tables.
  JoinOrderOptimizer(const Query* query, const Catalog* catalog);

  // Best bushy join tree under `estimate`, by exhaustive DP over
  // connected sub-join-graphs (fine for the paper's <= 7 joins).
  PlanResult Optimize(const CardinalityFn& estimate) const;

  // C_out of `tree` under `cardinality` (sum over internal nodes of the
  // node's cardinality). Pass exact cardinalities to obtain a plan's true
  // cost.
  double Cost(const JoinTree& tree, const CardinalityFn& cardinality) const;

 private:
  const Query* query_;
  const Catalog* catalog_;
};

}  // namespace condsel

