#include "condsel/optimizer/rules.h"

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"

namespace condsel {

void ExploreGroup(Memo* memo, int group_id) {
  // Copy the identifying fields rather than holding a reference across
  // the recursive exploration below (cheap, and keeps this routine
  // oblivious to the memo's storage strategy).
  const PredSet preds = memo->group(group_id).preds;
  const TableSet tables = memo->group(group_id).tables;
  if (memo->group(group_id).explored) return;
  memo->group(group_id).explored = true;

  const Query& q = memo->query();

  if (preds == 0) {
    // Leaf: a base-table scan.
    CONDSEL_CHECK_MSG(SetSize(tables) == 1,
                      "predicate-free group must be a single scan");
    MemoExpr scan;
    scan.op = OpKind::kScan;
    memo->group(group_id).exprs.push_back(scan);
    return;
  }

  // Disconnected groups (cartesian sub-plans) get a single product entry
  // whose inputs are the connected pieces; predicate == -1 marks "no join
  // condition". Tables touched by no predicate are their own piece.
  {
    UnionFind uf(32);
    for (int r : SetElements(preds)) {
      const Predicate& rp = q.predicate(r);
      if (rp.is_join()) uf.Union(rp.left().table, rp.right().table);
    }
    std::vector<int> roots;
    std::vector<TableSet> piece_tables;
    for (int t : SetElements(tables)) {
      const int root = uf.Find(t);
      size_t k = 0;
      for (; k < roots.size(); ++k) {
        if (roots[k] == root) break;
      }
      if (k == roots.size()) {
        roots.push_back(root);
        piece_tables.push_back(0);
      }
      piece_tables[k] |= 1u << t;
    }
    if (piece_tables.size() >= 2) {
      MemoExpr e;
      e.op = OpKind::kJoin;
      e.predicate = -1;
      for (const TableSet side : piece_tables) {
        PredSet side_preds = 0;
        for (int r : SetElements(preds)) {
          if (IsSubset(q.predicate(r).tables(), side)) {
            side_preds = With(side_preds, r);
          }
        }
        e.inputs.push_back(memo->GetOrCreateGroup(side_preds, side));
      }
      memo->group(group_id).exprs.push_back(e);
      const std::vector<int> inputs = memo->group(group_id).exprs.back().inputs;
      for (int in : inputs) ExploreGroup(memo, in);
      return;
    }
  }

  for (int p : SetElements(preds)) {
    const Predicate& pred = q.predicate(p);
    const PredSet rest = Without(preds, p);

    if (pred.is_filter()) {
      // [SELECT, p, {group(rest over the same tables)}].
      MemoExpr e;
      e.op = OpKind::kSelect;
      e.predicate = p;
      e.inputs = {memo->GetOrCreateGroup(rest, tables)};
      memo->group(group_id).exprs.push_back(e);
      continue;
    }

    // A join can be last only if removing it splits the group's tables
    // into exactly two sides connected by the remaining joins.
    UnionFind uf(32);
    for (int r : SetElements(rest)) {
      const Predicate& rp = q.predicate(r);
      if (rp.is_join()) uf.Union(rp.left().table, rp.right().table);
    }
    const std::vector<int> table_ids = SetElements(tables);
    std::vector<int> roots;
    std::vector<TableSet> side_tables;
    for (int t : table_ids) {
      const int root = uf.Find(t);
      size_t k = 0;
      for (; k < roots.size(); ++k) {
        if (roots[k] == root) break;
      }
      if (k == roots.size()) {
        roots.push_back(root);
        side_tables.push_back(0);
      }
      side_tables[k] |= 1u << t;
    }
    if (side_tables.size() == 1) {
      // Cycle edge: the remaining joins still connect every table, so
      // this join can be applied last as a *residual* predicate over the
      // rest (a select-shaped entry carrying a join predicate).
      MemoExpr e;
      e.op = OpKind::kSelect;
      e.predicate = p;
      e.inputs = {memo->GetOrCreateGroup(rest, tables)};
      memo->group(group_id).exprs.push_back(e);
      continue;
    }
    if (side_tables.size() != 2) continue;  // join not applicable last

    MemoExpr e;
    e.op = OpKind::kJoin;
    e.predicate = p;
    for (const TableSet side : side_tables) {
      PredSet side_preds = 0;
      for (int r : SetElements(rest)) {
        if (IsSubset(q.predicate(r).tables(), side)) {
          side_preds = With(side_preds, r);
        }
      }
      e.inputs.push_back(memo->GetOrCreateGroup(side_preds, side));
    }
    memo->group(group_id).exprs.push_back(e);
  }

  // Recurse into every input group created above.
  const size_t n_exprs = memo->group(group_id).exprs.size();
  for (size_t i = 0; i < n_exprs; ++i) {
    const std::vector<int> inputs =
        memo->group(group_id).exprs[i].inputs;
    for (int in : inputs) ExploreGroup(memo, in);
  }
}

int BuildAndExplore(Memo* memo, PredSet preds) {
  const int id = memo->GetOrCreateGroup(
      preds, memo->query().TablesOfSubset(preds));
  ExploreGroup(memo, id);
  return id;
}

}  // namespace condsel
