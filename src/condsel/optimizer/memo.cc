#include "condsel/optimizer/memo.h"

#include <cstdio>

#include "condsel/common/macros.h"

namespace condsel {

Memo::Memo(const Query* query) : query_(query) {
  CONDSEL_CHECK(query != nullptr);  // invariant: constructor contract
}

int Memo::GetOrCreateGroup(PredSet preds, TableSet tables) {
  const auto key = std::make_pair(preds, tables);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  Group g;
  g.preds = preds;
  g.tables = tables;
  const int id = static_cast<int>(groups_.size());
  groups_.push_back(std::move(g));
  index_.emplace(key, id);
  // Publish the new element: readers that observe the incremented count
  // may index the deque without mu_.
  num_groups_.store(id + 1, std::memory_order_release);
  return id;
}

Group& Memo::group(int id) {
  CONDSEL_CHECK(id >= 0 && id < num_groups());  // invariant: caller-made id
  return groups_[static_cast<size_t>(id)];
}

const Group& Memo::group(int id) const {
  CONDSEL_CHECK(id >= 0 && id < num_groups());  // invariant: caller-made id
  return groups_[static_cast<size_t>(id)];
}

int Memo::num_exprs() const {
  int n = 0;
  const int count = num_groups();
  for (int id = 0; id < count; ++id) {
    n += static_cast<int>(groups_[static_cast<size_t>(id)].exprs.size());
  }
  return n;
}

std::string Memo::ToString() const {
  std::string out;
  for (int id = 0; id < num_groups(); ++id) {
    const Group& g = groups_[static_cast<size_t>(id)];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "group %d (preds=%#x tables=%#x):\n",
                  id, g.preds, g.tables);
    out += buf;
    for (const MemoExpr& e : g.exprs) {
      const char* op = e.op == OpKind::kScan
                           ? "SCAN"
                           : (e.op == OpKind::kSelect ? "SELECT" : "JOIN");
      out += "  [";
      out += op;
      if (e.predicate >= 0) {
        out += ", " + query_->predicate(e.predicate).ToString();
      }
      out += ", inputs={";
      for (size_t i = 0; i < e.inputs.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(e.inputs[i]);
      }
      out += "}]\n";
    }
  }
  return out;
}

}  // namespace condsel
