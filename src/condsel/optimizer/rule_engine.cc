#include "condsel/optimizer/rule_engine.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"

namespace condsel {
namespace {

using EntryKey = std::tuple<OpKind, int, std::vector<int>>;

EntryKey KeyOf(const MemoExpr& e) {
  std::vector<int> inputs = e.inputs;
  std::sort(inputs.begin(), inputs.end());
  return {e.op, e.predicate, std::move(inputs)};
}

class RuleEngine {
 public:
  RuleEngine(Memo* memo, RuleEngineStats* stats)
      : memo_(memo), stats_(stats) {}

  int Run(PredSet preds) {
    const int root = SeedInitialPlan(preds);
    // Fixpoint: keep sweeping all groups until a full sweep adds nothing.
    bool changed = true;
    while (changed) {
      changed = false;
      if (stats_ != nullptr) ++stats_->rounds;
      // Group/entry counts grow during the sweep; index-based loops pick
      // up additions in later sweeps.
      for (int g = 0; g < memo_->num_groups(); ++g) {
        const size_t n_entries = memo_->group(g).exprs.size();
        for (size_t e = 0; e < n_entries; ++e) {
          changed |= ApplyRules(g, static_cast<int>(e));
        }
      }
    }
    return root;
  }

 private:
  const Query& query() const { return memo_->query(); }

  // Creates/returns a group; new predicate-free groups get a SCAN entry.
  int MakeGroup(PredSet preds, TableSet tables) {
    const int before = memo_->num_groups();
    const int id = memo_->GetOrCreateGroup(preds, tables);
    if (id >= before && preds == 0) {
      CONDSEL_CHECK(SetSize(tables) == 1);
      MemoExpr scan;
      scan.op = OpKind::kScan;
      memo_->group(id).exprs.push_back(scan);
      NoteEntry();
    }
    return id;
  }

  void NoteEntry() {
    if (stats_ != nullptr) ++stats_->entries_added;
  }

  // Adds `e` to group `g` unless an equivalent entry exists.
  bool AddEntry(int g, MemoExpr e) {
    const EntryKey key = KeyOf(e);
    auto& keys = entry_keys_[g];
    if (!keys.insert(key).second) return false;
    memo_->group(g).exprs.push_back(std::move(e));
    NoteEntry();
    return true;
  }

  // Registers pre-existing entries (from seeding) in the dedupe set.
  void RegisterExisting(int g) {
    auto& keys = entry_keys_[g];
    for (const MemoExpr& e : memo_->group(g).exprs) keys.insert(KeyOf(e));
  }

  int SeedInitialPlan(PredSet preds) {
    const Query& q = query();
    CONDSEL_CHECK_MSG(
        ConnectedComponents(q.predicates(), preds).size() <= 1,
        "rule engine seeds connected predicate sets only");

    // Left-deep join chain in a connectivity-respecting predicate order,
    // filters stacked on top in index order.
    std::vector<int> joins = SetElements(preds & q.join_predicates());
    std::vector<int> order;
    TableSet covered = 0;
    while (!joins.empty()) {
      bool advanced = false;
      for (size_t i = 0; i < joins.size(); ++i) {
        const Predicate& p = q.predicate(joins[i]);
        if (covered == 0 || (p.tables() & covered) != 0) {
          order.push_back(joins[i]);
          covered |= p.tables();
          joins.erase(joins.begin() + static_cast<long>(i));
          advanced = true;
          break;
        }
      }
      CONDSEL_CHECK_MSG(advanced, "join graph not connected");
    }

    int current = -1;
    PredSet applied = 0;
    TableSet tables = 0;
    if (order.empty()) {
      // Filters only: a single table (connected set without joins).
      tables = TablesOf(q.predicates(), preds);
      CONDSEL_CHECK(SetSize(tables) == 1);
      current = MakeGroup(0, tables);
    } else {
      const Predicate& first = q.predicate(order[0]);
      const int left = MakeGroup(0, 1u << first.left().table);
      const int right = MakeGroup(0, 1u << first.right().table);
      tables = first.tables();
      applied = With(applied, order[0]);
      current = MakeGroup(applied, tables);
      MemoExpr join;
      join.op = OpKind::kJoin;
      join.predicate = order[0];
      join.inputs = {left, right};
      memo_->group(current).exprs.push_back(join);
      NoteEntry();
      for (size_t k = 1; k < order.size(); ++k) {
        const Predicate& p = q.predicate(order[k]);
        const TableSet new_table = p.tables() & ~tables;
        const int prev = current;
        applied = With(applied, order[k]);
        if (new_table == 0) {
          // Cycle edge: apply as a residual predicate over the chain.
          current = MakeGroup(applied, tables);
          MemoExpr res;
          res.op = OpKind::kSelect;
          res.predicate = order[k];
          res.inputs = {prev};
          memo_->group(current).exprs.push_back(res);
          NoteEntry();
          continue;
        }
        CONDSEL_CHECK(SetSize(new_table) == 1);
        const int leaf = MakeGroup(0, new_table);
        tables |= p.tables();
        current = MakeGroup(applied, tables);
        MemoExpr j;
        j.op = OpKind::kJoin;
        j.predicate = order[k];
        j.inputs = {prev, leaf};
        memo_->group(current).exprs.push_back(j);
        NoteEntry();
      }
    }
    for (int fidx : SetElements(preds & q.filter_predicates())) {
      const int prev = current;
      applied = With(applied, fidx);
      current = MakeGroup(applied, tables);
      MemoExpr sel;
      sel.op = OpKind::kSelect;
      sel.predicate = fidx;
      sel.inputs = {prev};
      memo_->group(current).exprs.push_back(sel);
      NoteEntry();
    }
    for (int g = 0; g < memo_->num_groups(); ++g) RegisterExisting(g);
    return current;
  }

  bool ApplyRules(int g, int entry_index) {
    // Copy the entry: AddEntry may reallocate the entry vector.
    const MemoExpr e =
        memo_->group(g).exprs[static_cast<size_t>(entry_index)];
    const PredSet g_preds = memo_->group(g).preds;
    const TableSet g_tables = memo_->group(g).tables;
    const Query& q = query();
    bool changed = false;

    if (e.op == OpKind::kSelect) {
      const int child = e.inputs[0];
      const size_t n_child = memo_->group(child).exprs.size();
      for (size_t ci = 0; ci < n_child; ++ci) {
        const MemoExpr ce = memo_->group(child).exprs[ci];
        if (ce.op == OpKind::kSelect) {
          // SELECT-COMMUTE: hoist the child's filter above ours.
          const int mid = MakeGroup(Without(g_preds, ce.predicate), g_tables);
          MemoExpr below;
          below.op = OpKind::kSelect;
          below.predicate = e.predicate;
          below.inputs = {ce.inputs[0]};
          changed |= AddEntry(mid, below);
          MemoExpr above;
          above.op = OpKind::kSelect;
          above.predicate = ce.predicate;
          above.inputs = {mid};
          changed |= AddEntry(g, above);
        } else if (ce.op == OpKind::kJoin) {
          const Predicate& f = q.predicate(e.predicate);
          // RESIDUAL-SWAP: a residual join predicate above a join that
          // spans the same two sides can trade places with the operator:
          //   sigma_p(L join_a R)  =>  sigma_a(L join_p R).
          if (f.is_join() && ce.predicate >= 0) {
            const TableSet lt = memo_->group(ce.inputs[0]).tables;
            const TableSet rt = memo_->group(ce.inputs[1]).tables;
            if ((f.tables() & lt) != 0 && (f.tables() & rt) != 0) {
              const int mid =
                  MakeGroup(Without(g_preds, ce.predicate), g_tables);
              MemoExpr join;
              join.op = OpKind::kJoin;
              join.predicate = e.predicate;
              join.inputs = ce.inputs;
              changed |= AddEntry(mid, join);
              MemoExpr sel;
              sel.op = OpKind::kSelect;
              sel.predicate = ce.predicate;
              sel.inputs = {mid};
              changed |= AddEntry(g, sel);
            }
          }
          // SELECT-PUSH: sink our filter into the side it references.
          for (int side = 0; side < 2; ++side) {
            const int in = ce.inputs[static_cast<size_t>(side)];
            const Group& ig = memo_->group(in);
            if (!IsSubset(f.tables(), ig.tables)) continue;
            const int pushed =
                MakeGroup(With(ig.preds, e.predicate), ig.tables);
            MemoExpr below;
            below.op = OpKind::kSelect;
            below.predicate = e.predicate;
            below.inputs = {in};
            changed |= AddEntry(pushed, below);
            MemoExpr join;
            join.op = OpKind::kJoin;
            join.predicate = ce.predicate;
            join.inputs = side == 0
                              ? std::vector<int>{pushed, ce.inputs[1]}
                              : std::vector<int>{ce.inputs[0], pushed};
            changed |= AddEntry(g, join);
          }
        }
      }
      return changed;
    }

    if (e.op != OpKind::kJoin) return false;

    for (int side = 0; side < 2; ++side) {
      const int in = e.inputs[static_cast<size_t>(side)];
      const int other = e.inputs[static_cast<size_t>(1 - side)];
      const size_t n_in = memo_->group(in).exprs.size();
      for (size_t ci = 0; ci < n_in; ++ci) {
        const MemoExpr ie = memo_->group(in).exprs[ci];
        if (ie.op == OpKind::kSelect) {
          // SELECT-PULL: lift the input's filter above the join.
          const int lowered = MakeGroup(
              Without(g_preds, ie.predicate), g_tables);
          MemoExpr join;
          join.op = OpKind::kJoin;
          join.predicate = e.predicate;
          join.inputs = side == 0
                            ? std::vector<int>{ie.inputs[0], other}
                            : std::vector<int>{other, ie.inputs[0]};
          changed |= AddEntry(lowered, join);
          MemoExpr sel;
          sel.op = OpKind::kSelect;
          sel.predicate = ie.predicate;
          sel.inputs = {lowered};
          changed |= AddEntry(g, sel);
        } else if (ie.op == OpKind::kJoin) {
          // JOIN-ASSOC: (T1 a T2) j R  =>  T1 a (T2 j R), in all
          // orientations (side/commute are handled by iterating both
          // sides and both inner inputs).
          for (int inner_side = 0; inner_side < 2; ++inner_side) {
            const int t1 = ie.inputs[static_cast<size_t>(inner_side)];
            const int t2 = ie.inputs[static_cast<size_t>(1 - inner_side)];
            const Group& g_t1 = memo_->group(t1);
            const Group& g_t2 = memo_->group(t2);
            const Group& g_r = memo_->group(other);
            const Predicate& pj = q.predicate(e.predicate);
            const Predicate& pa = q.predicate(ie.predicate);
            // j must only touch T2 and R; a must touch T1.
            if (!IsSubset(pj.tables(), g_t2.tables | g_r.tables)) continue;
            if ((pa.tables() & g_t1.tables) == 0) continue;
            const int inner =
                MakeGroup(g_t2.preds | g_r.preds | (1u << e.predicate),
                          g_t2.tables | g_r.tables);
            MemoExpr inner_join;
            inner_join.op = OpKind::kJoin;
            inner_join.predicate = e.predicate;
            inner_join.inputs = {t2, other};
            changed |= AddEntry(inner, inner_join);
            MemoExpr outer;
            outer.op = OpKind::kJoin;
            outer.predicate = ie.predicate;
            outer.inputs = {t1, inner};
            changed |= AddEntry(g, outer);
          }
        }
      }
    }
    return changed;
  }

  Memo* memo_;
  RuleEngineStats* stats_;
  std::map<int, std::set<EntryKey>> entry_keys_;
};

}  // namespace

int ExploreWithRules(Memo* memo, PredSet preds, RuleEngineStats* stats) {
  CONDSEL_CHECK(memo != nullptr);
  RuleEngine engine(memo, stats);
  const int root = engine.Run(preds);
  if (stats != nullptr) {
    stats->rule_applications = stats->entries_added;
  }
  return root;
}

}  // namespace condsel
