#include "condsel/optimizer/join_ordering.h"

#include <limits>
#include <unordered_map>

#include "condsel/catalog/catalog.h"
#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"

namespace condsel {
namespace {

// Joins of the query with both endpoints inside `tables`.
PredSet JoinsInside(const Query& q, TableSet tables) {
  PredSet s = 0;
  for (int i : SetElements(q.join_predicates())) {
    if (IsSubset(q.predicate(i).tables(), tables)) s = With(s, i);
  }
  return s;
}

// Filters of the query on tables inside `tables`.
PredSet FiltersOn(const Query& q, TableSet tables) {
  PredSet s = 0;
  for (int i : SetElements(q.filter_predicates())) {
    if (Contains(tables, q.predicate(i).column().table)) s = With(s, i);
  }
  return s;
}

// The plan node's predicate set for table set `tables`.
PredSet PlanPreds(const Query& q, TableSet tables) {
  return JoinsInside(q, tables) | FiltersOn(q, tables);
}

// True if the joins inside `tables` connect all of them.
bool Connected(const Query& q, TableSet tables) {
  if (SetSize(tables) <= 1) return true;
  UnionFind uf(32);
  for (int i : SetElements(JoinsInside(q, tables))) {
    uf.Union(q.predicate(i).left().table, q.predicate(i).right().table);
  }
  const std::vector<int> ids = SetElements(tables);
  for (size_t k = 1; k < ids.size(); ++k) {
    if (!uf.Connected(ids[0], ids[k])) return false;
  }
  return true;
}

// True if some query join has one endpoint in t1 and the other in t2.
bool JoinBetween(const Query& q, TableSet t1, TableSet t2) {
  for (int i : SetElements(q.join_predicates())) {
    const Predicate& p = q.predicate(i);
    const bool l1 = Contains(t1, p.left().table);
    const bool r1 = Contains(t1, p.right().table);
    const bool l2 = Contains(t2, p.left().table);
    const bool r2 = Contains(t2, p.right().table);
    if ((l1 && r2) || (l2 && r1)) return true;
  }
  return false;
}

struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  TableSet left = 0;  // winning split (left side); 0 for leaves
};

}  // namespace

std::string JoinTree::ToString(const Query& query,
                               const Catalog& catalog) const {
  std::string out;
  std::function<void(int)> rec = [&](int id) {
    const Node& n = nodes[static_cast<size_t>(id)];
    if (n.is_leaf) {
      out += catalog.table(n.table).schema().name;
      return;
    }
    out += "(";
    rec(n.left);
    out += " JOIN ";
    rec(n.right);
    out += ")";
    (void)query;
  };
  if (root >= 0) rec(root);
  return out;
}

JoinOrderOptimizer::JoinOrderOptimizer(const Query* query,
                                       const Catalog* catalog)
    : query_(query), catalog_(catalog) {
  CONDSEL_CHECK(query != nullptr);
  CONDSEL_CHECK(catalog != nullptr);
  CONDSEL_CHECK_MSG(Connected(*query, query->tables()),
                    "join graph must connect every referenced table");
}

PlanResult JoinOrderOptimizer::Optimize(const CardinalityFn& estimate) const {
  const Query& q = *query_;
  const TableSet all = q.tables();

  // DP over table subsets. Subsets are enumerated in increasing-popcount
  // order implicitly: any split's sides are proper subsets, and we use a
  // map filled bottom-up by recursion instead.
  std::unordered_map<TableSet, DpEntry> dp;

  std::function<double(TableSet)> solve = [&](TableSet tables) -> double {
    auto it = dp.find(tables);
    if (it != dp.end()) return it->second.cost;
    DpEntry entry;
    if (SetSize(tables) == 1) {
      entry.cost = 0.0;  // C_out counts join intermediates only
      dp.emplace(tables, entry);
      return entry.cost;
    }
    if (Connected(q, tables)) {
      const double node_card = estimate(PlanPreds(q, tables));
      // Enumerate splits; fixing the lowest table on the left halves the
      // symmetric space.
      const int lowest = std::countr_zero(tables);
      const TableSet rest = Without(tables, lowest);
      for (TableSet sub = rest;; sub = PrevSubmask(rest, sub)) {
        const TableSet left = With(sub, lowest);
        const TableSet right = tables & ~left;
        if (right != 0 && Connected(q, left) && Connected(q, right) &&
            JoinBetween(q, left, right)) {
          const double c = solve(left) + solve(right) + node_card;
          if (c < entry.cost) {
            entry.cost = c;
            entry.left = left;
          }
        }
        if (sub == 0) break;
      }
    }
    dp.emplace(tables, entry);
    return entry.cost;
  };
  const double total = solve(all);
  CONDSEL_CHECK_MSG(total < std::numeric_limits<double>::infinity(),
                    "no valid plan (disconnected join graph?)");

  // Reconstruct the winning tree.
  PlanResult result;
  result.estimated_cost = total;
  std::function<int(TableSet)> build = [&](TableSet tables) -> int {
    JoinTree::Node node;
    node.preds = PlanPreds(q, tables);
    if (SetSize(tables) == 1) {
      node.is_leaf = true;
      node.table = static_cast<TableId>(std::countr_zero(tables));
    } else {
      const DpEntry& e = dp.at(tables);
      node.is_leaf = false;
      node.left = build(e.left);
      node.right = build(tables & ~e.left);
    }
    result.tree.nodes.push_back(node);
    return static_cast<int>(result.tree.nodes.size() - 1);
  };
  result.tree.root = build(all);
  return result;
}

double JoinOrderOptimizer::Cost(const JoinTree& tree,
                                const CardinalityFn& cardinality) const {
  double cost = 0.0;
  for (const JoinTree::Node& n : tree.nodes) {
    if (!n.is_leaf) cost += cardinality(n.preds);
  }
  return cost;
}

}  // namespace condsel
