// A Cascades-style memoization table (Section 4.1).
//
// Groups collect logically equivalent sub-plans of one SPJ query. In the
// canonical predicate-set representation, a group is identified by the
// predicate subset it applies plus the tables it covers (scan groups
// apply no predicates). Each group entry records a *last operator*:
//   [SELECT, {p}, {input}]  or  [JOIN, {j}, {left, right}]
// with inputs pointing at other groups — exactly the paper's
// [op, parms, inputs] shape, and exactly what induces the decomposition
// Sel(p_E | Q_E) * Sel(Q_E) used by the Section 4.2 integration.

#ifndef CONDSEL_OPTIMIZER_MEMO_H_
#define CONDSEL_OPTIMIZER_MEMO_H_

#include <map>
#include <string>
#include <vector>

#include "condsel/query/query.h"

namespace condsel {

enum class OpKind { kScan, kSelect, kJoin };

struct MemoExpr {
  OpKind op = OpKind::kScan;
  int predicate = -1;       // query predicate index for kSelect / kJoin
  std::vector<int> inputs;  // group ids
};

struct Group {
  PredSet preds = 0;    // predicates applied by this sub-plan
  TableSet tables = 0;  // tables covered
  std::vector<MemoExpr> exprs;
  bool explored = false;
};

class Memo {
 public:
  explicit Memo(const Query* query);

  // Returns the id of the group for (preds, tables), creating it if new.
  int GetOrCreateGroup(PredSet preds, TableSet tables);

  Group& group(int id);
  const Group& group(int id) const;
  int num_groups() const { return static_cast<int>(groups_.size()); }
  int num_exprs() const;

  const Query& query() const { return *query_; }

  std::string ToString() const;

 private:
  const Query* query_;
  std::map<std::pair<PredSet, TableSet>, int> index_;
  std::vector<Group> groups_;
};

}  // namespace condsel

#endif  // CONDSEL_OPTIMIZER_MEMO_H_
