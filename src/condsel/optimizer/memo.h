// A Cascades-style memoization table (Section 4.1).
//
// Groups collect logically equivalent sub-plans of one SPJ query. In the
// canonical predicate-set representation, a group is identified by the
// predicate subset it applies plus the tables it covers (scan groups
// apply no predicates). Each group entry records a *last operator*:
//   [SELECT, {p}, {input}]  or  [JOIN, {j}, {left, right}]
// with inputs pointing at other groups — exactly the paper's
// [op, parms, inputs] shape, and exactly what induces the decomposition
// Sel(p_E | Q_E) * Sel(Q_E) used by the Section 4.2 integration.
//
// Concurrency: group *creation* is internally synchronized and group
// storage is a deque, so ids and Group references handed out stay valid
// while other threads create groups (no vector reallocation). Mutating a
// group's entries (exploration) is NOT synchronized here — the rule
// engine owns that, and today explores single-threaded; the annotations
// and stable storage are the groundwork for parallelizing it.

#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "condsel/common/thread_annotations.h"
#include "condsel/query/query.h"

namespace condsel {

enum class OpKind { kScan, kSelect, kJoin };

struct MemoExpr {
  OpKind op = OpKind::kScan;
  int predicate = -1;       // query predicate index for kSelect / kJoin
  std::vector<int> inputs;  // group ids
};

struct Group {
  PredSet preds = 0;    // predicates applied by this sub-plan
  TableSet tables = 0;  // tables covered
  std::vector<MemoExpr> exprs;
  bool explored = false;
};

class Memo {
 public:
  explicit Memo(const Query* query);

  // Returns the id of the group for (preds, tables), creating it if new.
  // Safe to call from concurrent explorers.
  int GetOrCreateGroup(PredSet preds, TableSet tables) CONDSEL_EXCLUDES(mu_);

  // References stay valid across later GetOrCreateGroup calls (deque
  // storage); the Group's own fields are the caller's to synchronize.
  Group& group(int id);
  const Group& group(int id) const;
  int num_groups() const {
    return num_groups_.load(std::memory_order_acquire);
  }
  int num_exprs() const;

  const Query& query() const { return *query_; }

  std::string ToString() const;

 private:
  const Query* query_;
  mutable std::mutex mu_;
  std::map<std::pair<PredSet, TableSet>, int> index_ CONDSEL_GUARDED_BY(mu_);
  // Append-only; elements are published by the release store to
  // num_groups_, so readers may index any id below num_groups().
  // condsel-lint: allow(guarded-by-coverage)
  std::deque<Group> groups_;
  std::atomic<int> num_groups_{0};
};

}  // namespace condsel
