#include "condsel/optimizer/integration.h"

#include <string>

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/optimizer/rules.h"

namespace condsel {

OptimizerCoupledEstimator::OptimizerCoupledEstimator(
    const Query* query, AtomicSelectivityProvider* provider)
    : query_(query), provider_(provider), memo_(query) {
  CONDSEL_CHECK(query != nullptr);        // invariant: constructor contract
  CONDSEL_CHECK(provider != nullptr);  // invariant: constructor contract
}

StatusOr<SelEstimate> OptimizerCoupledEstimator::TryEstimate(PredSet preds) {
  if (!IsSubset(preds, query_->all_predicates())) {
    return Status::InvalidArgument(
        "predicate subset is not part of the bound query");
  }
  const int id = BuildAndExplore(&memo_, preds);
  return EstimateGroup(id);
}

SelEstimate OptimizerCoupledEstimator::Estimate(PredSet preds) {
  StatusOr<SelEstimate> result = TryEstimate(preds);
  // Abort-on-error wrapper; TryEstimate is the recoverable path.
  // invariant: wrapper aborts by design.
  CONDSEL_CHECK_MSG(result.ok(), result.status().message().c_str());
  return *result;
}

StatusOr<SelEstimate> OptimizerCoupledEstimator::EstimateGroup(int group_id) {
  auto it = best_.find(group_id);
  if (it != best_.end()) return it->second;

  const Group& g = memo_.group(group_id);
  SelEstimate best;
  best.error = kInfiniteError;
  best.selectivity = 1.0;

  if (g.preds == 0) {
    best = SelEstimate{1.0, 0.0};
    // All scan/cartesian-leaf groups share the empty predicate subset;
    // one empty-set node stands for them in the derivation.
    if (recorder_ != nullptr && !recorder_->recorded(0)) {
      DerivationNode& node = recorder_->AddNode(0);
      node.kind = DerivKind::kEmptySet;
      node.selectivity = 1.0;
      node.error = 0.0;
    }
    best_.emplace(group_id, best);
    return best;
  }

  // Winning entry, for the derivation recording.
  const MemoExpr* best_expr = nullptr;
  double best_head_sel = 1.0;
  FactorChoice best_choice;

  for (const MemoExpr& e : g.exprs) {
    if (e.op == OpKind::kScan) continue;
    ++entries_considered_;

    // Sel(Q_E): separable product over the entry's inputs.
    double input_sel = 1.0;
    double input_err = 0.0;
    bool inputs_ok = true;
    for (int in : e.inputs) {
      const StatusOr<SelEstimate> ie = EstimateGroup(in);
      if (!ie.ok()) {
        // This entry's sub-plan is not estimable; another entry of the
        // group may still be. Only if every entry fails does the group
        // itself report the error below.
        inputs_ok = false;
        break;
      }
      input_sel *= ie.value().selectivity;
      input_err = ErrorFunction::Merge(input_err, ie.value().error);
    }
    if (!inputs_ok) continue;

    if (e.predicate < 0) {
      // Cartesian product entry: no factor on top, exact by Property 2.
      if (input_err < best.error) {
        best.error = input_err;
        best.selectivity = input_sel;
        best_expr = &e;
      }
      continue;
    }

    const PredSet p_e = 1u << e.predicate;
    const PredSet q_e = g.preds & ~p_e;
    FactorChoice choice = provider_->Score(*query_, p_e, q_e);
    if (!choice.feasible) continue;
    const double err = ErrorFunction::Merge(choice.error, input_err);
    if (err < best.error) {
      best.error = err;
      const double head_sel = SanitizeSelectivity(
          provider_->Estimate(*query_, p_e, choice));
      best.selectivity = SanitizeSelectivity(head_sel * input_sel);
      best_expr = &e;
      best_head_sel = head_sel;
      best_choice = choice;
    }
  }
  if (best.error == kInfiniteError) {
    return Status::FailedPrecondition(
        "memo group " + std::to_string(group_id) +
        " has no estimable entry (no statistic approximates any induced "
        "decomposition)");
  }
  if (recorder_ != nullptr && best_expr != nullptr) {
    DerivationNode& node = recorder_->AddNode(g.preds);
    node.selectivity = best.selectivity;
    node.error = best.error;
    for (int in : best_expr->inputs) {
      node.tails.push_back(memo_.group(in).preds);
    }
    if (best_expr->predicate < 0) {
      // Cartesian entry: a separable product over the connected pieces
      // (not necessarily the Lemma 2 standard decomposition — pieces are
      // the memo's, grouped by table connectivity).
      node.kind = DerivKind::kSeparableSplit;
      node.standard_split = false;
    } else {
      node.kind = DerivKind::kConditionalFactor;
      node.head = 1u << best_expr->predicate;
      node.head_selectivity = best_head_sel;
      const PredSet q_e = g.preds & ~node.head;
      const std::vector<FactorProvenance> provenance =
          provider_->Describe(*query_, node.head, best_choice);
      for (size_t i = 0; i < best_choice.sits.size(); ++i) {
        const SitCandidate& cand = best_choice.sits[i];
        SitApplication app;
        app.sit_id = cand.sit->id;
        app.is_base = cand.sit->is_base();
        app.hypothesis = cand.expr_mask;
        app.conditioning = q_e;
        if (i < provenance.size()) app.provenance = provenance[i];
        node.sits.push_back(std::move(app));
      }
    }
  }
  best_.emplace(group_id, best);
  return best;
}

}  // namespace condsel
