#include "condsel/optimizer/integration.h"

#include "condsel/common/macros.h"
#include "condsel/optimizer/rules.h"

namespace condsel {

OptimizerCoupledEstimator::OptimizerCoupledEstimator(
    const Query* query, FactorApproximator* approximator)
    : query_(query), approximator_(approximator), memo_(query) {
  CONDSEL_CHECK(query != nullptr);
  CONDSEL_CHECK(approximator != nullptr);
}

SelEstimate OptimizerCoupledEstimator::Estimate(PredSet preds) {
  const int id = BuildAndExplore(&memo_, preds);
  return EstimateGroup(id);
}

SelEstimate OptimizerCoupledEstimator::EstimateGroup(int group_id) {
  auto it = best_.find(group_id);
  if (it != best_.end()) return it->second;

  const Group& g = memo_.group(group_id);
  SelEstimate best;
  best.error = kInfiniteError;
  best.selectivity = 1.0;

  if (g.preds == 0) {
    best = SelEstimate{1.0, 0.0};
    best_.emplace(group_id, best);
    return best;
  }

  for (const MemoExpr& e : g.exprs) {
    if (e.op == OpKind::kScan) continue;
    ++entries_considered_;

    // Sel(Q_E): separable product over the entry's inputs.
    double input_sel = 1.0;
    double input_err = 0.0;
    for (int in : e.inputs) {
      const SelEstimate ie = EstimateGroup(in);
      input_sel *= ie.selectivity;
      input_err = ErrorFunction::Merge(input_err, ie.error);
    }

    if (e.predicate < 0) {
      // Cartesian product entry: no factor on top, exact by Property 2.
      if (input_err < best.error) {
        best.error = input_err;
        best.selectivity = input_sel;
      }
      continue;
    }

    const PredSet p_e = 1u << e.predicate;
    const PredSet q_e = g.preds & ~p_e;
    FactorChoice choice = approximator_->Score(*query_, p_e, q_e);
    if (!choice.feasible) continue;
    const double err = ErrorFunction::Merge(choice.error, input_err);
    if (err < best.error) {
      best.error = err;
      best.selectivity =
          approximator_->Estimate(*query_, p_e, choice) * input_sel;
    }
  }
  CONDSEL_CHECK_MSG(best.error != kInfiniteError,
                    "memo group has no estimable entry");
  best_.emplace(group_id, best);
  return best;
}

}  // namespace condsel
