// Coupling getSelectivity with the optimizer's search (Section 4.2).
//
// Instead of exploring every atomic decomposition, the coupled estimator
// only considers the decompositions *induced by memo entries*: an entry E
// of the group for predicate set P splits P into the entry's own
// predicate p_E and the inputs' predicates Q_E, inducing
//   Sel(P) = Sel(p_E | Q_E) * Sel(Q_E),
// where Sel(Q_E) factors separably across E's inputs (each input group's
// own best estimate). The search is thereby pruned by the optimizer's own
// enumeration — cheaper, at the cost of possibly missing the optimum the
// full DP would find (the trade-off Section 4.2 describes).

#ifndef CONDSEL_OPTIMIZER_INTEGRATION_H_
#define CONDSEL_OPTIMIZER_INTEGRATION_H_

#include <map>

#include "condsel/optimizer/memo.h"
#include "condsel/selectivity/get_selectivity.h"

namespace condsel {

class OptimizerCoupledEstimator {
 public:
  // The approximator's matcher must be bound to `query`.
  OptimizerCoupledEstimator(const Query* query,
                            FactorApproximator* approximator);

  // Best estimate for the sub-plan applying `preds`, per the entry-induced
  // decompositions. Lazily builds and explores the memo.
  SelEstimate Estimate(PredSet preds);

  const Memo& memo() const { return memo_; }
  uint64_t entries_considered() const { return entries_considered_; }

 private:
  SelEstimate EstimateGroup(int group_id);

  const Query* query_;
  FactorApproximator* approximator_;
  Memo memo_;
  std::map<int, SelEstimate> best_;  // group id -> best estimate
  uint64_t entries_considered_ = 0;
};

}  // namespace condsel

#endif  // CONDSEL_OPTIMIZER_INTEGRATION_H_
