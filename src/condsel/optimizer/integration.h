// Coupling getSelectivity with the optimizer's search (Section 4.2).
//
// Instead of exploring every atomic decomposition, the coupled estimator
// only considers the decompositions *induced by memo entries*: an entry E
// of the group for predicate set P splits P into the entry's own
// predicate p_E and the inputs' predicates Q_E, inducing
//   Sel(P) = Sel(p_E | Q_E) * Sel(Q_E),
// where Sel(Q_E) factors separably across E's inputs (each input group's
// own best estimate). The search is thereby pruned by the optimizer's own
// enumeration — cheaper, at the cost of possibly missing the optimum the
// full DP would find (the trade-off Section 4.2 describes).
//
// TryEstimate is the production entry point: requests outside the bound
// query, and memo groups in which no entry is estimable (e.g. a pool with
// no usable statistics for any induced decomposition), come back as a
// recoverable Status the optimizer can branch on. Estimate keeps the
// historical abort-on-error contract as a thin wrapper.

#pragma once

#include <map>

#include "condsel/analysis/derivation.h"
#include "condsel/common/status.h"
#include "condsel/optimizer/memo.h"
#include "condsel/selectivity/get_selectivity.h"

namespace condsel {

class OptimizerCoupledEstimator {
 public:
  // The provider's matcher must be bound to `query`.
  OptimizerCoupledEstimator(const Query* query,
                            AtomicSelectivityProvider* provider);

  // Best estimate for the sub-plan applying `preds`, per the entry-induced
  // decompositions. Lazily builds and explores the memo. Errors:
  //  - INVALID_ARGUMENT: `preds` is not a subset of the bound query's
  //    predicates;
  //  - FAILED_PRECONDITION: some reachable memo group has no estimable
  //    entry (no SIT or base statistic can approximate any of its induced
  //    decompositions).
  StatusOr<SelEstimate> TryEstimate(PredSet preds);

  // Abort-on-error wrapper around TryEstimate.
  SelEstimate Estimate(PredSet preds);

  const Memo& memo() const { return memo_; }
  uint64_t entries_considered() const { return entries_considered_; }

  // Optional derivation recording: the winning entry-induced decomposition
  // of every estimated memo group is appended to `dag` (a conditional
  // factorization Sel(p_E|Q_E)·Sel(Q_E) for select/join entries, a
  // separable split for cartesian entries, an empty-set node for scans)
  // for DerivationAuditor. Attach before the first TryEstimate; borrowed;
  // nullptr stops recording.
  void set_recorder(DerivationDag* dag) { recorder_ = dag; }

 private:
  StatusOr<SelEstimate> EstimateGroup(int group_id);

  const Query* query_;
  AtomicSelectivityProvider* provider_;
  Memo memo_;
  std::map<int, SelEstimate> best_;  // group id -> best estimate
  uint64_t entries_considered_ = 0;
  DerivationDag* recorder_ = nullptr;
};

}  // namespace condsel
