#include "condsel/harness/runner.h"

#include <chrono>
#include <cmath>

#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/common/macros.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

const char* TechniqueName(Technique t) {
  switch (t) {
    case Technique::kNoSit:
      return "noSit";
    case Technique::kGvm:
      return "GVM";
    case Technique::kGsNInd:
      return "GS-nInd";
    case Technique::kGsDiff:
      return "GS-Diff";
    case Technique::kGsOpt:
      return "GS-Opt";
  }
  return "?";
}

Runner::Runner(const Catalog* catalog, Evaluator* evaluator)
    : catalog_(catalog), evaluator_(evaluator) {
  CONDSEL_CHECK(catalog != nullptr);
  CONDSEL_CHECK(evaluator != nullptr);
}

WorkloadRunResult Runner::Run(const std::vector<Query>& workload,
                              const SitPool& pool, Technique technique) {
  using Clock = std::chrono::steady_clock;
  WorkloadRunResult result;
  result.technique = technique;

  NIndError n_ind;
  DiffError diff;
  OptError opt(evaluator_);
  // Decomposition skeletons shared across the workload: structurally
  // identical queries (the generator varies constants far more often than
  // shapes) enumerate candidates once.
  ShapeCache shapes;
  const ErrorFunction* error_fn = nullptr;
  switch (technique) {
    case Technique::kGsNInd:
      error_fn = &n_ind;
      break;
    case Technique::kGsDiff:
      error_fn = &diff;
      break;
    case Technique::kGsOpt:
      error_fn = &opt;
      break;
    default:
      break;
  }

  for (const Query& query : workload) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&query);

    QueryRunResult qr;
    const std::vector<PredSet> subplans = SubPlanFamily(query);

    // Per-technique estimator; GS memoizes across this query's sub-plan
    // requests, GVM and noSit recompute each request (as the originals
    // do).
    const ErrorFunction* gs_fn = error_fn != nullptr ? error_fn : &n_ind;
    AtomicSelectivityProvider gs_approx(&matcher, gs_fn);
    const std::shared_ptr<ShapeCache::Entry> shape = shapes.Acquire(query);
    GetSelectivity gs(&query, &gs_approx, nullptr, shape.get());
    NoSitEstimator no_sit(&matcher);
    GvmEstimator gvm(&matcher);

    double err_sum = 0.0;
    const auto t0 = Clock::now();
    for (PredSet plan : subplans) {
      double est_sel = 0.0;
      const uint64_t alloc0 =
          alloc_counter_ != nullptr ? alloc_counter_() : 0;
      switch (technique) {
        case Technique::kNoSit:
          est_sel = no_sit.Estimate(query, plan);
          break;
        case Technique::kGvm:
          est_sel = gvm.Estimate(query, plan);
          break;
        default:
          est_sel = gs.Compute(plan).selectivity;
          break;
      }
      if (alloc_counter_ != nullptr) {
        qr.estimate_allocs += alloc_counter_() - alloc0;
      }
      ++qr.estimate_calls;
      const double cross = CrossProductCardinality(*catalog_, query, plan);
      const double est_card = est_sel * cross;
      const double true_card = evaluator_->Cardinality(query, plan);
      const double abs_err = std::abs(est_card - true_card);
      err_sum += abs_err;
      qr.max_abs_error = std::max(qr.max_abs_error, abs_err);
      if (plan == query.all_predicates()) {
        qr.full_query_true = true_card;
        qr.full_query_est = est_card;
      }
    }
    qr.estimate_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    qr.avg_abs_error = err_sum / static_cast<double>(subplans.size());
    qr.matcher_calls = matcher.num_calls();
    if (error_fn != nullptr) {
      qr.analysis_seconds = gs.stats().analysis_seconds;
      qr.histogram_seconds = gs.stats().histogram_seconds;
    }
    result.per_query.push_back(qr);
  }

  // Workload-level averages.
  const double n = static_cast<double>(result.per_query.size());
  uint64_t total_allocs = 0;
  uint64_t total_calls = 0;
  for (const QueryRunResult& qr : result.per_query) {
    result.avg_abs_error += qr.avg_abs_error / n;
    result.avg_matcher_calls +=
        static_cast<double>(qr.matcher_calls) / n;
    result.avg_analysis_ms += qr.analysis_seconds * 1000.0 / n;
    result.avg_histogram_ms += qr.histogram_seconds * 1000.0 / n;
    result.avg_estimate_ms += qr.estimate_seconds * 1000.0 / n;
    total_allocs += qr.estimate_allocs;
    total_calls += qr.estimate_calls;
  }
  if (alloc_counter_ != nullptr && total_calls > 0) {
    result.avg_allocs_per_estimate =
        static_cast<double>(total_allocs) / static_cast<double>(total_calls);
  }
  return result;
}

}  // namespace condsel
