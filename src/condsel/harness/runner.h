// Drives the Section 5 experiments: runs a technique over a workload and
// collects accuracy, view-matching and timing statistics.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

enum class Technique { kNoSit, kGvm, kGsNInd, kGsDiff, kGsOpt };

const char* TechniqueName(Technique t);

struct QueryRunResult {
  double avg_abs_error = 0.0;   // mean |est - true| over sub-plans
  double max_abs_error = 0.0;
  double full_query_true = 0.0;  // exact cardinality of the whole query
  double full_query_est = 0.0;
  uint64_t matcher_calls = 0;    // view-matching calls this query consumed
  double analysis_seconds = 0.0;   // GS techniques only
  double histogram_seconds = 0.0;  // GS techniques only
  double estimate_seconds = 0.0;   // wall time spent estimating
};

struct WorkloadRunResult {
  Technique technique = Technique::kNoSit;
  std::vector<QueryRunResult> per_query;
  double avg_abs_error = 0.0;      // mean of per-query averages
  double avg_matcher_calls = 0.0;  // mean per query
  double avg_analysis_ms = 0.0;
  double avg_histogram_ms = 0.0;
  double avg_estimate_ms = 0.0;
};

class Runner {
 public:
  Runner(const Catalog* catalog, Evaluator* evaluator);

  // Runs `technique` with `pool` over the workload: for each query,
  // estimates every sub-plan's cardinality and scores it against the
  // exact value.
  WorkloadRunResult Run(const std::vector<Query>& workload, const SitPool& pool,
                        Technique technique);

 private:
  const Catalog* catalog_;
  Evaluator* evaluator_;
};

}  // namespace condsel

