// Drives the Section 5 experiments: runs a technique over a workload and
// collects accuracy, view-matching and timing statistics.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

enum class Technique { kNoSit, kGvm, kGsNInd, kGsDiff, kGsOpt };

const char* TechniqueName(Technique t);

// Optional allocation probe (see set_alloc_counter below). The benches
// pass their operator-new counter; library users leave it unset.
using AllocCounterFn = uint64_t (*)();

struct QueryRunResult {
  double avg_abs_error = 0.0;   // mean |est - true| over sub-plans
  double max_abs_error = 0.0;
  double full_query_true = 0.0;  // exact cardinality of the whole query
  double full_query_est = 0.0;
  uint64_t matcher_calls = 0;    // view-matching calls this query consumed
  uint64_t estimate_calls = 0;   // sub-plan estimate requests issued
  uint64_t estimate_allocs = 0;  // allocs inside those requests (counter set)
  double analysis_seconds = 0.0;   // GS techniques only
  double histogram_seconds = 0.0;  // GS techniques only
  double estimate_seconds = 0.0;   // wall time spent estimating
};

struct WorkloadRunResult {
  Technique technique = Technique::kNoSit;
  std::vector<QueryRunResult> per_query;
  double avg_abs_error = 0.0;      // mean of per-query averages
  double avg_matcher_calls = 0.0;  // mean per query
  double avg_analysis_ms = 0.0;
  double avg_histogram_ms = 0.0;
  double avg_estimate_ms = 0.0;
  // Total estimate_allocs / total estimate_calls, 0 when no counter is
  // set. Unlike a window around the whole Run() call, this excludes the
  // harness's own work — above all the exact-cardinality evaluation each
  // estimate is scored against, which would otherwise dominate the count.
  double avg_allocs_per_estimate = 0.0;
};

class Runner {
 public:
  Runner(const Catalog* catalog, Evaluator* evaluator);

  // Meters allocations consumed by the estimate calls themselves (not
  // the surrounding truth evaluation). `fn` must be monotonic, e.g. the
  // bench operator-new counter; nullptr disables metering.
  void set_alloc_counter(AllocCounterFn fn) { alloc_counter_ = fn; }

  // Runs `technique` with `pool` over the workload: for each query,
  // estimates every sub-plan's cardinality and scores it against the
  // exact value.
  WorkloadRunResult Run(const std::vector<Query>& workload, const SitPool& pool,
                        Technique technique);

 private:
  const Catalog* catalog_;
  Evaluator* evaluator_;
  AllocCounterFn alloc_counter_ = nullptr;
};

}  // namespace condsel

