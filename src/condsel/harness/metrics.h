// Experiment metrics (Section 5 "Metrics").
//
// The paper scores a technique on a query by estimating the cardinality
// of each *sub-query* of q, comparing with the exact cardinality, and
// averaging the absolute errors. Sub-queries are the plan-node family: for
// every connected sub-join-graph of q (including single joined tables),
// the node's predicates are those joins plus every filter of q applicable
// to the covered tables — exactly the intermediate results a bottom-up
// optimizer requests estimates for.

#pragma once

#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"

namespace condsel {

// The plan-node sub-queries of q, as predicate bitmasks, deduplicated,
// ordered by increasing size (bottom-up, as an optimizer would request
// them). Includes the full query; excludes the empty set.
std::vector<PredSet> SubPlanFamily(const Query& query);

// |tables(P)|^x — the cross-product cardinality a selectivity for P is
// scaled by to obtain a cardinality estimate.
double CrossProductCardinality(const Catalog& catalog, const Query& query,
                               PredSet p);

}  // namespace condsel

