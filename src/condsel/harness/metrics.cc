#include "condsel/harness/metrics.h"

#include <algorithm>
#include <set>

#include "condsel/common/numeric.h"
#include "condsel/query/join_graph.h"

namespace condsel {

std::vector<PredSet> SubPlanFamily(const Query& query) {
  std::set<PredSet> plans;

  // Filters of the query on each table.
  auto filters_on_tables = [&](TableSet tables) {
    PredSet f = 0;
    for (int i : SetElements(query.filter_predicates())) {
      if (Contains(tables, query.predicate(i).column().table)) {
        f = With(f, i);
      }
    }
    return f;
  };

  // Single-table scan nodes (with their filters).
  for (int t : SetElements(query.tables())) {
    const PredSet f = filters_on_tables(1u << t);
    if (f != 0) plans.insert(f);
  }

  // Join nodes: each connected join subgraph, with applicable filters.
  for (PredSet joins :
       ConnectedSubsets(query.predicates(), query.join_predicates(),
                        SetSize(query.join_predicates()))) {
    plans.insert(joins | filters_on_tables(query.TablesOfSubset(joins)));
  }

  std::vector<PredSet> out(plans.begin(), plans.end());
  std::sort(out.begin(), out.end(), [](PredSet a, PredSet b) {
    if (SetSize(a) != SetSize(b)) return SetSize(a) < SetSize(b);
    return a < b;
  });
  return out;
}

double CrossProductCardinality(const Catalog& catalog, const Query& query,
                               PredSet p) {
  double cross = 1.0;
  for (int t : SetElements(query.TablesOfSubset(p))) {
    cross = SaturatingMultiply(cross,
                               static_cast<double>(catalog.table(t).num_rows()));
  }
  return cross;
}

}  // namespace condsel
