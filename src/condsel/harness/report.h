// Plain-text table formatting for the benchmark binaries.

#pragma once

#include <string>
#include <vector>

namespace condsel {

// Prints a fixed-width table to stdout. Column widths adapt to content.
void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

// Number formatting helpers.
std::string FormatDouble(double v, int precision = 3);
std::string FormatCount(double v);  // 1234567 -> "1234567", keeps integers

}  // namespace condsel

