#include "condsel/harness/report.h"

#include <algorithm>
#include <cstdio>

namespace condsel {

void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s", static_cast<int>(widths[c] + 2), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows) print_row(row);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatCount(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace condsel
