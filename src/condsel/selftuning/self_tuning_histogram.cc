#include "condsel/selftuning/self_tuning_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "condsel/common/macros.h"

namespace condsel {

SelfTuningHistogram::SelfTuningHistogram(int64_t domain_lo, int64_t domain_hi,
                                         int max_buckets)
    : domain_lo_(domain_lo), domain_hi_(domain_hi),
      max_buckets_(max_buckets) {
  CONDSEL_CHECK(domain_lo <= domain_hi);
  CONDSEL_CHECK(max_buckets >= 2);
  buckets_.push_back(Bucket{domain_lo, domain_hi, 1.0});
}

double SelfTuningHistogram::total_mass() const {
  double m = 0.0;
  for (const Bucket& b : buckets_) m += b.mass;
  return m;
}

double SelfTuningHistogram::RangeSelectivity(int64_t lo, int64_t hi) const {
  if (lo > hi) return 0.0;
  double sel = 0.0;
  for (const Bucket& b : buckets_) {
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    if (olo > ohi) continue;
    sel += b.mass * static_cast<double>(ohi - olo + 1) /
           static_cast<double>(b.hi - b.lo + 1);
  }
  return sel;
}

void SelfTuningHistogram::SplitAt(int64_t lo, int64_t hi) {
  std::vector<Bucket> out;
  out.reserve(buckets_.size() + 2);
  for (const Bucket& b : buckets_) {
    // Candidate interior cut points within b: before `lo`, after `hi`.
    std::vector<int64_t> cuts;  // cut after value c: [b.lo..c][c+1..b.hi]
    if (lo > b.lo && lo <= b.hi) cuts.push_back(lo - 1);
    if (hi >= b.lo && hi < b.hi) cuts.push_back(hi);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    int64_t start = b.lo;
    const double width = static_cast<double>(b.hi - b.lo + 1);
    for (int64_t c : cuts) {
      Bucket piece{start, c,
                   b.mass * static_cast<double>(c - start + 1) / width};
      out.push_back(piece);
      start = c + 1;
    }
    out.push_back(Bucket{start, b.hi,
                         b.mass * static_cast<double>(b.hi - start + 1) /
                             width});
  }
  buckets_ = std::move(out);
}

void SelfTuningHistogram::EnforceBudget() {
  while (static_cast<int>(buckets_.size()) > max_buckets_) {
    // Merge the adjacent pair with the most similar density (STHoles'
    // merge penalty, specialized to 1-d).
    size_t best = 0;
    double best_penalty = -1.0;
    for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
      const double penalty =
          std::abs(buckets_[i].Density() - buckets_[i + 1].Density()) *
          static_cast<double>(buckets_[i + 1].hi - buckets_[i].lo + 1);
      if (best_penalty < 0.0 || penalty < best_penalty) {
        best_penalty = penalty;
        best = i;
      }
    }
    buckets_[best].hi = buckets_[best + 1].hi;
    buckets_[best].mass += buckets_[best + 1].mass;
    buckets_.erase(buckets_.begin() + static_cast<long>(best) + 1);
  }
}

void SelfTuningHistogram::Observe(int64_t lo, int64_t hi, double fraction) {
  lo = std::max(lo, domain_lo_);
  hi = std::min(hi, domain_hi_);
  if (lo > hi) return;
  fraction = std::clamp(fraction, 0.0, 1.0);

  SplitAt(lo, hi);

  // Mass currently inside / outside the observed range.
  double inside = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.lo >= lo && b.hi <= hi) inside += b.mass;
  }
  const double outside = total_mass() - inside;

  // Scale the in-range buckets to the observed fraction (uniform within
  // the range if nothing was known), and rescale the rest so the total
  // mass stays 1 — the conservation step ST-histograms use.
  const double out_target = std::max(0.0, 1.0 - fraction);
  for (Bucket& b : buckets_) {
    const bool in = b.lo >= lo && b.hi <= hi;
    if (in) {
      if (inside > 1e-12) {
        b.mass *= fraction / inside;
      } else {
        b.mass = fraction * static_cast<double>(b.hi - b.lo + 1) /
                 static_cast<double>(hi - lo + 1);
      }
    } else if (outside > 1e-12) {
      b.mass *= out_target / outside;
    }
  }
  EnforceBudget();
}

std::string SelfTuningHistogram::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "SelfTuningHistogram(%zu buckets)",
                buckets_.size());
  return buf;
}

}  // namespace condsel
