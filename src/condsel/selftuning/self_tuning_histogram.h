// Workload-aware, self-tuning histograms (related work [1, 5]).
//
// The paper's Section 6 situates SITs against the authors' earlier
// self-tuning line (ST-histograms, STHoles): statistics that never scan
// the data but refine themselves from query feedback — observed
// (range, actual cardinality) pairs from executed queries. This is a
// one-dimensional STHoles-style reconstruction:
//
//  - a flat list of disjoint buckets covers the domain;
//  - Observe(lo, hi, fraction) splits buckets at the feedback range's
//    boundaries ("drilling"), then sets the in-range mass to the observed
//    value, scaling the out-of-range mass to keep the total consistent;
//  - when the bucket budget is exceeded, the two adjacent buckets with
//    the most similar density are merged (the STHoles merge step).
//
// Used by bench_self_tuning to contrast feedback-refined base statistics
// with SITs under data drift.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace condsel {

class SelfTuningHistogram {
 public:
  // Starts from total ignorance: one bucket over [domain_lo, domain_hi]
  // holding the whole mass (fraction 1).
  SelfTuningHistogram(int64_t domain_lo, int64_t domain_hi, int max_buckets);

  // Feedback from an executed query: the observed fraction of the
  // relation with value in [lo, hi] (clamped to the domain). `fraction`
  // in [0, 1].
  void Observe(int64_t lo, int64_t hi, double fraction);

  // Estimated fraction of the relation with value in [lo, hi].
  double RangeSelectivity(int64_t lo, int64_t hi) const;

  size_t num_buckets() const { return buckets_.size(); }
  double total_mass() const;
  int64_t domain_lo() const { return domain_lo_; }
  int64_t domain_hi() const { return domain_hi_; }

  std::string ToString() const;

 private:
  struct Bucket {
    int64_t lo = 0;
    int64_t hi = 0;
    double mass = 0.0;  // fraction of the relation in [lo, hi]

    double Density() const {
      return mass / static_cast<double>(hi - lo + 1);
    }
  };

  // Ensures bucket boundaries exist at `lo` (as a bucket start) and after
  // `hi` (as a bucket end) by splitting the covering buckets.
  void SplitAt(int64_t lo, int64_t hi);

  // Merges most-similar adjacent buckets until within budget.
  void EnforceBudget();

  int64_t domain_lo_;
  int64_t domain_hi_;
  int max_buckets_;
  std::vector<Bucket> buckets_;  // sorted, disjoint, covering the domain
};

}  // namespace condsel

