#include "condsel/api.h"

#include <algorithm>

#include "condsel/common/macros.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/factor_approx.h"

namespace condsel {

struct Estimator::Session {
  // The query must live as long as its memoized search: keep a copy the
  // matcher and DP point at.
  explicit Session(Query q) : query(std::move(q)) {}

  Query query;
  std::unique_ptr<SitMatcher> matcher;
  std::unique_ptr<FactorApproximator> approximator;
  std::unique_ptr<GetSelectivity> gs;
};

Estimator::Estimator(const Catalog* catalog, const SitPool* pool,
                     Ranking ranking)
    : catalog_(catalog), pool_(pool), ranking_(ranking) {
  CONDSEL_CHECK(catalog != nullptr);
  CONDSEL_CHECK(pool != nullptr);
}

Estimator::~Estimator() = default;

Estimator::Session& Estimator::SessionFor(const Query& query) {
  // Keyed by the *ordered* predicate list: PredSet masks are positional,
  // so only queries with identical predicate ordering may share a
  // memoized search.
  const std::vector<Predicate>& key = query.predicates();
  auto it = sessions_.find(key);
  if (it != sessions_.end()) return *it->second;

  auto session = std::make_unique<Session>(query);
  session->matcher = std::make_unique<SitMatcher>(pool_);
  session->matcher->BindQuery(&session->query);
  // Leaked singletons: error functions are stateless, and static objects
  // with non-trivial destructors are avoided (see style guide).
  static const NIndError& n_ind = *new NIndError();
  static const DiffError& diff = *new DiffError();
  const ErrorFunction* fn =
      ranking_ == Ranking::kNInd
          ? static_cast<const ErrorFunction*>(&n_ind)
          : static_cast<const ErrorFunction*>(&diff);
  session->approximator =
      std::make_unique<FactorApproximator>(session->matcher.get(), fn);
  session->gs = std::make_unique<GetSelectivity>(
      &session->query, session->approximator.get());
  return *sessions_.emplace(key, std::move(session)).first->second;
}

double Estimator::EstimateSelectivity(const Query& query, PredSet p) {
  return SessionFor(query).gs->Compute(p).selectivity;
}

double Estimator::EstimateSelectivity(const Query& query) {
  return EstimateSelectivity(query, query.all_predicates());
}

double Estimator::EstimateCardinality(const Query& query, PredSet p) {
  return EstimateSelectivity(query, p) *
         CrossProductCardinality(*catalog_, query, p);
}

double Estimator::EstimateCardinality(const Query& query) {
  return EstimateCardinality(query, query.all_predicates());
}

std::string Estimator::Explain(const Query& query) {
  Session& s = SessionFor(query);
  s.gs->Compute(query.all_predicates());
  return s.gs->Explain(query.all_predicates());
}

void Estimator::ClearCache() { sessions_.clear(); }

}  // namespace condsel
