#include "condsel/api.h"

#include <algorithm>
#include <cstdlib>

#include "condsel/analysis/auditor.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {
namespace {

bool ColumnInCatalog(const Catalog& catalog, ColumnRef c) {
  return c.table >= 0 && c.table < catalog.num_tables() && c.column >= 0 &&
         c.column < catalog.table(c.table).num_columns();
}

std::string ColumnName(const Catalog& catalog, ColumnRef c) {
  if (!ColumnInCatalog(catalog, c)) {
    return "(" + std::to_string(c.table) + "," + std::to_string(c.column) +
           ")";
  }
  const Table& t = catalog.table(c.table);
  return t.schema().name + "." +
         t.schema().columns[static_cast<size_t>(c.column)].name;
}

// Debug builds audit every estimate unless CONDSEL_AUDIT says otherwise;
// release builds stay opt-in.
bool DefaultAuditMode() {
  if (const char* env = std::getenv("CONDSEL_AUDIT");
      env != nullptr && env[0] != '\0') {
    std::string v = env;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return v != "0" && v != "false" && v != "no" && v != "off";
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

}  // namespace

struct Estimator::Session {
  // The query must live as long as its memoized search: keep a copy the
  // matcher and DP point at.
  explicit Session(Query q) : query(std::move(q)) {}

  Query query;
  std::unique_ptr<SitMatcher> matcher;
  std::unique_ptr<AtomicSelectivityProvider> provider;
  // Keeps the session's decomposition skeleton alive independently of
  // the cache that handed it out.
  std::shared_ptr<ShapeCache::Entry> shape;
  std::unique_ptr<GetSelectivity> gs;
  // Derivation recording + audit bookkeeping (audit mode only). The DAG
  // only grows on memo misses, so re-auditing is skipped while repeated
  // sub-plan requests hit the memo.
  DerivationDag dag;
  size_t audited_nodes = 0;
  // Pool generation the session was built against. The matcher's
  // applicability index holds pointers into the pool's SIT vector, so a
  // delta-refreshed pool (same object, new contents and generation)
  // invalidates the whole session, not just the memo.
  uint64_t pool_generation = 0;
};

Estimator::Estimator(const Catalog* catalog, const SitPool* pool,
                     Ranking ranking, EstimationBudget budget,
                     ShapeCache* shape_cache)
    : catalog_(catalog),
      pool_(pool),
      ranking_(ranking),
      budget_(budget),
      audit_(DefaultAuditMode()),
      shape_cache_(shape_cache != nullptr ? shape_cache : &own_shapes_) {
  CONDSEL_CHECK(catalog != nullptr);  // invariant: constructor contract
  CONDSEL_CHECK(pool != nullptr);     // invariant: constructor contract
}

Estimator::~Estimator() = default;

Status Estimator::ValidatePool() const {
  if (pool_validated_ && pool_generation_validated_ == pool_->generation()) {
    return pool_status_;
  }
  pool_validated_ = true;
  pool_generation_validated_ = pool_->generation();
  pool_status_ = Status::Ok();
  // A pool is only meaningful against its own catalog; one deserialized
  // against a different database would make the matcher dereference
  // out-of-range table/column ids (formerly a CHECK-abort deep inside
  // sit_matcher / atomic_provider).
  for (const Sit& sit : pool_->sits()) {
    if (!ColumnInCatalog(*catalog_, sit.attr) ||
        (sit.is_multidim() && !ColumnInCatalog(*catalog_, sit.attr2))) {
      pool_status_ = Status::FailedPrecondition(
          "SIT pool references column " + ColumnName(*catalog_, sit.attr) +
          " outside the catalog (pool built against a different database?)");
      break;
    }
    bool bad_expr = false;
    for (const Predicate& p : sit.expression) {
      for (const ColumnRef& c : p.attrs()) {
        if (!ColumnInCatalog(*catalog_, c)) {
          bad_expr = true;
          break;
        }
      }
      if (bad_expr) break;
    }
    if (bad_expr) {
      pool_status_ = Status::FailedPrecondition(
          "SIT pool expression references a column outside the catalog");
      break;
    }
  }
  return pool_status_;
}

Status Estimator::ValidateQuery(const Query& query, PredSet subset) const {
  CONDSEL_RETURN_IF_ERROR(ValidatePool());
  if ((subset & ~query.all_predicates()) != 0) {
    return Status::InvalidArgument(
        "predicate set is not a subset of the query's predicates");
  }
  // Only the requested predicates matter: a query whose join columns lack
  // base histograms can still serve filter-only sub-plan requests.
  for (int i : SetElements(subset)) {
    const Predicate& p = query.predicate(i);
    for (const ColumnRef& c : p.attrs()) {
      if (!ColumnInCatalog(*catalog_, c)) {
        return Status::InvalidArgument(
            "predicate " + std::to_string(i) + " references column " +
            ColumnName(*catalog_, c) + " outside the catalog");
      }
      if (pool_->FindBase(c) == nullptr) {
        return Status::FailedPrecondition(
            "SIT pool has no base histogram for column " +
            ColumnName(*catalog_, c));
      }
    }
    if (p.is_filter() && p.lo() > p.hi()) {
      return Status::InvalidArgument("predicate " + std::to_string(i) +
                                     " has an empty range");
    }
  }
  return Status::Ok();
}

Estimator::Session& Estimator::SessionFor(const Query& query) {
  // Keyed by the *ordered* predicate list: PredSet masks are positional,
  // so only queries with identical predicate ordering may share a
  // memoized search.
  const std::vector<Predicate>& key = query.predicates();
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    if (it->second->pool_generation == pool_->generation()) {
      return *it->second;
    }
    // The pool was refreshed in place (delta maintenance): the session's
    // matcher points at SITs that no longer exist. Rebuild from scratch.
    sessions_.erase(it);
  }

  auto session = std::make_unique<Session>(query);
  session->pool_generation = pool_->generation();
  session->matcher = std::make_unique<SitMatcher>(pool_);
  session->matcher->BindQuery(&session->query);
  // Leaked singletons: error functions are stateless, and static objects
  // with non-trivial destructors are avoided (see style guide).
  static const NIndError& n_ind = *new NIndError();
  static const DiffError& diff = *new DiffError();
  const ErrorFunction* fn =
      ranking_ == Ranking::kNInd
          ? static_cast<const ErrorFunction*>(&n_ind)
          : static_cast<const ErrorFunction*>(&diff);
  session->provider =
      std::make_unique<AtomicSelectivityProvider>(session->matcher.get(), fn);
  session->shape = shape_cache_->Acquire(session->query);
  session->gs = std::make_unique<GetSelectivity>(
      &session->query, session->provider.get(), &budget_,
      session->shape.get());
  if (audit_) session->gs->set_recorder(&session->dag);
  return *sessions_.emplace(key, std::move(session)).first->second;
}

void Estimator::AuditSession(Session& session) {
  if (session.gs->recorder() == nullptr) return;
  if (session.dag.size() == session.audited_nodes) return;
  session.audited_nodes = session.dag.size();
  const AuditReport report =
      DerivationAuditor().Audit(session.query, session.dag,
                                session.gs->stats());
  // A violation is a library bug, not user error (those surface as Status
  // before estimation) — invariant: completed estimates audit clean.
  CONDSEL_CHECK_MSG(report.ok(), report.ToString().c_str());
}

StatusOr<double> Estimator::TryEstimateSelectivity(const Query& query,
                                                   PredSet p) {
  if (Status s = ValidateQuery(query, p); !s.ok()) return s;
  Session& session = SessionFor(query);
  const double sel =
      SanitizeSelectivity(session.gs->Compute(p).selectivity);
  AuditSession(session);
  return sel;
}

StatusOr<double> Estimator::TryEstimateSelectivity(const Query& query) {
  return TryEstimateSelectivity(query, query.all_predicates());
}

StatusOr<double> Estimator::TryEstimateSelectivityStrict(const Query& query,
                                                         PredSet p) {
  StatusOr<double> sel = TryEstimateSelectivity(query, p);
  if (!sel.ok()) return sel;
  const GsStats* stats = StatsFor(query);
  // invariant: the successful estimate above created this query's session
  CONDSEL_CHECK(stats != nullptr);
  if (stats->budget_exhausted || stats->degraded_subproblems > 0) {
    return Status::ResourceExhausted(
        "estimation degraded: budget exhausted with " +
        std::to_string(stats->degraded_subproblems) +
        " subproblem(s) on the independence fallback (raise "
        "EstimationBudget or accept the degraded estimate via "
        "TryEstimateSelectivity)");
  }
  return sel;
}

StatusOr<double> Estimator::TryEstimateCardinality(const Query& query,
                                                   PredSet p) {
  StatusOr<double> sel = TryEstimateSelectivity(query, p);
  if (!sel.ok()) return sel;
  return SanitizeCardinality(*sel *
                             CrossProductCardinality(*catalog_, query, p));
}

StatusOr<double> Estimator::TryEstimateCardinality(const Query& query) {
  return TryEstimateCardinality(query, query.all_predicates());
}

StatusOr<std::string> Estimator::TryExplain(const Query& query) {
  if (Status s = ValidateQuery(query, query.all_predicates()); !s.ok()) {
    return s;
  }
  Session& session = SessionFor(query);
  session.gs->Compute(query.all_predicates());
  AuditSession(session);
  return session.gs->Explain(query.all_predicates());
}

double Estimator::EstimateSelectivity(const Query& query, PredSet p) {
  StatusOr<double> sel = TryEstimateSelectivity(query, p);
  // Historical abort-on-error contract; Try* is the recoverable path.
  // invariant: wrapper aborts by design.
  CONDSEL_CHECK_MSG(sel.ok(), sel.status().ToString().c_str());
  return *sel;
}

double Estimator::EstimateSelectivity(const Query& query) {
  return EstimateSelectivity(query, query.all_predicates());
}

double Estimator::EstimateCardinality(const Query& query, PredSet p) {
  StatusOr<double> card = TryEstimateCardinality(query, p);
  // Historical abort-on-error contract; Try* is the recoverable path.
  // invariant: wrapper aborts by design.
  CONDSEL_CHECK_MSG(card.ok(), card.status().ToString().c_str());
  return *card;
}

double Estimator::EstimateCardinality(const Query& query) {
  return EstimateCardinality(query, query.all_predicates());
}

std::string Estimator::Explain(const Query& query) {
  StatusOr<std::string> explain = TryExplain(query);
  // Historical abort-on-error contract; Try* is the recoverable path.
  // invariant: wrapper aborts by design.
  CONDSEL_CHECK_MSG(explain.ok(), explain.status().ToString().c_str());
  return *explain;
}

const GsStats* Estimator::StatsFor(const Query& query) const {
  auto it = sessions_.find(query.predicates());
  return it == sessions_.end() ? nullptr : &it->second->gs->stats();
}

const DerivationDag* Estimator::DerivationFor(const Query& query) const {
  auto it = sessions_.find(query.predicates());
  if (it == sessions_.end()) return nullptr;
  return it->second->gs->recorder();
}

void Estimator::ClearCache() { sessions_.clear(); }

}  // namespace condsel
