#include "condsel/parser/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <set>
#include <vector>

namespace condsel {
namespace {

enum class TokKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // identifiers upper-cased for keyword comparison,
                     // original preserved in `raw`
  std::string raw;
  int64_t number = 0;
  bool number_in_range = true;  // false for literals outside int64
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    if (pos_ >= input_.size()) {
      current_.kind = TokKind::kEnd;
      current_.text = "<end>";
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_')) {
        ++end;
      }
      current_.kind = TokKind::kIdent;
      current_.raw = input_.substr(pos_, end - pos_);
      for (char ch : current_.raw) {
        current_.text += static_cast<char>(
            std::toupper(static_cast<unsigned char>(ch)));
      }
      pos_ = end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t end = pos_ + 1;
      while (end < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[end]))) {
        ++end;
      }
      current_.kind = TokKind::kNumber;
      current_.raw = input_.substr(pos_, end - pos_);
      current_.text = current_.raw;
      // strtoll, unlike atoll, has defined overflow behavior: adversarial
      // giant literals must produce a parse error, not UB.
      errno = 0;
      current_.number = std::strtoll(current_.raw.c_str(), nullptr, 10);
      current_.number_in_range = errno != ERANGE;
      pos_ = end;
      return;
    }
    // Multi-char comparison symbols.
    for (const char* sym : {"<=", ">=", "!=", "<>"}) {
      if (input_.compare(pos_, 2, sym) == 0) {
        current_.kind = TokKind::kSymbol;
        current_.text = current_.raw = sym;
        pos_ += 2;
        return;
      }
    }
    current_.kind = TokKind::kSymbol;
    current_.text = current_.raw = std::string(1, c);
    ++pos_;
  }

  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  Parser(const Catalog& catalog, const std::string& sql)
      : catalog_(catalog), lexer_(sql) {}

  ParseResult Run() {
    ParseResult result;
    if (!ExpectKeyword("SELECT")) return Fail();
    if (!ExpectKeyword("COUNT")) return Fail();
    if (!ExpectSymbol("(")) return Fail();
    if (!ExpectSymbol("*")) return Fail();
    if (!ExpectSymbol(")")) return Fail();
    if (!ExpectKeyword("FROM")) return Fail();
    if (!ParseTableList()) return Fail();

    std::vector<Predicate> predicates;
    if (lexer_.peek().kind != TokKind::kEnd) {
      if (!ExpectKeyword("WHERE")) return Fail();
      while (true) {
        if (!ParsePredicate(&predicates)) return Fail();
        if (lexer_.peek().kind == TokKind::kIdent &&
            lexer_.peek().text == "AND") {
          lexer_.Take();
          continue;
        }
        break;
      }
    }
    if (lexer_.peek().kind != TokKind::kEnd) {
      error_ = "unexpected trailing input at '" + lexer_.peek().raw + "'";
      return Fail();
    }

    // Every referenced table must have been listed in FROM.
    for (const Predicate& p : predicates) {
      for (const ColumnRef& c : p.attrs()) {
        if (!from_tables_.count(c.table)) {
          error_ = "table '" + catalog_.table(c.table).schema().name +
                   "' used in WHERE but missing from FROM";
          return Fail();
        }
      }
    }

    result.ok = true;
    result.query = Query(std::move(predicates));
    return result;
  }

 private:
  ParseResult Fail() {
    ParseResult r;
    r.error = error_.empty() ? "parse error" : error_;
    return r;
  }

  bool ExpectKeyword(const std::string& kw) {
    if (lexer_.peek().kind == TokKind::kIdent && lexer_.peek().text == kw) {
      lexer_.Take();
      return true;
    }
    error_ = "expected " + kw + ", got '" + lexer_.peek().raw + "'";
    return false;
  }

  bool ExpectSymbol(const std::string& sym) {
    if (lexer_.peek().kind == TokKind::kSymbol &&
        lexer_.peek().text == sym) {
      lexer_.Take();
      return true;
    }
    error_ = "expected '" + sym + "', got '" + lexer_.peek().raw + "'";
    return false;
  }

  bool ParseTableList() {
    while (true) {
      if (lexer_.peek().kind != TokKind::kIdent) {
        error_ = "expected table name, got '" + lexer_.peek().raw + "'";
        return false;
      }
      const Token t = lexer_.Take();
      const TableId id = catalog_.FindTable(t.raw);
      if (id == kInvalidTableId) {
        error_ = "unknown table '" + t.raw + "'";
        return false;
      }
      if (!from_tables_.insert(id).second) {
        error_ = "table '" + t.raw + "' listed twice (self-joins are not "
                 "supported)";
        return false;
      }
      if (lexer_.peek().kind == TokKind::kSymbol &&
          lexer_.peek().text == ",") {
        lexer_.Take();
        continue;
      }
      return true;
    }
  }

  bool ParseColumn(ColumnRef* out) {
    if (lexer_.peek().kind != TokKind::kIdent) {
      error_ = "expected column reference, got '" + lexer_.peek().raw + "'";
      return false;
    }
    const Token table = lexer_.Take();
    if (!ExpectSymbol(".")) return false;
    if (lexer_.peek().kind != TokKind::kIdent) {
      error_ = "expected column name after '" + table.raw + ".'";
      return false;
    }
    const Token column = lexer_.Take();
    const TableId tid = catalog_.FindTable(table.raw);
    if (tid == kInvalidTableId) {
      error_ = "unknown table '" + table.raw + "'";
      return false;
    }
    const ColumnId cid =
        catalog_.table(tid).schema().FindColumn(column.raw);
    if (cid < 0) {
      error_ = "unknown column '" + table.raw + "." + column.raw + "'";
      return false;
    }
    *out = ColumnRef{tid, cid};
    return true;
  }

  bool ParsePredicate(std::vector<Predicate>* preds) {
    ColumnRef lhs;
    if (!ParseColumn(&lhs)) return false;
    const ColumnSchema& schema =
        catalog_.table(lhs.table)
            .schema()
            .columns[static_cast<size_t>(lhs.column)];

    const Token op = lexer_.Take();
    if (op.kind == TokKind::kIdent && op.text == "BETWEEN") {
      int64_t lo, hi;
      if (!ParseNumber(&lo)) return false;
      if (!ExpectKeyword("AND")) return false;
      if (!ParseNumber(&hi)) return false;
      if (lo > hi) {
        error_ = "BETWEEN bounds out of order";
        return false;
      }
      preds->push_back(Predicate::Filter(lhs, lo, hi));
      return true;
    }
    if (op.kind != TokKind::kSymbol) {
      error_ = "expected comparison operator, got '" + op.raw + "'";
      return false;
    }

    // col = col  (join)?
    if (op.text == "=" && lexer_.peek().kind == TokKind::kIdent) {
      // Lookahead for "ident . ident" means a column reference.
      ColumnRef rhs;
      if (!ParseColumn(&rhs)) return false;
      if (rhs.table == lhs.table) {
        error_ = "same-table column equality is not supported";
        return false;
      }
      preds->push_back(Predicate::Join(lhs, rhs));
      return true;
    }

    int64_t v;
    if (!ParseNumber(&v)) return false;
    int64_t lo = schema.min_value;
    int64_t hi = schema.max_value;
    if (op.text == "=") {
      lo = hi = v;
    } else if (op.text == "<") {
      // v-1/v+1 at the int64 extremes would be signed overflow (UB); a
      // strict comparison against the extreme selects nothing anyway.
      if (v == std::numeric_limits<int64_t>::min()) {
        error_ = "predicate on '" + schema.name + "' selects nothing";
        return false;
      }
      hi = v - 1;
    } else if (op.text == "<=") {
      hi = v;
    } else if (op.text == ">") {
      if (v == std::numeric_limits<int64_t>::max()) {
        error_ = "predicate on '" + schema.name + "' selects nothing";
        return false;
      }
      lo = v + 1;
    } else if (op.text == ">=") {
      lo = v;
    } else {
      error_ = "unsupported operator '" + op.raw + "'";
      return false;
    }
    if (lo > hi) {
      error_ = "predicate on '" + schema.name +
               "' selects nothing within the column's declared domain";
      return false;
    }
    preds->push_back(Predicate::Filter(lhs, lo, hi));
    return true;
  }

  bool ParseNumber(int64_t* out) {
    if (lexer_.peek().kind != TokKind::kNumber) {
      error_ = "expected a number, got '" + lexer_.peek().raw + "'";
      return false;
    }
    const Token t = lexer_.Take();
    if (!t.number_in_range) {
      error_ = "integer literal '" + t.raw + "' is out of range";
      return false;
    }
    *out = t.number;
    return true;
  }

  const Catalog& catalog_;
  Lexer lexer_;
  std::set<TableId> from_tables_;
  std::string error_;
};

}  // namespace

ParseResult ParseQuery(const Catalog& catalog, const std::string& sql) {
  return Parser(catalog, sql).Run();
}

}  // namespace condsel
