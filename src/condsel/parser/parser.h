// A small SQL-ish parser producing canonical SPJ queries.
//
// Accepted grammar (keywords case-insensitive):
//
//   query  := SELECT COUNT(*) FROM table (, table)* WHERE pred (AND pred)*
//   pred   := col = col                      -- equi-join (different tables)
//           | col = INT | col != ...         -- (only =, ranges below)
//           | col < INT | col <= INT | col > INT | col >= INT
//           | col BETWEEN INT AND INT
//   col    := table.column
//
// Range predicates over the same column are *not* merged — each becomes
// one predicate, matching the paper's canonical form where every p_i is
// its own conjunct. Open-ended comparisons use the column's declared
// domain bounds for the missing endpoint.
//
// The parser reports errors by value (no exceptions), with a message
// pointing at the offending token.

#pragma once

#include <string>

#include "condsel/catalog/catalog.h"
#include "condsel/query/query.h"

namespace condsel {

struct ParseResult {
  bool ok = false;
  Query query;
  std::string error;  // set when !ok
};

ParseResult ParseQuery(const Catalog& catalog, const std::string& sql);

}  // namespace condsel

