// Library version.

#ifndef CONDSEL_VERSION_H_
#define CONDSEL_VERSION_H_

namespace condsel {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace condsel

#endif  // CONDSEL_VERSION_H_
