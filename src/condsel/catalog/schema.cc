#include "condsel/catalog/schema.h"

namespace condsel {

ColumnId TableSchema::FindColumn(const std::string& column_name) const {
  for (ColumnId i = 0; i < num_columns(); ++i) {
    if (columns[static_cast<size_t>(i)].name == column_name) return i;
  }
  return -1;
}

}  // namespace condsel
