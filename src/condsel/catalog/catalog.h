// Catalog: the database instance handed to every other subsystem.
//
// Owns the tables (metadata + data) and the declared foreign keys. Exposes
// the same lookups a real system catalog would: table/column resolution by
// name, base cardinalities, and the foreign-key graph the workload
// generator draws join predicates from.

#pragma once

#include <string>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/common/status.h"
#include "condsel/storage/table.h"

namespace condsel {

class Catalog {
 public:
  // Registers a table and returns its id.
  TableId AddTable(Table table);

  void AddForeignKey(const ForeignKey& fk);

  int32_t num_tables() const { return static_cast<int32_t>(tables_.size()); }

  const Table& table(TableId id) const;
  Table& mutable_table(TableId id);

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }

  // Returns the table id for `name`, or kInvalidTableId.
  TableId FindTable(const std::string& name) const;

  // Resolves "table.column"; NOT_FOUND if either part is unknown.
  StatusOr<ColumnRef> TryResolveColumn(const std::string& table_name,
                                       const std::string& column_name) const;

  // Abort-on-unknown wrapper around TryResolveColumn, for call sites with
  // trusted (generated) names.
  ColumnRef ResolveColumn(const std::string& table_name,
                          const std::string& column_name) const;

  // |R1 x ... x Rk| for the given table ids (product of cardinalities,
  // saturating at the largest finite double instead of overflowing).
  double CartesianCardinality(const std::vector<TableId>& tables) const;

 private:
  std::vector<Table> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace condsel

