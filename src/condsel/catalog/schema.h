// Logical schema descriptors: tables, columns, and foreign keys.
//
// The schema is purely logical metadata; tuple data lives in
// storage/table.h. Column values are int64 throughout the library (see
// DESIGN.md): the paper's experiments use synthetic discrete domains, and
// integer domains keep histograms, predicates and the executor simple
// without losing any behaviour the paper studies.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace condsel {

// Index of a table within a Catalog.
using TableId = int32_t;
// Index of a column within its table.
using ColumnId = int32_t;

inline constexpr TableId kInvalidTableId = -1;

// Globally identifies a column as (table, column) pair.
struct ColumnRef {
  TableId table = kInvalidTableId;
  ColumnId column = -1;

  friend bool operator==(const ColumnRef&, const ColumnRef&) = default;
  friend auto operator<=>(const ColumnRef&, const ColumnRef&) = default;
};

struct ColumnSchema {
  std::string name;
  // Declared domain [min_value, max_value]; generators honor this and
  // histogram builders use it as a fallback when a column is empty.
  int64_t min_value = 0;
  int64_t max_value = 0;
  // Primary/foreign key columns are join material; the workload generator
  // only places filter predicates on non-key columns.
  bool is_key = false;
};

// A declared foreign-key relationship: fk_table.fk_column references
// pk_table.pk_column. The paper deliberately breaks referential integrity
// for some of these (dangling tuples get NULLs); the declaration is still
// useful to the workload generator, which draws join predicates from FK
// edges.
struct ForeignKey {
  TableId fk_table = kInvalidTableId;
  ColumnId fk_column = -1;
  TableId pk_table = kInvalidTableId;
  ColumnId pk_column = -1;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnSchema> columns;

  ColumnId num_columns() const {
    return static_cast<ColumnId>(columns.size());
  }
  // Returns the column index for `name`, or -1 if absent.
  ColumnId FindColumn(const std::string& name) const;
};

}  // namespace condsel

