#include "condsel/catalog/part_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/histogram/histogram_merge.h"
#include "condsel/query/join_graph.h"

namespace condsel {

namespace {

std::string SpecName(const SitSpec& spec) {
  std::string s = "T" + std::to_string(spec.attr.table) + ".c" +
                  std::to_string(spec.attr.column);
  if (!spec.expression.empty()) {
    s += " | " + std::to_string(spec.expression.size()) + " preds";
  }
  return s;
}

// Numeric sanity of one stored piece. Bucket-level invariants (sorted,
// non-negative frequencies) are enforced by the Histogram constructor;
// what can still go wrong in persisted or injected state are the scalars
// the constructor does not check. Negated comparisons so NaN fails.
bool PieceSane(const Histogram& h) {
  const double card = h.source_cardinality();
  if (!(card >= 0.0) || !(card <= std::numeric_limits<double>::max())) {
    return false;
  }
  const double freq = h.total_frequency();
  if (!(freq >= 0.0) || !(freq <= 1.0 + 1e-6)) return false;
  return true;
}

}  // namespace

bool SitSpec::References(TableId t) const {
  for (const Predicate& p : expression) {
    for (const ColumnRef& c : p.attrs()) {
      if (c.table == t) return true;
    }
  }
  return false;
}

std::vector<SitSpec> EnumerateSitSpecs(const std::vector<Query>& workload,
                                       int max_join_preds) {
  // Mirrors GenerateSitPool exactly (sit_pool.cc): base histograms over
  // the sorted referenced-column set, then per canonical expression in
  // map order, attributes in sorted order. Keeping the two in lockstep is
  // what makes merged-pool SitIds line up with GenerateSitPool's.
  std::vector<SitSpec> specs;

  std::set<ColumnRef> columns;
  for (const Query& q : workload) {
    for (const Predicate& p : q.predicates()) {
      for (const ColumnRef& c : p.attrs()) columns.insert(c);
    }
  }
  for (const ColumnRef& c : columns) {
    specs.push_back(SitSpec{c, {}});
  }
  if (max_join_preds == 0) return specs;

  std::map<std::vector<Predicate>, std::set<ColumnRef>> wanted;
  for (const Query& q : workload) {
    std::vector<ColumnRef> filter_attrs;
    for (int i : SetElements(q.filter_predicates())) {
      filter_attrs.push_back(q.predicate(i).column());
    }
    for (PredSet joins : ConnectedSubsets(q.predicates(),
                                          q.join_predicates(),
                                          max_join_preds)) {
      const TableSet joined = q.TablesOfSubset(joins);
      const std::vector<Predicate> expr = q.CanonicalSubset(joins);
      for (const ColumnRef& a : filter_attrs) {
        if (!Contains(joined, a.table)) continue;
        wanted[expr].insert(a);
      }
    }
  }
  for (const auto& [expr, attr_set] : wanted) {
    for (const ColumnRef& a : attr_set) {
      specs.push_back(SitSpec{a, expr});
    }
  }
  return specs;
}

void PartStatsSet::SetSpecs(std::vector<SitSpec> specs) {
  specs_ = std::move(specs);
  entries_.clear();
}

std::vector<int32_t> PartStatsSet::SpecsOwnedBy(TableId t) const {
  std::vector<int32_t> out;
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].owner() == t) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

void PartStatsSet::PutEntry(PartStatsEntry entry) {
  const auto key = std::make_pair(entry.table, entry.part);
  entries_[key] = std::move(entry);
}

const PartStatsEntry* PartStatsSet::FindEntry(TableId table,
                                              PartId part) const {
  auto it = entries_.find(std::make_pair(table, part));
  return it == entries_.end() ? nullptr : &it->second;
}

void PartStatsSet::RemoveEntry(TableId table, PartId part) {
  entries_.erase(std::make_pair(table, part));
}

Status PartStatsSet::Audit(const Catalog& catalog) const {
  std::set<TableId> owners;
  for (const SitSpec& spec : specs_) {
    if (spec.owner() < 0 || spec.owner() >= catalog.num_tables()) {
      return Status::FailedPrecondition(
          "part stats spec owner outside catalog: " + SpecName(spec));
    }
    owners.insert(spec.owner());
  }

  for (const TableId t : owners) {
    const Table& table = catalog.table(t);
    if (table.tail_rows() != 0) {
      return Status::FailedPrecondition(
          "table T" + std::to_string(t) +
          " has unsealed tail rows; partitioned statistics cover sealed "
          "parts only");
    }
    const size_t owned = SpecsOwnedBy(t).size();
    for (size_t pi = 0; pi < table.num_parts(); ++pi) {
      const Part& part = table.part(pi);
      const PartStatsEntry* entry = FindEntry(t, part.id());
      if (entry == nullptr) {
        return Status::FailedPrecondition(
            "no statistics entry for part " + std::to_string(part.id()) +
            " of T" + std::to_string(t));
      }
      if (entry->generation != part.generation()) {
        return Status::FailedPrecondition(
            "stale statistics for part " + std::to_string(part.id()) +
            " of T" + std::to_string(t) + ": entry generation " +
            std::to_string(entry->generation) + " vs part generation " +
            std::to_string(part.generation()));
      }
      if (entry->pieces.size() != owned || entry->diffs.size() != owned) {
        return Status::FailedPrecondition(
            "misaligned piece vector for part " +
            std::to_string(part.id()) + " of T" + std::to_string(t));
      }
      for (const Histogram& piece : entry->pieces) {
        if (!PieceSane(piece)) {
          return Status::DataLoss(
              "corrupt statistics piece for part " +
              std::to_string(part.id()) + " of T" + std::to_string(t));
        }
      }
    }
  }

  // Entries for parts the catalog no longer has are stale state a
  // maintainer failed to drop.
  for (const auto& [key, entry] : entries_) {
    const auto [t, pid] = key;
    if (t < 0 || t >= catalog.num_tables() ||
        catalog.table(t).part_index(pid) < 0) {
      return Status::FailedPrecondition(
          "statistics entry for nonexistent part " + std::to_string(pid) +
          " of T" + std::to_string(t));
    }
  }
  return Status::Ok();
}

StatusOr<SitPool> PartStatsSet::BuildMergedPool(const Catalog& catalog,
                                                int max_buckets) const {
  CONDSEL_RETURN_IF_ERROR(Audit(catalog));

  // Fault hook: a corrupt piece must surface as DATA_LOSS from the merge,
  // never as a poisoned pool. The injector flips one working-copy
  // cardinality to NaN (bucket frequencies are constructor-checked, the
  // cardinality scalar is not — exactly the field a torn write would hit).
  bool inject_corruption = false;
  {
    const FaultInjector& fi = FaultInjector::Instance();
    inject_corruption =
        fi.armed() && fi.enabled(Fault::kCorruptPartStats);
  }

  SitPool pool;
  for (const SitSpec& spec : specs_) {
    const TableId owner = spec.owner();
    const Table& table = catalog.table(owner);
    const std::vector<int32_t> owned = SpecsOwnedBy(owner);
    const auto pos_it = std::find_if(
        owned.begin(), owned.end(), [&](int32_t s) {
          return specs_[static_cast<size_t>(s)] == spec;
        });
    // invariant: every spec appears in its own owner's owned-spec list.
    CONDSEL_CHECK(pos_it != owned.end());
    const size_t pos = static_cast<size_t>(pos_it - owned.begin());

    std::vector<Histogram> pieces;
    std::vector<uint64_t> generations;
    std::vector<PartId> part_ids;
    std::vector<double> diffs;
    pieces.reserve(table.num_parts());
    for (size_t pi = 0; pi < table.num_parts(); ++pi) {
      const Part& part = table.part(pi);
      const PartStatsEntry* entry = FindEntry(owner, part.id());
      Histogram piece = entry->pieces[pos];
      if (inject_corruption) {
        piece = Histogram(std::vector<Bucket>(piece.buckets()),
                          std::numeric_limits<double>::quiet_NaN());
        inject_corruption = false;  // one torn piece is enough
      }
      if (!PieceSane(piece)) {
        return Status::DataLoss("corrupt statistics piece for part " +
                                std::to_string(part.id()) + " of " +
                                SpecName(spec));
      }
      pieces.push_back(std::move(piece));
      generations.push_back(part.generation());
      part_ids.push_back(part.id());
      diffs.push_back(entry->diffs[pos]);
    }

    Sit sit;
    sit.attr = spec.attr;
    sit.expression = spec.expression;
    if (pieces.size() == 1) {
      // Single-part passthrough: the piece was built over the full row
      // range, so handing it through unchanged keeps single-part
      // databases bit-identical to the unpartitioned pipeline.
      sit.histogram = std::move(pieces[0]);
      sit.diff = diffs[0];
    } else if (!pieces.empty()) {
      std::vector<const Histogram*> ptrs;
      ptrs.reserve(pieces.size());
      double total_card = 0.0;
      for (const Histogram& p : pieces) {
        ptrs.push_back(&p);
        total_card += p.source_cardinality();
      }
      sit.histogram = MergeHistograms(ptrs, max_buckets);
      double diff = 0.0;
      if (total_card > 0.0) {
        for (size_t i = 0; i < pieces.size(); ++i) {
          diff += diffs[i] * pieces[i].source_cardinality() / total_card;
        }
      }
      sit.diff = diff;
      sit.parts.reserve(pieces.size());
      for (size_t i = 0; i < pieces.size(); ++i) {
        SitPart piece;
        piece.part = part_ids[i];
        piece.generation = generations[i];
        piece.histogram = std::move(pieces[i]);
        sit.parts.push_back(std::move(piece));
      }
    } else {
      // Owning table with no sealed parts (empty table): an empty
      // statistic, like building over zero rows.
      sit.histogram = Histogram({}, 0.0);
      sit.diff = 0.0;
    }
    pool.Add(std::move(sit));
  }
  return pool;
}

PartStatsMaintainer::PartStatsMaintainer(Catalog* catalog,
                                         std::vector<Query> workload,
                                         int max_join_preds,
                                         SitBuildOptions options)
    : catalog_(catalog),
      workload_(std::move(workload)),
      options_(options),
      // No cardinality cache: the maintainer mutates the catalog between
      // builds, and restricted evaluations bypass caching anyway.
      evaluator_(catalog, /*cache=*/nullptr),
      builder_(&evaluator_, options) {
  // invariant: constructor contract — a null catalog is a caller bug.
  CONDSEL_CHECK(catalog != nullptr);
  stats_.SetSpecs(EnumerateSitSpecs(workload_, max_join_preds));
}

PartStatsEntry PartStatsMaintainer::BuildEntry(TableId table,
                                               size_t part_index) {
  const Table& t = catalog_->table(table);
  const Part& part = t.part(part_index);
  const size_t begin = t.part_row_offset(part_index);
  const size_t end = begin + part.num_rows();

  PartStatsEntry entry;
  entry.table = table;
  entry.part = part.id();
  entry.generation = part.generation();
  entry.rows = static_cast<double>(part.num_rows());

  const std::vector<int32_t> owned = stats_.SpecsOwnedBy(table);
  entry.pieces.resize(owned.size());
  entry.diffs.resize(owned.size());

  // Group by expression so each expression is evaluated once per part,
  // same as GenerateSitPool does globally.
  std::map<std::vector<Predicate>, std::vector<size_t>> by_expr;
  for (size_t i = 0; i < owned.size(); ++i) {
    const SitSpec& spec = stats_.specs()[static_cast<size_t>(owned[i])];
    if (spec.expression.empty()) {
      Sit sit = builder_.BuildForRange(spec.attr, {}, begin, end);
      entry.pieces[i] = std::move(sit.histogram);
      entry.diffs[i] = sit.diff;
    } else {
      by_expr[spec.expression].push_back(i);
    }
  }
  for (const auto& [expr, positions] : by_expr) {
    std::vector<ColumnRef> attrs;
    attrs.reserve(positions.size());
    for (size_t i : positions) {
      attrs.push_back(stats_.specs()[static_cast<size_t>(owned[i])].attr);
    }
    std::vector<Sit> sits = builder_.BuildManyForRange(attrs, expr, begin, end);
    // invariant: BuildManyForRange returns one Sit per requested attr.
    CONDSEL_CHECK(sits.size() == positions.size());
    for (size_t k = 0; k < positions.size(); ++k) {
      entry.pieces[positions[k]] = std::move(sits[k].histogram);
      entry.diffs[positions[k]] = sits[k].diff;
    }
  }
  return entry;
}

Status PartStatsMaintainer::BuildAll() {
  std::set<TableId> owners;
  for (const SitSpec& spec : stats_.specs()) owners.insert(spec.owner());
  for (const TableId t : owners) {
    if (t < 0 || t >= catalog_->num_tables()) {
      return Status::FailedPrecondition(
          "workload references table T" + std::to_string(t) +
          " outside the catalog");
    }
    Table& table = catalog_->mutable_table(t);
    if (table.tail_rows() != 0) table.SealTail();
    for (size_t pi = 0; pi < table.num_parts(); ++pi) {
      stats_.PutEntry(BuildEntry(t, pi));
    }
  }
  ++stats_generation_;
  return Status::Ok();
}

StatusOr<DeltaReport> PartStatsMaintainer::ApplyDelta(
    const DeltaBatch& batch) {
  if (batch.table < 0 || batch.table >= catalog_->num_tables()) {
    return Status::InvalidArgument("delta batch targets unknown table T" +
                                   std::to_string(batch.table));
  }
  Table& table = catalog_->mutable_table(batch.table);
  for (const std::vector<int64_t>& row : batch.insert_rows) {
    if (row.size() != static_cast<size_t>(table.num_columns())) {
      return Status::InvalidArgument(
          "insert row has " + std::to_string(row.size()) +
          " values; table T" + std::to_string(batch.table) + " has " +
          std::to_string(table.num_columns()) + " columns");
    }
  }
  for (const size_t r : batch.delete_rows) {
    if (r >= table.num_rows()) {
      return Status::InvalidArgument(
          "delete row " + std::to_string(r) + " out of range for T" +
          std::to_string(batch.table));
    }
  }

  DeltaReport report;

  // Deletes first (indices are pre-batch), then inserts sealed into one
  // new part — the delta batch literally becomes a segment.
  std::vector<PartId> touched;
  if (!batch.delete_rows.empty()) {
    touched = table.DeleteRows(batch.delete_rows);
  }
  PartId new_part = kInvalidPartId;
  if (!batch.insert_rows.empty()) {
    for (const std::vector<int64_t>& row : batch.insert_rows) {
      table.AppendRow(row);
    }
    new_part = table.SealTail();
  }

  // Rebuild delta-table entries for touched parts; drop entries of parts
  // the deletes emptied out.
  const bool owns_specs = !stats_.SpecsOwnedBy(batch.table).empty();
  for (const PartId pid : touched) {
    const int pi = table.part_index(pid);
    if (pi < 0) {
      stats_.RemoveEntry(batch.table, pid);
      report.dropped_parts.push_back(pid);
    } else if (owns_specs) {
      stats_.PutEntry(BuildEntry(batch.table, static_cast<size_t>(pi)));
      report.rebuilt_parts.push_back(pid);
    }
  }
  if (new_part != kInvalidPartId && owns_specs) {
    const int pi = table.part_index(new_part);
    // invariant: SealTail just created this part; it must be present.
    CONDSEL_CHECK(pi >= 0);
    stats_.PutEntry(BuildEntry(batch.table, static_cast<size_t>(pi)));
    report.rebuilt_parts.push_back(new_part);
  }

  // Cross-table refresh: a statistic owned by another table whose
  // expression joins the delta table saw *its* source relation change in
  // every part — each of the owner's pieces for that spec is rebuilt in
  // place (owner part rows are unchanged, so generations stand).
  std::map<TableId, std::vector<size_t>> cross;  // owner -> owned positions
  for (size_t s = 0; s < stats_.specs().size(); ++s) {
    const SitSpec& spec = stats_.specs()[s];
    if (spec.owner() == batch.table) continue;
    if (!spec.References(batch.table)) continue;
    const std::vector<int32_t> owned = stats_.SpecsOwnedBy(spec.owner());
    const auto it = std::find(owned.begin(), owned.end(),
                              static_cast<int32_t>(s));
    // invariant: every spec appears in its own owner's owned-spec list.
    CONDSEL_CHECK(it != owned.end());
    cross[spec.owner()].push_back(
        static_cast<size_t>(it - owned.begin()));
  }
  std::set<std::pair<TableId, PartId>> cross_touched;
  for (const auto& [owner, positions] : cross) {
    const Table& ot = catalog_->table(owner);
    const std::vector<int32_t> owned = stats_.SpecsOwnedBy(owner);
    for (size_t pi = 0; pi < ot.num_parts(); ++pi) {
      const Part& part = ot.part(pi);
      const size_t begin = ot.part_row_offset(pi);
      const size_t end = begin + part.num_rows();
      const PartStatsEntry* old = stats_.FindEntry(owner, part.id());
      // BuildAll populated an entry for every owner part and this
      // delta left owner parts untouched — invariant: the entry exists.
      CONDSEL_CHECK(old != nullptr);
      PartStatsEntry entry = *old;
      // Group the affected positions by expression: one evaluation per
      // (expression, part), as in BuildEntry.
      std::map<std::vector<Predicate>, std::vector<size_t>> by_expr;
      for (size_t p : positions) {
        by_expr[stats_.specs()[static_cast<size_t>(owned[p])].expression]
            .push_back(p);
      }
      for (const auto& [expr, pos_list] : by_expr) {
        std::vector<ColumnRef> attrs;
        for (size_t p : pos_list) {
          attrs.push_back(
              stats_.specs()[static_cast<size_t>(owned[p])].attr);
        }
        std::vector<Sit> sits =
            builder_.BuildManyForRange(attrs, expr, begin, end);
        // invariant: BuildManyForRange returns one Sit per requested attr.
        CONDSEL_CHECK(sits.size() == pos_list.size());
        for (size_t k = 0; k < pos_list.size(); ++k) {
          entry.pieces[pos_list[k]] = std::move(sits[k].histogram);
          entry.diffs[pos_list[k]] = sits[k].diff;
          ++report.cross_table_pieces_rebuilt;
        }
      }
      cross_touched.insert(std::make_pair(owner, part.id()));
      stats_.PutEntry(std::move(entry));
    }
  }

  // Entries untouched by either pass survived the delta by structure
  // sharing — the quantity bench_staleness divides cost by.
  for (const auto& [key, entry] : stats_.entries()) {
    const bool owner_rebuilt =
        key.first == batch.table &&
        (std::find(report.rebuilt_parts.begin(), report.rebuilt_parts.end(),
                   key.second) != report.rebuilt_parts.end());
    if (!owner_rebuilt && cross_touched.count(key) == 0) {
      ++report.reused_entries;
    }
  }

  ++stats_generation_;
  report.stats_generation = stats_generation_;
  return report;
}

StatusOr<std::shared_ptr<const SitPool>> PartStatsMaintainer::MergedPool()
    const {
  StatusOr<SitPool> pool =
      stats_.BuildMergedPool(*catalog_, options_.max_buckets);
  if (!pool.ok()) return pool.status();
  auto out = std::make_shared<SitPool>(std::move(pool.value()));
  out->set_generation(stats_generation_);
  return std::shared_ptr<const SitPool>(std::move(out));
}

}  // namespace condsel
