#include "condsel/catalog/catalog.h"

#include "condsel/common/macros.h"

namespace condsel {

TableId Catalog::AddTable(Table table) {
  tables_.push_back(std::move(table));
  return static_cast<TableId>(tables_.size() - 1);
}

void Catalog::AddForeignKey(const ForeignKey& fk) {
  CONDSEL_CHECK(fk.fk_table >= 0 && fk.fk_table < num_tables());
  CONDSEL_CHECK(fk.pk_table >= 0 && fk.pk_table < num_tables());
  foreign_keys_.push_back(fk);
}

const Table& Catalog::table(TableId id) const {
  CONDSEL_CHECK(id >= 0 && id < num_tables());
  return tables_[static_cast<size_t>(id)];
}

Table& Catalog::mutable_table(TableId id) {
  CONDSEL_CHECK(id >= 0 && id < num_tables());
  return tables_[static_cast<size_t>(id)];
}

TableId Catalog::FindTable(const std::string& name) const {
  for (TableId i = 0; i < num_tables(); ++i) {
    if (tables_[static_cast<size_t>(i)].schema().name == name) return i;
  }
  return kInvalidTableId;
}

ColumnRef Catalog::ResolveColumn(const std::string& table_name,
                                 const std::string& column_name) const {
  const TableId t = FindTable(table_name);
  CONDSEL_CHECK_MSG(t != kInvalidTableId, table_name.c_str());
  const ColumnId c = table(t).schema().FindColumn(column_name);
  CONDSEL_CHECK_MSG(c >= 0, column_name.c_str());
  return ColumnRef{t, c};
}

double Catalog::CartesianCardinality(
    const std::vector<TableId>& tables) const {
  double card = 1.0;
  for (TableId t : tables) {
    card *= static_cast<double>(table(t).num_rows());
  }
  return card;
}

}  // namespace condsel
