#include "condsel/catalog/catalog.h"

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"

namespace condsel {

TableId Catalog::AddTable(Table table) {
  tables_.push_back(std::move(table));
  return static_cast<TableId>(tables_.size() - 1);
}

void Catalog::AddForeignKey(const ForeignKey& fk) {
  // Untrusted sources (the deserializer) validate ids before calling.
  CONDSEL_CHECK(fk.fk_table >= 0 && fk.fk_table < num_tables());  // invariant
  CONDSEL_CHECK(fk.pk_table >= 0 && fk.pk_table < num_tables());  // invariant
  foreign_keys_.push_back(fk);
}

const Table& Catalog::table(TableId id) const {
  CONDSEL_CHECK(id >= 0 && id < num_tables());  // invariant: valid id
  return tables_[static_cast<size_t>(id)];
}

Table& Catalog::mutable_table(TableId id) {
  CONDSEL_CHECK(id >= 0 && id < num_tables());  // invariant: valid id
  return tables_[static_cast<size_t>(id)];
}

TableId Catalog::FindTable(const std::string& name) const {
  for (TableId i = 0; i < num_tables(); ++i) {
    if (tables_[static_cast<size_t>(i)].schema().name == name) return i;
  }
  return kInvalidTableId;
}

StatusOr<ColumnRef> Catalog::TryResolveColumn(
    const std::string& table_name, const std::string& column_name) const {
  const TableId t = FindTable(table_name);
  if (t == kInvalidTableId) {
    return Status::NotFound("unknown table '" + table_name + "'");
  }
  const ColumnId c = table(t).schema().FindColumn(column_name);
  if (c < 0) {
    return Status::NotFound("unknown column '" + table_name + "." +
                            column_name + "'");
  }
  return ColumnRef{t, c};
}

ColumnRef Catalog::ResolveColumn(const std::string& table_name,
                                 const std::string& column_name) const {
  StatusOr<ColumnRef> ref = TryResolveColumn(table_name, column_name);
  // invariant: abort-on-unknown contract for trusted generated names.
  CONDSEL_CHECK_MSG(ref.ok(), ref.status().ToString().c_str());
  return *ref;
}

double Catalog::CartesianCardinality(
    const std::vector<TableId>& tables) const {
  double card = 1.0;
  for (TableId t : tables) {
    card = SaturatingMultiply(card, static_cast<double>(table(t).num_rows()));
  }
  return card;
}

}  // namespace condsel
