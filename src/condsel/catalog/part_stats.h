// Partitioned statistics: per-part histograms/SITs with incremental
// maintenance.
//
// A statistic SIT_R(a | Q) is *owned* by a.table: restricting that table
// to one part's rows partitions the expression result exactly (each
// result tuple selects exactly one owner row), so per-part pieces built
// with SitBuilder::BuildForRange sum to the global statistic. This file
// holds the three layers of the partitioned scheme:
//
//  - SitSpec / EnumerateSitSpecs: the *shape* of a statistics pool —
//    which (attribute | expression) pairs exist — enumerated in exactly
//    the order GenerateSitPool adds SITs, so merged pools assign the same
//    SitId to the same statistic and single-part databases stay
//    bit-identical to the unpartitioned path.
//
//  - PartStatsEntry / PartStatsSet: the stored per-part pieces, stamped
//    with the owning part's generation. BuildMergedPool folds them into a
//    SitPool: one piece passes through untouched (bit-identity); several
//    pieces become a partitioned Sit carrying the pieces for merge-at-
//    Score plus a cardinality-weighted summary histogram.
//
//  - PartStatsMaintainer: builds all entries, and ApplyDelta rebuilds
//    only what a batch of inserts/deletes invalidates — touched parts of
//    the delta table, plus (for statistics owned by *other* tables whose
//    expression joins the delta table) the cross-table pieces. Untouched
//    parts keep their entries: that is the cost ∝ parts-touched property
//    bench_staleness measures.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/common/status.h"
#include "condsel/exec/evaluator.h"
#include "condsel/histogram/histogram.h"
#include "condsel/query/query.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"
#include "condsel/storage/part.h"

namespace condsel {

// The identity of one statistic: SIT_{attr.table}(attr | expression),
// with the canonical (sorted) expression; empty = base histogram. The
// owning table — the one whose parts partition the pieces — is always
// attr.table.
struct SitSpec {
  ColumnRef attr;
  std::vector<Predicate> expression;

  TableId owner() const { return attr.table; }
  // True if the expression references `t` (the owner is referenced by
  // definition only when some predicate mentions it; base specs reference
  // nothing beyond the owner).
  bool References(TableId t) const;

  friend bool operator==(const SitSpec&, const SitSpec&) = default;
};

// The specs GenerateSitPool would build for this workload, in the exact
// order it adds them (base histograms over the sorted column set first,
// then per canonical expression in map order, attributes sorted). The
// returned list is duplicate-free, so BuildMergedPool's sequential Add
// assigns SitId == spec index.
std::vector<SitSpec> EnumerateSitSpecs(const std::vector<Query>& workload,
                                       int max_join_preds);

// Pieces of every spec owned by `table`, for one part. `pieces[i]` and
// `diffs[i]` align with PartStatsSet::SpecsOwnedBy(table)[i]. The
// generation stamp is the owning part's generation at build time — a
// mismatch against the live catalog means the entry is stale.
struct PartStatsEntry {
  TableId table = kInvalidTableId;
  PartId part = kInvalidPartId;
  uint64_t generation = 0;
  double rows = 0.0;
  std::vector<Histogram> pieces;
  std::vector<double> diffs;
};

class PartStatsSet {
 public:
  // Installs the spec list (clears existing entries: entries are indexed
  // against the spec order).
  void SetSpecs(std::vector<SitSpec> specs);

  const std::vector<SitSpec>& specs() const { return specs_; }
  // Indices into specs() of the specs owned by `t` (ascending).
  std::vector<int32_t> SpecsOwnedBy(TableId t) const;

  void PutEntry(PartStatsEntry entry);
  const PartStatsEntry* FindEntry(TableId table, PartId part) const;
  void RemoveEntry(TableId table, PartId part);
  const std::map<std::pair<TableId, PartId>, PartStatsEntry>& entries()
      const {
    return entries_;
  }

  // Structural + freshness audit against the live catalog: every part of
  // every owning table has an entry, generations match, no owning table
  // has an unsealed tail, piece vectors align with the owned-spec lists,
  // and every piece is numerically sane. FAILED_PRECONDITION for missing
  // or stale entries, DATA_LOSS for corrupt pieces.
  Status Audit(const Catalog& catalog) const;

  // Folds the entries into a SitPool (ids follow spec order; see
  // EnumerateSitSpecs). Runs the same audit first. The fault
  // kCorruptPartStats flips one piece frequency to NaN in the working
  // copy, which the sanity validation must catch — DATA_LOSS, never a
  // poisoned pool.
  StatusOr<SitPool> BuildMergedPool(const Catalog& catalog,
                                    int max_buckets) const;

 private:
  std::vector<SitSpec> specs_;
  std::map<std::pair<TableId, PartId>, PartStatsEntry> entries_;
};

// One maintenance batch against a single table. Deletes are absolute row
// indices into the table's pre-batch state; inserts append full rows
// (one value per column) which the maintainer seals into a new part.
struct DeltaBatch {
  TableId table = kInvalidTableId;
  std::vector<std::vector<int64_t>> insert_rows;
  std::vector<size_t> delete_rows;
};

// What ApplyDelta actually rebuilt — the observable for the cost ∝
// parts-touched property.
struct DeltaReport {
  std::vector<PartId> rebuilt_parts;    // delta-table entries (re)built
  std::vector<PartId> dropped_parts;    // delta-table entries removed
  int cross_table_pieces_rebuilt = 0;   // pieces refreshed in other
                                        // tables' entries
  int reused_entries = 0;               // entries kept without rebuild
  uint64_t stats_generation = 0;        // after the batch
};

class PartStatsMaintainer {
 public:
  // `catalog` must outlive the maintainer and not be mutated behind its
  // back — all data changes go through ApplyDelta.
  PartStatsMaintainer(Catalog* catalog, std::vector<Query> workload,
                      int max_join_preds, SitBuildOptions options);

  // Seals any open tails (every row must belong to a part) and builds an
  // entry for every part of every owning table.
  Status BuildAll();

  // Applies the batch to the catalog (deletes first, then inserts sealed
  // into one new part) and rebuilds exactly the invalidated statistics.
  StatusOr<DeltaReport> ApplyDelta(const DeltaBatch& batch);

  const PartStatsSet& stats() const { return stats_; }

  // The maintained catalog (the object handed to the constructor).
  const Catalog& catalog() const { return *catalog_; }

  // Monotonic stamp, bumped by BuildAll and every ApplyDelta; merged
  // pools carry it so estimate caches can detect staleness.
  uint64_t stats_generation() const { return stats_generation_; }

  // Merges the current entries into a pool stamped with
  // stats_generation(). Fails (never poisons) on corrupt pieces.
  StatusOr<std::shared_ptr<const SitPool>> MergedPool() const;

 private:
  // Builds (or rebuilds) the entry for one part of `table`.
  PartStatsEntry BuildEntry(TableId table, size_t part_index);

  Catalog* catalog_;
  std::vector<Query> workload_;
  SitBuildOptions options_;
  Evaluator evaluator_;
  SitBuilder builder_;
  PartStatsSet stats_;
  uint64_t stats_generation_ = 0;
};

}  // namespace condsel
