// Connectivity over predicate sets.
//
// Two predicates are connected when their table sets transitively
// intersect. The connected components of P ∪ Q are exactly the factors of
// the paper's *standard decomposition* (Lemma 2): Sel_R(P|Q) is separable
// (Definition 2) iff there is more than one component.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/query/predicate.h"
#include "condsel/query/predicate_set.h"

namespace condsel {

// Union-find over a small universe of integer ids (tables).
class UnionFind {
 public:
  explicit UnionFind(int n);

  int Find(int x);
  void Union(int a, int b);
  bool Connected(int a, int b) { return Find(a) == Find(b); }

 private:
  std::vector<int> parent_;
};

// Fixed-capacity component list: `subset` has at most kMaxPredicates
// bits, so at most that many components. Returned by value — the whole
// struct lives on the caller's stack, which is what makes the hot-path
// decomposition allocation-free.
struct ComponentList {
  PredSet comps[kMaxPredicates];
  int count = 0;

  const PredSet* begin() const { return comps; }
  const PredSet* end() const { return comps + count; }
  size_t size() const { return static_cast<size_t>(count); }
  bool empty() const { return count == 0; }
  PredSet operator[](size_t i) const { return comps[i]; }
};

// Partitions `subset` (a bitmask over `preds`) into connected components.
// Components are returned as bitmasks, ordered by their lowest predicate
// index, which makes the output canonical (used by Lemma 2's uniqueness).
// Performs no heap allocation.
ComponentList ConnectedComponentsFast(const std::vector<Predicate>& preds,
                                      PredSet subset);

// Vector-returning wrapper over ConnectedComponentsFast for callers off
// the hot path; identical contents and order.
std::vector<PredSet> ConnectedComponents(const std::vector<Predicate>& preds,
                                         PredSet subset);

// True iff `subset` has >= 2 connected components (Definition 2 with
// Q = empty; callers pass P ∪ Q for conditional expressions).
bool IsSeparable(const std::vector<Predicate>& preds, PredSet subset);

// True iff the *tables* referenced by `subset` form one connected piece
// when linked by the join predicates inside `subset`. Differs from
// ConnectedComponents when a filter references a table no join touches.
bool JoinsConnectTables(const std::vector<Predicate>& preds, PredSet subset);

// All non-empty subsets of `candidates` with at most `max_size` elements
// that form a single connected component. Used for SIT pool generation
// (connected join expressions) and for enumerating plan-like sub-queries.
std::vector<PredSet> ConnectedSubsets(const std::vector<Predicate>& preds,
                                      PredSet candidates, int max_size);

}  // namespace condsel

