// Predicates of the canonical SPJ form (Section 2 of the paper).
//
// A query is represented as sigma_{p1 ^ ... ^ pn}(R1 x ... x Rk), where
// each p_i is either a range filter over one column (R.a in [lo, hi]) or an
// equi-join between two columns (R.x = S.y). Predicates are value types
// with a total order, so canonical (sorted) predicate lists can key global
// caches shared across queries.

#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/query/predicate_set.h"

namespace condsel {

class Catalog;

enum class PredicateKind : uint8_t { kFilter, kJoin };

class Predicate {
 public:
  // Range filter: column in [lo, hi], both inclusive.
  static Predicate Filter(ColumnRef column, int64_t lo, int64_t hi);
  // Equality filter: column == v.
  static Predicate Equals(ColumnRef column, int64_t v);
  // Equi-join: left == right. Canonicalized so left <= right.
  static Predicate Join(ColumnRef left, ColumnRef right);

  PredicateKind kind() const { return kind_; }
  bool is_filter() const { return kind_ == PredicateKind::kFilter; }
  bool is_join() const { return kind_ == PredicateKind::kJoin; }

  // Filter accessors (abort on joins).
  ColumnRef column() const;
  int64_t lo() const;
  int64_t hi() const;

  // Join accessors (abort on filters).
  ColumnRef left() const;
  ColumnRef right() const;

  // Bitmask of tables referenced by this predicate.
  TableSet tables() const;

  // Columns referenced: 1 for a filter, 2 for a join.
  std::vector<ColumnRef> attrs() const;

  // Debug string, e.g. "T2.c1 in [5,20]" or "T0.c3 = T1.c0".
  std::string ToString(const Catalog& catalog) const;
  std::string ToString() const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
  friend std::strong_ordering operator<=>(const Predicate&,
                                          const Predicate&) = default;

 private:
  Predicate() = default;

  PredicateKind kind_ = PredicateKind::kFilter;
  // Filter: cols_[0] with range [lo_, hi_]. Join: cols_[0] = cols_[1].
  ColumnRef cols_[2];
  int64_t lo_ = 0;
  int64_t hi_ = 0;
};

// Bitmask of tables referenced by the predicates of `preds` selected by
// `subset` — the paper's tables(P).
TableSet TablesOf(const std::vector<Predicate>& preds, PredSet subset);

}  // namespace condsel

