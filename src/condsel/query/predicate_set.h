// Bitmask set types for predicates and tables.
//
// Within one query, predicates are indexed 0..n-1 (n <= 32) and subsets are
// uint32 bitmasks. This makes getSelectivity's "for each P' subseteq P"
// loop (Fig. 3, line 10) a standard sub-mask enumeration, and the
// memoization table an array indexed by mask. Tables are likewise bitmasks
// over catalog TableIds.

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace condsel {

using PredSet = uint32_t;
using TableSet = uint32_t;

inline constexpr int kMaxPredicates = 32;

inline int SetSize(uint32_t s) { return std::popcount(s); }
inline bool Contains(uint32_t s, int i) { return (s >> i) & 1u; }
inline uint32_t With(uint32_t s, int i) { return s | (1u << i); }
inline uint32_t Without(uint32_t s, int i) { return s & ~(1u << i); }
inline bool IsSubset(uint32_t sub, uint32_t super) {
  return (sub & ~super) == 0;
}

// Expands a bitmask into element indices, low to high.
std::vector<int> SetElements(uint32_t s);

// Allocation-free range over the set bits of a mask, low to high:
//   for (int i : SetBits(mask)) ...
// The hot-path replacement for SetElements — identical iteration order,
// no vector materialized.
class SetBits {
 public:
  class Iterator {
   public:
    explicit Iterator(uint32_t rest) : rest_(rest) {}
    int operator*() const { return std::countr_zero(rest_); }
    Iterator& operator++() {
      rest_ &= rest_ - 1;  // clear lowest set bit
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return rest_ != other.rest_;
    }
    bool operator==(const Iterator& other) const {
      return rest_ == other.rest_;
    }

   private:
    uint32_t rest_;
  };

  explicit SetBits(uint32_t mask) : mask_(mask) {}
  Iterator begin() const { return Iterator(mask_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint32_t mask_;
};

// Iterates all non-empty proper sub-masks of `s` in decreasing order:
//   for (uint32_t sub = PrevSubmask(s, s); sub; sub = PrevSubmask(s, sub))
// PrevSubmask(s, s) yields the largest proper submask.
inline uint32_t PrevSubmask(uint32_t s, uint32_t cur) {
  return (cur - 1) & s;
}

}  // namespace condsel

