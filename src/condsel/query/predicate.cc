#include "condsel/query/predicate.h"

#include <cinttypes>
#include <cstdio>

#include "condsel/catalog/catalog.h"
#include "condsel/common/macros.h"

namespace condsel {

Predicate Predicate::Filter(ColumnRef column, int64_t lo, int64_t hi) {
  CONDSEL_CHECK(lo <= hi);
  Predicate p;
  p.kind_ = PredicateKind::kFilter;
  p.cols_[0] = column;
  p.cols_[1] = ColumnRef{};
  p.lo_ = lo;
  p.hi_ = hi;
  return p;
}

Predicate Predicate::Equals(ColumnRef column, int64_t v) {
  return Filter(column, v, v);
}

Predicate Predicate::Join(ColumnRef left, ColumnRef right) {
  CONDSEL_CHECK(left.table != right.table);  // no self-joins (see DESIGN.md)
  Predicate p;
  p.kind_ = PredicateKind::kJoin;
  if (right < left) std::swap(left, right);
  p.cols_[0] = left;
  p.cols_[1] = right;
  return p;
}

ColumnRef Predicate::column() const {
  CONDSEL_CHECK(is_filter());
  return cols_[0];
}

int64_t Predicate::lo() const {
  CONDSEL_CHECK(is_filter());
  return lo_;
}

int64_t Predicate::hi() const {
  CONDSEL_CHECK(is_filter());
  return hi_;
}

ColumnRef Predicate::left() const {
  CONDSEL_CHECK(is_join());
  return cols_[0];
}

ColumnRef Predicate::right() const {
  CONDSEL_CHECK(is_join());
  return cols_[1];
}

TableSet Predicate::tables() const {
  TableSet s = 1u << cols_[0].table;
  if (is_join()) s |= 1u << cols_[1].table;
  return s;
}

std::vector<ColumnRef> Predicate::attrs() const {
  if (is_filter()) return {cols_[0]};
  return {cols_[0], cols_[1]};
}

std::string Predicate::ToString(const Catalog& catalog) const {
  char buf[160];
  auto col_name = [&](const ColumnRef& c) {
    return catalog.table(c.table).schema().name + "." +
           catalog.table(c.table)
               .schema()
               .columns[static_cast<size_t>(c.column)]
               .name;
  };
  if (is_filter()) {
    if (lo_ == hi_) {
      std::snprintf(buf, sizeof(buf), "%s = %" PRId64,
                    col_name(cols_[0]).c_str(), lo_);
    } else {
      std::snprintf(buf, sizeof(buf), "%s in [%" PRId64 ",%" PRId64 "]",
                    col_name(cols_[0]).c_str(), lo_, hi_);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%s = %s", col_name(cols_[0]).c_str(),
                  col_name(cols_[1]).c_str());
  }
  return buf;
}

std::string Predicate::ToString() const {
  char buf[160];
  if (is_filter()) {
    std::snprintf(buf, sizeof(buf),
                  "T%d.c%d in [%" PRId64 ",%" PRId64 "]", cols_[0].table,
                  cols_[0].column, lo_, hi_);
  } else {
    std::snprintf(buf, sizeof(buf), "T%d.c%d = T%d.c%d", cols_[0].table,
                  cols_[0].column, cols_[1].table, cols_[1].column);
  }
  return buf;
}

TableSet TablesOf(const std::vector<Predicate>& preds, PredSet subset) {
  TableSet s = 0;
  for (int i = 0; i < static_cast<int>(preds.size()); ++i) {
    if (Contains(subset, i)) s |= preds[static_cast<size_t>(i)].tables();
  }
  return s;
}

std::vector<int> SetElements(uint32_t s) {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(SetSize(s)));
  while (s != 0) {
    const int i = std::countr_zero(s);
    out.push_back(i);
    s &= s - 1;
  }
  return out;
}

}  // namespace condsel
