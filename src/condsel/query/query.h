// The canonical SPJ query: an ordered list of predicates over a set of
// tables (Section 2). Predicate positions are stable, so PredSet bitmasks
// unambiguously name predicate subsets of this query.

#pragma once

#include <string>
#include <vector>

#include "condsel/query/predicate.h"
#include "condsel/query/predicate_set.h"

namespace condsel {

class Catalog;

class Query {
 public:
  Query() = default;
  explicit Query(std::vector<Predicate> predicates);

  int num_predicates() const {
    return static_cast<int>(predicates_.size());
  }
  const Predicate& predicate(int i) const {
    return predicates_[static_cast<size_t>(i)];
  }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  // All predicates of this query as a bitmask.
  PredSet all_predicates() const {
    return num_predicates() == 0
               ? 0u
               : (num_predicates() == kMaxPredicates
                      ? ~0u
                      : (1u << num_predicates()) - 1u);
  }

  // tables(P) for P = all predicates.
  TableSet tables() const { return tables_; }

  // tables(P) for an arbitrary subset.
  TableSet TablesOfSubset(PredSet subset) const {
    return TablesOf(predicates_, subset);
  }

  // Subset of `all_predicates()` that are joins / filters.
  PredSet join_predicates() const { return joins_; }
  PredSet filter_predicates() const { return filters_; }

  // Extracts the selected predicates as a sorted (canonical) vector —
  // the key used by cross-query caches (cardinalities, SITs).
  std::vector<Predicate> CanonicalSubset(PredSet subset) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  std::vector<Predicate> predicates_;
  TableSet tables_ = 0;
  PredSet joins_ = 0;
  PredSet filters_ = 0;
};

}  // namespace condsel

