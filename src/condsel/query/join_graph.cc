#include "condsel/query/join_graph.h"

#include <algorithm>

#include "condsel/common/macros.h"

namespace condsel {

UnionFind::UnionFind(int n) : parent_(static_cast<size_t>(n)) {
  for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
}

int UnionFind::Find(int x) {
  while (parent_[static_cast<size_t>(x)] != x) {
    parent_[static_cast<size_t>(x)] =
        parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

void UnionFind::Union(int a, int b) {
  const int ra = Find(a), rb = Find(b);
  if (ra != rb) parent_[static_cast<size_t>(ra)] = rb;
}

std::vector<PredSet> ConnectedComponents(const std::vector<Predicate>& preds,
                                         PredSet subset) {
  std::vector<PredSet> components;
  if (subset == 0) return components;

  // Union tables linked by each predicate in the subset; two predicates
  // end up connected iff their table sets meet transitively.
  UnionFind uf(32);
  for (int i : SetElements(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    if (p.is_join()) {
      uf.Union(p.left().table, p.right().table);
    }
  }

  // Group predicates by the root of (any of) their tables. A filter
  // belongs to the component of its single table; a join's two tables are
  // already unioned.
  std::vector<std::pair<int, int>> root_and_pred;  // (table root, pred idx)
  for (int i : SetElements(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    const int root = uf.Find(
        p.is_join() ? p.left().table : p.column().table);
    root_and_pred.emplace_back(root, i);
  }

  // Stable grouping that keeps components ordered by lowest pred index.
  std::vector<int> seen_roots;
  for (const auto& [root, i] : root_and_pred) {
    auto it = std::find(seen_roots.begin(), seen_roots.end(), root);
    if (it == seen_roots.end()) {
      seen_roots.push_back(root);
      components.push_back(1u << i);
    } else {
      components[static_cast<size_t>(it - seen_roots.begin())] |= 1u << i;
    }
  }
  return components;
}

bool IsSeparable(const std::vector<Predicate>& preds, PredSet subset) {
  return ConnectedComponents(preds, subset).size() >= 2;
}

std::vector<PredSet> ConnectedSubsets(const std::vector<Predicate>& preds,
                                      PredSet candidates, int max_size) {
  std::vector<PredSet> out;
  const std::vector<int> elems = SetElements(candidates);
  const int n = static_cast<int>(elems.size());
  CONDSEL_CHECK(n <= 20);
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (SetSize(mask) > max_size) continue;
    PredSet subset = 0;
    for (int b = 0; b < n; ++b) {
      if (Contains(mask, b)) {
        subset = With(subset, elems[static_cast<size_t>(b)]);
      }
    }
    if (ConnectedComponents(preds, subset).size() == 1) {
      out.push_back(subset);
    }
  }
  return out;
}

bool JoinsConnectTables(const std::vector<Predicate>& preds, PredSet subset) {
  const TableSet tables = TablesOf(preds, subset);
  if (tables == 0) return true;
  UnionFind uf(32);
  for (int i : SetElements(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    if (p.is_join()) uf.Union(p.left().table, p.right().table);
  }
  const std::vector<int> table_ids = SetElements(tables);
  for (size_t k = 1; k < table_ids.size(); ++k) {
    if (!uf.Connected(table_ids[0], table_ids[k])) return false;
  }
  return true;
}

}  // namespace condsel
