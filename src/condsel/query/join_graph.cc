#include "condsel/query/join_graph.h"

#include <bit>

#include "condsel/common/macros.h"

namespace condsel {

namespace {

// Stack-resident union-find over the fixed 32-id universe (tables are
// catalog ids < 32, like predicates). The heap-free replacement for
// UnionFind on the estimation hot path, where ConnectedComponents runs
// once per subset of the DP lattice.
struct SmallUnionFind {
  int parent[kMaxPredicates];

  SmallUnionFind() {
    for (int i = 0; i < kMaxPredicates; ++i) parent[i] = i;
  }

  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void Union(int a, int b) {
    const int ra = Find(a), rb = Find(b);
    if (ra != rb) parent[ra] = rb;
  }

  bool Connected(int a, int b) { return Find(a) == Find(b); }
};

}  // namespace

UnionFind::UnionFind(int n) : parent_(static_cast<size_t>(n)) {
  for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
}

int UnionFind::Find(int x) {
  while (parent_[static_cast<size_t>(x)] != x) {
    parent_[static_cast<size_t>(x)] =
        parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

void UnionFind::Union(int a, int b) {
  const int ra = Find(a), rb = Find(b);
  if (ra != rb) parent_[static_cast<size_t>(ra)] = rb;
}

ComponentList ConnectedComponentsFast(const std::vector<Predicate>& preds,
                                      PredSet subset) {
  ComponentList out;
  if (subset == 0) return out;

  // Union tables linked by each predicate in the subset; two predicates
  // end up connected iff their table sets meet transitively.
  SmallUnionFind uf;
  for (int i : SetBits(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    if (p.is_join()) {
      uf.Union(p.left().table, p.right().table);
    }
  }

  // Group predicates by the root of (any of) their tables, keeping
  // components ordered by lowest predicate index. A filter belongs to the
  // component of its single table; a join's two tables are already
  // unioned. Linear scan over seen roots: component counts are tiny and
  // the array is stack-resident.
  int seen_roots[kMaxPredicates];
  for (int i : SetBits(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    const int root =
        uf.Find(p.is_join() ? p.left().table : p.column().table);
    int slot = -1;
    for (int k = 0; k < out.count; ++k) {
      if (seen_roots[k] == root) {
        slot = k;
        break;
      }
    }
    if (slot < 0) {
      seen_roots[out.count] = root;
      out.comps[out.count] = 1u << i;
      ++out.count;
    } else {
      out.comps[slot] |= 1u << i;
    }
  }
  return out;
}

std::vector<PredSet> ConnectedComponents(const std::vector<Predicate>& preds,
                                         PredSet subset) {
  const ComponentList fast = ConnectedComponentsFast(preds, subset);
  return std::vector<PredSet>(fast.begin(), fast.end());
}

bool IsSeparable(const std::vector<Predicate>& preds, PredSet subset) {
  return ConnectedComponentsFast(preds, subset).count >= 2;
}

std::vector<PredSet> ConnectedSubsets(const std::vector<Predicate>& preds,
                                      PredSet candidates, int max_size) {
  std::vector<PredSet> out;
  const std::vector<int> elems = SetElements(candidates);
  const int n = static_cast<int>(elems.size());
  CONDSEL_CHECK(n <= 20);
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (SetSize(mask) > max_size) continue;
    PredSet subset = 0;
    for (int b = 0; b < n; ++b) {
      if (Contains(mask, b)) {
        subset = With(subset, elems[static_cast<size_t>(b)]);
      }
    }
    if (ConnectedComponentsFast(preds, subset).count == 1) {
      out.push_back(subset);
    }
  }
  return out;
}

bool JoinsConnectTables(const std::vector<Predicate>& preds, PredSet subset) {
  const TableSet tables = TablesOf(preds, subset);
  if (tables == 0) return true;
  SmallUnionFind uf;
  for (int i : SetBits(subset)) {
    const Predicate& p = preds[static_cast<size_t>(i)];
    if (p.is_join()) uf.Union(p.left().table, p.right().table);
  }
  const int first = std::countr_zero(tables);
  for (int t : SetBits(tables)) {
    if (!uf.Connected(first, t)) return false;
  }
  return true;
}

}  // namespace condsel
