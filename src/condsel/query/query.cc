#include "condsel/query/query.h"

#include <algorithm>

#include "condsel/catalog/catalog.h"
#include "condsel/common/macros.h"

namespace condsel {

Query::Query(std::vector<Predicate> predicates)
    : predicates_(std::move(predicates)) {
  CONDSEL_CHECK(static_cast<int>(predicates_.size()) <= kMaxPredicates);
  for (int i = 0; i < num_predicates(); ++i) {
    const Predicate& p = predicates_[static_cast<size_t>(i)];
    tables_ |= p.tables();
    if (p.is_join()) {
      joins_ = With(joins_, i);
    } else {
      filters_ = With(filters_, i);
    }
  }
}

std::vector<Predicate> Query::CanonicalSubset(PredSet subset) const {
  std::vector<Predicate> out;
  out.reserve(static_cast<size_t>(SetSize(subset)));
  for (int i : SetElements(subset)) {
    out.push_back(predicates_[static_cast<size_t>(i)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Query::ToString(const Catalog& catalog) const {
  std::string s = "sigma{";
  for (int i = 0; i < num_predicates(); ++i) {
    if (i > 0) s += " AND ";
    s += predicates_[static_cast<size_t>(i)].ToString(catalog);
  }
  s += "}";
  return s;
}

}  // namespace condsel
