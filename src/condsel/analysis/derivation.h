// The derivation DAG: a typed record of the probability algebra behind an
// estimate.
//
// Every estimator in this library produces its answer by composing a small
// set of algebraic steps over conditional selectivities:
//   - a separability split  Sel(P) = Π_i Sel(C_i)      (Property 2),
//   - a conditional factorization  Sel(P) = Sel(P'|Q) · Sel(Q)  (Property 1),
//   - an application of concrete statistics (SITs / base histograms) to a
//     factor Sel(P'|Q), whose hypothesis set Q' ⊆ Q names the predicates
//     the statistic actually accounts for (Section 2.2),
//   - an independence-assumption product over single predicates (the noSit
//     path and the budget-degradation fallback).
// The code trusts these identities; the DAG makes them *checkable*. Each
// estimation path records one node per predicate-subset subproblem, with
// the step that produced its selectivity, and DerivationAuditor
// (analysis/auditor.h) statically verifies the whole derivation without
// re-running estimation.
//
// Recording is optional and off by default: estimators take a nullable
// DerivationDag* and skip all bookkeeping when it is null, so the hot path
// pays one pointer test per memo insert. A recorder must be attached
// before the first estimate of a session — nodes are recorded as memo
// entries are created, so a late attach would leave dangling references
// (which the auditor reports as violations, not crashes).

#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "condsel/query/query.h"

namespace condsel {

// The algebraic step that produced a node's selectivity.
enum class DerivKind {
  kEmptySet,           // Sel(∅) = 1, the recursion's base case
  kSeparableSplit,     // Sel(P) = Π Sel(C_i), table-disjoint components
  kConditionalFactor,  // Sel(P) = Sel(P'|Q) · Sel(Q)
  kPredicateProduct,   // Sel(P) = Π Sel(p_i | C_i), independence across i
};

// Why a kPredicateProduct node exists. Estimators that *choose* the
// independence product (noSit, GVM) record kNone; getSelectivity's
// graceful degradation records which gate forced it, which the auditor
// reconciles against GsStats.
enum class FallbackReason {
  kNone,                      // the estimator's normal algebra
  kBudgetExhausted,           // budget gate fired before the search ran
  kNoFeasibleDecomposition,   // search ran but found no approximable factor
};

const char* DerivKindName(DerivKind kind);

// Where a factor's number actually came from: the provider decision
// behind one statistic application. Filled by AtomicSelectivityProvider
// (selectivity/atomic_provider.h) — the only layer allowed to touch
// histograms — and carried through every recorded derivation so the
// auditor, --explain, and the SIT advisor can name the statistic (or the
// fallback) behind every atomic factor.
struct FactorProvenance {
  bool recorded = false;      // false: the recorder predates the provider
  std::string source;         // statistic description: attr [| expression]
  std::string histogram_kind; // "base", "sit-1d", "sit-2d", "join-input"
  int buckets_touched = 0;    // histogram buckets the estimate read
  int merged_parts = 0;       // partitioned statistic: per-part pieces
                              // merged into this factor (0: unpartitioned)
  std::string fallback;       // non-empty: why no statistic applied
};

// One statistic applied to a factor Sel(head | conditioning). The
// hypothesis set is the statistic's generating expression as a predicate
// mask over the bound query (Q' in Section 2.2): the predicates whose
// effect the statistic genuinely reflects. Soundness requires
// hypothesis ⊆ conditioning — a statistic may account for fewer
// predicates than it is conditioned on (independence is then assumed for
// the rest) but never for predicates outside the conditioning set.
struct SitApplication {
  int sit_id = -1;          // SitPool id; -1 for base histograms
  bool is_base = false;
  PredSet hypothesis = 0;   // Q' — empty for base histograms
  PredSet conditioning = 0; // Q the statistic was matched against
  FactorProvenance provenance;
};

// One predicate estimated in isolation inside a kPredicateProduct.
struct DerivationAtom {
  int pred = -1;
  double selectivity = 1.0;
  bool has_stat = false;    // false: the neutral-1.0 default fallback
  SitApplication sit;       // meaningful only when has_stat
};

struct DerivationNode {
  PredSet subset = 0;
  double selectivity = 1.0;
  double error = 0.0;
  DerivKind kind = DerivKind::kEmptySet;

  // kConditionalFactor: the head factor Sel(head | subset∖head).
  PredSet head = 0;
  double head_selectivity = 1.0;
  std::vector<SitApplication> sits;

  // kSeparableSplit: the component subsets. kConditionalFactor: the tail
  // subset(s) — a single Sel(Q) for the DP, or one per memo-entry input
  // for the optimizer coupling (the inputs factor separably).
  std::vector<PredSet> tails;
  // True when the recorder claims `tails` is the *standard decomposition*
  // (Lemma 2) of `subset`; the auditor then checks exact equality with
  // the join graph's connected components, not just table-disjointness.
  bool standard_split = false;

  // kPredicateProduct.
  std::vector<DerivationAtom> atoms;
  FallbackReason fallback = FallbackReason::kNone;
};

// Append-only store of derivation nodes, indexed by subset. Duplicate
// subsets are representable on purpose: recording the same subproblem
// twice with different selectivities is exactly the memo-consistency bug
// the auditor exists to expose.
class DerivationDag {
 public:
  // Appends a node for `subset` and returns a reference the caller fills
  // in. References stay valid across later Add calls (deque storage).
  DerivationNode& AddNode(PredSet subset);

  // First recorded node for `subset`, or nullptr.
  const DerivationNode* Find(PredSet subset) const;
  // All recorded nodes for `subset` (memo-consistency inspection).
  std::vector<const DerivationNode*> FindAll(PredSet subset) const;

  bool recorded(PredSet subset) const { return Find(subset) != nullptr; }
  const std::deque<DerivationNode>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  void Clear();

  // Human-readable dump (one line per node), for debugging and the CLI.
  std::string ToString(const Query& query) const;

 private:
  std::deque<DerivationNode> nodes_;
  std::unordered_map<PredSet, std::vector<size_t>> by_subset_;
};

}  // namespace condsel
