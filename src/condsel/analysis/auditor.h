// DerivationAuditor — static verification of a recorded derivation.
//
// Audits a DerivationDag (analysis/derivation.h) against the invariant
// catalogue below *without re-running estimation*: every check is a pure
// function of the recorded nodes, the query's join graph, and (optionally)
// the search's GsStats. A clean audit certifies that the estimate was
// assembled by sound probability algebra — every conditional
// factorization partitions its predicate set, every separability split is
// licensed by the join graph, every statistic's hypothesis set is
// consistent with its conditioning set — independent of whether the
// numbers themselves are accurate.
//
// Invariant catalogue (check slugs appear in violations, docs, and tests):
//   structure              node shape matches its kind (empty ⇒ subset ∅,
//                          fallback reasons only on product nodes, ...)
//   finite-range           every selectivity and factor is finite, in [0,1]
//   partition              head/components exactly partition the subset:
//                          non-empty where required, pairwise disjoint,
//                          union equals the parent (s(p∧q) = s(p|q)·s(q)
//                          must consume each predicate exactly once)
//   separability           split components are non-interacting under the
//                          join graph (pairwise table-disjoint); standard
//                          splits must equal Lemma 2's connected components
//   hypothesis-consistency a statistic's hypothesis set Q' is a subset of
//                          its conditioning set Q, the conditioning set is
//                          exactly subset ∖ head, and base histograms carry
//                          an empty hypothesis (Section 2.2)
//   product-consistency    the node's selectivity equals the product its
//                          kind claims (head · tails, Π components, Π atoms)
//                          up to SanitizeSelectivity clamping and tolerance
//   memo-consistency       the same subset never carries two different
//                          selectivities anywhere in the DAG
//   dangling-reference     every referenced child subset has a node
//   stats-reconciliation   GsStats degradation counters match the DAG's
//                          recorded fallback nodes, and the work-stealing
//                          scheduler's counters obey their algebra (scalar
//                          steal totals equal the per-level breakdown, no
//                          level reports more redistributed or solved work
//                          than its width) — only when stats given
//   provenance             every statistic application and fallback atom
//                          names the provider decision behind it (recorded
//                          FactorProvenance with source + histogram kind,
//                          or the reason no statistic applied)

#pragma once

#include <string>
#include <vector>

#include "condsel/analysis/derivation.h"
#include "condsel/selectivity/get_selectivity.h"

namespace condsel {

enum class AuditCheck {
  kStructure,
  kFiniteRange,
  kPartition,
  kSeparability,
  kHypothesisConsistency,
  kProductConsistency,
  kMemoConsistency,
  kDanglingReference,
  kStatsReconciliation,
  kProvenance,
};

const char* AuditCheckName(AuditCheck check);

struct AuditViolation {
  AuditCheck check = AuditCheck::kStructure;
  PredSet subset = 0;      // the node the violation anchors to
  std::string detail;      // what exactly is inconsistent
  std::string path;        // DAG path from a derivation root to `subset`
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  size_t nodes_checked = 0;

  bool ok() const { return violations.empty(); }
  bool Has(AuditCheck check) const;
  // Violations of one check (the mutation self-test asserts exact counts).
  size_t Count(AuditCheck check) const;
  // Human-readable report: one block per violation with its DAG path.
  std::string ToString() const;
};

struct AuditOptions {
  // Relative tolerance for product-consistency (floating products are
  // re-associated between recording and checking).
  double tolerance = 1e-9;
};

class DerivationAuditor {
 public:
  explicit DerivationAuditor(AuditOptions options = {});

  // Structural + algebraic audit of the whole DAG.
  AuditReport Audit(const Query& query, const DerivationDag& dag) const;

  // Same, plus reconciliation of `stats` degradation counters against the
  // DAG's fallback nodes. Only meaningful for a getSelectivity session's
  // DAG (the counters are that search's).
  AuditReport Audit(const Query& query, const DerivationDag& dag,
                    const GsStats& stats) const;

 private:
  AuditOptions options_;
};

}  // namespace condsel
