#include "condsel/analysis/derivation.h"

#include <cstdio>

namespace condsel {
namespace {

std::string MaskToString(PredSet s) {
  std::string out = "{";
  bool first = true;
  for (int i : SetElements(s)) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

const char* DerivKindName(DerivKind kind) {
  switch (kind) {
    case DerivKind::kEmptySet:
      return "empty";
    case DerivKind::kSeparableSplit:
      return "separable-split";
    case DerivKind::kConditionalFactor:
      return "conditional-factor";
    case DerivKind::kPredicateProduct:
      return "predicate-product";
  }
  return "?";
}

DerivationNode& DerivationDag::AddNode(PredSet subset) {
  nodes_.emplace_back();
  nodes_.back().subset = subset;
  by_subset_[subset].push_back(nodes_.size() - 1);
  return nodes_.back();
}

const DerivationNode* DerivationDag::Find(PredSet subset) const {
  auto it = by_subset_.find(subset);
  if (it == by_subset_.end() || it->second.empty()) return nullptr;
  return &nodes_[it->second.front()];
}

std::vector<const DerivationNode*> DerivationDag::FindAll(
    PredSet subset) const {
  std::vector<const DerivationNode*> out;
  auto it = by_subset_.find(subset);
  if (it == by_subset_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&nodes_[idx]);
  return out;
}

void DerivationDag::Clear() {
  nodes_.clear();
  by_subset_.clear();
}

std::string DerivationDag::ToString(const Query& query) const {
  (void)query;  // reserved for predicate pretty-printing
  std::string out;
  char buf[160];
  for (const DerivationNode& n : nodes_) {
    std::snprintf(buf, sizeof(buf), "%s %s sel=%.6g err=%.4g",
                  MaskToString(n.subset).c_str(), DerivKindName(n.kind),
                  n.selectivity, n.error);
    out += buf;
    switch (n.kind) {
      case DerivKind::kEmptySet:
        break;
      case DerivKind::kSeparableSplit:
        out += "  parts:";
        for (PredSet t : n.tails) out += " " + MaskToString(t);
        break;
      case DerivKind::kConditionalFactor:
        std::snprintf(buf, sizeof(buf), "  head=%s sel=%.6g",
                      MaskToString(n.head).c_str(), n.head_selectivity);
        out += buf;
        out += " tails:";
        for (PredSet t : n.tails) out += " " + MaskToString(t);
        for (const SitApplication& s : n.sits) {
          std::snprintf(buf, sizeof(buf), "  sit#%d hyp=%s cond=%s",
                        s.sit_id, MaskToString(s.hypothesis).c_str(),
                        MaskToString(s.conditioning).c_str());
          out += buf;
          if (s.provenance.recorded) {
            std::snprintf(buf, sizeof(buf), " [%s %s, %d bucket(s)]",
                          s.provenance.histogram_kind.c_str(),
                          s.provenance.source.c_str(),
                          s.provenance.buckets_touched);
            out += buf;
          }
        }
        break;
      case DerivKind::kPredicateProduct:
        if (n.fallback == FallbackReason::kBudgetExhausted) {
          out += "  [budget fallback]";
        } else if (n.fallback == FallbackReason::kNoFeasibleDecomposition) {
          out += "  [no-feasible fallback]";
        }
        for (const DerivationAtom& a : n.atoms) {
          std::snprintf(buf, sizeof(buf), "  p%d=%.6g%s", a.pred,
                        a.selectivity, a.has_stat ? "" : " (default)");
          out += buf;
        }
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace condsel
