#include "condsel/analysis/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "condsel/common/numeric.h"
#include "condsel/query/join_graph.h"

namespace condsel {
namespace {

std::string MaskToString(PredSet s) {
  std::string out = "{";
  bool first = true;
  for (int i : SetElements(s)) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

bool BadUnitInterval(double v) {
  return std::isnan(v) || v < 0.0 || v > 1.0;
}

// Collects violations for one audit pass; owns the parent map used to
// reconstruct DAG paths for the report.
class AuditPass {
 public:
  AuditPass(const Query& query, const DerivationDag& dag,
            const AuditOptions& options)
      : query_(query), dag_(dag), options_(options) {
    // First-recorded parent per child subset: enough to print one witness
    // path from a derivation root to any node.
    for (const DerivationNode& n : dag_.nodes()) {
      for (PredSet t : n.tails) {
        if (t != n.subset && parent_.find(t) == parent_.end()) {
          parent_.emplace(t, n.subset);
        }
      }
    }
  }

  AuditReport Run(const GsStats* stats) {
    for (const DerivationNode& n : dag_.nodes()) {
      ++report_.nodes_checked;
      CheckStructure(n);
      CheckFiniteRange(n);
      CheckPartition(n);
      CheckSeparability(n);
      CheckHypotheses(n);
      CheckProvenance(n);
      CheckProduct(n);
    }
    CheckMemoConsistency();
    if (stats != nullptr) CheckStats(*stats);
    return std::move(report_);
  }

 private:
  void Add(AuditCheck check, PredSet subset, std::string detail) {
    AuditViolation v;
    v.check = check;
    v.subset = subset;
    v.detail = std::move(detail);
    v.path = PathTo(subset);
    report_.violations.push_back(std::move(v));
  }

  // Witness path root → ... → subset through the recorded edges.
  std::string PathTo(PredSet subset) const {
    std::vector<PredSet> chain{subset};
    // Bounded climb: a malformed DAG could alias subsets; never loop.
    for (size_t guard = 0; guard <= dag_.size(); ++guard) {
      auto it = parent_.find(chain.back());
      if (it == parent_.end()) break;
      chain.push_back(it->second);
    }
    std::string out;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!out.empty()) out += " -> ";
      out += MaskToString(*it);
    }
    return out;
  }

  void CheckStructure(const DerivationNode& n) {
    switch (n.kind) {
      case DerivKind::kEmptySet:
        if (n.subset != 0) {
          Add(AuditCheck::kStructure, n.subset,
              "empty-set node over a non-empty subset");
        }
        if (!n.tails.empty() || !n.atoms.empty() || !n.sits.empty()) {
          Add(AuditCheck::kStructure, n.subset,
              "empty-set node carries children");
        }
        break;
      case DerivKind::kSeparableSplit:
        if (n.tails.size() < 2) {
          Add(AuditCheck::kStructure, n.subset,
              "separable split into fewer than two parts");
        }
        break;
      case DerivKind::kConditionalFactor:
        if (n.head == 0) {
          Add(AuditCheck::kStructure, n.subset,
              "conditional factorization with an empty head");
        }
        if (n.tails.empty()) {
          Add(AuditCheck::kStructure, n.subset,
              "conditional factorization records no tail");
        }
        break;
      case DerivKind::kPredicateProduct:
        if (n.atoms.empty()) {
          Add(AuditCheck::kStructure, n.subset,
              "predicate product with no atoms");
        }
        break;
    }
    if (n.fallback != FallbackReason::kNone &&
        n.kind != DerivKind::kPredicateProduct) {
      Add(AuditCheck::kStructure, n.subset,
          "fallback reason on a non-product node");
    }
  }

  void CheckFiniteRange(const DerivationNode& n) {
    char buf[96];
    if (BadUnitInterval(n.selectivity)) {
      std::snprintf(buf, sizeof(buf),
                    "node selectivity %.6g outside [0, 1]", n.selectivity);
      Add(AuditCheck::kFiniteRange, n.subset, buf);
    }
    if (std::isnan(n.error) || n.error < 0.0) {
      std::snprintf(buf, sizeof(buf), "node error %.6g is negative or NaN",
                    n.error);
      Add(AuditCheck::kFiniteRange, n.subset, buf);
    }
    if (n.kind == DerivKind::kConditionalFactor &&
        BadUnitInterval(n.head_selectivity)) {
      std::snprintf(buf, sizeof(buf),
                    "factor Sel(%s|...) = %.6g outside [0, 1]",
                    MaskToString(n.head).c_str(), n.head_selectivity);
      Add(AuditCheck::kFiniteRange, n.subset, buf);
    }
    for (const DerivationAtom& a : n.atoms) {
      if (BadUnitInterval(a.selectivity)) {
        std::snprintf(buf, sizeof(buf),
                      "atom p%d selectivity %.6g outside [0, 1]", a.pred,
                      a.selectivity);
        Add(AuditCheck::kFiniteRange, n.subset, buf);
      }
    }
  }

  void CheckPartition(const DerivationNode& n) {
    switch (n.kind) {
      case DerivKind::kEmptySet:
        return;
      case DerivKind::kSeparableSplit: {
        PredSet seen = 0;
        for (PredSet t : n.tails) {
          if (t == 0) {
            Add(AuditCheck::kPartition, n.subset,
                "split component is empty");
          }
          if ((seen & t) != 0) {
            Add(AuditCheck::kPartition, n.subset,
                "split components overlap on " + MaskToString(seen & t));
          }
          seen |= t;
        }
        if (seen != n.subset) {
          Add(AuditCheck::kPartition, n.subset,
              "split components cover " + MaskToString(seen) +
                  ", not the whole subset");
        }
        return;
      }
      case DerivKind::kConditionalFactor: {
        if (!IsSubset(n.head, n.subset)) {
          Add(AuditCheck::kPartition, n.subset,
              "head " + MaskToString(n.head) +
                  " is not a subset of the node");
        }
        PredSet seen = 0;
        for (PredSet t : n.tails) {
          if ((seen & t) != 0) {
            Add(AuditCheck::kPartition, n.subset,
                "tails overlap on " + MaskToString(seen & t));
          }
          seen |= t;
        }
        if ((seen & n.head) != 0) {
          Add(AuditCheck::kPartition, n.subset,
              "head and tails overlap on " + MaskToString(seen & n.head));
        }
        if ((seen | n.head) != n.subset) {
          Add(AuditCheck::kPartition, n.subset,
              "head plus tails cover " + MaskToString(seen | n.head) +
                  ", not the whole subset");
        }
        return;
      }
      case DerivKind::kPredicateProduct: {
        PredSet seen = 0;
        for (const DerivationAtom& a : n.atoms) {
          if (a.pred < 0 || a.pred >= query_.num_predicates()) {
            Add(AuditCheck::kPartition, n.subset,
                "atom references predicate " + std::to_string(a.pred) +
                    " outside the query");
            continue;
          }
          if (Contains(seen, a.pred)) {
            Add(AuditCheck::kPartition, n.subset,
                "predicate " + std::to_string(a.pred) +
                    " appears in two atoms");
          }
          seen = With(seen, a.pred);
        }
        if (seen != n.subset) {
          Add(AuditCheck::kPartition, n.subset,
              "atoms cover " + MaskToString(seen) +
                  ", not the whole subset");
        }
        return;
      }
    }
  }

  void CheckSeparability(const DerivationNode& n) {
    // Property 2 licenses a product across parts only when the parts do
    // not interact: their table sets must be pairwise disjoint. This
    // applies to explicit splits and to the multi-tail form of a
    // conditional factorization (an optimizer memo entry's inputs).
    const bool multi_tail =
        n.kind == DerivKind::kConditionalFactor && n.tails.size() > 1;
    if (n.kind != DerivKind::kSeparableSplit && !multi_tail) return;
    TableSet seen = 0;
    for (PredSet t : n.tails) {
      const TableSet tables = query_.TablesOfSubset(t);
      if ((seen & tables) != 0) {
        Add(AuditCheck::kSeparability, n.subset,
            "parts share tables: the join graph connects " +
                MaskToString(t) + " to an earlier part");
      }
      seen |= tables;
    }
    if (n.kind == DerivKind::kSeparableSplit && n.standard_split) {
      const std::vector<PredSet> expected =
          ConnectedComponents(query_.predicates(), n.subset);
      std::vector<PredSet> got = n.tails;
      std::sort(got.begin(), got.end());
      std::vector<PredSet> want = expected;
      std::sort(want.begin(), want.end());
      if (got != want) {
        Add(AuditCheck::kSeparability, n.subset,
            "recorded components differ from the standard decomposition "
            "(Lemma 2) of the subset");
      }
    }
  }

  void CheckHypotheses(const DerivationNode& n) {
    const PredSet conditioning = n.subset & ~n.head;
    for (const SitApplication& s : n.sits) {
      if (n.kind != DerivKind::kConditionalFactor) {
        Add(AuditCheck::kStructure, n.subset,
            "statistic application on a non-factor node");
        continue;
      }
      CheckOneApplication(n.subset, s, conditioning);
    }
    for (const DerivationAtom& a : n.atoms) {
      if (!a.has_stat) continue;
      if (a.pred < 0 || a.pred >= query_.num_predicates()) continue;
      CheckOneApplication(n.subset, a.sit,
                          Without(n.subset, a.pred));
    }
  }

  // `max_conditioning` is the conditioning set the derivation structure
  // implies; the recorded set must match it (factor nodes) or be a subset
  // of it (product atoms condition on at most the rest of the subset).
  void CheckOneApplication(PredSet subset, const SitApplication& s,
                           PredSet max_conditioning) {
    if (!IsSubset(s.conditioning, max_conditioning)) {
      Add(AuditCheck::kHypothesisConsistency, subset,
          "conditioning set " + MaskToString(s.conditioning) +
              " exceeds the structural conditioning " +
              MaskToString(max_conditioning));
    }
    if (!IsSubset(s.hypothesis, s.conditioning)) {
      Add(AuditCheck::kHypothesisConsistency, subset,
          "hypothesis set " + MaskToString(s.hypothesis) +
              " is not a subset of the conditioning set " +
              MaskToString(s.conditioning));
    }
    if (!IsSubset(s.hypothesis, query_.all_predicates())) {
      Add(AuditCheck::kHypothesisConsistency, subset,
          "hypothesis set " + MaskToString(s.hypothesis) +
              " references predicates outside the query");
    }
    if (s.is_base && s.hypothesis != 0) {
      Add(AuditCheck::kHypothesisConsistency, subset,
          "base histogram carries a non-empty hypothesis set " +
              MaskToString(s.hypothesis));
    }
  }

  // Every statistic application must name the provider decision behind
  // it: a recorded FactorProvenance with a source expression and a
  // histogram kind (or, for a stat-less fallback atom, the reason no
  // statistic applied). An unrecorded provenance means some estimator
  // bypassed AtomicSelectivityProvider and touched histograms directly —
  // exactly the private lookup paths this layer exists to eliminate.
  void CheckProvenance(const DerivationNode& n) {
    for (const SitApplication& s : n.sits) {
      if (!s.provenance.recorded) {
        Add(AuditCheck::kProvenance, n.subset,
            "statistic sit#" + std::to_string(s.sit_id) +
                " applied without recorded provenance");
        continue;
      }
      if (s.provenance.source.empty() || s.provenance.histogram_kind.empty()) {
        Add(AuditCheck::kProvenance, n.subset,
            "statistic sit#" + std::to_string(s.sit_id) +
                " has provenance without a source or histogram kind");
      }
    }
    for (const DerivationAtom& a : n.atoms) {
      if (!a.sit.provenance.recorded) {
        Add(AuditCheck::kProvenance, n.subset,
            "atom p" + std::to_string(a.pred) +
                " recorded without provenance");
        continue;
      }
      if (a.has_stat) {
        if (a.sit.provenance.source.empty() ||
            a.sit.provenance.histogram_kind.empty()) {
          Add(AuditCheck::kProvenance, n.subset,
              "atom p" + std::to_string(a.pred) +
                  " has provenance without a source or histogram kind");
        }
      } else if (a.sit.provenance.fallback.empty()) {
        Add(AuditCheck::kProvenance, n.subset,
            "stat-less atom p" + std::to_string(a.pred) +
                " does not state why no statistic applied");
      }
    }
  }

  // Selectivity of a referenced child, reporting dangling references.
  bool ChildSelectivity(const DerivationNode& n, PredSet child,
                        double* out) {
    const DerivationNode* c = dag_.Find(child);
    if (c == nullptr) {
      Add(AuditCheck::kDanglingReference, n.subset,
          "references " + MaskToString(child) +
              ", which was never derived");
      return false;
    }
    *out = c->selectivity;
    return true;
  }

  void CheckProduct(const DerivationNode& n) {
    double expected = 1.0;
    bool complete = true;
    switch (n.kind) {
      case DerivKind::kEmptySet:
        expected = 1.0;
        break;
      case DerivKind::kSeparableSplit:
      case DerivKind::kConditionalFactor: {
        if (n.kind == DerivKind::kConditionalFactor) {
          expected *= n.head_selectivity;
        }
        for (PredSet t : n.tails) {
          double child = 1.0;
          if (!ChildSelectivity(n, t, &child)) {
            complete = false;
            continue;
          }
          expected *= child;
        }
        break;
      }
      case DerivKind::kPredicateProduct:
        for (const DerivationAtom& a : n.atoms) expected *= a.selectivity;
        break;
    }
    if (!complete) return;  // dangling reference already reported
    // Recording mirrors the estimators: every product is clamped through
    // SanitizeSelectivity before it is stored.
    expected = SanitizeSelectivity(expected);
    const double tol =
        options_.tolerance * std::max(1.0, std::abs(expected));
    if (std::isnan(n.selectivity) ||
        std::abs(n.selectivity - expected) > tol) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "recorded selectivity %.9g != derived product %.9g",
                    n.selectivity, expected);
      Add(AuditCheck::kProductConsistency, n.subset, buf);
    }
  }

  void CheckMemoConsistency() {
    std::unordered_map<PredSet, double> first;
    std::set<PredSet> reported;
    for (const DerivationNode& n : dag_.nodes()) {
      auto [it, inserted] = first.emplace(n.subset, n.selectivity);
      if (inserted || reported.count(n.subset) != 0) continue;
      const double tol =
          options_.tolerance * std::max(1.0, std::abs(it->second));
      if (std::abs(n.selectivity - it->second) > tol) {
        char buf[128];
        std::snprintf(
            buf, sizeof(buf),
            "subset derived twice with selectivities %.9g and %.9g",
            it->second, n.selectivity);
        Add(AuditCheck::kMemoConsistency, n.subset, buf);
        reported.insert(n.subset);
      }
    }
  }

  void CheckStats(const GsStats& stats) {
    uint64_t budget_fallbacks = 0;
    uint64_t no_feasible_fallbacks = 0;
    uint64_t searched = 0;  // entries the search actually worked on
    std::set<int> defaulted;
    for (const DerivationNode& n : dag_.nodes()) {
      switch (n.kind) {
        case DerivKind::kEmptySet:
          break;
        case DerivKind::kSeparableSplit:
        case DerivKind::kConditionalFactor:
          ++searched;
          break;
        case DerivKind::kPredicateProduct:
          if (n.fallback == FallbackReason::kBudgetExhausted) {
            ++budget_fallbacks;
          } else if (n.fallback ==
                     FallbackReason::kNoFeasibleDecomposition) {
            // The search charged this entry before discovering no
            // decomposition was approximable.
            ++no_feasible_fallbacks;
            ++searched;
          }
          break;
      }
      for (const DerivationAtom& a : n.atoms) {
        if (!a.has_stat) defaulted.insert(a.pred);
      }
    }
    char buf[160];
    if (stats.degraded_subproblems !=
        budget_fallbacks + no_feasible_fallbacks) {
      std::snprintf(buf, sizeof(buf),
                    "GsStats records %llu degraded subproblems, DAG "
                    "records %llu fallback nodes",
                    static_cast<unsigned long long>(
                        stats.degraded_subproblems),
                    static_cast<unsigned long long>(budget_fallbacks +
                                                    no_feasible_fallbacks));
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
    if (stats.subproblems != searched) {
      std::snprintf(
          buf, sizeof(buf),
          "GsStats records %llu searched subproblems, DAG records %llu",
          static_cast<unsigned long long>(stats.subproblems),
          static_cast<unsigned long long>(searched));
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
    if (stats.default_fallbacks != defaulted.size()) {
      std::snprintf(buf, sizeof(buf),
                    "GsStats records %llu default fallbacks, DAG records "
                    "%zu predicates with no statistic",
                    static_cast<unsigned long long>(stats.default_fallbacks),
                    defaulted.size());
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
    if (budget_fallbacks > 0 && !stats.budget_exhausted) {
      Add(AuditCheck::kStatsReconciliation, 0,
          "DAG records budget fallbacks but GsStats never observed "
          "budget exhaustion");
    }
    CheckSchedulerStats(stats);
  }

  // The work-stealing scheduler's counters obey a closed algebra: the
  // scalar totals must equal their per-level breakdowns, and no level can
  // report more redistributed or solved work than it has subsets. These
  // are schedule-dependent numbers the estimate-side checks cannot see,
  // so inconsistencies here point at broken scheduler accounting (lost
  // decrements, double-counted batches), not at a wrong estimate.
  void CheckSchedulerStats(const GsStats& stats) {
    char buf[160];
    uint64_t level_steals = 0;
    uint64_t level_stolen = 0;
    uint64_t widest = 0;
    for (const GsLevelStats& ls : stats.level_stats) {
      level_steals += ls.steals;
      level_stolen += ls.stolen_subsets;
      widest = std::max(widest, ls.width);
      if (ls.stolen_subsets < ls.steals) {
        std::snprintf(buf, sizeof(buf),
                      "level %d records %llu steals but only %llu stolen "
                      "subsets (every steal moves at least one)",
                      ls.level,
                      static_cast<unsigned long long>(ls.steals),
                      static_cast<unsigned long long>(ls.stolen_subsets));
        Add(AuditCheck::kStatsReconciliation, 0, buf);
      }
      if (ls.max_solved_by_one_worker > ls.width) {
        std::snprintf(buf, sizeof(buf),
                      "level %d is %llu wide but one worker claims %llu "
                      "solves",
                      ls.level, static_cast<unsigned long long>(ls.width),
                      static_cast<unsigned long long>(
                          ls.max_solved_by_one_worker));
        Add(AuditCheck::kStatsReconciliation, 0, buf);
      }
    }
    if (level_steals != stats.steals ||
        level_stolen != stats.stolen_subsets) {
      std::snprintf(buf, sizeof(buf),
                    "per-level steal counters (%llu steals, %llu stolen) "
                    "disagree with the totals (%llu, %llu)",
                    static_cast<unsigned long long>(level_steals),
                    static_cast<unsigned long long>(level_stolen),
                    static_cast<unsigned long long>(stats.steals),
                    static_cast<unsigned long long>(stats.stolen_subsets));
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
    if (stats.parallel_levels != stats.level_stats.size()) {
      std::snprintf(buf, sizeof(buf),
                    "GsStats records %llu parallel levels but %zu "
                    "per-level entries",
                    static_cast<unsigned long long>(stats.parallel_levels),
                    stats.level_stats.size());
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
    if (widest != stats.max_level_width) {
      std::snprintf(buf, sizeof(buf),
                    "widest per-level entry is %llu but GsStats records "
                    "max_level_width %llu",
                    static_cast<unsigned long long>(widest),
                    static_cast<unsigned long long>(stats.max_level_width));
      Add(AuditCheck::kStatsReconciliation, 0, buf);
    }
  }

  const Query& query_;
  const DerivationDag& dag_;
  const AuditOptions& options_;
  AuditReport report_;
  std::unordered_map<PredSet, PredSet> parent_;
};

}  // namespace

const char* AuditCheckName(AuditCheck check) {
  switch (check) {
    case AuditCheck::kStructure:
      return "structure";
    case AuditCheck::kFiniteRange:
      return "finite-range";
    case AuditCheck::kPartition:
      return "partition";
    case AuditCheck::kSeparability:
      return "separability";
    case AuditCheck::kHypothesisConsistency:
      return "hypothesis-consistency";
    case AuditCheck::kProductConsistency:
      return "product-consistency";
    case AuditCheck::kMemoConsistency:
      return "memo-consistency";
    case AuditCheck::kDanglingReference:
      return "dangling-reference";
    case AuditCheck::kStatsReconciliation:
      return "stats-reconciliation";
    case AuditCheck::kProvenance:
      return "provenance";
  }
  return "?";
}

bool AuditReport::Has(AuditCheck check) const { return Count(check) > 0; }

size_t AuditReport::Count(AuditCheck check) const {
  size_t n = 0;
  for (const AuditViolation& v : violations) n += v.check == check;
  return n;
}

std::string AuditReport::ToString() const {
  std::string out;
  char buf[96];
  if (violations.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "audit clean: %zu derivation node(s) verified\n",
                  nodes_checked);
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "audit FAILED: %zu violation(s) over %zu node(s)\n",
                violations.size(), nodes_checked);
  out += buf;
  for (const AuditViolation& v : violations) {
    out += "  [";
    out += AuditCheckName(v.check);
    out += "] at ";
    out += MaskToString(v.subset);
    out += ": " + v.detail + "\n";
    if (!v.path.empty()) out += "      path: " + v.path + "\n";
  }
  return out;
}

DerivationAuditor::DerivationAuditor(AuditOptions options)
    : options_(options) {}

AuditReport DerivationAuditor::Audit(const Query& query,
                                     const DerivationDag& dag) const {
  return AuditPass(query, dag, options_).Run(nullptr);
}

AuditReport DerivationAuditor::Audit(const Query& query,
                                     const DerivationDag& dag,
                                     const GsStats& stats) const {
  return AuditPass(query, dag, options_).Run(&stats);
}

}  // namespace condsel
