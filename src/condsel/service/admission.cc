#include "condsel/service/admission.h"

#include <algorithm>
#include <chrono>

namespace condsel {

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second),
      burst_(burst > 0.0 ? burst : std::max(rate_per_second, 1.0)),
      tokens_(burst_),
      last_refill_seconds_(0.0) {}

bool TokenBucket::TryAcquire(double now_seconds) {
  if (rate_ <= 0.0) return true;  // unlimited
  if (!started_) {
    started_ = true;
    last_refill_seconds_ = now_seconds;
  }
  const double elapsed = now_seconds - last_refill_seconds_;
  if (elapsed > 0.0) {
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_refill_seconds_ = now_seconds;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void TokenBucket::Refund() {
  if (rate_ <= 0.0) return;  // unlimited: TryAcquire consumed nothing
  tokens_ = std::min(burst_, tokens_ + 1.0);
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

Status AdmissionController::Admit(const std::string& tenant,
                                  double now_seconds, double max_wait_seconds,
                                  AdmissionOutcome* outcome) {
  AdmissionOutcome scratch;
  AdmissionOutcome& out = outcome != nullptr ? *outcome : scratch;
  std::unique_lock<OrderedMutex> lock(mu_);
  // Quota is charged only for requests that reach service: the shed and
  // timeout paths below refund the token (map nodes are stable, so the
  // pointer survives the unlocked wait).
  TokenBucket* bucket = nullptr;
  if (options_.tenant_rate_per_second > 0.0) {
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(tenant,
                        TokenBucket(options_.tenant_rate_per_second,
                                    options_.tenant_burst))
               .first;
    }
    bucket = &it->second;
    if (!bucket->TryAcquire(now_seconds)) {
      out = AdmissionOutcome::kQuota;
      return Status::RejectedOverload("tenant '" + tenant +
                                      "' exceeded its admission quota");
    }
  }
  if (in_flight_ < options_.max_concurrent) {
    ++in_flight_;
    out = AdmissionOutcome::kAdmitted;
    return Status::Ok();
  }
  if (waiting_ >= options_.queue_limit) {
    if (bucket != nullptr) bucket->Refund();
    out = AdmissionOutcome::kQueueFull;
    return Status::RejectedOverload(
        "admission queue full (" + std::to_string(waiting_) +
        " waiting on " + std::to_string(options_.max_concurrent) +
        " slots); shedding load");
  }
  ++waiting_;
  const bool got_slot = slot_freed_.wait_for(
      lock, std::chrono::duration<double>(std::max(0.0, max_wait_seconds)),
      [this]() CONDSEL_REQUIRES(mu_) {
        return in_flight_ < options_.max_concurrent;
      });
  --waiting_;
  if (!got_slot) {
    if (bucket != nullptr) bucket->Refund();
    out = AdmissionOutcome::kTimeout;
    return Status::DeadlineExceeded(
        "deadline expired while queued for an estimation slot");
  }
  ++in_flight_;
  out = AdmissionOutcome::kAdmitted;
  return Status::Ok();
}

void AdmissionController::Release() {
  {
    const std::lock_guard<OrderedMutex> lock(mu_);
    --in_flight_;
  }
  // notify_all, not notify_one: a notified waiter may have concurrently
  // timed out and leave the wait without claiming the slot, and the other
  // waiters would only re-check at their own deadlines — the freed
  // capacity would sit stranded.
  slot_freed_.notify_all();
}

int AdmissionController::in_flight() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return in_flight_;
}

int AdmissionController::waiting() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return waiting_;
}

}  // namespace condsel
