// Retry classification and jittered exponential backoff.
//
// The service retries only what retrying can fix. Status codes partition
// into:
//   retryable — transient serving-side conditions: UNAVAILABLE (a failed
//     snapshot swap, a lookup fault that unwound one attempt) and
//     DEADLINE_EXCEEDED *when the caller's own deadline still has room
//     for another attempt* (the per-attempt clock ran out, not the
//     caller's);
//   terminal — everything deterministic: malformed requests
//     (INVALID_ARGUMENT, NOT_FOUND), missing statistics
//     (FAILED_PRECONDITION), count-budget exhaustion (RESOURCE_EXHAUSTED
//     — replaying the same search spends the same budget), corruption
//     (DATA_LOSS), library bugs (INTERNAL), and REJECTED_OVERLOAD —
//     retrying into an overloaded admission queue amplifies the overload
//     the rejection exists to shed.
//
// Orthogonally, non-idempotent requests (feedback observations, which
// accumulate into per-column adjustments) are never retried regardless of
// code: a retry after a partially applied update would double-observe.
//
// Backoff is exponential with full multiplicative jitter, capped, and
// always bounded by the caller's remaining deadline — a retry that could
// not start before the deadline is not attempted at all (deadline
// exhaustion never retries).

#pragma once

#include "condsel/common/rng.h"
#include "condsel/common/status.h"

namespace condsel {

struct RetryPolicy {
  int max_attempts = 3;                   // total tries, including the first
  double initial_backoff_seconds = 5e-4;  // before the first retry
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.05;      // cap per sleep
  double jitter_fraction = 0.2;           // uniform in [1-j, 1+j]
};

// True when `code` names a transient condition a retry can outlive.
bool RetryableStatusCode(StatusCode code);

// Backoff before the retry following failed attempt number `attempt`
// (1-based). Exponential in `attempt`, scaled by a jitter factor drawn
// uniformly from [1 - jitter_fraction, 1 + jitter_fraction], capped at
// max_backoff_seconds (the cap applies after jitter, so the bound is
// hard). Deterministic given `rng`.
double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng* rng);

// One retry decision, explainable (`reason` is a static string for
// telemetry and tests).
struct RetryDecision {
  bool retry = false;
  double backoff_seconds = 0.0;
  const char* reason = "";
};

// Decides whether failed attempt `attempt` (1-based) with status `code`
// should be retried. `idempotent` is false for feedback updates;
// `remaining_deadline_seconds` is the caller's unspent deadline
// (infinity when the caller set none). Never decides to retry when the
// backoff would not complete before the remaining deadline.
RetryDecision DecideRetry(const RetryPolicy& policy, StatusCode code,
                          int attempt, bool idempotent,
                          double remaining_deadline_seconds, Rng* rng);

}  // namespace condsel
