#include "condsel/service/circuit_breaker.h"

namespace condsel {

const char* ServiceModeName(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kFull:
      return "full";
    case ServiceMode::kCapped:
      return "capped";
    case ServiceMode::kIndependence:
      return "independence";
  }
  return "?";
}

CircuitBreakerLadder::CircuitBreakerLadder(const BreakerOptions& options)
    : options_(options) {}

ServiceMode CircuitBreakerLadder::ModeFor(const std::string& tenant) const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? ServiceMode::kFull : it->second.mode;
}

ServiceMode CircuitBreakerLadder::RecordSuccess(const std::string& tenant) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.consecutive_failures = 0;
  if (state.mode == ServiceMode::kFull) return state.mode;
  if (++state.consecutive_successes >= options_.close_after) {
    state.consecutive_successes = 0;
    state.mode = static_cast<ServiceMode>(static_cast<int>(state.mode) - 1);
    ++step_ups_;
  }
  return state.mode;
}

ServiceMode CircuitBreakerLadder::RecordFailure(const std::string& tenant) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.consecutive_successes = 0;
  if (state.mode == ServiceMode::kIndependence) return state.mode;
  if (++state.consecutive_failures >= options_.open_after) {
    state.consecutive_failures = 0;
    state.mode = static_cast<ServiceMode>(static_cast<int>(state.mode) + 1);
    ++step_downs_;
  }
  return state.mode;
}

uint64_t CircuitBreakerLadder::step_downs() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return step_downs_;
}

uint64_t CircuitBreakerLadder::step_ups() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return step_ups_;
}

}  // namespace condsel
