#include "condsel/service/snapshot.h"

#include <chrono>
#include <thread>

#include "condsel/common/fault_injector.h"

namespace condsel {

StatusOr<uint64_t> SnapshotPublisher::Publish(Catalog catalog, SitPool pool) {
  // Writers serialize end-to-end: two concurrent refreshes must not
  // interleave their epoch numbering with their pointer swaps, or a
  // lower-numbered snapshot could overwrite a higher one.
  const std::lock_guard<OrderedMutex> refresh_lock(refresh_mu_);

  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kSlowRefresh)) {
    // A slow statistics rebuild. Deliberately *outside* epoch_mu_: the
    // stall must only delay other refreshes, never a session's acquire.
    // Only other refreshes ever wait on refresh_mu_, and delaying them
    // is this lock's documented purpose, hence:
    // condsel-model: allow(blocking-reachable)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (fi.armed() && fi.enabled(Fault::kFailSnapshotSwap)) {
    failed_swaps_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "snapshot swap failed mid-refresh (injected); previous epoch "
        "remains current");
  }

  // Construct the snapshot before touching epoch state; only the number,
  // the ledger append, and the pointer swap happen under epoch_mu_.
  uint64_t epoch = 0;
  {
    const std::lock_guard<OrderedMutex> lock(epoch_mu_);
    epoch = next_epoch_++;
  }
  // Snapshot construction under refresh_mu_ is the refresh lock's whole
  // job; epoch_mu_ itself is NOT held here — the scoped blocks above and
  // below keep the acquire path wait-free, hence:
  // condsel-model: allow(blocking-reachable)
  auto snap = std::make_shared<const Snapshot>(epoch, std::move(catalog),
                                               std::move(pool));
  {
    const std::lock_guard<OrderedMutex> lock(epoch_mu_);
    ledger_.emplace_back(epoch, snap);
    current_.store(std::move(snap), std::memory_order_release);
  }
  published_count_.fetch_add(1, std::memory_order_relaxed);
  return epoch;
}

uint64_t SnapshotPublisher::current_epoch() const {
  const std::shared_ptr<const Snapshot> snap = Acquire();
  return snap == nullptr ? 0 : snap->epoch();
}

size_t SnapshotPublisher::live_epochs() const {
  const std::lock_guard<OrderedMutex> lock(epoch_mu_);
  size_t live = 0;
  auto it = ledger_.begin();
  while (it != ledger_.end()) {
    if (it->second.expired()) {
      it = ledger_.erase(it);  // retired: last holder dropped its handle
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

}  // namespace condsel
