// Per-tenant circuit breaker driving the graceful-degradation ladder.
//
// Under sustained pressure the service steps a tenant's estimates down a
// ladder of cheaper modes, and steps back up as the tenant recovers:
//
//   kFull          the configured full-fidelity GS search
//   kCapped        GS under a tight budget (subproblem/deadline caps) —
//                  the paper's graceful degradation, preemptively applied
//   kIndependence  the independence fallback only (noSit's estimate, via
//                  a budget that exhausts immediately) — always cheap,
//                  always available
//
// The breaker is deliberately hysteretic: `open_after` consecutive
// failures (or per-attempt deadline overruns) step down one rung;
// `close_after` consecutive successes step back up one rung. Success at a
// degraded rung therefore probes recovery instead of snapping straight
// back to full fidelity and re-triggering the overload. Every transition
// is observable: the ladder keeps per-rung counters and a monotonically
// increasing transition sequence number for telemetry.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"

namespace condsel {

enum class ServiceMode {
  kFull = 0,
  kCapped = 1,
  kIndependence = 2,
};

const char* ServiceModeName(ServiceMode mode);

struct BreakerOptions {
  int open_after = 3;   // consecutive failures to step down one rung
  int close_after = 5;  // consecutive successes to step up one rung
};

// Ladder state for every tenant. Thread-safe; one instance per service.
class CircuitBreakerLadder {
 public:
  explicit CircuitBreakerLadder(const BreakerOptions& options);

  // The rung `tenant`'s next estimate should run at.
  ServiceMode ModeFor(const std::string& tenant) const
      CONDSEL_EXCLUDES(mu_);

  // Records an attempt outcome; returns the (possibly changed) mode.
  ServiceMode RecordSuccess(const std::string& tenant)
      CONDSEL_EXCLUDES(mu_);
  ServiceMode RecordFailure(const std::string& tenant)
      CONDSEL_EXCLUDES(mu_);

  // Ladder movement since construction (both directions), for telemetry.
  uint64_t step_downs() const CONDSEL_EXCLUDES(mu_);
  uint64_t step_ups() const CONDSEL_EXCLUDES(mu_);

 private:
  struct TenantState {
    ServiceMode mode = ServiceMode::kFull;
    int consecutive_failures = 0;
    int consecutive_successes = 0;
  };

  const BreakerOptions options_;
  mutable OrderedMutex mu_{lock_rank::kCircuitBreaker,
                           "CircuitBreakerLadder::mu_"};
  std::map<std::string, TenantState> tenants_ CONDSEL_GUARDED_BY(mu_);
  uint64_t step_downs_ CONDSEL_GUARDED_BY(mu_) = 0;
  uint64_t step_ups_ CONDSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace condsel
