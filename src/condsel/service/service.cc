#include "condsel/service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "condsel/baselines/feedback.h"
#include "condsel/common/fault_injector.h"
#include "condsel/exec/cardinality_cache.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

// Releases an admission slot on every exit path of Submit.
class SlotReleaser {
 public:
  explicit SlotReleaser(AdmissionController* admission)
      : admission_(admission) {}
  ~SlotReleaser() { admission_->Release(); }
  SlotReleaser(const SlotReleaser&) = delete;
  SlotReleaser& operator=(const SlotReleaser&) = delete;

 private:
  AdmissionController* admission_;
};

}  // namespace

Status ClassifyAttemptException(const char* op, const std::exception& e) {
  if (dynamic_cast<const TransientFault*>(&e) != nullptr) {
    return Status::Unavailable(std::string(op) +
                               " failed transiently: " + e.what());
  }
  return Status::Internal(std::string(op) +
                          " threw an unexpected exception: " + e.what());
}

// Per-epoch feedback machinery. The snapshot handle pins the epoch the
// matcher and evaluator borrow from, so a Refresh can never free the
// statistics mid-observation; the whole bundle is rebuilt (empty) when an
// observation arrives for a newer epoch.
struct EstimationService::FeedbackState {
  explicit FeedbackState(std::shared_ptr<const Snapshot> s)
      : snap(std::move(s)),
        matcher(&snap->pool()),
        estimator(&matcher),
        evaluator(&snap->catalog(), &cache) {}

  std::shared_ptr<const Snapshot> snap;
  SitMatcher matcher;
  FeedbackEstimator estimator;
  CardinalityCache cache;
  Evaluator evaluator;
};

EstimationService::EstimationService(ServiceOptions options)
    : options_(std::move(options)),
      admission_(options_.admission),
      breaker_(options_.breaker),
      jitter_rng_(options_.jitter_seed) {}

EstimationService::~EstimationService() = default;

StatusOr<uint64_t> EstimationService::Refresh(Catalog catalog, SitPool pool) {
  return publisher_.Publish(std::move(catalog), std::move(pool));
}

StatusOr<uint64_t> EstimationService::EnableDeltaMaintenance(
    PartStatsMaintainer* maintainer) {
  if (maintainer == nullptr) {
    return StatusOr<uint64_t>(
        Status::InvalidArgument("maintainer must not be null"));
  }
  const std::lock_guard<OrderedMutex> lock(maintenance_mu_);
  maintainer_ = maintainer;
  if (maintainer_->stats_generation() == 0) {
    Status built = maintainer_->BuildAll();
    if (!built.ok()) return StatusOr<uint64_t>(built);
  }
  StatusOr<std::shared_ptr<const SitPool>> pool = maintainer_->MergedPool();
  if (!pool.ok()) return StatusOr<uint64_t>(pool.status());
  // The snapshot gets its own catalog: Table copies share the immutable
  // part data through their handles, so unchanged parts are never
  // duplicated across epochs.
  Catalog catalog = maintainer_->catalog();
  SitPool pool_copy = *pool.value();
  // The build and publish above block only other maintenance passes and
  // refreshes; epoch_mu_ is taken only inside Publish's non-blocking
  // scoped blocks, keeping the acquire path wait-free, hence:
  // condsel-model: allow(blocking-reachable)
  return publisher_.Publish(std::move(catalog), std::move(pool_copy));
}

StatusOr<DeltaReport> EstimationService::ApplyDelta(const DeltaBatch& batch) {
  const std::lock_guard<OrderedMutex> lock(maintenance_mu_);
  if (maintainer_ == nullptr) {
    return StatusOr<DeltaReport>(Status::FailedPrecondition(
        "delta maintenance is not enabled (call EnableDeltaMaintenance)"));
  }
  StatusOr<DeltaReport> report = maintainer_->ApplyDelta(batch);
  if (!report.ok()) return report;
  StatusOr<std::shared_ptr<const SitPool>> pool = maintainer_->MergedPool();
  if (!pool.ok()) {
    // The rebuilt entries failed validation (e.g. kCorruptPartStats):
    // surface the error with the previous epoch still current rather
    // than publish a poisoned pool.
    return StatusOr<DeltaReport>(pool.status());
  }
  Catalog catalog = maintainer_->catalog();
  SitPool pool_copy = *pool.value();
  // Blocking here delays only other maintenance passes and refreshes;
  // the acquire path stays wait-free (see EnableDeltaMaintenance), hence:
  // condsel-model: allow(blocking-reachable)
  StatusOr<uint64_t> epoch =
      publisher_.Publish(std::move(catalog), std::move(pool_copy));
  if (!epoch.ok()) return StatusOr<DeltaReport>(epoch.status());
  return report;
}

EstimationBudget EstimationService::BudgetForMode(
    ServiceMode mode, double remaining_seconds) const {
  EstimationBudget budget;
  switch (mode) {
    case ServiceMode::kFull:
      budget = options_.full_budget;
      break;
    case ServiceMode::kCapped:
      budget = options_.capped_budget;
      break;
    case ServiceMode::kIndependence:
      // One memo entry exhausts the budget before any decomposition is
      // scored, so every subproblem takes the independence fallback: the
      // always-cheap bottom rung needs no clock at all.
      budget.max_subproblems = 1;
      budget.max_atomic_decompositions = 1;
      return budget;
  }
  if (remaining_seconds != kNoDeadline) {
    // Never clamp to 0: EstimationBudget reads deadline_seconds <= 0 as
    // "no deadline" (Deadline::Arm disarms), which would hand an
    // already-expired caller an unbounded attempt. Submit refuses to
    // attempt once the caller's deadline is spent; the epsilon keeps the
    // clock armed if the remainder goes non-positive between that check
    // and the attempt (backoff sleeps and queue waits can overshoot).
    constexpr double kMinArmedDeadlineSeconds = 1e-9;
    const double capped =
        std::max(remaining_seconds, kMinArmedDeadlineSeconds);
    budget.deadline_seconds = budget.deadline_seconds > 0.0
                                  ? std::min(budget.deadline_seconds, capped)
                                  : capped;
  }
  return budget;
}

StatusOr<ServiceEstimate> EstimationService::Attempt(
    const Query& query, const Snapshot& snap, ServiceMode mode,
    double remaining_seconds) {
  if (!snap.Coherent()) {
    counters_.incoherent_snapshots.fetch_add(1, std::memory_order_relaxed);
    return StatusOr<ServiceEstimate>(
        Status::Internal("torn snapshot observed (epoch " +
                         std::to_string(snap.epoch()) + ")"));
  }
  const EstimationBudget budget = BudgetForMode(mode, remaining_seconds);
  const uint64_t session_id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  Estimator estimator(&snap.catalog(), &snap.pool(), options_.ranking,
                      budget, &shape_cache_);
  double selectivity = 0.0;
  double cardinality = 0.0;
  try {
    StatusOr<double> sel = estimator.TryEstimateSelectivity(query);
    if (!sel.ok()) return StatusOr<ServiceEstimate>(sel.status());
    StatusOr<double> card = estimator.TryEstimateCardinality(query);
    if (!card.ok()) return StatusOr<ServiceEstimate>(card.status());
    selectivity = sel.value();
    cardinality = card.value();
  } catch (const std::exception& e) {
    // The attempt's session unwound before it produced an estimate;
    // nothing was settled, so a retry starts clean. Only the known
    // TransientFault is retryable — anything else maps to terminal
    // INTERNAL (a deterministic bug would fail every retry identically).
    return StatusOr<ServiceEstimate>(
        ClassifyAttemptException("estimation attempt", e));
  }

  ServiceEstimate out;
  out.selectivity = selectivity;
  out.cardinality = cardinality;
  out.epoch = snap.epoch();
  out.mode = mode;
  if (const GsStats* stats = estimator.StatsFor(query)) {
    ledger_.Settle(session_id, *stats);
    ledger_.Forget(session_id);  // the per-attempt session is done growing
    out.degraded =
        stats->budget_exhausted || stats->degraded_subproblems > 0;
  }
  return StatusOr<ServiceEstimate>(out);
}

StatusOr<ServiceEstimate> EstimationService::Submit(const std::string& tenant,
                                                    const Query& query,
                                                    SubmitOptions options) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  const double start = NowSeconds();
  const double deadline_seconds = options.deadline_seconds > 0.0
                                      ? options.deadline_seconds
                                      : options_.default_deadline_seconds;
  const double deadline_at =
      deadline_seconds > 0.0 ? start + deadline_seconds : kNoDeadline;
  const auto remaining = [&]() {
    return deadline_at == kNoDeadline ? kNoDeadline
                                      : deadline_at - NowSeconds();
  };
  const auto fail = [&](Status status) {
    counters_.failed.fetch_add(1, std::memory_order_relaxed);
    counters_.latency.Record(NowSeconds() - start);
    return StatusOr<ServiceEstimate>(std::move(status));
  };

  std::shared_ptr<const Snapshot> snap = publisher_.Acquire();
  if (snap == nullptr) {
    return fail(Status::FailedPrecondition(
        "no statistics epoch has been published yet"));
  }

  const double max_wait =
      deadline_at == kNoDeadline
          ? options_.max_queue_wait_seconds
          : std::min(options_.max_queue_wait_seconds,
                     std::max(remaining(), 0.0));
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  Status admitted = admission_.Admit(tenant, start, max_wait, &outcome);
  if (!admitted.ok()) {
    switch (outcome) {
      case AdmissionOutcome::kQuota:
        counters_.rejected_quota.fetch_add(1, std::memory_order_relaxed);
        break;
      case AdmissionOutcome::kQueueFull:
        counters_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
        break;
      case AdmissionOutcome::kTimeout:
        counters_.queue_timeouts.fetch_add(1, std::memory_order_relaxed);
        break;
      case AdmissionOutcome::kAdmitted:
        break;
    }
    return fail(std::move(admitted));
  }
  const SlotReleaser releaser(&admission_);

  const ServiceMode mode = breaker_.ModeFor(tenant);
  counters_.mode_submissions[static_cast<int>(mode)].fetch_add(
      1, std::memory_order_relaxed);

  // kFull with no count caps can only "fail" by deadline degradation; a
  // degraded answer is kept as the graceful floor while retries probe for
  // a clean one.
  const bool classify_degraded =
      options_.retry_degraded_full_estimates && mode == ServiceMode::kFull &&
      options_.full_budget.max_subproblems == 0 &&
      options_.full_budget.max_atomic_decompositions == 0 &&
      deadline_at != kNoDeadline;
  bool have_floor = false;
  ServiceEstimate floor;

  int attempt = 0;
  Status last_failure = Status::Ok();
  for (;;) {
    if (deadline_at != kNoDeadline && remaining() <= 0.0) {
      // The caller's deadline expired before this attempt could start —
      // routine under overload, where the admission wait is capped at
      // exactly the remaining deadline and backoff sleeps can overshoot
      // it. Attempting anyway would run on the caller's clock with no
      // clock at all (BudgetForMode documents why), so refuse instead;
      // a degraded floor already in hand still ships below.
      counters_.no_retry_deadline.fetch_add(1, std::memory_order_relaxed);
      last_failure = Status::DeadlineExceeded(
          "caller deadline expired before an estimation attempt could "
          "start");
      break;
    }
    ++attempt;
    StatusOr<ServiceEstimate> result =
        Attempt(query, *snap, mode, remaining());
    Status attempt_status =
        result.ok() ? Status::Ok() : result.status();
    if (result.ok() && classify_degraded && result.value().degraded) {
      floor = result.value();
      have_floor = true;
      attempt_status = Status::DeadlineExceeded(
          "attempt clock expired; estimate degraded to independence");
    }
    if (attempt_status.ok()) {
      breaker_.RecordSuccess(tenant);
      ServiceEstimate ok = result.value();
      ok.attempts = attempt;
      ok.latency_seconds = NowSeconds() - start;
      counters_.completed.fetch_add(1, std::memory_order_relaxed);
      counters_.latency.Record(ok.latency_seconds);
      return StatusOr<ServiceEstimate>(ok);
    }

    breaker_.RecordFailure(tenant);
    if (RetryableStatusCode(attempt_status.code())) {
      counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
    }
    last_failure = attempt_status;
    RetryDecision decision;
    {
      const std::lock_guard<OrderedMutex> lock(jitter_mu_);
      decision = DecideRetry(options_.retry, attempt_status.code(), attempt,
                             /*idempotent=*/true, remaining(), &jitter_rng_);
    }
    if (!decision.retry) {
      if (decision.reason == std::string("caller deadline exhausted")) {
        counters_.no_retry_deadline.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    counters_.retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(decision.backoff_seconds));
    // Retries may land on a newer epoch — the transient fault could be
    // the old epoch's swap window itself.
    if (std::shared_ptr<const Snapshot> fresh = publisher_.Acquire()) {
      snap = std::move(fresh);
    }
  }

  if (have_floor) {
    // Retries ran out but a degraded estimate is in hand: graceful
    // degradation beats an error the caller cannot act on.
    floor.attempts = attempt;
    floor.latency_seconds = NowSeconds() - start;
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    counters_.latency.Record(floor.latency_seconds);
    return StatusOr<ServiceEstimate>(floor);
  }
  return fail(std::move(last_failure));
}

size_t EstimationService::Prewarm(const std::string& tenant,
                                  const std::vector<Query>& queries,
                                  SubmitOptions options) {
  size_t warmed = 0;
  for (const Query& query : queries) {
    StatusOr<ServiceEstimate> result = Submit(tenant, query, options);
    if (result.ok()) {
      ++warmed;
      continue;
    }
    // Warming is advisory: an admission rejection or a mid-warm epoch
    // swap only means the cache stays cold for that query. The sink is
    // the sanctioned discard — condsel_flow's status-flow check accepts
    // it, a silent drop here it would flag.
    StatusIgnored(std::move(result));
  }
  return warmed;
}

Status EstimationService::ObserveFeedback(const std::string& tenant,
                                          const Query& query) {
  (void)tenant;  // feedback adjustments are shared statistics, not quota'd
  std::shared_ptr<const Snapshot> snap = publisher_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no statistics epoch has been published yet");
  }
  const std::lock_guard<OrderedMutex> lock(feedback_mu_);
  if (feedback_ == nullptr || feedback_->snap->epoch() != snap->epoch()) {
    feedback_ = std::make_unique<FeedbackState>(snap);
  }
  Status status = Status::Ok();
  try {
    feedback_->estimator.Observe(query, &feedback_->evaluator);
  } catch (const std::exception& e) {
    // The adjustment accumulator may have absorbed part of the
    // observation before the throw — replaying would double-observe, so
    // this path never retries (DecideRetry documents the decision and the
    // counter makes it visible).
    status = ClassifyAttemptException("feedback observation", e);
  }
  if (status.ok()) {
    counters_.feedback_updates.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  counters_.feedback_failures.fetch_add(1, std::memory_order_relaxed);
  RetryDecision decision;
  {
    const std::lock_guard<OrderedMutex> jitter_lock(jitter_mu_);
    decision = DecideRetry(options_.retry, status.code(), /*attempt=*/1,
                           /*idempotent=*/false, kNoDeadline, &jitter_rng_);
  }
  if (!decision.retry) {
    counters_.no_retry_non_idempotent.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

double EstimationService::FeedbackAdjustmentFor(ColumnRef col) const {
  const std::shared_ptr<const Snapshot> snap = publisher_.Acquire();
  const std::lock_guard<OrderedMutex> lock(feedback_mu_);
  // Adjustments are per-epoch: a state built for a retired epoch reads as
  // untrained (the next observation rebuilds it on the current epoch).
  if (feedback_ == nullptr || snap == nullptr ||
      feedback_->snap->epoch() != snap->epoch()) {
    return 1.0;
  }
  return feedback_->estimator.AdjustmentFor(col);
}

ServiceStatsSnapshot EstimationService::Stats() const {
  ServiceStatsSnapshot snap;
  snap.submitted = counters_.submitted.load(std::memory_order_relaxed);
  snap.completed = counters_.completed.load(std::memory_order_relaxed);
  snap.failed = counters_.failed.load(std::memory_order_relaxed);
  snap.rejected_quota =
      counters_.rejected_quota.load(std::memory_order_relaxed);
  snap.rejected_queue_full =
      counters_.rejected_queue_full.load(std::memory_order_relaxed);
  snap.queue_timeouts =
      counters_.queue_timeouts.load(std::memory_order_relaxed);
  snap.retries = counters_.retries.load(std::memory_order_relaxed);
  snap.transient_faults =
      counters_.transient_faults.load(std::memory_order_relaxed);
  snap.no_retry_deadline =
      counters_.no_retry_deadline.load(std::memory_order_relaxed);
  snap.no_retry_non_idempotent =
      counters_.no_retry_non_idempotent.load(std::memory_order_relaxed);
  for (int i = 0; i < 3; ++i) {
    snap.mode_submissions[i] =
        counters_.mode_submissions[i].load(std::memory_order_relaxed);
  }
  snap.step_downs = breaker_.step_downs();
  snap.step_ups = breaker_.step_ups();
  snap.epochs_published = publisher_.published();
  snap.failed_swaps = publisher_.failed_swaps();
  snap.incoherent_snapshots =
      counters_.incoherent_snapshots.load(std::memory_order_relaxed);
  snap.feedback_updates =
      counters_.feedback_updates.load(std::memory_order_relaxed);
  snap.feedback_failures =
      counters_.feedback_failures.load(std::memory_order_relaxed);
  snap.latency_count = counters_.latency.count();
  snap.latency_total_seconds = counters_.latency.total_seconds();
  snap.latency_p50_seconds = counters_.latency.QuantileSeconds(0.5);
  snap.latency_p99_seconds = counters_.latency.QuantileSeconds(0.99);
  snap.search = ledger_.total();
  return snap;
}

}  // namespace condsel
