// EstimationService — the fault-tolerant, admission-controlled front end
// over the estimation library.
//
// The library (api.h's Estimator) assumes one well-behaved caller; a
// long-running optimizer process has many, arriving concurrently, under
// statistics refresh churn, with strict latency budgets. The service
// turns every failure mode into a policy decision instead of a crash or
// a stall:
//
//   snapshot epochs   every Submit pins an immutable epoch-numbered
//                     Snapshot (catalog + SIT pool); Refresh atomically
//                     swaps in a new epoch and never blocks or retroactively
//                     alters in-flight estimates (snapshot.h);
//   admission         per-tenant token buckets + a global concurrency cap
//                     with bounded-queue load shedding; overload is an
//                     explicit REJECTED_OVERLOAD, never unbounded latency
//                     (admission.h);
//   retry             transient failures (a lookup fault unwinding an
//                     attempt, a swap-window UNAVAILABLE) retry with
//                     jittered exponential backoff, always inside the
//                     caller's deadline; deterministic failures and
//                     non-idempotent feedback updates never retry
//                     (retry.h);
//   degradation       a per-tenant circuit breaker steps estimates down
//                     full GS → budget-capped GS → independence fallback
//                     under sustained failures, and back up on recovery
//                     (circuit_breaker.h);
//   telemetry         QPS-grade counters, p50/p99 latency, per-outcome
//                     admission/retry/degradation accounting, and an
//                     exactly-once GsStats aggregate (service_stats.h).
//
// Thread-safety: every public method is safe to call from any thread.
// Submit runs the estimate on the caller's thread (in-process service);
// internal state is synchronized per component, and the per-call
// Estimator session is thread-local to the call.

#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "condsel/api.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/rng.h"
#include "condsel/common/status.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/service/admission.h"
#include "condsel/service/circuit_breaker.h"
#include "condsel/service/retry.h"
#include "condsel/service/service_stats.h"
#include "condsel/service/snapshot.h"

namespace condsel {

struct ServiceOptions {
  Ranking ranking = Ranking::kDiff;
  AdmissionOptions admission;
  RetryPolicy retry;
  BreakerOptions breaker;
  // Rung budgets of the degradation ladder. kFull runs `full_budget`
  // (default: unlimited counts; per-attempt wall clock comes from the
  // caller's deadline). kCapped runs `capped_budget`. kIndependence
  // needs no budget: it forces the immediate-fallback search.
  EstimationBudget full_budget;
  EstimationBudget capped_budget{/*max_subproblems=*/64,
                                 /*max_atomic_decompositions=*/512,
                                 /*deadline_seconds=*/0.005};
  // Whole-call deadline (queue wait + attempts + backoffs) applied when a
  // Submit carries none. 0 = unlimited.
  double default_deadline_seconds = 0.0;
  // Cap on the admission-queue wait when the effective deadline is
  // unlimited, so a shed decision is always reached.
  double max_queue_wait_seconds = 0.05;
  // In kFull mode, when an attempt's estimate came back deadline-degraded
  // (budget_exhausted with no count caps armed) and the caller still has
  // budget for another try, classify the attempt DEADLINE_EXCEEDED and
  // retry instead of returning the degraded answer; if retries run out,
  // the degraded estimate is still returned (graceful floor).
  bool retry_degraded_full_estimates = true;
  // Seed for the backoff jitter stream (deterministic tests).
  uint64_t jitter_seed = 0x5e671ce5eedull;
};

struct SubmitOptions {
  // Whole-call deadline in seconds; 0 falls back to the service default.
  double deadline_seconds = 0.0;
};

// Maps an exception that unwound an estimation attempt (or a feedback
// observation) to the Status the retry classifier sees: the library's
// known-transient TransientFault becomes retryable UNAVAILABLE; any other
// std::exception is a deterministic bug and becomes terminal INTERNAL —
// replaying it would fail the same way while burning retry budget. `op`
// names the operation for the status message.
Status ClassifyAttemptException(const char* op, const std::exception& e);

struct ServiceEstimate {
  double selectivity = 1.0;
  double cardinality = 0.0;
  uint64_t epoch = 0;                        // snapshot the estimate used
  ServiceMode mode = ServiceMode::kFull;     // ladder rung it ran at
  int attempts = 1;                          // tries consumed (>= 1)
  bool degraded = false;   // any subproblem fell back to independence
  double latency_seconds = 0.0;              // admission to return
};

class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // Publishes a new snapshot epoch from `catalog` + `pool`. In-flight
  // estimates keep their pinned epoch; new Submits see the new one.
  // UNAVAILABLE if the swap failed (injected or real) — the previous
  // epoch stays current.
  StatusOr<uint64_t> Refresh(Catalog catalog, SitPool pool);

  // Wires `maintainer` (borrowed; must outlive the service) as the
  // statistics maintenance back end and publishes its merged per-part
  // statistics as a fresh epoch. Runs BuildAll first if the maintainer
  // has never built its entries (stats_generation() == 0). Returns the
  // published epoch.
  StatusOr<uint64_t> EnableDeltaMaintenance(PartStatsMaintainer* maintainer)
      CONDSEL_EXCLUDES(maintenance_mu_);

  // Applies one insert/delete batch through the maintainer — rebuilding
  // only the invalidated per-part statistics — and publishes the result
  // as a delta-refreshed epoch. In-flight Submits keep their pinned
  // epoch; the maintainer's catalog is never read by the estimate path,
  // so concurrent Submit storms race only on the epoch swap. On any
  // failure (invalid batch, corrupt rebuilt statistics, failed swap) the
  // previous epoch stays current — a half-refreshed pool is never
  // published. FAILED_PRECONDITION before EnableDeltaMaintenance.
  StatusOr<DeltaReport> ApplyDelta(const DeltaBatch& batch)
      CONDSEL_EXCLUDES(maintenance_mu_);

  // One estimation request for `tenant`. Runs admission, pins a
  // snapshot, estimates (with retries per the policy), and accounts the
  // outcome. Errors:
  //   REJECTED_OVERLOAD    shed by quota or bounded queue;
  //   DEADLINE_EXCEEDED    spent the whole-call deadline (queueing,
  //                        estimating, or backing off);
  //   FAILED_PRECONDITION  no epoch published yet, or the snapshot lacks
  //                        required statistics;
  //   UNAVAILABLE          transient failures outlived every retry;
  //   INVALID_ARGUMENT     the query itself is malformed.
  StatusOr<ServiceEstimate> Submit(const std::string& tenant,
                                   const Query& query,
                                   SubmitOptions options = {});

  // Best-effort cache warming: runs each query through Submit so the
  // snapshot's memo and sessions are hot before real traffic lands, and
  // deliberately discards every per-query outcome (a cold standby being
  // rejected by admission or racing a refresh is expected, not an
  // error). Returns the number of prewarm submits that succeeded.
  size_t Prewarm(const std::string& tenant,
                 const std::vector<Query>& queries,
                 SubmitOptions options = {});

  // Applies execution feedback (LEO-style observation) for `tenant` on
  // the current epoch. NON-IDEMPOTENT: observations accumulate, so this
  // path never retries — a transient failure surfaces as its Status and
  // the no-retry decision is visible in telemetry. Feedback state is
  // per-epoch; a Refresh starts the next epoch's state empty.
  Status ObserveFeedback(const std::string& tenant, const Query& query);

  // Learned feedback adjustment for `col` on the current epoch's state
  // (1.0 when unobserved) — lets tests verify exactly-once application.
  double FeedbackAdjustmentFor(ColumnRef col) const
      CONDSEL_EXCLUDES(feedback_mu_);

  ServiceStatsSnapshot Stats() const;

  uint64_t current_epoch() const { return publisher_.current_epoch(); }
  size_t live_epochs() const { return publisher_.live_epochs(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct FeedbackState;

  // Budget for one attempt at `mode` with `remaining_seconds` of caller
  // budget left.
  EstimationBudget BudgetForMode(ServiceMode mode,
                                 double remaining_seconds) const;
  // One estimation attempt against `snap`; settles search stats into the
  // ledger. Returns the estimate or the attempt's failure status.
  StatusOr<ServiceEstimate> Attempt(const Query& query,
                                    const Snapshot& snap,
                                    ServiceMode mode,
                                    double remaining_seconds);

  const ServiceOptions options_;
  SnapshotPublisher publisher_;
  AdmissionController admission_;
  CircuitBreakerLadder breaker_;
  ServiceCounters counters_;
  GsStatsLedger ledger_;
  // Decomposition skeletons shared across every per-attempt estimator
  // (the per-attempt sessions are otherwise cold): Prewarm fills it, and
  // repeated statement shapes skip candidate enumeration from then on.
  // Holds query structure only — no statistics — so snapshot epoch swaps
  // and delta refreshes never invalidate it (see shape_cache.h).
  ShapeCache shape_cache_;
  std::atomic<uint64_t> next_session_id_{1};

  // Backoff jitter stream; Rng is not thread-safe, so draws serialize.
  mutable OrderedMutex jitter_mu_{lock_rank::kServiceJitter,
                                  "EstimationService::jitter_mu_"};
  Rng jitter_rng_ CONDSEL_GUARDED_BY(jitter_mu_);

  // Serializes delta maintenance end-to-end: the catalog mutation, the
  // part-stats rebuild, and the publish of the refreshed epoch. Outer to
  // the snapshot pair (a maintenance pass finishes inside Publish); never
  // taken by the estimate path.
  mutable OrderedMutex maintenance_mu_{lock_rank::kPartMaintenance,
                                       "EstimationService::maintenance_mu_"};
  PartStatsMaintainer* maintainer_ CONDSEL_GUARDED_BY(maintenance_mu_) =
      nullptr;

  // Per-epoch feedback state, built lazily on first observation.
  // Outranked by jitter_mu_ and CardinalityCache::mu_: ObserveFeedback
  // takes both while holding it.
  mutable OrderedMutex feedback_mu_{lock_rank::kServiceFeedback,
                                    "EstimationService::feedback_mu_"};
  std::unique_ptr<FeedbackState> feedback_ CONDSEL_GUARDED_BY(feedback_mu_);
};

}  // namespace condsel
