#include "condsel/service/service_stats.h"

#include <cmath>

namespace condsel {

int LatencyRecorder::BucketFor(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;
  const int bucket = static_cast<int>(std::log2(micros));
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

void LatencyRecorder::Record(double seconds) {
  buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 atomic<double>::fetch_add — not
  // guaranteed lock-free everywhere; a CAS loop keeps it portable.
  double expected = total_seconds_.load(std::memory_order_relaxed);
  while (!total_seconds_.compare_exchange_weak(expected, expected + seconds,
                                               std::memory_order_relaxed)) {
  }
}

double LatencyRecorder::total_seconds() const {
  return total_seconds_.load(std::memory_order_relaxed);
}

double LatencyRecorder::QuantileSeconds(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  const uint64_t rank =
      q >= 1.0 ? n : static_cast<uint64_t>(q * static_cast<double>(n)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper edge of bucket i: 2^(i+1) microseconds.
      return std::ldexp(1.0, i + 1) * 1e-6;
    }
  }
  return std::ldexp(1.0, kBuckets) * 1e-6;
}

void GsStatsLedger::Settle(uint64_t session_id, const GsStats& cumulative) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  GsStats& last = last_settled_[session_id];
  AddGsStats(DiffGsStats(cumulative, last), &total_);
  last = cumulative;
}

void GsStatsLedger::Forget(uint64_t session_id) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  last_settled_.erase(session_id);
}

GsStats GsStatsLedger::total() const {
  const std::lock_guard<OrderedMutex> lock(mu_);
  return total_;
}

}  // namespace condsel
