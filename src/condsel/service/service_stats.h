// Service-level telemetry: request counters, latency quantiles, and the
// double-count-proof GsStats aggregator.
//
// Everything here is written from many session threads at once, so the
// counters are relaxed atomics (exactness of *sums* matters; ordering
// between counters does not — invariants are asserted only at quiescence)
// and the latency histogram is a fixed array of atomic buckets.
//
// GsStatsLedger solves a specific accounting trap: GsStats counters are
// *cumulative over a session's lifetime*, so an aggregator that re-adds a
// session's stats() after every Compute() would double-count all earlier
// calls — per-session stats would no longer sum to the service total.
// The ledger settles deltas (DiffGsStats, budget.h) keyed by session id:
// settling the same session's growing snapshot any number of times, from
// any interleaving of threads, contributes each counted event exactly
// once. tests/service_test.cc's OverlappingSettlement case drives this
// with concurrent Compute()s and asserts exact equality with the final
// session stats.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/selectivity/budget.h"

namespace condsel {

// Log2-bucketed latency histogram over [1us, ~1.2h], lock-free recording.
class LatencyRecorder {
 public:
  void Record(double seconds);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const;

  // Inclusive quantile (0 < q <= 1) as the upper edge of the bucket
  // holding the q-th sample; 0 when nothing was recorded. Bucket edges
  // double, so the estimate is within 2x of the true quantile — the
  // right fidelity for p50/p99 overload telemetry, at zero contention.
  double QuantileSeconds(double q) const;

 private:
  static constexpr int kBuckets = 32;  // bucket i: [2^i, 2^(i+1)) us
  static int BucketFor(double seconds);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> total_seconds_{0.0};
};

// A point-in-time copy of the service's counters (taken with relaxed
// loads; exact at quiescence, approximately consistent under load).
struct ServiceStatsSnapshot {
  // Request lifecycle.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;  // terminal failures returned to the caller
  // Admission outcomes.
  uint64_t rejected_quota = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t queue_timeouts = 0;
  // Retry machinery.
  uint64_t retries = 0;
  uint64_t transient_faults = 0;  // attempts that failed retryably
  uint64_t no_retry_deadline = 0;      // retry denied: deadline exhausted
  uint64_t no_retry_non_idempotent = 0;  // retry denied: feedback path
  // Degradation ladder.
  uint64_t mode_submissions[3] = {0, 0, 0};  // indexed by ServiceMode
  uint64_t step_downs = 0;
  uint64_t step_ups = 0;
  // Snapshot lifecycle.
  uint64_t epochs_published = 0;
  uint64_t failed_swaps = 0;
  uint64_t incoherent_snapshots = 0;  // torn-publication detector hits
  // Feedback path.
  uint64_t feedback_updates = 0;
  uint64_t feedback_failures = 0;
  // Latency (seconds).
  uint64_t latency_count = 0;
  double latency_total_seconds = 0.0;
  double latency_p50_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  // Aggregate search work across all sessions (ledger-settled).
  GsStats search;
};

// The mutable counter block behind ServiceStatsSnapshot.
struct ServiceCounters {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> rejected_quota{0};
  std::atomic<uint64_t> rejected_queue_full{0};
  std::atomic<uint64_t> queue_timeouts{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> transient_faults{0};
  std::atomic<uint64_t> no_retry_deadline{0};
  std::atomic<uint64_t> no_retry_non_idempotent{0};
  std::atomic<uint64_t> mode_submissions[3] = {};
  std::atomic<uint64_t> incoherent_snapshots{0};
  std::atomic<uint64_t> feedback_updates{0};
  std::atomic<uint64_t> feedback_failures{0};
  LatencyRecorder latency;
};

// Delta-settling GsStats aggregator (see file comment).
class GsStatsLedger {
 public:
  // Adds the growth of session `session_id` since its last settlement.
  // `cumulative` must be a snapshot of that session's stats() — the
  // caller copies it while no Compute() on the session is in flight (the
  // session object itself is externally synchronized, like GetSelectivity).
  void Settle(uint64_t session_id, const GsStats& cumulative)
      CONDSEL_EXCLUDES(mu_);

  // Drops a session's baseline (its contributions stay in the total).
  void Forget(uint64_t session_id) CONDSEL_EXCLUDES(mu_);

  GsStats total() const CONDSEL_EXCLUDES(mu_);

 private:
  mutable OrderedMutex mu_{lock_rank::kGsStatsLedger, "GsStatsLedger::mu_"};
  GsStats total_ CONDSEL_GUARDED_BY(mu_);
  std::map<uint64_t, GsStats> last_settled_ CONDSEL_GUARDED_BY(mu_);
};

}  // namespace condsel
