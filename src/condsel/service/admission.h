// Admission control: per-tenant token buckets + a global concurrency cap
// with a bounded wait queue.
//
// Overload is a policy decision, not an emergent behaviour: every Submit
// first passes admission, and the three ways it can fail are explicit —
//   - the tenant's token bucket is dry (quota exceeded): immediate
//     REJECTED_OVERLOAD, the request never queues;
//   - the global concurrency cap is reached and the wait queue is full:
//     immediate REJECTED_OVERLOAD (bounded-queue load shedding — an
//     unbounded queue converts overload into unbounded latency);
//   - the request queued but no slot freed before its deadline:
//     DEADLINE_EXCEEDED (spent its budget waiting, not estimating).
//
// The token bucket reuses the EstimationBudget philosophy one level up:
// where the budget caps what one estimate may spend, the bucket caps how
// many estimates a tenant may start. Time is passed in by the caller
// (monotonic seconds) so tests drive refill deterministically.

#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>

#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/status.h"
#include "condsel/common/thread_annotations.h"

namespace condsel {

struct AdmissionOptions {
  int max_concurrent = 8;  // estimates running at once (>=1)
  int queue_limit = 16;    // waiters beyond the cap; above this, shed
  // Per-tenant quota: sustained admissions/second and burst capacity.
  // rate <= 0 disables the bucket (unlimited tenants).
  double tenant_rate_per_second = 0.0;
  double tenant_burst = 0.0;  // <= 0 defaults to max(rate, 1)
};

// One tenant's refillable quota. Externally synchronized (the controller
// holds its mutex around all bucket calls).
class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst);

  // Consumes one token if available at monotonic time `now_seconds`;
  // refills rate*elapsed tokens first, capped at burst.
  bool TryAcquire(double now_seconds);

  // Returns the token of a TryAcquire whose request then got no service
  // (shed by the full queue, or timed out waiting for a slot), capped at
  // burst. Without the refund, a saturated service would burn a tenant's
  // quota on requests it never ran.
  void Refund();

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_refill_seconds_;
  bool started_ = false;  // first call seeds the refill clock
};

// Which gate decided an admission, for per-outcome telemetry.
enum class AdmissionOutcome {
  kAdmitted = 0,
  kQuota,      // tenant bucket dry
  kQueueFull,  // shed: cap reached and queue at limit
  kTimeout,    // queued, but no slot freed within the deadline
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  // Admits one request for `tenant` at monotonic time `now_seconds`,
  // waiting up to `max_wait_seconds` for a concurrency slot. On Ok() the
  // caller owns a slot and must Release() it exactly once. `outcome`
  // (optional) reports which gate decided.
  Status Admit(const std::string& tenant, double now_seconds,
               double max_wait_seconds, AdmissionOutcome* outcome = nullptr)
      CONDSEL_EXCLUDES(mu_);
  void Release() CONDSEL_EXCLUDES(mu_);

  int in_flight() const CONDSEL_EXCLUDES(mu_);
  int waiting() const CONDSEL_EXCLUDES(mu_);

 private:
  const AdmissionOptions options_;
  mutable OrderedMutex mu_{lock_rank::kAdmission,
                           "AdmissionController::mu_"};
  // _any: waits on the rank-checked mutex, so the unlock/relock inside
  // wait_for keeps the held-lock stack consistent.
  std::condition_variable_any slot_freed_;
  int in_flight_ CONDSEL_GUARDED_BY(mu_) = 0;
  int waiting_ CONDSEL_GUARDED_BY(mu_) = 0;
  std::map<std::string, TokenBucket> buckets_ CONDSEL_GUARDED_BY(mu_);
};

}  // namespace condsel
