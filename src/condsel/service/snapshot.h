// Epoch-numbered immutable snapshots of catalog + SIT pool.
//
// The EstimationService never lets an estimate observe statistics that
// change under it: every Submit() pins one Snapshot — an immutable bundle
// of the catalog and its SIT pool, stamped with a monotonically increasing
// epoch — for the whole call. Refresh publishes a *new* snapshot by
// atomically swapping the current handle; it never mutates a published
// one, so in-flight estimates keep reading their pinned epoch and a swap
// never blocks them. An old epoch is retired (freed) only when the last
// session holding its shared_ptr drops it; the publisher's weak_ptr ledger
// makes the retirement observable (live_epochs()).
//
// Locking discipline: Publish serializes writers on refresh_mu_ — held
// across the (expensive) snapshot construction, which only other refreshes
// ever wait on — while epoch_mu_ guards just the epoch counter, the
// retirement ledger, and the pointer swap. No blocking work (allocation of
// table data, statistics builds, sleeps, estimation) is ever done under
// epoch_mu_; condsel_lint's no-blocking-under-epoch-lock rule enforces
// this, because one slow refresh holding the epoch lock would stall every
// session's acquire path — the exact overload-amplification failure the
// service exists to prevent.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "condsel/catalog/catalog.h"
#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/status.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

class Snapshot {
 public:
  Snapshot(uint64_t epoch, Catalog catalog, SitPool pool)
      : epoch_(epoch),
        catalog_(std::move(catalog)),
        pool_(std::move(pool)),
        seal_(kSealMagic ^ epoch) {}

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  uint64_t epoch() const { return epoch_; }
  const Catalog& catalog() const { return catalog_; }
  const SitPool& pool() const { return pool_; }

  // Torn-publication detector for the chaos soak: the seal is derived
  // from the epoch in the constructor, so any snapshot reachable through
  // Acquire() that was fully constructed verifies; a half-published one
  // (the bug class the atomic swap exists to rule out) would not. The
  // soak test asserts this never fires across thousands of concurrent
  // acquire/swap interleavings.
  bool Coherent() const { return seal_ == (kSealMagic ^ epoch_); }

 private:
  static constexpr uint64_t kSealMagic = 0x5ea1c0de5ea1c0deull;

  const uint64_t epoch_;
  const Catalog catalog_;
  const SitPool pool_;
  const uint64_t seal_;  // written last in the ctor init order
};

// Publishes snapshots and tracks epoch lifetimes.
class SnapshotPublisher {
 public:
  // Swaps in a new epoch built from `catalog` + `pool`. Respects the
  // FaultInjector's kFailSnapshotSwap (reports UNAVAILABLE, current epoch
  // untouched) and kSlowRefresh (stalls before taking any lock) hooks.
  // Thread-safe; concurrent publishers serialize, each gets its own epoch.
  StatusOr<uint64_t> Publish(Catalog catalog, SitPool pool)
      CONDSEL_EXCLUDES(epoch_mu_);

  // The current snapshot, or nullptr before the first successful Publish.
  // Wait-free with respect to publishers: a refresh mid-swap never delays
  // an acquire, and the returned handle pins its epoch until dropped.
  std::shared_ptr<const Snapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  // Epoch of the current snapshot (0 before the first Publish).
  uint64_t current_epoch() const;

  // Published epochs whose snapshot is still alive — pinned by at least
  // one outstanding handle or current. Retirement is refcount-driven:
  // this drops as sessions release old epochs, never before.
  size_t live_epochs() const CONDSEL_EXCLUDES(epoch_mu_);

  uint64_t published() const {
    return published_count_.load(std::memory_order_relaxed);
  }
  uint64_t failed_swaps() const {
    return failed_swaps_.load(std::memory_order_relaxed);
  }

 private:
  // Serializes whole refreshes; never taken by the estimate path.
  OrderedMutex refresh_mu_{lock_rank::kSnapshotRefresh,
                           "SnapshotPublisher::refresh_mu_"};
  mutable OrderedMutex epoch_mu_{lock_rank::kSnapshotEpoch,
                                 "SnapshotPublisher::epoch_mu_"};
  uint64_t next_epoch_ CONDSEL_GUARDED_BY(epoch_mu_) = 1;
  // Weak ledger of every published epoch, pruned as refcounts hit zero.
  mutable std::vector<std::pair<uint64_t, std::weak_ptr<const Snapshot>>>
      ledger_ CONDSEL_GUARDED_BY(epoch_mu_);
  // The published handle. Swapped under epoch_mu_, read wait-free by
  // sessions (they never touch epoch_mu_ to acquire).
  std::atomic<std::shared_ptr<const Snapshot>> current_;
  std::atomic<uint64_t> published_count_{0};
  std::atomic<uint64_t> failed_swaps_{0};
};

}  // namespace condsel
