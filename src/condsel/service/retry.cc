#include "condsel/service/retry.h"

#include <algorithm>
#include <cmath>

namespace condsel {

bool RetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:  // only with caller budget left;
                                         // DecideRetry enforces that
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
    case StatusCode::kRejectedOverload:
      return false;
  }
  return false;
}

double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng* rng) {
  const int exponent = std::max(0, attempt - 1);
  double backoff = policy.initial_backoff_seconds *
                   std::pow(policy.backoff_multiplier, exponent);
  if (rng != nullptr && policy.jitter_fraction > 0.0) {
    const double lo = 1.0 - policy.jitter_fraction;
    const double span = 2.0 * policy.jitter_fraction;
    backoff *= lo + span * rng->NextDouble();
  }
  return std::min(backoff, policy.max_backoff_seconds);
}

RetryDecision DecideRetry(const RetryPolicy& policy, StatusCode code,
                          int attempt, bool idempotent,
                          double remaining_deadline_seconds, Rng* rng) {
  RetryDecision d;
  if (!idempotent) {
    // A feedback observation may have partially applied before the
    // failure; replaying it would double-observe. The caller sees the
    // error and decides at a layer that can deduplicate.
    d.reason = "non-idempotent request is never retried";
    return d;
  }
  if (attempt >= policy.max_attempts) {
    d.reason = "attempt limit reached";
    return d;
  }
  if (!RetryableStatusCode(code)) {
    d.reason = "terminal status code";
    return d;
  }
  const double backoff = BackoffSeconds(policy, attempt, rng);
  if (!(remaining_deadline_seconds > backoff)) {
    // Deadline exhaustion never retries: the backoff alone would outlive
    // the caller's budget, so the retry could not even start in time.
    d.reason = "caller deadline exhausted";
    return d;
  }
  d.retry = true;
  d.backoff_seconds = backoff;
  d.reason = code == StatusCode::kDeadlineExceeded
                 ? "per-attempt deadline overrun, caller budget left"
                 : "transient failure";
  return d;
}

}  // namespace condsel
