// Separability (Definition 2) and the standard decomposition (Lemma 2).
//
// Sel_R(P | Q) is separable when P ∪ Q splits into table-disjoint parts;
// by Property 2 the expression then factors exactly, with no independence
// assumption. Repeatedly separating yields the unique standard
// decomposition into non-separable factors, which getSelectivity (and
// Assumption 1 on histogram minimality) uses to prune the search space.

#pragma once

#include <vector>

#include "condsel/query/join_graph.h"
#include "condsel/query/query.h"

namespace condsel {

// Separability of Sel(P | Q): components of P ∪ Q >= 2.
bool IsSeparableSel(const Query& query, PredSet p, PredSet cond = 0);

// The unique standard decomposition of Sel(P): the connected components
// of P, each a non-separable unconditioned factor, ordered canonically by
// lowest predicate index.
std::vector<PredSet> StandardDecomposition(const Query& query, PredSet p);

// Allocation-free variant for the per-subset DP hot path; identical
// contents and order, returned on the stack.
ComponentList StandardDecompositionFast(const Query& query, PredSet p);

}  // namespace condsel

