#include "condsel/selectivity/budget.h"

#include <algorithm>
#include <cstddef>

#include "condsel/common/fault_injector.h"

namespace condsel {

void Deadline::Arm(double seconds) {
  if (seconds <= 0.0) {
    Disarm();
    return;
  }
  const auto at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  // Publication contract (budget.h): the expiry instant is stored before
  // armed_ is released, so a reader that acquires armed_ == true never
  // sees a stale instant.
  at_.store(at.time_since_epoch().count(), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

bool Deadline::Expired() const {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kExpireDeadline)) return true;
  const std::chrono::steady_clock::time_point at{
      std::chrono::steady_clock::duration{
          at_.load(std::memory_order_relaxed)}};
  return std::chrono::steady_clock::now() >= at;
}

void BudgetCounters::Add(GsStats* out) const {
  out->subproblems = subproblems.load(std::memory_order_relaxed);
  out->memo_hits = memo_hits.load(std::memory_order_relaxed);
  out->atomic_considered = atomic_considered.load(std::memory_order_relaxed);
  out->degraded_subproblems =
      degraded_subproblems.load(std::memory_order_relaxed);
  out->default_fallbacks = default_fallbacks.load(std::memory_order_relaxed);
  out->shape_cache_hits = shape_cache_hits.load(std::memory_order_relaxed);
  out->shape_cache_misses =
      shape_cache_misses.load(std::memory_order_relaxed);
  out->budget_exhausted = budget_exhausted.load(std::memory_order_relaxed);
  out->analysis_seconds = analysis_seconds.load(std::memory_order_relaxed);
  out->histogram_seconds = histogram_seconds.load(std::memory_order_relaxed);
  out->steals = steals.load(std::memory_order_relaxed);
  out->stolen_subsets = stolen_subsets.load(std::memory_order_relaxed);
  out->parallel_levels = parallel_levels.load(std::memory_order_relaxed);
  out->max_level_width = max_level_width.load(std::memory_order_relaxed);
}

bool BudgetExhausted(const EstimationBudget* budget,
                     const BudgetCounters& counters,
                     const Deadline& deadline) {
  if (budget == nullptr) return false;
  if (budget->max_subproblems > 0 &&
      counters.subproblems.load(std::memory_order_relaxed) >=
          budget->max_subproblems) {
    return true;
  }
  if (budget->max_atomic_decompositions > 0 &&
      counters.atomic_considered.load(std::memory_order_relaxed) >=
          budget->max_atomic_decompositions) {
    return true;
  }
  return deadline.Expired();
}

void AddGsStats(const GsStats& delta, GsStats* total) {
  total->subproblems += delta.subproblems;
  total->memo_hits += delta.memo_hits;
  total->atomic_considered += delta.atomic_considered;
  total->analysis_seconds += delta.analysis_seconds;
  total->histogram_seconds += delta.histogram_seconds;
  total->budget_exhausted = total->budget_exhausted || delta.budget_exhausted;
  total->degraded_subproblems += delta.degraded_subproblems;
  total->default_fallbacks += delta.default_fallbacks;
  total->shape_cache_hits += delta.shape_cache_hits;
  total->shape_cache_misses += delta.shape_cache_misses;
  total->steals += delta.steals;
  total->stolen_subsets += delta.stolen_subsets;
  total->parallel_levels += delta.parallel_levels;
  total->max_level_width =
      std::max(total->max_level_width, delta.max_level_width);
  total->level_stats.insert(total->level_stats.end(),
                            delta.level_stats.begin(),
                            delta.level_stats.end());
}

namespace {
uint64_t SatSub(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }
}  // namespace

GsStats DiffGsStats(const GsStats& cumulative, const GsStats& prev) {
  GsStats d;
  d.subproblems = SatSub(cumulative.subproblems, prev.subproblems);
  d.memo_hits = SatSub(cumulative.memo_hits, prev.memo_hits);
  d.atomic_considered =
      SatSub(cumulative.atomic_considered, prev.atomic_considered);
  d.analysis_seconds =
      std::max(0.0, cumulative.analysis_seconds - prev.analysis_seconds);
  d.histogram_seconds =
      std::max(0.0, cumulative.histogram_seconds - prev.histogram_seconds);
  // A session that was ever exhausted stays flagged; the delta carries the
  // flag only on the settle that first observes it.
  d.budget_exhausted = cumulative.budget_exhausted && !prev.budget_exhausted;
  d.degraded_subproblems =
      SatSub(cumulative.degraded_subproblems, prev.degraded_subproblems);
  d.default_fallbacks =
      SatSub(cumulative.default_fallbacks, prev.default_fallbacks);
  d.shape_cache_hits =
      SatSub(cumulative.shape_cache_hits, prev.shape_cache_hits);
  d.shape_cache_misses =
      SatSub(cumulative.shape_cache_misses, prev.shape_cache_misses);
  d.steals = SatSub(cumulative.steals, prev.steals);
  d.stolen_subsets = SatSub(cumulative.stolen_subsets, prev.stolen_subsets);
  d.parallel_levels = SatSub(cumulative.parallel_levels, prev.parallel_levels);
  d.max_level_width = cumulative.max_level_width;
  // level_stats only grows by whole appended batches; the delta is the
  // suffix past what `prev` had already seen.
  if (cumulative.level_stats.size() > prev.level_stats.size()) {
    d.level_stats.assign(
        cumulative.level_stats.begin() +
            static_cast<std::ptrdiff_t>(prev.level_stats.size()),
        cumulative.level_stats.end());
  }
  return d;
}

}  // namespace condsel
