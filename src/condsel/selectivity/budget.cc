#include "condsel/selectivity/budget.h"

#include "condsel/common/fault_injector.h"

namespace condsel {

void Deadline::Arm(double seconds) {
  armed_ = seconds > 0.0;
  if (armed_) {
    at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
  }
}

bool Deadline::Expired() const {
  if (!armed_) return false;
  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kExpireDeadline)) return true;
  return std::chrono::steady_clock::now() >= at_;
}

void BudgetCounters::Add(GsStats* out) const {
  out->subproblems = subproblems.load(std::memory_order_relaxed);
  out->memo_hits = memo_hits.load(std::memory_order_relaxed);
  out->atomic_considered = atomic_considered.load(std::memory_order_relaxed);
  out->degraded_subproblems =
      degraded_subproblems.load(std::memory_order_relaxed);
  out->default_fallbacks = default_fallbacks.load(std::memory_order_relaxed);
  out->budget_exhausted = budget_exhausted.load(std::memory_order_relaxed);
  out->analysis_seconds = analysis_seconds.load(std::memory_order_relaxed);
  out->histogram_seconds = histogram_seconds.load(std::memory_order_relaxed);
}

bool BudgetExhausted(const EstimationBudget* budget,
                     const BudgetCounters& counters,
                     const Deadline& deadline) {
  if (budget == nullptr) return false;
  if (budget->max_subproblems > 0 &&
      counters.subproblems.load(std::memory_order_relaxed) >=
          budget->max_subproblems) {
    return true;
  }
  if (budget->max_atomic_decompositions > 0 &&
      counters.atomic_considered.load(std::memory_order_relaxed) >=
          budget->max_atomic_decompositions) {
    return true;
  }
  return deadline.Expired();
}

}  // namespace condsel
