#include "condsel/selectivity/budget.h"

#include "condsel/common/fault_injector.h"

namespace condsel {

void Deadline::Arm(double seconds) {
  if (seconds <= 0.0) {
    Disarm();
    return;
  }
  const auto at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  // Publication contract (budget.h): the expiry instant is stored before
  // armed_ is released, so a reader that acquires armed_ == true never
  // sees a stale instant.
  at_.store(at.time_since_epoch().count(), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

bool Deadline::Expired() const {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kExpireDeadline)) return true;
  const std::chrono::steady_clock::time_point at{
      std::chrono::steady_clock::duration{
          at_.load(std::memory_order_relaxed)}};
  return std::chrono::steady_clock::now() >= at;
}

void BudgetCounters::Add(GsStats* out) const {
  out->subproblems = subproblems.load(std::memory_order_relaxed);
  out->memo_hits = memo_hits.load(std::memory_order_relaxed);
  out->atomic_considered = atomic_considered.load(std::memory_order_relaxed);
  out->degraded_subproblems =
      degraded_subproblems.load(std::memory_order_relaxed);
  out->default_fallbacks = default_fallbacks.load(std::memory_order_relaxed);
  out->budget_exhausted = budget_exhausted.load(std::memory_order_relaxed);
  out->analysis_seconds = analysis_seconds.load(std::memory_order_relaxed);
  out->histogram_seconds = histogram_seconds.load(std::memory_order_relaxed);
  out->steals = steals.load(std::memory_order_relaxed);
  out->stolen_subsets = stolen_subsets.load(std::memory_order_relaxed);
  out->parallel_levels = parallel_levels.load(std::memory_order_relaxed);
  out->max_level_width = max_level_width.load(std::memory_order_relaxed);
}

bool BudgetExhausted(const EstimationBudget* budget,
                     const BudgetCounters& counters,
                     const Deadline& deadline) {
  if (budget == nullptr) return false;
  if (budget->max_subproblems > 0 &&
      counters.subproblems.load(std::memory_order_relaxed) >=
          budget->max_subproblems) {
    return true;
  }
  if (budget->max_atomic_decompositions > 0 &&
      counters.atomic_considered.load(std::memory_order_relaxed) >=
          budget->max_atomic_decompositions) {
    return true;
  }
  return deadline.Expired();
}

}  // namespace condsel
