#include "condsel/selectivity/decomposer.h"

#include "condsel/common/macros.h"

namespace condsel {

CONDSEL_HOT std::vector<PredSet> AtomicFactorCandidates(
    const Query& query, PredSet p, const Deadline* deadline,
    bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::vector<PredSet> candidates;
  auto expired = [&] {
    if (deadline == nullptr || !deadline->Expired()) return false;
    if (truncated != nullptr) *truncated = true;
    return true;
  };

  for (int i : SetElements(p)) {
    if (query.predicate(i).is_filter()) {
      candidates.push_back(1u << i);
    }
  }
  // Filter pairs (approximable by multidimensional SITs).
  {
    const std::vector<int> fs = SetElements(p & query.filter_predicates());
    for (size_t a = 0; a < fs.size(); ++a) {
      for (size_t b = a + 1; b < fs.size(); ++b) {
        candidates.push_back((1u << fs[a]) | (1u << fs[b]));
      }
    }
  }
  for (int i : SetElements(p)) {
    if (query.predicate(i).is_join()) candidates.push_back(1u << i);
  }
  for (int j : SetElements(p)) {
    if (!query.predicate(j).is_join()) continue;
    if (expired()) return candidates;
    const Predicate& join = query.predicate(j);
    // Filters of P over the join's columns.
    std::vector<int> attached;
    for (int f : SetElements(p)) {
      if (f == j || !query.predicate(f).is_filter()) continue;
      const ColumnRef c = query.predicate(f).column();
      if (c == join.left() || c == join.right()) attached.push_back(f);
    }
    const int nf = static_cast<int>(attached.size());
    for (uint32_t m = 1; m < (1u << nf); ++m) {
      // The deadline gate inside the exponential fan-out: without it a
      // join with many attached filters could spend 2^nf enumeration
      // steps after the clock ran out.
      if (expired()) return candidates;
      PredSet combo = 1u << j;
      for (int b = 0; b < nf; ++b) {
        if (Contains(m, b)) {
          combo = With(combo, attached[static_cast<size_t>(b)]);
        }
      }
      candidates.push_back(combo);
    }
  }
  return candidates;
}

}  // namespace condsel
