#include "condsel/selectivity/decomposer.h"

#include "condsel/common/macros.h"

namespace condsel {

CONDSEL_HOT void AtomicFactorCandidatesInto(const Query& query, PredSet p,
                                            const Deadline* deadline,
                                            bool* truncated,
                                            ArenaVector<PredSet>* out) {
  if (truncated != nullptr) *truncated = false;
  auto expired = [&] {
    if (deadline == nullptr || !deadline->Expired()) return false;
    if (truncated != nullptr) *truncated = true;
    return true;
  };

  for (int i : SetBits(p)) {
    if (query.predicate(i).is_filter()) {
      out->Append(1u << i);
    }
  }
  // Filter pairs (approximable by multidimensional SITs).
  {
    const PredSet filters = p & query.filter_predicates();
    for (int a : SetBits(filters)) {
      if (expired()) return;
      for (int b : SetBits(filters & ~((2u << a) - 1u))) {
        out->Append((1u << a) | (1u << b));
      }
    }
  }
  for (int i : SetBits(p)) {
    if (query.predicate(i).is_join()) out->Append(1u << i);
  }
  for (int j : SetBits(p)) {
    if (!query.predicate(j).is_join()) continue;
    if (expired()) return;
    const Predicate& join = query.predicate(j);
    // Filters of P over the join's columns. At most kMaxPredicates of
    // them — a stack array, like every other per-subset scratch here.
    int attached[kMaxPredicates];
    int nf = 0;
    for (int f : SetBits(p)) {
      if (f == j || !query.predicate(f).is_filter()) continue;
      const ColumnRef c = query.predicate(f).column();
      if (c == join.left() || c == join.right()) attached[nf++] = f;
    }
    for (uint32_t m = 1; m < (1u << nf); ++m) {
      // The deadline gate inside the exponential fan-out: without it a
      // join with many attached filters could spend 2^nf enumeration
      // steps after the clock ran out.
      if (expired()) return;
      PredSet combo = 1u << j;
      for (int b = 0; b < nf; ++b) {
        if (Contains(m, b)) {
          combo = With(combo, attached[b]);
        }
      }
      out->Append(combo);
    }
  }
}

std::vector<PredSet> AtomicFactorCandidates(const Query& query, PredSet p,
                                            const Deadline* deadline,
                                            bool* truncated) {
  Arena arena;
  ArenaVector<PredSet> out(&arena);
  AtomicFactorCandidatesInto(query, p, deadline, truncated, &out);
  return std::vector<PredSet>(out.begin(), out.end());
}

}  // namespace condsel
