// Conditional-selectivity expressions and decompositions (Section 2).
//
// Within one bound query, a factor Sel_R(P | Q) is a pair of predicate
// bitmasks (p, q); R is implied as tables(P ∪ Q). A decomposition is a
// product of factors obtained from Sel_R(P) by repeated atomic
// decompositions (Property 1): a chain S_1 * ... * S_k with
// Q_i = P_{i+1} ∪ ... ∪ P_k and the P_i partitioning P.

#pragma once

#include <string>
#include <vector>

#include "condsel/query/query.h"

namespace condsel {

struct Factor {
  PredSet p = 0;
  PredSet q = 0;

  friend bool operator==(const Factor&, const Factor&) = default;
};

using Decomposition = std::vector<Factor>;

// True iff `d` is a valid chain decomposition of Sel(full): the P_i are
// non-empty, disjoint, cover `full`, and each Q_i equals the union of the
// later factors' P_j (with Q_k empty).
bool IsChainDecomposition(PredSet full, const Decomposition& d);

std::string FactorToString(const Query& query, const Factor& f);
std::string DecompositionToString(const Query& query, const Decomposition& d);

}  // namespace condsel

