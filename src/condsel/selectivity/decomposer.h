// Atomic-decomposition enumeration for the getSelectivity DP.
//
// For a non-separable predicate set P, enumerates the candidate head
// factors P' whose Sel(P' | P∖P') some SIT could approximate, in the
// canonical order the DP scores them:
//   1. single filters — first, because nInd scores many decompositions
//      equally (the paper's Section 3.5 motivation) and on ties the
//      first-seen candidate wins: a filter head is conditioned on the
//      joins, where filter-attribute SITs actually capture the
//      dependence, while a join head would be estimated from base
//      histograms, silently assuming independence from every filter;
//   2. filter pairs (approximable by multidimensional SITs);
//   3. single joins;
//   4. each join plus every non-empty combination of the filters over its
//      own columns (Example 3's shapes).
// All other P' would need statistics no pool contains; their error is
// infinite (line 12's "no SITs available") and exploring them could never
// win, so they are skipped outright.
//
// The enumeration is a pure function of (query, p) — both drivers of the
// split DP call it and must see identical candidate lists for the
// sequential and parallel results to agree bit-for-bit. The optional
// deadline bounds step 4's fan-out (2^filters combinations per join): when
// it expires the enumeration stops early and reports truncation, so a
// pathological query cannot overshoot a deadline by the whole enumeration.

#pragma once

#include <vector>

#include "condsel/common/arena.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/budget.h"

namespace condsel {

// Appends the candidate head factors of `p`, in scoring order, to `out`
// (arena-backed scratch owned by the calling Compute). `truncated`
// (optional) is set iff the deadline expired mid-enumeration. A null or
// disarmed deadline never truncates. This is the hot-path entry point —
// it performs no heap allocation beyond `out`'s arena growth.
void AtomicFactorCandidatesInto(const Query& query, PredSet p,
                                const Deadline* deadline, bool* truncated,
                                ArenaVector<PredSet>* out);

// Vector-returning wrapper for callers off the hot path; identical
// candidate list and order.
std::vector<PredSet> AtomicFactorCandidates(const Query& query, PredSet p,
                                            const Deadline* deadline = nullptr,
                                            bool* truncated = nullptr);

}  // namespace condsel
