#include "condsel/selectivity/separability.h"

#include "condsel/query/join_graph.h"

namespace condsel {

bool IsSeparableSel(const Query& query, PredSet p, PredSet cond) {
  return IsSeparable(query.predicates(), p | cond);
}

std::vector<PredSet> StandardDecomposition(const Query& query, PredSet p) {
  return ConnectedComponents(query.predicates(), p);
}

ComponentList StandardDecompositionFast(const Query& query, PredSet p) {
  return ConnectedComponentsFast(query.predicates(), p);
}

}  // namespace condsel
