#include "condsel/selectivity/exhaustive.h"

#include "condsel/common/numeric.h"
#include "condsel/selectivity/separability.h"

namespace condsel {
namespace {

struct SearchState {
  const Query* query;
  FactorApproximator* approximator;
  bool separable_first;
  uint64_t nodes = 0;
};

// Returns {error, selectivity} for the best decomposition of Sel(p).
std::pair<double, double> Best(SearchState& st, PredSet p) {
  ++st.nodes;
  if (p == 0) return {0.0, 1.0};

  const std::vector<PredSet> comps = StandardDecomposition(*st.query, p);
  double best_err = kInfiniteError;
  double best_sel = 0.0;

  if (comps.size() > 1) {
    double err = 0.0, sel = 1.0;
    bool ok = true;
    for (PredSet c : comps) {
      const auto [ce, cs] = Best(st, c);
      if (ce == kInfiniteError) {
        ok = false;
        break;
      }
      err = ErrorFunction::Merge(err, ce);
      sel *= cs;
    }
    if (ok) {
      best_err = err;
      best_sel = sel;
    }
    if (st.separable_first) return {best_err, best_sel};
  }

  // Atomic decompositions: every non-empty P' heads a factor.
  for (PredSet p_prime = p; p_prime != 0;
       p_prime = PrevSubmask(p, p_prime)) {
    const PredSet q = p & ~p_prime;
    FactorChoice choice = st.approximator->Score(*st.query, p_prime, q);
    if (!choice.feasible) continue;
    const auto [qe, qs] = Best(st, q);
    if (qe == kInfiniteError) continue;
    const double err = ErrorFunction::Merge(choice.error, qe);
    if (err < best_err) {
      best_err = err;
      best_sel =
          st.approximator->Estimate(*st.query, p_prime, choice) * qs;
    }
  }
  return {best_err, best_sel};
}

}  // namespace

ExhaustiveResult ExhaustiveBest(const Query& query, PredSet p,
                                FactorApproximator* approximator,
                                bool separable_first) {
  SearchState st{&query, approximator, separable_first, 0};
  const auto [err, sel] = Best(st, p);
  ExhaustiveResult r;
  r.error = err;
  r.selectivity = SanitizeSelectivity(sel);
  r.nodes_explored = st.nodes;
  return r;
}

}  // namespace condsel
