#include "condsel/selectivity/exhaustive.h"

#include "condsel/common/numeric.h"
#include "condsel/selectivity/separability.h"

namespace condsel {
namespace {

struct SearchState {
  const Query* query;
  AtomicSelectivityProvider* provider;
  bool separable_first;
  DerivationDag* dag;
  uint64_t nodes = 0;
};

// Winning alternative for one subset, carried out of the search so the
// derivation can be recorded once the subset's recursion completes.
struct BestChoice {
  bool separable = false;
  std::vector<PredSet> components;  // separable winner
  PredSet head = 0;                 // atomic winner
  double head_sel = 1.0;
  FactorChoice choice;
};

void Record(SearchState& st, PredSet p, double err, double sel,
            const BestChoice& best) {
  if (st.dag == nullptr || err == kInfiniteError || st.dag->recorded(p)) {
    return;
  }
  DerivationNode& node = st.dag->AddNode(p);
  node.selectivity = sel;
  node.error = err;
  if (best.separable) {
    node.kind = DerivKind::kSeparableSplit;
    node.tails = best.components;
    node.standard_split = true;
    return;
  }
  node.kind = DerivKind::kConditionalFactor;
  node.head = best.head;
  node.head_selectivity = best.head_sel;
  const PredSet cond = p & ~best.head;
  node.tails.push_back(cond);
  const std::vector<FactorProvenance> provenance =
      st.provider->Describe(*st.query, best.head, best.choice);
  for (size_t i = 0; i < best.choice.sits.size(); ++i) {
    const SitCandidate& cand = best.choice.sits[i];
    SitApplication app;
    app.sit_id = cand.sit->id;
    app.is_base = cand.sit->is_base();
    app.hypothesis = cand.expr_mask;
    app.conditioning = cond;
    if (i < provenance.size()) app.provenance = provenance[i];
    node.sits.push_back(std::move(app));
  }
}

// Returns {error, selectivity} for the best decomposition of Sel(p).
std::pair<double, double> Best(SearchState& st, PredSet p) {
  ++st.nodes;
  if (p == 0) {
    if (st.dag != nullptr && !st.dag->recorded(0)) {
      DerivationNode& node = st.dag->AddNode(0);
      node.kind = DerivKind::kEmptySet;
      node.selectivity = 1.0;
      node.error = 0.0;
    }
    return {0.0, 1.0};
  }

  const std::vector<PredSet> comps = StandardDecomposition(*st.query, p);
  double best_err = kInfiniteError;
  double best_sel = 0.0;
  BestChoice best;

  if (comps.size() > 1) {
    double err = 0.0, sel = 1.0;
    bool ok = true;
    for (PredSet c : comps) {
      const auto [ce, cs] = Best(st, c);
      if (ce == kInfiniteError) {
        ok = false;
        break;
      }
      err = ErrorFunction::Merge(err, ce);
      sel *= cs;
    }
    if (ok) {
      best_err = err;
      best_sel = sel;
      best.separable = true;
      best.components = comps;
    }
    if (st.separable_first) {
      Record(st, p, best_err, best_sel, best);
      return {best_err, best_sel};
    }
  }

  // Atomic decompositions: every non-empty P' heads a factor.
  for (PredSet p_prime = p; p_prime != 0;
       p_prime = PrevSubmask(p, p_prime)) {
    const PredSet q = p & ~p_prime;
    FactorChoice choice = st.provider->Score(*st.query, p_prime, q);
    if (!choice.feasible) continue;
    const auto [qe, qs] = Best(st, q);
    if (qe == kInfiniteError) continue;
    const double err = ErrorFunction::Merge(choice.error, qe);
    if (err < best_err) {
      best_err = err;
      best.separable = false;
      best.head = p_prime;
      best.head_sel = st.provider->Estimate(*st.query, p_prime, choice);
      best.choice = choice;
      best_sel = best.head_sel * qs;
    }
  }
  Record(st, p, best_err, best_sel, best);
  return {best_err, best_sel};
}

}  // namespace

ExhaustiveResult ExhaustiveBest(const Query& query, PredSet p,
                                AtomicSelectivityProvider* provider,
                                bool separable_first, DerivationDag* dag) {
  SearchState st{&query, provider, separable_first, dag, 0};
  const auto [err, sel] = Best(st, p);
  ExhaustiveResult r;
  r.error = err;
  r.selectivity = SanitizeSelectivity(sel);
  r.nodes_explored = st.nodes;
  return r;
}

}  // namespace condsel
