#include "condsel/selectivity/shape_cache.h"

#include <shared_mutex>

#include "condsel/common/macros.h"

namespace condsel {
namespace {

// Canonical id for `c` under first-appearance renaming. One flat map
// keyed by the raw (table, column) pair; table ids get their own
// first-appearance numbering so join-graph topology survives renaming.
struct Renamer {
  std::unordered_map<int64_t, int> tables;
  std::unordered_map<int64_t, int> columns;

  static int64_t ColKey(ColumnRef c) {
    return (static_cast<int64_t>(c.table) << 32) |
           static_cast<int64_t>(static_cast<uint32_t>(c.column));
  }

  void Encode(ColumnRef c, std::string* out) {
    const auto t = tables.emplace(c.table, static_cast<int>(tables.size()));
    const auto k =
        columns.emplace(ColKey(c), static_cast<int>(columns.size()));
    out->append(std::to_string(t.first->second));
    out->push_back('.');
    out->append(std::to_string(k.first->second));
  }
};

}  // namespace

std::string CanonicalShapeKey(const Query& query) {
  Renamer renamer;
  std::string key;
  key.reserve(static_cast<size_t>(query.num_predicates()) * 8);
  for (const Predicate& pred : query.predicates()) {
    if (pred.is_filter()) {
      key.push_back('F');
      renamer.Encode(pred.column(), &key);
    } else {
      key.push_back('J');
      renamer.Encode(pred.left(), &key);
      key.push_back('=');
      renamer.Encode(pred.right(), &key);
    }
    key.push_back(';');
  }
  return key;
}

CONDSEL_HOT bool ShapeCache::Entry::CopyCandidates(
    PredSet p, ArenaVector<PredSet>* out) const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  auto it = nodes_.find(p);
  if (it == nodes_.end()) return false;
  out->clear();
  for (PredSet c : it->second) out->Append(c);
  return true;
}

void ShapeCache::Entry::StoreCandidates(
    PredSet p, const ArenaVector<PredSet>& candidates) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  if (nodes_.find(p) != nodes_.end()) return;  // first-wins
  nodes_.emplace(p,
                 std::vector<PredSet>(candidates.begin(), candidates.end()));
}

size_t ShapeCache::Entry::cached_subsets() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return nodes_.size();
}

std::shared_ptr<ShapeCache::Entry> ShapeCache::Acquire(const Query& query) {
  const std::string key = CanonicalShapeKey(query);
  {
    std::shared_lock<OrderedSharedMutex> lock(mu_);
    auto it = shapes_.find(key);
    if (it != shapes_.end()) return it->second;
  }
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  auto it = shapes_.find(key);
  if (it != shapes_.end()) return it->second;
  auto entry = std::make_shared<Entry>();
  shapes_.emplace(key, entry);
  return entry;
}

size_t ShapeCache::shapes() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return shapes_.size();
}

}  // namespace condsel
