// Decomposition enumeration and counting (Lemma 1).
//
// The number of decompositions of Sel(p1, .., pn) follows
//   T(1) = 1;  T(n) = sum_{i=1..n} C(n, i) * T(n - i)
// (choose the first factor's P_1, recurse on the rest), and Lemma 1 bounds
// it by 0.5 * (n+1)! <= T(n) <= 1.5^n * n!. These routines exist for the
// Lemma-1 bench and for tests that compare the DP against brute force.

#pragma once

#include <cstdint>
#include <functional>

#include "condsel/selectivity/sel_expr.h"

namespace condsel {

// T(n) by the recurrence above. n <= 15 to stay within uint64.
uint64_t CountDecompositions(int n);

// n! as uint64 (n <= 20).
uint64_t Factorial(int n);

// Binomial coefficient C(n, k) as uint64.
uint64_t Binomial(int n, int k);

// Lemma 1: 0.5 * (n+1)! <= T(n) <= 1.5^n * n!.
bool Lemma1LowerBoundHolds(int n);
bool Lemma1UpperBoundHolds(int n);

// Invokes `cb` for every chain decomposition of `full` (every ordered
// partition into non-empty factor heads, conditioned on the rest). The
// number of callbacks equals CountDecompositions(|full|).
void EnumerateChainDecompositions(
    PredSet full, const std::function<void(const Decomposition&)>& cb);

uint64_t CountChainDecompositions(PredSet full);

}  // namespace condsel

