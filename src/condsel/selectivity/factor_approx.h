// Approximating a single selectivity factor with SITs (Section 3.3).
//
// Supported factor shapes for Sel(P' | Q):
//  - P' = one filter predicate: one SIT over the filter's attribute;
//  - P' = two filter predicates: one multidimensional SIT over the
//    attribute pair (Section 3.3's attribute-set form), capturing the
//    filters' correlation with no independence assumption between them;
//  - P' = one join predicate: two SITs (one per side) combined with a
//    histogram join (the wildcard transform of Sec 3.3 specialized to
//    unidimensional SITs, which is what the paper's pools contain);
//  - P' = one join plus filters over the join's own columns: histogram
//    join followed by range estimation on the result (Example 3).
// Any other multi-predicate P' would need a multidimensional SIT and is
// reported infeasible (error = infinity), exactly as getSelectivity's
// line 12 treats factors with no applicable statistics — the DP then
// reaches those predicates through further atomic decompositions.

#pragma once

#include <string>
#include <vector>

#include "condsel/query/query.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

struct FactorChoice {
  bool feasible = false;
  double error = kInfiniteError;
  // Chosen SITs: {filter SIT}, or {left join SIT, right join SIT}.
  std::vector<SitCandidate> sits;
  // Filled by Score() only when the error function needs estimates;
  // otherwise computed later by Estimate().
  double estimate = -1.0;
};

class FactorApproximator {
 public:
  FactorApproximator(SitMatcher* matcher, const ErrorFunction* error_fn);

  // Cheap structural test: could Sel(P' | ...) be approximated at all?
  bool SupportedShape(const Query& query, PredSet p) const;

  // Picks the SITs minimizing the error function for Sel(P' | Q). Invokes
  // the view-matching routine (SitMatcher::Candidates); this is the
  // "decomposition analysis" side of the Fig. 8 timing split.
  FactorChoice Score(const Query& query, PredSet p, PredSet cond);

  // Histogram manipulation: evaluates the estimate of Sel(P' | Q) with
  // the chosen SITs.
  double Estimate(const Query& query, PredSet p,
                  const FactorChoice& choice) const;

  const ErrorFunction& error_fn() const { return *error_fn_; }
  SitMatcher& matcher() { return *matcher_; }

 private:
  // Splits P' into its join predicate (if any) and filters; returns false
  // for unsupported shapes.
  bool SplitShape(const Query& query, PredSet p, int* join_pred,
                  std::vector<int>* filter_preds) const;

  double EstimateWith(const Query& query, PredSet p,
                      const std::vector<SitCandidate>& sits) const;

  SitMatcher* matcher_;
  const ErrorFunction* error_fn_;
};

}  // namespace condsel

