// Error functions ranking candidate decompositions (Sections 3.2, 3.5).
//
// An error function assigns each factor Sel(P | Q), approximated with a
// set of SITs, a non-negative score; the decomposition's overall error is
// the sum (all three paper functions are monotonic and algebraic with
// E_merge = +, which is what licenses the dynamic program).
//
//  - nInd  (Sec 3.2): counts independence assumptions, |P| * |Q - Q'|.
//  - Diff  (Sec 3.5): |P| * (1 - diff_H); rewards SITs whose expression
//    genuinely reshapes the attribute's distribution.
//  - Opt   (Sec 5):   |true Sel(P|Q) - estimate|; the oracle upper bound,
//    implementable only in an experimental harness with an exact executor.

#pragma once

#include <limits>
#include <vector>

#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

inline constexpr double kInfiniteError =
    std::numeric_limits<double>::infinity();

class ErrorFunction {
 public:
  virtual ~ErrorFunction() = default;

  virtual const char* name() const = 0;

  // Opt needs the estimated value of the factor to score it; nInd and
  // Diff are purely structural. getSelectivity uses this to defer
  // histogram manipulation out of the search loop (Fig. 8's timing split).
  virtual bool NeedsEstimate() const { return false; }

  // Error of approximating Sel(P | Q) with `sits` (their expressions are
  // the Q'_i ⊆ Q). `estimate` is only meaningful when NeedsEstimate().
  virtual double FactorError(const Query& query, PredSet p, PredSet cond,
                             const SitVec& sits,
                             double estimate) const = 0;

  // E_merge: all supported aggregates are sums.
  static double Merge(double a, double b) { return a + b; }
};

class NIndError final : public ErrorFunction {
 public:
  const char* name() const override { return "nInd"; }
  double FactorError(const Query& query, PredSet p, PredSet cond,
                     const SitVec& sits,
                     double estimate) const override;
};

class DiffError final : public ErrorFunction {
 public:
  const char* name() const override { return "Diff"; }
  double FactorError(const Query& query, PredSet p, PredSet cond,
                     const SitVec& sits,
                     double estimate) const override;
};

// The oracle. Holds a (non-owned) evaluator to obtain true conditional
// selectivities. Only of theoretical interest (Section 5): it peeks at
// the data, but it bounds what any ranking heuristic could achieve.
class OptError final : public ErrorFunction {
 public:
  explicit OptError(Evaluator* evaluator) : evaluator_(evaluator) {}

  const char* name() const override { return "Opt"; }
  bool NeedsEstimate() const override { return true; }
  double FactorError(const Query& query, PredSet p, PredSet cond,
                     const SitVec& sits,
                     double estimate) const override;

 private:
  Evaluator* evaluator_;
};

}  // namespace condsel

