#include "condsel/selectivity/atomic_provider.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/histogram/histogram_join.h"

namespace condsel {
namespace {

std::string ColumnName(ColumnRef c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "T%d.c%d", c.table, c.column);
  return buf;
}

// "T2.c1" for base histograms, "T2.c1 | T0.c0 = T1.c1 ^ ..." for SITs.
std::string SitSource(const Sit& sit) {
  std::string s = ColumnName(sit.attr);
  if (sit.is_multidim()) s += "," + ColumnName(sit.attr2);
  if (!sit.expression.empty()) {
    s += " |";
    for (size_t i = 0; i < sit.expression.size(); ++i) {
      s += (i == 0 ? " " : " ^ ") + sit.expression[i].ToString();
    }
  }
  return s;
}

int BucketsInRange(const Histogram& h, int64_t lo, int64_t hi) {
  int n = 0;
  for (const Bucket& b : h.buckets()) {
    if (b.hi >= lo && b.lo <= hi) ++n;
  }
  return n;
}

// Visits (histogram, merge weight) for every piece of a partitioned SIT,
// or the flat histogram with weight 1.0 for an unpartitioned one. The
// weight is the piece's share of the statistic's source cardinality: the
// pieces describe disjoint slices of the expression result, so the
// result's distribution is exactly their cardinality-weighted mixture.
// The single-piece case multiplies by the literal 1.0 and accumulates
// into 0.0, both exact in IEEE arithmetic — which is what keeps
// unpartitioned (and single-part) databases bit-identical to the
// pre-partitioning estimates through the shared loops below.
template <typename Fn>
CONDSEL_HOT void ForEachPiece(const Sit& sit, Fn&& fn) {
  if (!sit.is_partitioned()) {
    fn(sit.histogram, 1.0);
    return;
  }
  double total = 0.0;
  for (const SitPart& p : sit.parts) {
    total += p.histogram.source_cardinality();
  }
  if (!(total > 0.0)) {
    // All-empty pieces (or corrupt cardinalities already rejected
    // upstream): fall back to the merged summary.
    fn(sit.histogram, 1.0);
    return;
  }
  for (const SitPart& p : sit.parts) {
    fn(p.histogram, p.histogram.source_cardinality() / total);
  }
}

// Sum of per-piece buckets a range lookup reads (provenance accounting).
int BucketsInRangeMerged(const Sit& sit, int64_t lo, int64_t hi) {
  int n = 0;
  ForEachPiece(sit, [&](const Histogram& h, double) {
    n += BucketsInRange(h, lo, hi);
  });
  return n;
}

int NumPieces(const Sit& sit) {
  return static_cast<int>(sit.parts.size());
}

int BucketsInRange2d(const Histogram2d& h, int64_t x_lo, int64_t x_hi,
                     int64_t y_lo, int64_t y_hi) {
  int n = 0;
  for (const Bucket2d& b : h.buckets()) {
    if (b.x_hi >= x_lo && b.x_lo <= x_hi && b.y_hi >= y_lo &&
        b.y_lo <= y_hi) {
      ++n;
    }
  }
  return n;
}

FactorProvenance MakeProvenance(const Sit& sit, const char* kind,
                                int buckets) {
  FactorProvenance prov;
  prov.recorded = true;
  prov.source = SitSource(sit);
  prov.histogram_kind = kind;
  prov.buckets_touched = buckets;
  prov.merged_parts = NumPieces(sit);
  return prov;
}

// The cold-statistics-storage fault: one bounded stall per provider
// lookup, so deadline tests can measure enforcement granularity. The
// stall is scoped to factors intersecting the injector's predicate mask,
// letting tests make a chosen slice of the lattice pathologically slow
// (the work-stealing scheduler's imbalance scenario).
void MaybeInjectSlowLookup(PredSet p) {
  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kSlowAtomicLookup) &&
      (p & fi.slow_lookup_mask()) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

AtomicSelectivityProvider::AtomicSelectivityProvider(
    SitMatcher* matcher, const ErrorFunction* error_fn)
    : matcher_(matcher), error_fn_(error_fn) {
  CONDSEL_CHECK(matcher != nullptr);
  CONDSEL_CHECK(error_fn != nullptr);
}

bool AtomicSelectivityProvider::SplitShape(const Query& query, PredSet p,
                                           int* join_pred, int filter_preds[],
                                           int* num_filters) const {
  *join_pred = -1;
  *num_filters = 0;
  for (int i : SetBits(p)) {
    const Predicate& pred = query.predicate(i);
    if (pred.is_join()) {
      if (*join_pred >= 0) return false;  // at most one join
      *join_pred = i;
    } else {
      filter_preds[(*num_filters)++] = i;
    }
  }
  if (*join_pred < 0) {
    // Pure filters: a single filter (unidimensional SIT) or a pair of
    // filters (multidimensional SIT over the attribute pair).
    return *num_filters == 1 || *num_filters == 2;
  }
  // Join plus filters: every filter must be over one of the join columns
  // (Example 3: the join's result histogram covers exactly that
  // attribute).
  const Predicate& j = query.predicate(*join_pred);
  for (int k = 0; k < *num_filters; ++k) {
    const ColumnRef c = query.predicate(filter_preds[k]).column();
    if (c != j.left() && c != j.right()) return false;
  }
  return true;
}

bool AtomicSelectivityProvider::SupportedShape(const Query& query,
                                               PredSet p) const {
  if (p == 0) return false;
  int join_pred;
  int filters[kMaxPredicates];
  int num_filters;
  return SplitShape(query, p, &join_pred, filters, &num_filters);
}

CONDSEL_HOT FactorChoice AtomicSelectivityProvider::Score(
    const Query& query, PredSet p, PredSet cond, const Deadline* deadline,
    ScoreScratch* scratch) {
  // The throwing-lookup fault fires only on the public scoring path:
  // BaseAtom goes straight to ScoreImpl, so the independence fallback —
  // the degradation target — survives the fault, mirroring the deadline
  // exemption.
  const FaultInjector& fi = FaultInjector::Instance();
  if (fi.armed() && fi.enabled(Fault::kThrowAtomicLookup)) {
    throw TransientFault("injected: statistics lookup failed");
  }
  return ScoreImpl(query, p, cond, deadline, scratch);
}

CONDSEL_HOT FactorChoice AtomicSelectivityProvider::ScoreImpl(
    const Query& query, PredSet p, PredSet cond, const Deadline* deadline,
    ScoreScratch* scratch) {
  MaybeInjectSlowLookup(p);
  FactorChoice best;
  int join_pred;
  int filters[kMaxPredicates];
  int num_filters;
  if (!SplitShape(query, p, &join_pred, filters, &num_filters)) return best;

  // Section 3.4's pruning: a join factor conditioned on filter predicates
  // has no SIT that could reflect them (join columns carry only base
  // histograms), so the approximation would be the plain unconditioned
  // join estimate wearing a deceptively low assumption count — the exact
  // decompositions the paper's example "safely discards". Join factors
  // are therefore only approximable under join-only conditioning.
  if (join_pred >= 0 && (cond & query.filter_predicates()) != 0) {
    return best;
  }

  // Callers off the hot path score with call-local lists; drivers pass a
  // reused scratch and amortize the capacity across the whole search.
  ScoreScratch local;
  if (scratch == nullptr) scratch = &local;

  const bool needs_estimate = error_fn_->NeedsEstimate();

  auto consider = [&](const SitVec& sits) {
    double estimate = -1.0;
    if (needs_estimate) {
      estimate = EstimateWith(query, p, sits, /*provenance=*/nullptr);
    }
    const double err =
        error_fn_->FactorError(query, p, cond, sits, estimate);
    // Deterministic tie-break: prefer heavier conditioning (larger Q').
    auto q_prime_size = [&](const SitVec& ss) {
      PredSet m = 0;
      for (const SitCandidate& c : ss) m |= c.expr_mask;
      return SetSize(m & cond);
    };
    if (err < best.error ||
        (err == best.error && best.feasible &&
         q_prime_size(sits) > q_prime_size(best.sits))) {
      best.feasible = true;
      best.error = err;
      best.estimate = estimate;
      best.sits = sits;
    }
  };
  // Deadline enforcement at lookup granularity: stop examining further
  // candidates the moment the budget's clock runs out. On unbudgeted runs
  // (deadline detached or disarmed) this never fires, keeping scoring a
  // pure function of the candidate lists.
  auto expired = [&] {
    return deadline != nullptr && deadline->Expired();
  };

  if (join_pred < 0 && num_filters == 2) {
    // Filter pair: needs a multidimensional SIT over both attributes.
    const Predicate& fa = query.predicate(filters[0]);
    const Predicate& fb = query.predicate(filters[1]);
    matcher_->Candidates2Into(fa.column(), fb.column(), cond,
                              SitMatcher::CallAccounting::kIndexed,
                              &scratch->left);
    for (const SitCandidate& c : scratch->left) {
      if (expired()) break;
      consider({c});
    }
  } else if (join_pred < 0) {
    // Single filter.
    const Predicate& f = query.predicate(filters[0]);
    matcher_->CandidatesInto(f.column(), cond,
                             SitMatcher::CallAccounting::kIndexed,
                             &scratch->left);
    for (const SitCandidate& c : scratch->left) {
      if (expired()) break;
      consider({c});
    }
  } else {
    // One join (plus optional filters on its columns): pick one SIT per
    // side, try all maximal pairs.
    const Predicate& j = query.predicate(join_pred);
    matcher_->CandidatesInto(j.left(), cond,
                             SitMatcher::CallAccounting::kIndexed,
                             &scratch->left);
    matcher_->CandidatesInto(j.right(), cond,
                             SitMatcher::CallAccounting::kIndexed,
                             &scratch->right);
    for (const SitCandidate& cl : scratch->left) {
      if (expired()) break;
      for (const SitCandidate& cr : scratch->right) {
        if (expired()) break;
        consider({cl, cr});
      }
    }
  }
  return best;
}

CONDSEL_HOT double AtomicSelectivityProvider::EstimateWith(
    const Query& query, PredSet p, const SitVec& sits,
    std::vector<FactorProvenance>* provenance) const {
  int join_pred;
  int filters[kMaxPredicates];
  int num_filters;
  CONDSEL_CHECK(SplitShape(query, p, &join_pred, filters, &num_filters));

  if (join_pred < 0 && num_filters == 2) {
    CONDSEL_CHECK(sits.size() == 1);
    const Sit& sit = *sits[0].sit;
    CONDSEL_CHECK(sit.is_multidim());
    const Predicate& fa = query.predicate(filters[0]);
    const Predicate& fb = query.predicate(filters[1]);
    // Order the ranges by the SIT's canonical (attr, attr2) order.
    const bool a_first = fa.column() == sit.attr;
    const Predicate& fx = a_first ? fa : fb;
    const Predicate& fy = a_first ? fb : fa;
    if (provenance != nullptr) {
      provenance->push_back(MakeProvenance(
          sit, "sit-2d",
          BucketsInRange2d(sit.histogram2d, fx.lo(), fx.hi(), fy.lo(),
                           fy.hi())));
    }
    return SanitizeSelectivity(sit.histogram2d.RangeSelectivity(
        fx.lo(), fx.hi(), fy.lo(), fy.hi()));
  }
  if (join_pred < 0) {
    CONDSEL_CHECK(sits.size() == 1);
    const Sit& sit = *sits[0].sit;
    const Predicate& f = query.predicate(filters[0]);
    if (provenance != nullptr) {
      provenance->push_back(
          MakeProvenance(sit, sit.is_base() ? "base" : "sit-1d",
                         BucketsInRangeMerged(sit, f.lo(), f.hi())));
    }
    // Partitioned filter estimate: the pieces partition the source
    // relation, so the selectivity is the cardinality-weighted sum of
    // per-piece selectivities (one term with weight 1.0 when
    // unpartitioned — the legacy lookup, bit for bit).
    double sel = 0.0;
    ForEachPiece(sit, [&](const Histogram& h, double w) {
      sel += w * h.RangeSelectivity(f.lo(), f.hi());
    });
    return SanitizeSelectivity(sel);
  }

  CONDSEL_CHECK(sits.size() == 2);
  const Sit& s0 = *sits[0].sit;
  const Sit& s1 = *sits[1].sit;
  // Partitioned join estimate: |R ⋈ S| = Σ_pq |R_p ⋈ S_q|, so the join
  // selectivity (fraction of the cross product) is Σ_pq w_p w_q sel_pq.
  // Remaining filters over the join attribute apply per pair on that
  // pair's result histogram (Example 3), which keeps the filter factor
  // aligned with the piece pair it restricts. An unpartitioned side is a
  // single pseudo-piece of weight 1.0, so the unpartitioned ×
  // unpartitioned case reproduces the legacy computation exactly.
  double sel = 0.0;
  ForEachPiece(s0, [&](const Histogram& h0, double w0) {
    ForEachPiece(s1, [&](const Histogram& h1, double w1) {
      const JoinEstimate je = JoinHistograms(h0, h1);
      double pair_sel = je.selectivity;
      for (int k = 0; k < num_filters; ++k) {
        const Predicate& fp = query.predicate(filters[k]);
        pair_sel *= je.result.RangeSelectivity(fp.lo(), fp.hi());
      }
      sel += w0 * w1 * pair_sel;
    });
  });
  if (provenance != nullptr) {
    // A histogram join walks every aligned bucket pair of its inputs
    // (summed across pieces for a partitioned side).
    for (const SitCandidate& c : sits) {
      int buckets = 0;
      ForEachPiece(*c.sit, [&](const Histogram& h, double) {
        buckets += static_cast<int>(h.buckets().size());
      });
      provenance->push_back(MakeProvenance(*c.sit, "join-input", buckets));
    }
  }
  return SanitizeSelectivity(sel);
}

CONDSEL_HOT double AtomicSelectivityProvider::Estimate(
    const Query& query, PredSet p, const FactorChoice& choice,
    std::vector<FactorProvenance>* provenance) const {
  CONDSEL_CHECK(choice.feasible);
  if (choice.estimate >= 0.0) {
    // Score() already computed the value (Opt ranking); only the
    // description is (re)derived here.
    if (provenance != nullptr) {
      std::vector<FactorProvenance> described = Describe(query, p, choice);
      provenance->insert(provenance->end(), described.begin(),
                         described.end());
    }
    return choice.estimate;
  }
  return EstimateWith(query, p, choice.sits, provenance);
}

std::vector<FactorProvenance> AtomicSelectivityProvider::Describe(
    const Query& query, PredSet p, const FactorChoice& choice) const {
  std::vector<FactorProvenance> out;
  if (!choice.feasible) return out;
  int join_pred;
  int filters[kMaxPredicates];
  int num_filters;
  CONDSEL_CHECK(SplitShape(query, p, &join_pred, filters, &num_filters));
  if (join_pred < 0 && num_filters == 2) {
    const Sit& sit = *choice.sits[0].sit;
    const Predicate& fa = query.predicate(filters[0]);
    const Predicate& fb = query.predicate(filters[1]);
    const bool a_first = fa.column() == sit.attr;
    const Predicate& fx = a_first ? fa : fb;
    const Predicate& fy = a_first ? fb : fa;
    out.push_back(MakeProvenance(
        sit, "sit-2d",
        BucketsInRange2d(sit.histogram2d, fx.lo(), fx.hi(), fy.lo(),
                         fy.hi())));
  } else if (join_pred < 0) {
    const Sit& sit = *choice.sits[0].sit;
    const Predicate& f = query.predicate(filters[0]);
    out.push_back(MakeProvenance(sit, sit.is_base() ? "base" : "sit-1d",
                                 BucketsInRangeMerged(sit, f.lo(),
                                                      f.hi())));
  } else {
    for (const SitCandidate& c : choice.sits) {
      int buckets = 0;
      ForEachPiece(*c.sit, [&](const Histogram& h, double) {
        buckets += static_cast<int>(h.buckets().size());
      });
      out.push_back(MakeProvenance(*c.sit, "join-input", buckets));
    }
  }
  return out;
}

DerivationAtom AtomicSelectivityProvider::BaseAtom(const Query& query,
                                                   int pred, bool describe) {
  // Conditioning on the empty set restricts the matcher to base histograms
  // (expr ⊆ ∅): exactly the traditional noSit estimate for this predicate.
  // Scored with no deadline: this is the degradation target itself, so it
  // must stay available after the budget's clock has expired.
  FactorChoice choice = ScoreImpl(query, 1u << pred, /*cond=*/0,
                                  /*deadline=*/nullptr);
  DerivationAtom atom;
  atom.pred = pred;
  if (choice.feasible) {
    std::vector<FactorProvenance> prov;
    atom.selectivity = SanitizeSelectivity(Estimate(
        query, 1u << pred, choice, describe ? &prov : nullptr));
    atom.has_stat = true;
    const SitCandidate& cand = choice.sits.front();
    atom.sit.sit_id = cand.sit->id;
    atom.sit.is_base = cand.sit->is_base();
    atom.sit.hypothesis = cand.expr_mask;
    atom.sit.conditioning = 0;
    if (describe) atom.sit.provenance = std::move(prov.front());
  } else {
    // No base histogram: contribute no information rather than abort. The
    // neutral 1.0 never understates a cardinality, the safe direction for
    // an optimizer that must still produce a plan.
    atom.sit.provenance.recorded = true;
    atom.sit.provenance.fallback = "no base histogram for the column";
  }
  return atom;
}

std::vector<SitCandidate> AtomicSelectivityProvider::Candidates(
    ColumnRef attr, PredSet cond, SitMatcher::CallAccounting accounting) {
  // The greedy view-matching path has no factor bitmask; treat it as
  // matching every mask so the stall behaves as before for GVM.
  MaybeInjectSlowLookup(~PredSet{0});
  return matcher_->Candidates(attr, cond, accounting);
}

double AtomicSelectivityProvider::EstimateFilterWith(
    const Query& query, int filter_pred, const SitCandidate& cand,
    FactorProvenance* provenance) const {
  const Predicate& f = query.predicate(filter_pred);
  CONDSEL_CHECK(f.is_filter());
  CONDSEL_CHECK(cand.sit != nullptr);
  if (provenance != nullptr) {
    *provenance = MakeProvenance(
        *cand.sit, cand.sit->is_base() ? "base" : "sit-1d",
        BucketsInRangeMerged(*cand.sit, f.lo(), f.hi()));
  }
  // The raw histogram lookup does not sanitize — clamp here so a corrupted
  // bucket cannot leak a NaN factor into a product (or a recorded
  // derivation).
  double sel = 0.0;
  ForEachPiece(*cand.sit, [&](const Histogram& h, double w) {
    sel += w * h.RangeSelectivity(f.lo(), f.hi());
  });
  return SanitizeSelectivity(sel);
}

}  // namespace condsel
