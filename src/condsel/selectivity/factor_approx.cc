#include "condsel/selectivity/factor_approx.h"

#include <algorithm>

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/histogram/histogram_join.h"

namespace condsel {

FactorApproximator::FactorApproximator(SitMatcher* matcher,
                                       const ErrorFunction* error_fn)
    : matcher_(matcher), error_fn_(error_fn) {
  CONDSEL_CHECK(matcher != nullptr);
  CONDSEL_CHECK(error_fn != nullptr);
}

bool FactorApproximator::SplitShape(const Query& query, PredSet p,
                                    int* join_pred,
                                    std::vector<int>* filter_preds) const {
  *join_pred = -1;
  filter_preds->clear();
  for (int i : SetElements(p)) {
    const Predicate& pred = query.predicate(i);
    if (pred.is_join()) {
      if (*join_pred >= 0) return false;  // at most one join
      *join_pred = i;
    } else {
      filter_preds->push_back(i);
    }
  }
  if (*join_pred < 0) {
    // Pure filters: a single filter (unidimensional SIT) or a pair of
    // filters (multidimensional SIT over the attribute pair).
    return filter_preds->size() == 1 || filter_preds->size() == 2;
  }
  // Join plus filters: every filter must be over one of the join columns
  // (Example 3: the join's result histogram covers exactly that
  // attribute).
  const Predicate& j = query.predicate(*join_pred);
  for (int f : *filter_preds) {
    const ColumnRef c = query.predicate(f).column();
    if (c != j.left() && c != j.right()) return false;
  }
  return true;
}

bool FactorApproximator::SupportedShape(const Query& query, PredSet p) const {
  if (p == 0) return false;
  int join_pred;
  std::vector<int> filters;
  return SplitShape(query, p, &join_pred, &filters);
}

FactorChoice FactorApproximator::Score(const Query& query, PredSet p,
                                       PredSet cond) {
  FactorChoice best;
  int join_pred;
  std::vector<int> filters;
  if (!SplitShape(query, p, &join_pred, &filters)) return best;

  // Section 3.4's pruning: a join factor conditioned on filter predicates
  // has no SIT that could reflect them (join columns carry only base
  // histograms), so the approximation would be the plain unconditioned
  // join estimate wearing a deceptively low assumption count — the exact
  // decompositions the paper's example "safely discards". Join factors
  // are therefore only approximable under join-only conditioning.
  if (join_pred >= 0 && (cond & query.filter_predicates()) != 0) {
    return best;
  }

  const bool needs_estimate = error_fn_->NeedsEstimate();

  auto consider = [&](std::vector<SitCandidate> sits) {
    double estimate = -1.0;
    if (needs_estimate) estimate = EstimateWith(query, p, sits);
    const double err =
        error_fn_->FactorError(query, p, cond, sits, estimate);
    // Deterministic tie-break: prefer heavier conditioning (larger Q').
    auto q_prime_size = [&](const std::vector<SitCandidate>& ss) {
      PredSet m = 0;
      for (const SitCandidate& c : ss) m |= c.expr_mask;
      return SetSize(m & cond);
    };
    if (err < best.error ||
        (err == best.error && best.feasible &&
         q_prime_size(sits) > q_prime_size(best.sits))) {
      best.feasible = true;
      best.error = err;
      best.estimate = estimate;
      best.sits = std::move(sits);
    }
  };

  if (join_pred < 0 && filters.size() == 2) {
    // Filter pair: needs a multidimensional SIT over both attributes.
    const Predicate& fa = query.predicate(filters[0]);
    const Predicate& fb = query.predicate(filters[1]);
    for (const SitCandidate& c :
         matcher_->Candidates2(fa.column(), fb.column(), cond)) {
      consider({c});
    }
  } else if (join_pred < 0) {
    // Single filter.
    const Predicate& f = query.predicate(filters[0]);
    for (const SitCandidate& c : matcher_->Candidates(f.column(), cond)) {
      consider({c});
    }
  } else {
    // One join (plus optional filters on its columns): pick one SIT per
    // side, try all maximal pairs.
    const Predicate& j = query.predicate(join_pred);
    const std::vector<SitCandidate> left =
        matcher_->Candidates(j.left(), cond);
    const std::vector<SitCandidate> right =
        matcher_->Candidates(j.right(), cond);
    for (const SitCandidate& cl : left) {
      for (const SitCandidate& cr : right) {
        consider({cl, cr});
      }
    }
  }
  return best;
}

double FactorApproximator::EstimateWith(
    const Query& query, PredSet p,
    const std::vector<SitCandidate>& sits) const {
  int join_pred;
  std::vector<int> filters;
  CONDSEL_CHECK(SplitShape(query, p, &join_pred, &filters));

  if (join_pred < 0 && filters.size() == 2) {
    CONDSEL_CHECK(sits.size() == 1);
    const Sit& sit = *sits[0].sit;
    CONDSEL_CHECK(sit.is_multidim());
    const Predicate& fa = query.predicate(filters[0]);
    const Predicate& fb = query.predicate(filters[1]);
    // Order the ranges by the SIT's canonical (attr, attr2) order.
    const bool a_first = fa.column() == sit.attr;
    const Predicate& fx = a_first ? fa : fb;
    const Predicate& fy = a_first ? fb : fa;
    return SanitizeSelectivity(sit.histogram2d.RangeSelectivity(
        fx.lo(), fx.hi(), fy.lo(), fy.hi()));
  }
  if (join_pred < 0) {
    CONDSEL_CHECK(sits.size() == 1);
    const Predicate& f = query.predicate(filters[0]);
    return SanitizeSelectivity(
        sits[0].sit->histogram.RangeSelectivity(f.lo(), f.hi()));
  }

  CONDSEL_CHECK(sits.size() == 2);
  const JoinEstimate je =
      JoinHistograms(sits[0].sit->histogram, sits[1].sit->histogram);
  double sel = je.selectivity;
  // Example 3: remaining filters over the join attribute are estimated on
  // the join's result histogram (frequencies are already normalized to
  // the join result).
  for (int f : filters) {
    const Predicate& fp = query.predicate(f);
    sel *= je.result.RangeSelectivity(fp.lo(), fp.hi());
  }
  return SanitizeSelectivity(sel);
}

double FactorApproximator::Estimate(const Query& query, PredSet p,
                                    const FactorChoice& choice) const {
  CONDSEL_CHECK(choice.feasible);
  if (choice.estimate >= 0.0) return choice.estimate;
  return EstimateWith(query, p, choice.sits);
}

}  // namespace condsel
