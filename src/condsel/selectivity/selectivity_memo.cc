#include "condsel/selectivity/selectivity_memo.h"

#include <algorithm>
#include <shared_mutex>

#include "condsel/common/macros.h"

namespace condsel {

CONDSEL_HOT const MemoEntry* SelectivityMemo::Find(PredSet p) const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  if (p < kDenseSlots) {
    return p < dense_.size() ? dense_[p] : nullptr;
  }
  auto it = overflow_.find(p);
  return it == overflow_.end() ? nullptr : it->second;
}

CONDSEL_HOT const MemoEntry& SelectivityMemo::Insert(PredSet p,
                                                     MemoEntry entry) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  if (p < kDenseSlots) {
    if (p >= dense_.size()) {
      // Geometric growth keyed to the largest subset seen: one resize
      // covers the whole universe (the root subset arrives early in both
      // drivers), and the storage is retained across generation rebinds.
      size_t cap = std::max<size_t>(dense_.size(), 64);
      while (cap <= p) cap *= 2;
      dense_.resize(cap, nullptr);
    }
    if (dense_[p] != nullptr) return *dense_[p];
    entries_.push_back(std::move(entry));
    const MemoEntry* stored = &entries_.back();
    dense_[p] = stored;
    return *stored;
  }
  auto it = overflow_.find(p);
  if (it != overflow_.end()) return *it->second;
  entries_.push_back(std::move(entry));
  const MemoEntry* stored = &entries_.back();
  overflow_.emplace(p, stored);
  return *stored;
}

CONDSEL_HOT const DerivationAtom* SelectivityMemo::FindAtom(
    int pred) const {
  CONDSEL_CHECK(pred >= 0 && pred < kMaxPredicates);
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return atom_present_[pred] ? &atoms_[pred] : nullptr;
}

CONDSEL_HOT const DerivationAtom& SelectivityMemo::InsertAtom(
    int pred, DerivationAtom atom, bool* inserted) {
  CONDSEL_CHECK(pred >= 0 && pred < kMaxPredicates);
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  if (atom_present_[pred]) {
    if (inserted != nullptr) *inserted = false;
    return atoms_[pred];
  }
  if (inserted != nullptr) *inserted = true;
  atoms_[pred] = atom;
  atom_present_[pred] = true;
  return atoms_[pred];
}

size_t SelectivityMemo::size() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return entries_.size();
}

void SelectivityMemo::BindGeneration(uint64_t gen) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  if (generation_bound_ && generation_ == gen) return;
  if (generation_bound_) {
    // Self-invalidation on a statistics refresh: an entry computed from
    // the previous generation's histograms must never answer for the new
    // one — that is precisely the staleness bug a bitmask-only key had.
    // The dense table keeps its capacity (only the slots are reset), so
    // steady-state rebinds do not allocate.
    std::fill(dense_.begin(), dense_.end(), nullptr);
    overflow_.clear();
    entries_.clear();
    std::fill(atom_present_, atom_present_ + kMaxPredicates, false);
  }
  generation_bound_ = true;
  generation_ = gen;
}

uint64_t SelectivityMemo::bound_generation() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return generation_;
}

}  // namespace condsel
