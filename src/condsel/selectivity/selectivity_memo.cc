#include "condsel/selectivity/selectivity_memo.h"

#include <shared_mutex>

#include "condsel/common/macros.h"

namespace condsel {

CONDSEL_HOT const MemoEntry* SelectivityMemo::Find(PredSet p) const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  auto it = index_.find(p);
  return it == index_.end() ? nullptr : it->second;
}

CONDSEL_HOT const MemoEntry& SelectivityMemo::Insert(PredSet p,
                                                     MemoEntry entry) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  auto it = index_.find(p);
  if (it != index_.end()) return *it->second;
  entries_.push_back(std::move(entry));
  const MemoEntry* stored = &entries_.back();
  index_.emplace(p, stored);
  return *stored;
}

CONDSEL_HOT const DerivationAtom* SelectivityMemo::FindAtom(
    int pred) const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  auto it = atoms_.find(pred);
  return it == atoms_.end() ? nullptr : &it->second;
}

CONDSEL_HOT const DerivationAtom& SelectivityMemo::InsertAtom(
    int pred, DerivationAtom atom,
                                                  bool* inserted) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  auto it = atoms_.find(pred);
  if (it != atoms_.end()) {
    if (inserted != nullptr) *inserted = false;
    return it->second;
  }
  if (inserted != nullptr) *inserted = true;
  return atoms_.emplace(pred, std::move(atom)).first->second;
}

size_t SelectivityMemo::size() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return entries_.size();
}

void SelectivityMemo::BindGeneration(uint64_t gen) {
  std::unique_lock<OrderedSharedMutex> lock(mu_);
  if (generation_bound_ && generation_ == gen) return;
  if (generation_bound_) {
    // Self-invalidation on a statistics refresh: an entry computed from
    // the previous generation's histograms must never answer for the new
    // one — that is precisely the staleness bug a bitmask-only key had.
    index_.clear();
    entries_.clear();
    atoms_.clear();
  }
  generation_bound_ = true;
  generation_ = gen;
}

uint64_t SelectivityMemo::bound_generation() const {
  std::shared_lock<OrderedSharedMutex> lock(mu_);
  return generation_;
}

}  // namespace condsel
