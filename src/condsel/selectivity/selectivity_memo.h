// SelectivityMemo — the shared, thread-safe memo of the getSelectivity DP.
//
// Keyed by predicate-subset bitmask. Storage is a deque behind a mutex so
// entry references stay valid for the lifetime of the memo (both drivers
// hold references across later inserts; the parallel driver's workers
// insert concurrently). Insertion is first-wins: if two workers solve the
// same subset (possible when a level's subsets share children across
// Compute() calls), the first entry stands and the duplicate is dropped —
// both are bit-identical on budget-free runs, so which one wins is
// unobservable.
//
// The index is two-tier, chosen by the key value alone so lookups stay
// branch-cheap and bit-identical either way:
//  - keys below kDenseSlots (every query of at most kDenseBits
//    predicates) resolve through a dense pointer table indexed directly
//    by the bitmask — one bounds check and one load under the shared
//    lock, no hashing. The table grows geometrically on insert and is
//    retained across generation rebinds (refilled with nullptr), so a
//    warmed-up estimator indexes without allocating.
//  - larger keys (17..32-predicate universes) fall back to the hash map.
// A single Find may consult both tiers only when the overflow map is
// non-empty, which cannot happen for small universes.
//
// The memo also holds the per-predicate independence-fallback atoms
// (the noSit path re-entered by every degraded superset) in a fixed
// 32-slot array — one per possible predicate index — memoized under the
// same lock.

#pragma once

#include <deque>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "condsel/analysis/derivation.h"
#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/query/join_graph.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {

// How a memo entry's selectivity was assembled.
enum class MemoEntryKind { kEmpty, kSeparable, kAtomic, kDegraded };

struct MemoEntry {
  double selectivity = 1.0;
  double error = 0.0;
  MemoEntryKind kind = MemoEntryKind::kEmpty;
  PredSet best_p_prime = 0;         // kAtomic: the factor's P'
  FactorChoice choice;              // kAtomic: chosen SITs
  double factor_selectivity = 1.0;  // kAtomic: Sel(P'|Q) as estimated
  // kSeparable: the standard decomposition, inline (at most one component
  // per predicate) — copying or memoizing an entry never touches the heap.
  ComponentList components;
  FallbackReason fallback = FallbackReason::kNone;  // kDegraded
};

class SelectivityMemo {
 public:
  // Universes of up to this many predicates are served entirely by the
  // dense table (2^16 pointer slots = 512 KiB fully grown; the table only
  // grows to cover the largest key actually inserted).
  static constexpr int kDenseBits = 16;
  static constexpr uint64_t kDenseSlots = uint64_t{1} << kDenseBits;

  // The entry for `p`, or nullptr. The reference stays valid for the
  // memo's lifetime.
  const MemoEntry* Find(PredSet p) const CONDSEL_EXCLUDES(mu_);

  // Inserts (first-wins) and returns the stored entry.
  const MemoEntry& Insert(PredSet p, MemoEntry entry) CONDSEL_EXCLUDES(mu_);

  // Per-predicate fallback atoms, same contract. `inserted` (optional)
  // reports whether `atom` was stored (false: an earlier atom won).
  const DerivationAtom* FindAtom(int pred) const CONDSEL_EXCLUDES(mu_);
  const DerivationAtom& InsertAtom(int pred, DerivationAtom atom,
                                   bool* inserted = nullptr)
      CONDSEL_EXCLUDES(mu_);

  size_t size() const CONDSEL_EXCLUDES(mu_);

  // Binds the memo to a statistics generation. Entries cache estimates
  // derived from one pool; a subset bitmask alone does not identify an
  // estimate once the statistics behind it change. If `gen` differs from
  // the bound generation (a delta refresh happened between Compute()
  // calls), every entry and atom is dropped before rebinding — the dense
  // table keeps its storage and is refilled with nullptr, so the rebind
  // itself allocates nothing. The first call binds without clearing.
  // Entry references handed out before a rebind are invalidated — drivers
  // call this only at the top of a Compute() pass, before taking any.
  void BindGeneration(uint64_t gen) CONDSEL_EXCLUDES(mu_);
  uint64_t bound_generation() const CONDSEL_EXCLUDES(mu_);

 private:
  // Reader-writer: the parallel driver's workers Find far more often than
  // they Insert (every candidate tail is a read), so shared read locks
  // keep the memo off the contention path.
  mutable OrderedSharedMutex mu_{lock_rank::kSelectivityMemo,
                                 "SelectivityMemo::mu_"};
  std::deque<MemoEntry> entries_ CONDSEL_GUARDED_BY(mu_);
  // Dense tier: slot p holds the entry for subset p (nullptr = absent).
  std::vector<const MemoEntry*> dense_ CONDSEL_GUARDED_BY(mu_);
  // Overflow tier for keys >= kDenseSlots.
  std::unordered_map<PredSet, const MemoEntry*> overflow_
      CONDSEL_GUARDED_BY(mu_);
  DerivationAtom atoms_[kMaxPredicates] CONDSEL_GUARDED_BY(mu_);
  bool atom_present_[kMaxPredicates] CONDSEL_GUARDED_BY(mu_) = {};
  bool generation_bound_ CONDSEL_GUARDED_BY(mu_) = false;
  uint64_t generation_ CONDSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace condsel
