#include "condsel/selectivity/distinct.h"

#include <algorithm>
#include <cmath>

#include "condsel/catalog/catalog.h"
#include "condsel/common/macros.h"
#include "condsel/harness/metrics.h"

namespace condsel {

double EstimateGroupByCardinality(const Catalog& catalog, const Query& query,
                                  PredSet p, ColumnRef col,
                                  SitMatcher* matcher, GetSelectivity* gs) {
  CONDSEL_CHECK(matcher != nullptr);
  CONDSEL_CHECK(gs != nullptr);

  // Best SIT over `col` conditioned on (a subset of) P.
  const std::vector<SitCandidate> candidates = matcher->Candidates(col, p);
  CONDSEL_CHECK_MSG(!candidates.empty(),
                    "no statistics over the grouping column");
  // Prefer the heaviest conditioning (largest matched expression).
  const SitCandidate* best = &candidates[0];
  for (const SitCandidate& c : candidates) {
    if (SetSize(c.expr_mask) > SetSize(best->expr_mask)) best = &c;
  }
  const Histogram& h = best->sit->histogram;
  if (h.empty() || h.total_frequency() <= 0.0) return 0.0;

  // Range predicates of P on `col` itself restrict the candidate domain.
  int64_t lo = h.Domain().first;
  int64_t hi = h.Domain().second;
  for (int i : SetElements(p & query.filter_predicates())) {
    const Predicate& f = query.predicate(i);
    if (f.column() == col) {
      lo = std::max(lo, f.lo());
      hi = std::min(hi, f.hi());
    }
  }
  if (lo > hi) return 0.0;

  // Predicates other than range filters on `col` itself.
  PredSet remaining = p;
  for (int i : SetElements(p & query.filter_predicates())) {
    if (query.predicate(i).column() == col) remaining = Without(remaining, i);
  }

  // Distinct values the SIT sees inside the restricted range.
  double d_in_range = 0.0;
  for (const Bucket& b : h.buckets()) {
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    if (olo > ohi) continue;
    d_in_range += b.distinct * static_cast<double>(ohi - olo + 1) / b.Width();
  }
  // With nothing but filters on `col` itself (and the SIT's own matched
  // expression), every existing value in range survives: no Cardenas
  // thinning applies.
  if (IsSubset(remaining, best->expr_mask)) return d_in_range;

  // Estimated result rows of sigma_P.
  const double rows = gs->Compute(p).selectivity *
                      CrossProductCardinality(catalog, query, p);
  if (rows <= 0.0) return 0.0;

  // Cardenas: per bucket, each of its d values is drawn with probability
  // p_v per result row; expected distinct = d * (1 - (1 - p_v)^rows).
  // p_v is conditioned on the range restriction over `col` (rows of the
  // result that satisfied those filters necessarily land in [lo, hi]).
  // Distinct-value math over the already-chosen statistic's buckets, not
  // a predicate-selectivity lookup — the provider picked `h`; here it is
  // a frequency distribution. condsel-lint: allow(no-raw-histogram-lookup)
  const double range_mass = h.RangeSelectivity(lo, hi);
  if (range_mass <= 0.0) return 0.0;
  double distinct = 0.0;
  for (const Bucket& b : h.buckets()) {
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    if (olo > ohi || b.distinct <= 0.0) continue;
    const double frac = static_cast<double>(ohi - olo + 1) / b.Width();
    const double d = b.distinct * frac;
    if (d <= 0.0) continue;
    const double p_v = (b.frequency * frac / d) / range_mass;
    if (p_v <= 0.0) continue;
    distinct += d * (1.0 - std::pow(std::max(0.0, 1.0 - p_v), rows));
  }
  return distinct;
}

}  // namespace condsel
