#include "condsel/selectivity/decomposition.h"

#include <cmath>

#include "condsel/common/macros.h"

namespace condsel {

uint64_t Factorial(int n) {
  CONDSEL_CHECK(n >= 0 && n <= 20);
  uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<uint64_t>(i);
  return f;
}

uint64_t Binomial(int n, int k) {
  CONDSEL_CHECK(n >= 0 && k >= 0 && k <= n);
  uint64_t r = 1;
  for (int i = 1; i <= k; ++i) {
    r = r * static_cast<uint64_t>(n - k + i) / static_cast<uint64_t>(i);
  }
  return r;
}

uint64_t CountDecompositions(int n) {
  CONDSEL_CHECK(n >= 1 && n <= 15);
  std::vector<uint64_t> t(static_cast<size_t>(n) + 1);
  t[0] = 1;  // empty tail: the chain simply ends
  t[1] = 1;
  for (int m = 2; m <= n; ++m) {
    uint64_t sum = 0;
    for (int i = 1; i <= m; ++i) {
      sum += Binomial(m, i) * t[static_cast<size_t>(m - i)];
    }
    t[static_cast<size_t>(m)] = sum;
  }
  return t[static_cast<size_t>(n)];
}

bool Lemma1LowerBoundHolds(int n) {
  const double t = static_cast<double>(CountDecompositions(n));
  const double bound = 0.5 * static_cast<double>(Factorial(n + 1));
  return t >= bound;
}

bool Lemma1UpperBoundHolds(int n) {
  const double t = static_cast<double>(CountDecompositions(n));
  const double bound =
      std::pow(1.5, n) * static_cast<double>(Factorial(n));
  return t <= bound;
}

namespace {

void Enumerate(PredSet remaining, Decomposition& prefix,
               const std::function<void(const Decomposition&)>& cb) {
  if (remaining == 0) {
    cb(prefix);
    return;
  }
  // Every non-empty subset of `remaining` can head the chain. The
  // standard (mask - 1) & set walk visits each non-empty submask once,
  // in decreasing order, ending when it reaches 0.
  for (PredSet head = remaining; head != 0;
       head = PrevSubmask(remaining, head)) {
    prefix.push_back(Factor{head, remaining & ~head});
    Enumerate(remaining & ~head, prefix, cb);
    prefix.pop_back();
  }
}

}  // namespace

void EnumerateChainDecompositions(
    PredSet full, const std::function<void(const Decomposition&)>& cb) {
  if (full == 0) return;
  Decomposition prefix;
  Enumerate(full, prefix, cb);
}

uint64_t CountChainDecompositions(PredSet full) {
  uint64_t count = 0;
  EnumerateChainDecompositions(full,
                               [&count](const Decomposition&) { ++count; });
  return count;
}

}  // namespace condsel
