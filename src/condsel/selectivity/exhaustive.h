// Brute-force reference search over decompositions.
//
// Exists to validate Theorem 1 experimentally: the DP must return the
// minimum error over all decompositions it is allowed to consider. The
// reference recursion tries *every* non-empty P' at every step — no
// memoization, no separability pruning unless requested — and is
// exponential-factorial, so only small queries (n <= ~6) are practical.

#pragma once

#include <cstdint>

#include "condsel/analysis/derivation.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {

struct ExhaustiveResult {
  double error = kInfiniteError;
  double selectivity = 0.0;
  uint64_t nodes_explored = 0;
};

// Minimum merged error over decompositions of Sel(P), with factors scored
// by `provider`. When `separable_first` is set, separable subsets are
// forced through their standard decomposition (the DP's pruned space);
// otherwise atomic decompositions are tried on separable subsets too (the
// full space, which by Theorem 1 must not beat the pruned one).
//
// When `dag` is non-null, the winning decomposition of every feasible
// subset reached by the search is recorded for DerivationAuditor (one node
// per subset: the recursion revisits subsets, but the search is
// deterministic, so the first computation stands for all of them).
// Infeasible subsets (no approximable decomposition) record nothing.
ExhaustiveResult ExhaustiveBest(const Query& query, PredSet p,
                                AtomicSelectivityProvider* provider,
                                bool separable_first,
                                DerivationDag* dag = nullptr);

}  // namespace condsel
