// Distinct-count (GROUP BY) estimation over query expressions.
//
// The paper handles SPJ queries and defers optional Group-By clauses to
// [3]; this module provides that extension. The cardinality of
//   SELECT col, .. FROM .. WHERE P GROUP BY col
// is the number of distinct `col` values in sigma_P(R^x). We estimate it
// with the same statistics machinery:
//  1. pick the best SIT(col | Q') with Q' ⊆ P (the matcher's rules);
//  2. restrict its histogram to any range predicates on `col` itself;
//  3. scale for the remaining predicates with the Cardenas/Yao formula:
//     drawing N = |sigma_P| tuples against the SIT's per-value
//     probabilities, the expected number of distinct values per bucket is
//     d_b * (1 - (1 - p_v)^N).

#pragma once

#include "condsel/query/query.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

class Catalog;

// Estimated number of distinct values of `col` in sigma_P(tables(P)^x),
// i.e. the GROUP BY `col` output cardinality of the sub-query P. `col`'s
// table must be referenced by P (or P may be empty for a base-table
// GROUP BY). `gs` provides the row-count estimate; `matcher` the SITs.
double EstimateGroupByCardinality(const Catalog& catalog, const Query& query,
                                  PredSet p, ColumnRef col,
                                  SitMatcher* matcher, GetSelectivity* gs);

}  // namespace condsel

