// Estimation budgets and their enforcement primitives.
//
// EstimationBudget is the user-facing knob set (moved here from
// get_selectivity.h, which re-exports it for include compatibility). The
// two helper classes make the knobs enforceable from concurrent search
// drivers:
//   - Deadline: an armed wall-clock point, checkable lock-free from any
//     thread (and from inside the provider's candidate loops, so a slow
//     statistics lookup cannot overshoot the deadline by a whole
//     subproblem);
//   - BudgetCounters: the search's cumulative counters as atomics, so the
//     parallel getSelectivity driver's budget checks are race-free and the
//     sequential driver pays only uncontended relaxed increments.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace condsel {

// Caps on one memoized search. Each knob is a hard ceiling; 0 disables it.
// The deadline applies per top-level Compute() call (an optimizer's
// per-sub-plan latency budget), while the count caps are cumulative over
// the search's lifetime, matching the cumulative GsStats counters.
struct EstimationBudget {
  uint64_t max_subproblems = 0;            // memo entries computed
  uint64_t max_atomic_decompositions = 0;  // atomic decompositions scored
  double deadline_seconds = 0.0;           // wall clock per Compute() call
  // Worker threads for the getSelectivity DP (1 = the sequential driver).
  // Estimates are bit-identical across thread counts on budget-free runs;
  // with caps or deadlines armed, *which* subsets degrade may differ by
  // schedule (each answer is still a valid graceful degradation).
  int threads = 1;

  bool unlimited() const {
    return max_subproblems == 0 && max_atomic_decompositions == 0 &&
           deadline_seconds <= 0.0;
  }
};

// Statistics getSelectivity reports about one search (Figure 8's timing
// split plus robustness accounting).
struct GsStats {
  uint64_t subproblems = 0;         // memo entries computed by the search
                                    // (degraded entries excluded)
  uint64_t memo_hits = 0;           // lookups answered from the memo
  uint64_t atomic_considered = 0;   // atomic decompositions scored
  double analysis_seconds = 0.0;    // search + view matching + ranking
  double histogram_seconds = 0.0;   // estimation with the chosen SITs
  // Robustness accounting:
  bool budget_exhausted = false;       // some knob of the budget ran out
  uint64_t degraded_subproblems = 0;   // entries answered by the fallback
  uint64_t default_fallbacks = 0;      // predicates with no base histogram
};

// An armed wall-clock deadline. Arm/Disarm happen on the driver thread
// before workers start and after they join; Expired() is safe to call
// concurrently (it reads immutable state and the clock) and consults the
// FaultInjector's kExpireDeadline hook so tests can fire it
// deterministically.
class Deadline {
 public:
  // Arms `seconds` from now; seconds <= 0 disarms.
  void Arm(double seconds);
  void Disarm() { armed_ = false; }

  bool armed() const { return armed_; }
  bool Expired() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

// The budget-relevant counters of a search, shared between drivers and
// safe to bump from worker threads. Mirrored into GsStats via Snapshot().
struct BudgetCounters {
  std::atomic<uint64_t> subproblems{0};
  std::atomic<uint64_t> memo_hits{0};
  std::atomic<uint64_t> atomic_considered{0};
  std::atomic<uint64_t> degraded_subproblems{0};
  std::atomic<uint64_t> default_fallbacks{0};
  std::atomic<bool> budget_exhausted{false};
  std::atomic<double> analysis_seconds{0.0};
  std::atomic<double> histogram_seconds{0.0};

  void Add(GsStats* out) const;
};

// True when any knob of `budget` has run out. `budget` may be null
// (unlimited). Race-free against concurrent counter increments.
bool BudgetExhausted(const EstimationBudget* budget,
                     const BudgetCounters& counters,
                     const Deadline& deadline);

}  // namespace condsel
