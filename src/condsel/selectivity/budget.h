// Estimation budgets and their enforcement primitives.
//
// EstimationBudget is the user-facing knob set (moved here from
// get_selectivity.h, which re-exports it for include compatibility). The
// helper classes make the knobs enforceable from concurrent search
// drivers:
//   - Deadline: an armed wall-clock point, checkable lock-free from any
//     thread (and from inside the provider's candidate loops, so a slow
//     statistics lookup cannot overshoot the deadline by a whole
//     subproblem), safely re-armable while readers run;
//   - ScopedDeadline: RAII arm/disarm, so no early return or exception
//     can leave a deadline armed past the call it was meant to bound;
//   - BudgetCounters: the search's cumulative counters as atomics, so the
//     parallel getSelectivity driver's budget checks are race-free and the
//     sequential driver pays only uncontended relaxed increments.
//
// Deadlines are per-call state: the driver owning a Compute() call arms
// its own Deadline and passes it down explicitly (Score's deadline
// argument, AtomicFactorCandidates' deadline argument). No shared layer
// — in particular not the AtomicSelectivityProvider, which concurrent
// estimators share — ever stores a borrowed deadline pointer, so two
// searches on one provider can never clobber (or dangle) each other's
// clock. condsel_lint's raw-set-deadline rule keeps it that way.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace condsel {

// Caps on one memoized search. Each knob is a hard ceiling; 0 disables it.
// The deadline applies per top-level Compute() call (an optimizer's
// per-sub-plan latency budget), while the count caps are cumulative over
// the search's lifetime, matching the cumulative GsStats counters.
struct EstimationBudget {
  uint64_t max_subproblems = 0;            // memo entries computed
  uint64_t max_atomic_decompositions = 0;  // atomic decompositions scored
  double deadline_seconds = 0.0;           // wall clock per Compute() call
  // Worker threads for the getSelectivity DP (1 = the sequential driver).
  // Estimates are bit-identical across thread counts on budget-free runs;
  // with caps or deadlines armed, *which* subsets degrade may differ by
  // schedule (each answer is still a valid graceful degradation).
  int threads = 1;

  bool unlimited() const {
    return max_subproblems == 0 && max_atomic_decompositions == 0 &&
           deadline_seconds <= 0.0;
  }
};

// One popcount level of one parallel getSelectivity batch, as the
// work-stealing scheduler saw it. `width` is static lattice shape;
// `max_solved_by_one_worker` against width/threads shows how unbalanced
// the level's per-subset costs were, and the steal counters show how much
// work had to be redistributed to absorb it (what the old per-level
// barrier used to pay for in idle waiting).
struct GsLevelStats {
  int level = 0;                         // subset size (popcount)
  uint64_t width = 0;                    // subsets in the level
  uint64_t steals = 0;                   // successful steal operations
  uint64_t stolen_subsets = 0;           // subsets that changed workers
  uint64_t max_solved_by_one_worker = 0; // busiest worker's solve count
};

// Statistics getSelectivity reports about one search (Figure 8's timing
// split plus robustness and scheduler accounting).
struct GsStats {
  uint64_t subproblems = 0;         // memo entries computed by the search
                                    // (degraded entries excluded)
  uint64_t memo_hits = 0;           // lookups answered from the memo
  uint64_t atomic_considered = 0;   // atomic decompositions scored
  double analysis_seconds = 0.0;    // search + view matching + ranking
  double histogram_seconds = 0.0;   // estimation with the chosen SITs
  // Robustness accounting:
  bool budget_exhausted = false;       // some knob of the budget ran out
  uint64_t degraded_subproblems = 0;   // entries answered by the fallback
  uint64_t default_fallbacks = 0;      // predicates with no base histogram
  // Shape-keyed decomposition cache (shape_cache.h); both zero when no
  // cache is attached. Warmth-dependent (a later session inherits the
  // lists an earlier one stored), so excluded from the driver parity
  // contract — a hit and a miss yield bit-identical candidate lists.
  uint64_t shape_cache_hits = 0;     // subsets whose candidates were copied
  uint64_t shape_cache_misses = 0;   // subsets enumerated from scratch
  // Work-stealing scheduler accounting (parallel driver only; the
  // sequential driver and inline small-plan runs report zeros). These are
  // schedule-dependent — excluded from the sequential-vs-parallel parity
  // contract that covers every counter above.
  uint64_t steals = 0;             // successful steal operations
  uint64_t stolen_subsets = 0;     // subsets solved by a thief
  uint64_t parallel_levels = 0;    // popcount levels run on the pool
  uint64_t max_level_width = 0;    // widest level of any batch
  std::vector<GsLevelStats> level_stats;  // per level, cumulative
};

// An armed wall-clock deadline.
//
// Publication contract: Arm stores the expiry instant `at_` *before*
// releasing `armed_`, and Expired acquires `armed_` before reading `at_`
// — a reader that observes armed==true therefore always observes the
// matching (or a newer) expiry instant, never a stale one. Re-arming
// while other threads call Expired() is safe: both fields are atomic, so
// a racing reader sees either the old or the new deadline in full, never
// a torn mix. Expired() also consults the FaultInjector's kExpireDeadline
// hook so tests can fire the clock deterministically.
class Deadline {
 public:
  // Arms `seconds` from now; seconds <= 0 disarms.
  void Arm(double seconds);
  void Disarm() { armed_.store(false, std::memory_order_release); }

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  bool Expired() const;

 private:
  using Rep = std::chrono::steady_clock::rep;
  std::atomic<bool> armed_{false};
  std::atomic<Rep> at_{0};  // steady_clock duration-since-epoch ticks
};

// RAII arm/disarm of a borrowed Deadline. This is the only sanctioned way
// for a driver to arm a deadline around a search: destruction disarms on
// every path — normal return, early return, or exception — so a deadline
// can never stay armed past the call it bounds (the shared-provider
// dangling-deadline bug this replaces).
class ScopedDeadline {
 public:
  // `deadline` is borrowed and must outlive this object.
  ScopedDeadline(Deadline* deadline, double seconds) : deadline_(deadline) {
    deadline_->Arm(seconds);
  }
  ~ScopedDeadline() { deadline_->Disarm(); }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline* deadline_;
};

// The budget-relevant counters of a search, shared between drivers and
// safe to bump from worker threads. Mirrored into GsStats via Add()
// (GsStats::level_stats is driver-owned and merged separately).
struct BudgetCounters {
  std::atomic<uint64_t> subproblems{0};
  std::atomic<uint64_t> memo_hits{0};
  std::atomic<uint64_t> atomic_considered{0};
  std::atomic<uint64_t> degraded_subproblems{0};
  std::atomic<uint64_t> default_fallbacks{0};
  std::atomic<uint64_t> shape_cache_hits{0};
  std::atomic<uint64_t> shape_cache_misses{0};
  std::atomic<bool> budget_exhausted{false};
  std::atomic<double> analysis_seconds{0.0};
  std::atomic<double> histogram_seconds{0.0};
  // Work-stealing scheduler accounting (see GsStats).
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> stolen_subsets{0};
  std::atomic<uint64_t> parallel_levels{0};
  std::atomic<uint64_t> max_level_width{0};

  void Add(GsStats* out) const;
};

// True when any knob of `budget` has run out. `budget` may be null
// (unlimited). Race-free against concurrent counter increments.
bool BudgetExhausted(const EstimationBudget* budget,
                     const BudgetCounters& counters,
                     const Deadline& deadline);

// Aggregation helpers for layers that sum many sessions' GsStats into one
// total (the EstimationService's telemetry aggregator).
//
// AddGsStats accumulates `delta` into `total`: counters and timings sum,
// budget_exhausted ORs, max_level_width maxes, and delta.level_stats
// batches are appended (the per-batch shape is preserved; consumers that
// want per-level totals merge by GsLevelStats::level).
void AddGsStats(const GsStats& delta, GsStats* total);

// The growth of a session's cumulative stats since `prev`, an earlier
// snapshot of the *same* session. GsStats counters are cumulative over a
// memoized search's lifetime, so an aggregator that re-adds a session's
// stats() after every Compute() double-counts all earlier calls — always
// settle deltas, never cumulative snapshots (service_stats.h's
// GsStatsLedger wraps this discipline; its regression test drives
// overlapping Compute()s through it). Counter differences saturate at 0
// so a misordered pair degrades to under-counting, never wraparound.
GsStats DiffGsStats(const GsStats& cumulative, const GsStats& prev);

}  // namespace condsel
