// getSelectivity (Figure 3): dynamic programming over predicate subsets.
//
// For a bound query, Compute(P) returns the most accurate estimation of
// Sel(P) under the configured error function, among all decompositions
// with non-separable, SIT-approximable factors (Theorem 1):
//  - separable P is split into its standard decomposition and the parts
//    solved independently (lines 3-7);
//  - non-separable P tries every atomic decomposition
//    Sel(P'|Q) * Sel(Q) whose factor shape some SIT could approximate
//    (line 12's "no SITs available" cases are skipped up front), keeping
//    the minimum merged error (lines 9-17);
//  - everything is memoized, so the optimizer's many sub-plan requests
//    against the same query cost one DP (Section 4's reuse).
//
// The DP is exponential in the number of predicates, so a production
// deployment caps it with an EstimationBudget. When the budget runs out —
// or when no SIT-approximable decomposition exists for a subset — the
// search degrades gracefully: the remaining subsets fall back to the
// independence-assumption estimate from base histograms (the noSit
// baseline's path), each predicate with no base histogram contributing a
// neutral 1.0. Compute() therefore always returns a finite selectivity in
// [0, 1] and never aborts or blocks; degradation is recorded in GsStats
// and visible in Explain().
//
// The run also collects the statistics the evaluation section reports:
// decomposition-analysis vs histogram-manipulation time (Fig. 8), memo
// hits, and subproblem counts.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "condsel/analysis/derivation.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/factor_approx.h"

namespace condsel {

struct SelEstimate {
  double selectivity = 1.0;
  double error = 0.0;
};

// Caps on one memoized search. Each knob is a hard ceiling; 0 disables it.
// The deadline applies per top-level Compute() call (an optimizer's
// per-sub-plan latency budget), while the count caps are cumulative over
// the search's lifetime, matching the cumulative GsStats counters.
struct EstimationBudget {
  uint64_t max_subproblems = 0;          // memo entries computed
  uint64_t max_atomic_decompositions = 0;  // atomic decompositions scored
  double deadline_seconds = 0.0;           // wall clock per Compute() call

  bool unlimited() const {
    return max_subproblems == 0 && max_atomic_decompositions == 0 &&
           deadline_seconds <= 0.0;
  }
};

struct GsStats {
  uint64_t subproblems = 0;         // memo entries computed by the search
                                    // (degraded entries excluded)
  uint64_t memo_hits = 0;           // lookups answered from the memo
  uint64_t atomic_considered = 0;   // atomic decompositions scored
  double analysis_seconds = 0.0;    // search + view matching + ranking
  double histogram_seconds = 0.0;   // estimation with the chosen SITs
  // Robustness accounting:
  bool budget_exhausted = false;       // some knob of the budget ran out
  uint64_t degraded_subproblems = 0;   // entries answered by the fallback
  uint64_t default_fallbacks = 0;      // predicates with no base histogram
};

class GetSelectivity {
 public:
  // All pointers are borrowed and must outlive this object. The
  // approximator's matcher must already be bound to `query`. `budget` may
  // be null (unlimited); it is re-read on every Compute() call, so the
  // owner can tighten or relax it between requests.
  GetSelectivity(const Query* query, FactorApproximator* approximator,
                 const EstimationBudget* budget = nullptr);

  // Most accurate estimation of Sel(P) within budget. Memoized across
  // calls. Always finite, in [0, 1], and non-aborting: exhausted budget or
  // missing statistics degrade to the independence fallback (see stats()).
  SelEstimate Compute(PredSet p);

  // Human-readable best decomposition of a previously computed subset.
  std::string Explain(PredSet p) const;

  // Attaches a derivation recorder: every memo entry created from now on
  // is mirrored as a DerivationDag node for DerivationAuditor
  // (analysis/auditor.h). Attach before the first Compute() call — nodes
  // are recorded as entries are created, so entries memoized earlier
  // would be missing from the DAG (the auditor reports the resulting
  // dangling references). Pass nullptr to stop recording. The DAG is
  // borrowed and must outlive the recording.
  void set_recorder(DerivationDag* dag) { recorder_ = dag; }
  DerivationDag* recorder() const { return recorder_; }

  const GsStats& stats() const { return stats_; }

 private:
  enum class Kind { kEmpty, kSeparable, kAtomic, kDegraded };

  struct Entry {
    double selectivity = 1.0;
    double error = 0.0;
    Kind kind = Kind::kEmpty;
    PredSet best_p_prime = 0;        // kAtomic: the factor's P'
    FactorChoice choice;             // kAtomic: chosen SITs
    std::vector<PredSet> components; // kSeparable
  };

  const Entry& ComputeEntry(PredSet p);
  // True when any budget knob has run out for the current Compute() call.
  bool BudgetExhausted() const;
  // Independence-assumption fallback entry for `p` (the noSit path).
  // `reason` records which gate degraded it into the derivation DAG.
  Entry MakeDegradedEntry(PredSet p, FallbackReason reason);
  // Base-histogram estimate of one predicate; 1.0 when no base histogram
  // exists. Memoized (it is re-entered by every degraded superset).
  const DerivationAtom& SinglePredicateFallback(int i);
  void ExplainRec(PredSet p, int indent, std::string* out) const;
  // Mirrors a freshly created memo entry into the attached recorder.
  void RecordEntry(PredSet p, const Entry& entry, double factor_sel,
                   FallbackReason reason);

  const Query* query_;
  FactorApproximator* approximator_;
  const EstimationBudget* budget_;
  DerivationDag* recorder_ = nullptr;
  std::unordered_map<PredSet, Entry> memo_;
  std::unordered_map<int, DerivationAtom> fallback_memo_;
  GsStats stats_;
  // Deadline for the in-flight top-level Compute() call.
  bool deadline_armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace condsel

