// getSelectivity (Figure 3): dynamic programming over predicate subsets.
//
// For a bound query, Compute(P) returns the most accurate estimation of
// Sel(P) under the configured error function, among all decompositions
// with non-separable, SIT-approximable factors (Theorem 1):
//  - separable P is split into its standard decomposition and the parts
//    solved independently (lines 3-7);
//  - non-separable P tries every atomic decomposition
//    Sel(P'|Q) * Sel(Q) whose factor shape some SIT could approximate
//    (line 12's "no SITs available" cases are skipped up front), keeping
//    the minimum merged error (lines 9-17);
//  - everything is memoized, so the optimizer's many sub-plan requests
//    against the same query cost one DP (Section 4's reuse).
//
// The class is the evaluation *driver* over three separable layers:
//   AtomicSelectivityProvider (atomic_provider.h) — the only code that
//     matches SITs and reads histograms, with provenance reporting;
//   AtomicFactorCandidates (decomposer.h) — the deadline-aware candidate
//     enumeration, a pure function of (query, subset);
//   SelectivityMemo (selectivity_memo.h) — the thread-safe subset memo.
// Two drivers share them: the sequential recursion, and a level-parallel
// driver (EstimationBudget::threads > 1) that runs each antichain of the
// subset lattice — all subsets of equal size, whose entries only depend
// on strictly smaller subsets — over a std::jthread pool with in-level
// work stealing (idle workers take half the richest peer's deque, and an
// atomic completion counter per level replaces the old barrier, so an
// unbalanced level is absorbed by whoever is idle instead of stalling
// the pool). Scoring is a pure function of the candidate lists and every
// subset is solved exactly once, so on budget-free runs the two drivers
// produce bit-identical estimates at any thread count; with caps or
// deadlines armed, which subsets degrade may differ by schedule (each
// answer is still a valid graceful degradation). GsStats' deterministic
// counters (subproblems, memo hits, decompositions, degradations) agree
// between the drivers too; only timings and the steal counters are
// schedule-dependent.
//
// The DP is exponential in the number of predicates, so a production
// deployment caps it with an EstimationBudget. When the budget runs out —
// or when no SIT-approximable decomposition exists for a subset — the
// search degrades gracefully: the remaining subsets fall back to the
// independence-assumption estimate from base histograms (the noSit
// baseline's path), each predicate with no base histogram contributing a
// neutral 1.0. Compute() therefore always returns a finite selectivity in
// [0, 1] and never aborts or blocks; degradation is recorded in GsStats
// and visible in Explain().
//
// The run also collects the statistics the evaluation section reports:
// decomposition-analysis vs histogram-manipulation time (Fig. 8), memo
// hits, and subproblem counts.

#pragma once

#include <string>
#include <vector>

#include "condsel/analysis/derivation.h"
#include "condsel/common/arena.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"
#include "condsel/selectivity/budget.h"
#include "condsel/selectivity/selectivity_memo.h"
#include "condsel/selectivity/shape_cache.h"

namespace condsel {

struct SelEstimate {
  double selectivity = 1.0;
  double error = 0.0;
};

class GetSelectivity {
 public:
  // All pointers are borrowed and must outlive this object. The
  // provider's matcher must already be bound to `query`. `budget` may
  // be null (unlimited); it is re-read on every Compute() call, so the
  // owner can tighten or relax it between requests. `shape` (optional)
  // is the decomposition skeleton of `query`'s canonical shape
  // (ShapeCache::Acquire): when attached, candidate enumeration is
  // served from — and lazily fills — the shared skeleton, so
  // structurally identical statements enumerate once.
  GetSelectivity(const Query* query, AtomicSelectivityProvider* provider,
                 const EstimationBudget* budget = nullptr,
                 ShapeCache::Entry* shape = nullptr);
  ~GetSelectivity();

  // Most accurate estimation of Sel(P) within budget. Memoized across
  // calls. Always finite, in [0, 1], and non-aborting: exhausted budget or
  // missing statistics degrade to the independence fallback (see stats()).
  SelEstimate Compute(PredSet p);

  // Human-readable best decomposition of a previously computed subset,
  // including the provenance of every statistic behind an atomic factor.
  std::string Explain(PredSet p) const;

  // Attaches a derivation recorder: every memo entry created from now on
  // is mirrored as a DerivationDag node for DerivationAuditor
  // (analysis/auditor.h). Attach before the first Compute() call — nodes
  // are recorded as entries are created, so entries memoized earlier
  // would be missing from the DAG (the auditor reports the resulting
  // dangling references). Pass nullptr to stop recording. The DAG is
  // borrowed and must outlive the recording.
  void set_recorder(DerivationDag* dag) { recorder_ = dag; }
  DerivationDag* recorder() const { return recorder_; }

  const GsStats& stats() const;

 private:
  // Sequential driver: depth-first recursion (the paper's Figure 3).
  const MemoEntry& ComputeEntry(PredSet p);
  // Parallel driver: plans the reachable sub-lattice, then solves it one
  // size-level at a time over `threads` workers with in-level work
  // stealing (get_selectivity.cc documents the scheduler's invariants).
  const MemoEntry& ComputeParallel(PredSet p, int threads);

  // Scores the atomic decompositions of non-separable `p` over
  // `candidates` (arena-backed, built by the caller's enumeration pass),
  // estimates the winner, and returns the finished entry (possibly
  // degraded). `child` maps a subset to its solved entry; the sequential
  // driver recurses, the parallel driver reads the memo. `scratch` is the
  // calling thread's candidate-list scratch (one per worker — never
  // shared concurrently).
  template <typename ChildFn>
  MemoEntry SolveNonSeparable(PredSet p,
                              const ArenaVector<PredSet>& candidates,
                              ChildFn&& child, ScoreScratch* scratch);

  // Candidate enumeration for non-separable `p`, through the shape cache
  // when one is attached: a warm subset copies the skeleton's list, a
  // cold one enumerates and (if the pass was not deadline-truncated)
  // stores it. Cached and fresh lists are bit-identical by construction.
  void EnumerateCandidates(PredSet p, ArenaVector<PredSet>* out);
  // Independence-assumption fallback entry for `p` (the noSit path).
  MemoEntry DegradedEntry(PredSet p, FallbackReason reason);
  // Base-histogram estimate of one predicate; neutral 1.0 when no base
  // histogram exists. Memoized (re-entered by every degraded superset).
  const DerivationAtom& SinglePredicateFallback(int i);
  void ExplainRec(PredSet p, int indent, std::string* out) const;
  // Mirrors a memo entry into the attached recorder.
  void RecordEntry(PredSet p, const MemoEntry& entry);

  const Query* query_;
  AtomicSelectivityProvider* provider_;
  const EstimationBudget* budget_;
  ShapeCache::Entry* shape_;  // may be null: no shape cache attached
  DerivationDag* recorder_ = nullptr;
  SelectivityMemo memo_;
  // Per-Compute() scratch arena for candidate lists and the parallel
  // plan's per-subset storage. Reset (retaining its blocks) at the top of
  // every Compute() call, so a warmed-up estimator enumerates without
  // allocating. Lifetime rule: no pointer into the arena may escape the
  // Compute() call that allocated it — memo entries store everything
  // inline (ComponentList, SitVec) for exactly this reason.
  Arena arena_;
  // Candidate-list scratch for the sequential driver's Score calls (the
  // parallel driver's workers each carry their own).
  ScoreScratch scratch_;
  BudgetCounters counters_;
  // Deadline for the in-flight top-level Compute() call, armed via
  // ScopedDeadline and passed down explicitly per call (Score's deadline
  // argument) — never stored in the shared provider.
  Deadline deadline_;
  // Per-level scheduler accounting, one batch appended per parallel run;
  // driver-owned (only the thread calling Compute() writes it) and merged
  // into the GsStats snapshot by stats().
  std::vector<GsLevelStats> level_stats_;
  mutable GsStats stats_;  // snapshot of counters_, refreshed by stats()
};

}  // namespace condsel
