// getSelectivity (Figure 3): dynamic programming over predicate subsets.
//
// For a bound query, Compute(P) returns the most accurate estimation of
// Sel(P) under the configured error function, among all decompositions
// with non-separable, SIT-approximable factors (Theorem 1):
//  - separable P is split into its standard decomposition and the parts
//    solved independently (lines 3-7);
//  - non-separable P tries every atomic decomposition
//    Sel(P'|Q) * Sel(Q) whose factor shape some SIT could approximate
//    (line 12's "no SITs available" cases are skipped up front), keeping
//    the minimum merged error (lines 9-17);
//  - everything is memoized, so the optimizer's many sub-plan requests
//    against the same query cost one DP (Section 4's reuse).
//
// The run also collects the statistics the evaluation section reports:
// decomposition-analysis vs histogram-manipulation time (Fig. 8), memo
// hits, and subproblem counts.

#ifndef CONDSEL_SELECTIVITY_GET_SELECTIVITY_H_
#define CONDSEL_SELECTIVITY_GET_SELECTIVITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "condsel/query/query.h"
#include "condsel/selectivity/factor_approx.h"

namespace condsel {

struct SelEstimate {
  double selectivity = 1.0;
  double error = 0.0;
};

struct GsStats {
  uint64_t subproblems = 0;         // memo entries computed
  uint64_t memo_hits = 0;           // lookups answered from the memo
  uint64_t atomic_considered = 0;   // atomic decompositions scored
  double analysis_seconds = 0.0;    // search + view matching + ranking
  double histogram_seconds = 0.0;   // estimation with the chosen SITs
};

class GetSelectivity {
 public:
  // All pointers are borrowed and must outlive this object. The
  // approximator's matcher must already be bound to `query`.
  GetSelectivity(const Query* query, FactorApproximator* approximator);

  // Most accurate estimation of Sel(P). Memoized across calls.
  SelEstimate Compute(PredSet p);

  // Human-readable best decomposition of a previously computed subset.
  std::string Explain(PredSet p) const;

  const GsStats& stats() const { return stats_; }

 private:
  enum class Kind { kEmpty, kSeparable, kAtomic };

  struct Entry {
    double selectivity = 1.0;
    double error = 0.0;
    Kind kind = Kind::kEmpty;
    PredSet best_p_prime = 0;        // kAtomic: the factor's P'
    FactorChoice choice;             // kAtomic: chosen SITs
    std::vector<PredSet> components; // kSeparable
  };

  const Entry& ComputeEntry(PredSet p);
  void ExplainRec(PredSet p, int indent, std::string* out) const;

  const Query* query_;
  FactorApproximator* approximator_;
  std::unordered_map<PredSet, Entry> memo_;
  GsStats stats_;
};

}  // namespace condsel

#endif  // CONDSEL_SELECTIVITY_GET_SELECTIVITY_H_
