#include "condsel/selectivity/error_function.h"

#include <cmath>

namespace condsel {

double NIndError::FactorError(const Query& /*query*/, PredSet p, PredSet cond,
                              const SitVec& sits,
                              double /*estimate*/) const {
  // Q' = union of the matched SITs' expressions; P and Q - Q' are assumed
  // independent, contributing |P| * |Q - Q'| assumptions.
  PredSet q_prime = 0;
  for (const SitCandidate& c : sits) q_prime |= c.expr_mask;
  q_prime &= cond;
  return static_cast<double>(SetSize(p)) *
         static_cast<double>(SetSize(cond & ~q_prime));
}

double DiffError::FactorError(const Query& /*query*/, PredSet p,
                              PredSet /*cond*/,
                              const SitVec& sits,
                              double /*estimate*/) const {
  // |P| * (1 - diff), with diff averaged when a factor (a join) uses more
  // than one SIT (see DESIGN.md; the paper defines the single-SIT case).
  if (sits.empty()) return static_cast<double>(SetSize(p));
  double avg_diff = 0.0;
  for (const SitCandidate& c : sits) avg_diff += c.sit->diff;
  avg_diff /= static_cast<double>(sits.size());
  return static_cast<double>(SetSize(p)) * (1.0 - avg_diff);
}

double OptError::FactorError(const Query& query, PredSet p, PredSet cond,
                             const SitVec& /*sits*/,
                             double estimate) const {
  // Log-ratio (q-error style) deviation: since decomposition factors
  // multiply, |log est - log truth| sums to a bound on the final
  // estimate's log error, which makes the additive E_merge meaningful.
  // An absolute difference would let a tiny-selectivity factor with a
  // huge *relative* error look harmless.
  constexpr double kEps = 1e-12;
  const double truth =
      evaluator_->TrueConditionalSelectivity(query, p, cond);
  return std::abs(std::log(std::max(truth, kEps)) -
                  std::log(std::max(estimate, kEps)));
}

}  // namespace condsel
