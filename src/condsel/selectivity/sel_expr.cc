#include "condsel/selectivity/sel_expr.h"

namespace condsel {

bool IsChainDecomposition(PredSet full, const Decomposition& d) {
  PredSet remaining = full;
  for (size_t i = 0; i < d.size(); ++i) {
    const Factor& f = d[i];
    if (f.p == 0) return false;
    if (!IsSubset(f.p, remaining)) return false;
    if (f.q != (remaining & ~f.p)) return false;
    remaining &= ~f.p;
  }
  return remaining == 0;
}

std::string FactorToString(const Query& query, const Factor& f) {
  std::string s = "Sel(";
  bool first = true;
  for (int i : SetElements(f.p)) {
    if (!first) s += ", ";
    s += query.predicate(i).ToString();
    first = false;
  }
  if (f.q != 0) {
    s += " | ";
    first = true;
    for (int i : SetElements(f.q)) {
      if (!first) s += ", ";
      s += query.predicate(i).ToString();
      first = false;
    }
  }
  s += ")";
  return s;
}

std::string DecompositionToString(const Query& query, const Decomposition& d) {
  std::string s;
  for (size_t i = 0; i < d.size(); ++i) {
    if (i > 0) s += " * ";
    s += FactorToString(query, d[i]);
  }
  return s;
}

}  // namespace condsel
