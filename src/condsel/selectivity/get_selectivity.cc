#include "condsel/selectivity/get_selectivity.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "condsel/catalog/catalog.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/selectivity/decomposer.h"
#include "condsel/selectivity/sel_expr.h"
#include "condsel/selectivity/separability.h"

namespace condsel {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

GetSelectivity::GetSelectivity(const Query* query,
                               AtomicSelectivityProvider* provider,
                               const EstimationBudget* budget)
    : query_(query), provider_(provider), budget_(budget) {
  CONDSEL_CHECK(query != nullptr);
  CONDSEL_CHECK(provider != nullptr);
}

GetSelectivity::~GetSelectivity() = default;

SelEstimate GetSelectivity::Compute(PredSet p) {
  // Arm the per-call deadline (count caps are cumulative and need no
  // per-call state) and attach it to the provider so its candidate loops
  // observe the same clock; detached again before returning so a shared
  // provider never outlives a borrowed deadline.
  deadline_.Arm(budget_ != nullptr ? budget_->deadline_seconds : 0.0);
  provider_->set_deadline(&deadline_);
  const int threads = budget_ != nullptr ? budget_->threads : 1;
  const MemoEntry& e =
      threads > 1 ? ComputeParallel(p, threads) : ComputeEntry(p);
  provider_->set_deadline(nullptr);
  deadline_.Disarm();
  return SelEstimate{e.selectivity, e.error};
}

const GsStats& GetSelectivity::stats() const {
  counters_.Add(&stats_);
  return stats_;
}

const DerivationAtom& GetSelectivity::SinglePredicateFallback(int i) {
  if (const DerivationAtom* hit = memo_.FindAtom(i)) return *hit;
  DerivationAtom atom = provider_->BaseAtom(*query_, i, /*describe=*/true);
  bool inserted = false;
  const DerivationAtom& stored =
      memo_.InsertAtom(i, std::move(atom), &inserted);
  // 1.0 never understates a cardinality, the safe direction for an
  // optimizer that must still produce a plan. Counted once per predicate
  // (the insert can lose a concurrent race in the parallel driver).
  if (inserted && !stored.has_stat) {
    counters_.default_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  return stored;
}

MemoEntry GetSelectivity::DegradedEntry(PredSet p, FallbackReason reason) {
  MemoEntry entry;
  entry.kind = MemoEntryKind::kDegraded;
  entry.fallback = reason;
  entry.error = kInfiniteError;  // never preferred over a scored candidate
  double sel = 1.0;
  for (int i : SetElements(p)) sel *= SinglePredicateFallback(i).selectivity;
  entry.selectivity = SanitizeSelectivity(sel);
  counters_.degraded_subproblems.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void GetSelectivity::RecordEntry(PredSet p, const MemoEntry& entry) {
  if (recorder_ == nullptr) return;
  DerivationNode& node = recorder_->AddNode(p);
  node.selectivity = entry.selectivity;
  node.error = entry.error;
  const FaultInjector& fi = FaultInjector::Instance();
  switch (entry.kind) {
    case MemoEntryKind::kEmpty:
      node.kind = DerivKind::kEmptySet;
      break;
    case MemoEntryKind::kSeparable:
      node.kind = DerivKind::kSeparableSplit;
      node.tails = entry.components;
      node.standard_split = true;
      break;
    case MemoEntryKind::kAtomic: {
      node.kind = DerivKind::kConditionalFactor;
      node.head = entry.best_p_prime;
      node.head_selectivity = entry.factor_selectivity;
      // Mutation hook (tests/derivation_audit_test.cc): a corrupted
      // recording must be *caught* by the auditor, proving the checker
      // can fail — the estimate itself is left untouched.
      if (fi.armed() && fi.enabled(Fault::kCorruptDerivationFactor)) {
        node.head_selectivity = 1.5;
      }
      const PredSet cond = p & ~entry.best_p_prime;
      node.tails.push_back(cond);
      const std::vector<FactorProvenance> provenance =
          provider_->Describe(*query_, entry.best_p_prime, entry.choice);
      for (size_t i = 0; i < entry.choice.sits.size(); ++i) {
        const SitCandidate& cand = entry.choice.sits[i];
        SitApplication app;
        app.sit_id = cand.sit->id;
        app.is_base = cand.sit->is_base();
        app.hypothesis = cand.expr_mask;
        app.conditioning = cond;
        if (fi.armed() && fi.enabled(Fault::kCorruptHypothesisSet)) {
          // Claim the statistic also accounts for the head predicates —
          // a hypothesis set outside the conditioning set.
          app.hypothesis |= entry.best_p_prime;
        }
        if (i < provenance.size()) app.provenance = provenance[i];
        node.sits.push_back(std::move(app));
      }
      break;
    }
    case MemoEntryKind::kDegraded:
      node.kind = DerivKind::kPredicateProduct;
      node.fallback = entry.fallback;
      for (int i : SetElements(p)) {
        node.atoms.push_back(SinglePredicateFallback(i));
      }
      break;
  }
}

template <typename ChildFn>
MemoEntry GetSelectivity::SolveNonSeparable(
    PredSet p, const std::vector<PredSet>& candidates, ChildFn&& child) {
  // Lines 9-17: non-separable — try every atomic decomposition
  // Sel(P'|Q) * Sel(Q) whose factor some SIT could approximate
  // (decomposer.h explains the candidate order, which first-seen-wins
  // tie-breaking makes load-bearing).
  MemoEntry entry;
  entry.kind = MemoEntryKind::kAtomic;
  double best_error = kInfiniteError;
  PredSet best_p_prime = 0;
  FactorChoice best_choice;

  // Candidate-loop bookkeeping accumulates locally and flushes once:
  // per-candidate fetch_add on the shared double counters is a CAS loop
  // the parallel driver's workers would serialize on.
  uint64_t considered = 0;
  double analysis_acc = 0.0;

  for (PredSet p_prime : candidates) {
    // Stop scoring further candidates once the budget runs out mid-loop;
    // whatever has been found so far (possibly nothing) decides below.
    if (BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      break;
    }
    const PredSet q = p & ~p_prime;
    // Line 11: solve the tail before scoring so the merged error is
    // available. The sequential driver recurses here; the parallel driver
    // reads the previous levels' memo entries (nullptr — possible only
    // when the budget truncated the plan — skips the candidate, another
    // flavor of the same degradation).
    const MemoEntry* qe = child(q);
    if (qe == nullptr) continue;
    // The recursion may have spent the budget; re-check before charging
    // another decomposition so the cap stays tight at every level.
    if (BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      break;
    }
    const auto t1 = Clock::now();
    ++considered;
    FactorChoice choice = provider_->Score(*query_, p_prime, q);
    analysis_acc += Seconds(t1, Clock::now());
    if (!choice.feasible) continue;
    const double merged = ErrorFunction::Merge(choice.error, qe->error);
    if (merged < best_error) {
      best_error = merged;
      best_p_prime = p_prime;
      best_choice = std::move(choice);
    }
  }

  counters_.atomic_considered.fetch_add(considered, std::memory_order_relaxed);
  counters_.analysis_seconds.fetch_add(analysis_acc,
                                       std::memory_order_relaxed);

  if (best_p_prime == 0) {
    // No feasible decomposition — a pool without base histograms for some
    // referenced column (the Try* API reports this up front), or a budget
    // that expired before the first candidate. Degrade instead of
    // aborting: the estimate must still be produced. The entry was already
    // charged to subproblems, which is why the recorded reason is
    // "no feasible decomposition" even when the budget expired mid-loop —
    // the search did run on this entry.
    return DegradedEntry(p, FallbackReason::kNoFeasibleDecomposition);
  }

  // Lines 16-17: estimate the winning factor with its chosen SITs
  // (histogram manipulation) and combine with the tail's estimate.
  const auto t2 = Clock::now();
  const double factor_sel = SanitizeSelectivity(
      provider_->Estimate(*query_, best_p_prime, best_choice));
  counters_.histogram_seconds.fetch_add(Seconds(t2, Clock::now()),
                                        std::memory_order_relaxed);
  const MemoEntry* tail = child(p & ~best_p_prime);
  CONDSEL_CHECK(tail != nullptr);  // it was solved when the winner scored

  entry.best_p_prime = best_p_prime;
  entry.choice = std::move(best_choice);
  entry.factor_selectivity = factor_sel;
  entry.error = best_error;
  entry.selectivity = SanitizeSelectivity(factor_sel * tail->selectivity);
  return entry;
}

const MemoEntry& GetSelectivity::ComputeEntry(PredSet p) {
  if (const MemoEntry* hit = memo_.Find(p)) {
    counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  if (p == 0) {
    MemoEntry entry;
    entry.kind = MemoEntryKind::kEmpty;
    entry.selectivity = 1.0;
    entry.error = 0.0;
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }

  // Budget gate: once any knob runs out, every *new* subset is answered by
  // the independence fallback instead of growing the search. Memoized
  // entries keep serving their (more accurate) results. Degraded entries
  // count in degraded_subproblems, not subproblems, so the cap bounds the
  // entries the search actually works on.
  if (BudgetExhausted(budget_, counters_, deadline_)) {
    counters_.budget_exhausted.store(true, std::memory_order_relaxed);
    MemoEntry entry = DegradedEntry(p, FallbackReason::kBudgetExhausted);
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }
  counters_.subproblems.fetch_add(1, std::memory_order_relaxed);

  const auto t0 = Clock::now();
  const std::vector<PredSet> components = StandardDecomposition(*query_, p);
  if (components.size() > 1) {
    // Lines 3-7: separable — solve the standard decomposition's factors
    // independently; Property 2 makes the product exact.
    MemoEntry entry;
    entry.kind = MemoEntryKind::kSeparable;
    entry.components = components;
    counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                         std::memory_order_relaxed);
    double sel = 1.0;
    double err = 0.0;
    for (PredSet comp : components) {
      const MemoEntry& ce = ComputeEntry(comp);
      sel *= ce.selectivity;
      err = ErrorFunction::Merge(err, ce.error);
    }
    entry.selectivity = SanitizeSelectivity(sel);
    entry.error = err;
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }
  counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                       std::memory_order_relaxed);

  const std::vector<PredSet> candidates =
      AtomicFactorCandidates(*query_, p, &deadline_);
  MemoEntry entry = SolveNonSeparable(
      p, candidates,
      [this](PredSet q) -> const MemoEntry* { return &ComputeEntry(q); });
  RecordEntry(p, entry);
  return memo_.Insert(p, std::move(entry));
}

const MemoEntry& GetSelectivity::ComputeParallel(PredSet p, int threads) {
  // Pass 1 (sequential): discover the reachable sub-lattice and cache the
  // per-subset analysis (standard decomposition / candidate enumeration),
  // so workers only score and estimate. The closure pushed here — every
  // separable component and every candidate tail Q = P∖P' — is exactly
  // the set the sequential recursion visits, which is what makes the two
  // drivers agree on budget-free runs.
  struct PlanNode {
    bool separable = false;
    bool degrade = false;  // the deadline expired while planning
    std::vector<PredSet> components;  // separable
    std::vector<PredSet> candidates;  // non-separable
  };
  std::unordered_map<PredSet, PlanNode> plan;
  std::vector<PredSet> planned;  // insertion order, deduplicated
  std::vector<PredSet> stack{p};
  const auto t0 = Clock::now();
  while (!stack.empty()) {
    const PredSet s = stack.back();
    stack.pop_back();
    if (plan.count(s) != 0 || memo_.Find(s) != nullptr) continue;
    PlanNode node;
    if (s != 0) {
      if (deadline_.Expired()) {
        // Plan no further: this subset (and everything only reachable
        // through it) degrades to the independence fallback.
        node.degrade = true;
      } else {
        const std::vector<PredSet> components =
            StandardDecomposition(*query_, s);
        if (components.size() > 1) {
          node.separable = true;
          node.components = components;
          for (PredSet comp : components) stack.push_back(comp);
        } else {
          node.candidates = AtomicFactorCandidates(*query_, s, &deadline_);
          for (PredSet p_prime : node.candidates) {
            stack.push_back(s & ~p_prime);
          }
        }
      }
    }
    plan.emplace(s, std::move(node));
    planned.push_back(s);
  }
  counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                       std::memory_order_relaxed);

  // Pass 2: solve one size-level at a time — every entry depends only on
  // strict subsets, so all subsets of equal size form an antichain that
  // can run concurrently. Within a level the deterministic (size, value)
  // order fixes which worker gets which subset; results are order-free
  // anyway because entries never read their own level.
  std::sort(planned.begin(), planned.end(), [](PredSet a, PredSet b) {
    const int sa = SetSize(a), sb = SetSize(b);
    return sa != sb ? sa < sb : a < b;
  });

  auto child = [this](PredSet q) -> const MemoEntry* {
    const MemoEntry* e = memo_.Find(q);
    if (e != nullptr) {
      counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return e;
  };

  auto solve = [&](PredSet s, const PlanNode& node) {
    MemoEntry entry;
    if (s == 0) {
      entry.kind = MemoEntryKind::kEmpty;
    } else if (node.degrade ||
               BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      entry = DegradedEntry(s, FallbackReason::kBudgetExhausted);
    } else {
      counters_.subproblems.fetch_add(1, std::memory_order_relaxed);
      if (node.separable) {
        entry.kind = MemoEntryKind::kSeparable;
        entry.components = node.components;
        double sel = 1.0;
        double err = 0.0;
        for (PredSet comp : node.components) {
          const MemoEntry* ce = child(comp);
          if (ce == nullptr) {
            // Only reachable when the plan was truncated by the deadline;
            // the component contributes its independence fallback.
            const MemoEntry degraded =
                DegradedEntry(comp, FallbackReason::kBudgetExhausted);
            const MemoEntry& stored = memo_.Insert(comp, degraded);
            sel *= stored.selectivity;
            err = ErrorFunction::Merge(err, stored.error);
            continue;
          }
          sel *= ce->selectivity;
          err = ErrorFunction::Merge(err, ce->error);
        }
        entry.selectivity = SanitizeSelectivity(sel);
        entry.error = err;
      } else {
        entry = SolveNonSeparable(s, node.candidates, child);
      }
    }
    memo_.Insert(s, std::move(entry));
  };

  // Level boundaries: [begin, end) runs of equal subset size.
  std::vector<std::pair<size_t, size_t>> levels;
  size_t max_width = 0;
  for (size_t begin = 0; begin < planned.size();) {
    size_t end = begin + 1;
    const int size = SetSize(planned[begin]);
    while (end < planned.size() && SetSize(planned[end]) == size) ++end;
    levels.emplace_back(begin, end);
    max_width = std::max(max_width, end - begin);
    begin = end;
  }

  const size_t workers =
      std::min<size_t>(static_cast<size_t>(threads), max_width);
  // Small plans (memo-served re-requests, narrow sub-plans) are not worth
  // a pool: thread startup would dwarf the scoring work.
  constexpr size_t kMinParallelNodes = 24;
  if (workers <= 1 || planned.size() < kMinParallelNodes) {
    for (PredSet s : planned) solve(s, plan.at(s));
  } else {
    // One pool for the whole lattice; a barrier per level. All workers
    // walk the same level sequence, each taking a deterministic stride
    // slice, so the only synchronization is the level boundary itself.
    std::barrier level_barrier(static_cast<std::ptrdiff_t>(workers));
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (const auto& [begin, end] : levels) {
          for (size_t i = begin + w; i < end; i += workers) {
            solve(planned[i], plan.at(planned[i]));
          }
          level_barrier.arrive_and_wait();
        }
      });
    }
  }  // jthreads join here: the lattice is fully solved

  // Pass 3: mirror the new entries into the recorder in the same
  // deterministic order, off the worker threads (the DAG is not
  // synchronized, and post-hoc recording keeps node order reproducible
  // across thread counts).
  if (recorder_ != nullptr) {
    std::unordered_set<PredSet> seen;
    for (PredSet s : planned) {
      if (!seen.insert(s).second) continue;
      const MemoEntry* e = memo_.Find(s);
      CONDSEL_CHECK(e != nullptr);
      RecordEntry(s, *e);
    }
  }

  const MemoEntry* root = memo_.Find(p);
  CONDSEL_CHECK(root != nullptr);
  return *root;
}

std::string GetSelectivity::Explain(PredSet p) const {
  std::string out;
  GsStats snapshot;
  counters_.Add(&snapshot);
  if (snapshot.budget_exhausted) {
    out += "[budget exhausted: " +
           std::to_string(snapshot.degraded_subproblems) +
           " subset(s) degraded to the independence fallback]\n";
  }
  ExplainRec(p, 0, &out);
  return out;
}

void GetSelectivity::ExplainRec(PredSet p, int indent,
                                std::string* out) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const MemoEntry* it = memo_.Find(p);
  if (it == nullptr) {
    *out += pad + "(not computed)\n";
    return;
  }
  const MemoEntry& e = *it;
  char buf[128];
  switch (e.kind) {
    case MemoEntryKind::kEmpty:
      *out += pad + "Sel() = 1\n";
      break;
    case MemoEntryKind::kSeparable:
      std::snprintf(buf, sizeof(buf),
                    "separable: sel=%.6g err=%.4g, %zu components\n",
                    e.selectivity, e.error, e.components.size());
      *out += pad + buf;
      for (PredSet comp : e.components) ExplainRec(comp, indent + 1, out);
      break;
    case MemoEntryKind::kDegraded:
      std::snprintf(buf, sizeof(buf),
                    "degraded: sel=%.6g via independence fallback over %d "
                    "predicate(s)\n",
                    e.selectivity, SetSize(p));
      *out += pad + buf;
      // Name the statistic (or the reason none exists) behind each atom.
      for (int i : SetElements(p)) {
        const DerivationAtom* atom = memo_.FindAtom(i);
        if (atom == nullptr) continue;
        const FactorProvenance& prov = atom->sit.provenance;
        if (atom->has_stat) {
          std::snprintf(buf, sizeof(buf), "  p%d: sel=%.6g from %s ", i,
                        atom->selectivity, prov.histogram_kind.c_str());
          *out += pad + buf + prov.source;
          std::snprintf(buf, sizeof(buf), " (%d bucket(s))\n",
                        prov.buckets_touched);
          *out += buf;
        } else {
          *out +=
              pad + "  p" + std::to_string(i) + ": default 1";
          if (!prov.fallback.empty()) *out += " (" + prov.fallback + ")";
          *out += "\n";
        }
      }
      break;
    case MemoEntryKind::kAtomic: {
      std::snprintf(buf, sizeof(buf), "sel=%.6g err=%.4g, factor ",
                    e.selectivity, e.error);
      *out += pad + buf;
      *out += FactorToString(*query_,
                             Factor{e.best_p_prime, p & ~e.best_p_prime});
      *out += " via {";
      for (size_t i = 0; i < e.choice.sits.size(); ++i) {
        if (i > 0) *out += ", ";
        char sbuf[64];
        std::snprintf(sbuf, sizeof(sbuf), "sit#%d(diff=%.3f)",
                      e.choice.sits[i].sit->id, e.choice.sits[i].sit->diff);
        *out += sbuf;
      }
      *out += "}\n";
      // Provenance of the chosen statistics, from the provider's memoized
      // decision (no re-estimation).
      const std::vector<FactorProvenance> provenance =
          provider_->Describe(*query_, e.best_p_prime, e.choice);
      for (const FactorProvenance& prov : provenance) {
        if (!prov.recorded) continue;
        *out += pad + "  stat: " + prov.histogram_kind + " " + prov.source;
        std::snprintf(buf, sizeof(buf), " (%d bucket(s))\n",
                      prov.buckets_touched);
        *out += buf;
      }
      ExplainRec(p & ~e.best_p_prime, indent + 1, out);
      break;
    }
  }
}

}  // namespace condsel
