#include "condsel/selectivity/get_selectivity.h"

#include <chrono>

#include "condsel/catalog/catalog.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/selectivity/sel_expr.h"
#include "condsel/selectivity/separability.h"

namespace condsel {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

GetSelectivity::GetSelectivity(const Query* query,
                               FactorApproximator* approximator,
                               const EstimationBudget* budget)
    : query_(query), approximator_(approximator), budget_(budget) {
  CONDSEL_CHECK(query != nullptr);
  CONDSEL_CHECK(approximator != nullptr);
}

SelEstimate GetSelectivity::Compute(PredSet p) {
  // Arm the per-call deadline (count caps are cumulative and need no
  // per-call state).
  deadline_armed_ = budget_ != nullptr && budget_->deadline_seconds > 0.0;
  if (deadline_armed_) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       budget_->deadline_seconds));
  }
  const Entry& e = ComputeEntry(p);
  return SelEstimate{e.selectivity, e.error};
}

bool GetSelectivity::BudgetExhausted() const {
  if (budget_ == nullptr) return false;
  const EstimationBudget& b = *budget_;
  if (b.max_subproblems > 0 && stats_.subproblems >= b.max_subproblems) {
    return true;
  }
  if (b.max_atomic_decompositions > 0 &&
      stats_.atomic_considered >= b.max_atomic_decompositions) {
    return true;
  }
  if (deadline_armed_) {
    const FaultInjector& fi = FaultInjector::Instance();
    if (fi.armed() && fi.enabled(Fault::kExpireDeadline)) return true;
    if (Clock::now() >= deadline_) return true;
  }
  return false;
}

const DerivationAtom& GetSelectivity::SinglePredicateFallback(int i) {
  auto it = fallback_memo_.find(i);
  if (it != fallback_memo_.end()) return it->second;
  // Conditioning on the empty set restricts the matcher to base histograms
  // (expr ⊆ ∅): exactly the traditional noSit estimate for this predicate.
  FactorChoice choice = approximator_->Score(*query_, 1u << i, /*cond=*/0);
  DerivationAtom atom;
  atom.pred = i;
  if (choice.feasible) {
    atom.selectivity = SanitizeSelectivity(
        approximator_->Estimate(*query_, 1u << i, choice));
    atom.has_stat = true;
    const SitCandidate& cand = choice.sits.front();
    atom.sit.sit_id = cand.sit->id;
    atom.sit.is_base = cand.sit->is_base();
    atom.sit.hypothesis = cand.expr_mask;
    atom.sit.conditioning = 0;
  } else {
    // No base histogram either: contribute no information rather than
    // abort. 1.0 never understates a cardinality, the safe direction for
    // an optimizer that must still produce a plan.
    ++stats_.default_fallbacks;
  }
  return fallback_memo_.emplace(i, atom).first->second;
}

GetSelectivity::Entry GetSelectivity::MakeDegradedEntry(
    PredSet p, FallbackReason reason) {
  Entry entry;
  entry.kind = Kind::kDegraded;
  entry.error = kInfiniteError;  // never preferred over a scored candidate
  double sel = 1.0;
  for (int i : SetElements(p)) sel *= SinglePredicateFallback(i).selectivity;
  entry.selectivity = SanitizeSelectivity(sel);
  ++stats_.degraded_subproblems;
  RecordEntry(p, entry, /*factor_sel=*/1.0, reason);
  return entry;
}

void GetSelectivity::RecordEntry(PredSet p, const Entry& entry,
                                 double factor_sel, FallbackReason reason) {
  if (recorder_ == nullptr) return;
  DerivationNode& node = recorder_->AddNode(p);
  node.selectivity = entry.selectivity;
  node.error = entry.error;
  const FaultInjector& fi = FaultInjector::Instance();
  switch (entry.kind) {
    case Kind::kEmpty:
      node.kind = DerivKind::kEmptySet;
      break;
    case Kind::kSeparable:
      node.kind = DerivKind::kSeparableSplit;
      node.tails = entry.components;
      node.standard_split = true;
      break;
    case Kind::kAtomic: {
      node.kind = DerivKind::kConditionalFactor;
      node.head = entry.best_p_prime;
      node.head_selectivity = factor_sel;
      // Mutation hook (tests/derivation_audit_test.cc): a corrupted
      // recording must be *caught* by the auditor, proving the checker
      // can fail — the estimate itself is left untouched.
      if (fi.armed() && fi.enabled(Fault::kCorruptDerivationFactor)) {
        node.head_selectivity = 1.5;
      }
      const PredSet cond = p & ~entry.best_p_prime;
      node.tails.push_back(cond);
      for (const SitCandidate& cand : entry.choice.sits) {
        SitApplication app;
        app.sit_id = cand.sit->id;
        app.is_base = cand.sit->is_base();
        app.hypothesis = cand.expr_mask;
        app.conditioning = cond;
        if (fi.armed() && fi.enabled(Fault::kCorruptHypothesisSet)) {
          // Claim the statistic also accounts for the head predicates —
          // a hypothesis set outside the conditioning set.
          app.hypothesis |= entry.best_p_prime;
        }
        node.sits.push_back(app);
      }
      break;
    }
    case Kind::kDegraded:
      node.kind = DerivKind::kPredicateProduct;
      node.fallback = reason;
      for (int i : SetElements(p)) {
        node.atoms.push_back(SinglePredicateFallback(i));
      }
      break;
  }
}

const GetSelectivity::Entry& GetSelectivity::ComputeEntry(PredSet p) {
  auto it = memo_.find(p);
  if (it != memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }

  Entry entry;
  if (p == 0) {
    entry.kind = Kind::kEmpty;
    entry.selectivity = 1.0;
    entry.error = 0.0;
    RecordEntry(p, entry, /*factor_sel=*/1.0, FallbackReason::kNone);
    return memo_.emplace(p, std::move(entry)).first->second;
  }

  // Budget gate: once any knob runs out, every *new* subset is answered by
  // the independence fallback instead of growing the search. Memoized
  // entries keep serving their (more accurate) results. Degraded entries
  // count in degraded_subproblems, not subproblems, so the cap bounds the
  // entries the search actually works on.
  if (BudgetExhausted()) {
    stats_.budget_exhausted = true;
    return memo_
        .emplace(p, MakeDegradedEntry(p, FallbackReason::kBudgetExhausted))
        .first->second;
  }
  ++stats_.subproblems;

  const auto t0 = Clock::now();
  const std::vector<PredSet> components = StandardDecomposition(*query_, p);
  if (components.size() > 1) {
    // Lines 3-7: separable — solve the standard decomposition's factors
    // independently; Property 2 makes the product exact.
    entry.kind = Kind::kSeparable;
    entry.components = components;
    stats_.analysis_seconds += Seconds(t0, Clock::now());
    double sel = 1.0;
    double err = 0.0;
    for (PredSet comp : components) {
      const Entry& ce = ComputeEntry(comp);
      sel *= ce.selectivity;
      err = ErrorFunction::Merge(err, ce.error);
    }
    entry.selectivity = SanitizeSelectivity(sel);
    entry.error = err;
    RecordEntry(p, entry, /*factor_sel=*/1.0, FallbackReason::kNone);
    return memo_.emplace(p, std::move(entry)).first->second;
  }
  stats_.analysis_seconds += Seconds(t0, Clock::now());

  // Lines 9-17: non-separable — try every atomic decomposition
  // Sel(P'|Q) * Sel(Q) whose factor some SIT could approximate. With
  // unidimensional SITs the approximable P' are single predicates and
  // one-join-plus-filters-on-its-columns combinations; all other P' have
  // error infinity (line 12's "no SITs available") and exploring them
  // would never win, so they are skipped outright.
  // Filters are enumerated before joins: nInd scores many decompositions
  // equally (the paper's Section 3.5 motivation), and on ties the
  // first-seen candidate wins. A filter in the head factor is conditioned
  // on the joins, where filter-attribute SITs actually capture the
  // dependence; a join head would be estimated from base histograms,
  // silently assuming independence from every filter.
  std::vector<PredSet> factor_candidates;
  for (int i : SetElements(p)) {
    if (query_->predicate(i).is_filter()) {
      factor_candidates.push_back(1u << i);
    }
  }
  // Filter pairs (approximable by multidimensional SITs).
  {
    const std::vector<int> fs = SetElements(p & query_->filter_predicates());
    for (size_t a = 0; a < fs.size(); ++a) {
      for (size_t b = a + 1; b < fs.size(); ++b) {
        factor_candidates.push_back((1u << fs[a]) | (1u << fs[b]));
      }
    }
  }
  for (int i : SetElements(p)) {
    if (query_->predicate(i).is_join()) factor_candidates.push_back(1u << i);
  }
  for (int j : SetElements(p)) {
    if (!query_->predicate(j).is_join()) continue;
    const Predicate& join = query_->predicate(j);
    // Filters of P over the join's columns.
    std::vector<int> attached;
    for (int f : SetElements(p)) {
      if (f == j || !query_->predicate(f).is_filter()) continue;
      const ColumnRef c = query_->predicate(f).column();
      if (c == join.left() || c == join.right()) attached.push_back(f);
    }
    const int nf = static_cast<int>(attached.size());
    for (uint32_t m = 1; m < (1u << nf); ++m) {
      PredSet combo = 1u << j;
      for (int b = 0; b < nf; ++b) {
        if (Contains(m, b)) {
          combo = With(combo, attached[static_cast<size_t>(b)]);
        }
      }
      factor_candidates.push_back(combo);
    }
  }

  entry.kind = Kind::kAtomic;
  double best_error = kInfiniteError;
  PredSet best_p_prime = 0;
  FactorChoice best_choice;

  for (PredSet p_prime : factor_candidates) {
    // Stop scoring further candidates once the budget runs out mid-loop;
    // whatever has been found so far (possibly nothing) decides below.
    if (BudgetExhausted()) {
      stats_.budget_exhausted = true;
      break;
    }
    const PredSet q = p & ~p_prime;
    // Line 11: recurse before scoring so the merged error is available.
    const Entry& qe = ComputeEntry(q);
    // The recursion may have spent the budget; re-check before charging
    // another decomposition so the cap stays tight at every level.
    if (BudgetExhausted()) {
      stats_.budget_exhausted = true;
      break;
    }
    const auto t1 = Clock::now();
    ++stats_.atomic_considered;
    FactorChoice choice = approximator_->Score(*query_, p_prime, q);
    stats_.analysis_seconds += Seconds(t1, Clock::now());
    if (!choice.feasible) continue;
    const double merged = ErrorFunction::Merge(choice.error, qe.error);
    if (merged < best_error) {
      best_error = merged;
      best_p_prime = p_prime;
      best_choice = std::move(choice);
    }
  }

  if (best_p_prime == 0) {
    // No feasible decomposition — a pool without base histograms for some
    // referenced column (the Try* API reports this up front), or a budget
    // that expired before the first candidate. Degrade instead of
    // aborting: the estimate must still be produced. The entry was already
    // charged to subproblems above, which is why the recorded reason is
    // "no feasible decomposition" even when the budget expired mid-loop —
    // the search did run on this entry.
    return memo_
        .emplace(p, MakeDegradedEntry(
                        p, FallbackReason::kNoFeasibleDecomposition))
        .first->second;
  }

  // Lines 16-17: estimate the winning factor with its chosen SITs
  // (histogram manipulation) and combine with the tail's estimate.
  const auto t2 = Clock::now();
  const double factor_sel = SanitizeSelectivity(
      approximator_->Estimate(*query_, best_p_prime, best_choice));
  stats_.histogram_seconds += Seconds(t2, Clock::now());
  const Entry& tail = ComputeEntry(p & ~best_p_prime);

  entry.best_p_prime = best_p_prime;
  entry.choice = std::move(best_choice);
  entry.error = best_error;
  entry.selectivity = SanitizeSelectivity(factor_sel * tail.selectivity);
  RecordEntry(p, entry, factor_sel, FallbackReason::kNone);
  return memo_.emplace(p, std::move(entry)).first->second;
}

std::string GetSelectivity::Explain(PredSet p) const {
  std::string out;
  if (stats_.budget_exhausted) {
    out += "[budget exhausted: " +
           std::to_string(stats_.degraded_subproblems) +
           " subset(s) degraded to the independence fallback]\n";
  }
  ExplainRec(p, 0, &out);
  return out;
}

void GetSelectivity::ExplainRec(PredSet p, int indent,
                                std::string* out) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  auto it = memo_.find(p);
  if (it == memo_.end()) {
    *out += pad + "(not computed)\n";
    return;
  }
  const Entry& e = it->second;
  char buf[128];
  switch (e.kind) {
    case Kind::kEmpty:
      *out += pad + "Sel() = 1\n";
      break;
    case Kind::kSeparable:
      std::snprintf(buf, sizeof(buf),
                    "separable: sel=%.6g err=%.4g, %zu components\n",
                    e.selectivity, e.error, e.components.size());
      *out += pad + buf;
      for (PredSet comp : e.components) ExplainRec(comp, indent + 1, out);
      break;
    case Kind::kDegraded:
      std::snprintf(buf, sizeof(buf),
                    "degraded: sel=%.6g via independence fallback over %d "
                    "predicate(s)\n",
                    e.selectivity, SetSize(p));
      *out += pad + buf;
      break;
    case Kind::kAtomic: {
      std::snprintf(buf, sizeof(buf), "sel=%.6g err=%.4g, factor ",
                    e.selectivity, e.error);
      *out += pad + buf;
      *out += FactorToString(*query_,
                             Factor{e.best_p_prime, p & ~e.best_p_prime});
      *out += " via {";
      for (size_t i = 0; i < e.choice.sits.size(); ++i) {
        if (i > 0) *out += ", ";
        char sbuf[64];
        std::snprintf(sbuf, sizeof(sbuf), "sit#%d(diff=%.3f)",
                      e.choice.sits[i].sit->id, e.choice.sits[i].sit->diff);
        *out += sbuf;
      }
      *out += "}\n";
      ExplainRec(p & ~e.best_p_prime, indent + 1, out);
      break;
    }
  }
}

}  // namespace condsel
