#include "condsel/selectivity/get_selectivity.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "condsel/catalog/catalog.h"
#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/selectivity/decomposer.h"
#include "condsel/selectivity/sel_expr.h"
#include "condsel/selectivity/separability.h"

namespace condsel {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

GetSelectivity::GetSelectivity(const Query* query,
                               AtomicSelectivityProvider* provider,
                               const EstimationBudget* budget,
                               ShapeCache::Entry* shape)
    : query_(query), provider_(provider), budget_(budget), shape_(shape) {
  CONDSEL_CHECK(query != nullptr);
  CONDSEL_CHECK(provider != nullptr);
}

GetSelectivity::~GetSelectivity() = default;

CONDSEL_HOT SelEstimate GetSelectivity::Compute(PredSet p) {
  // Arm the per-call deadline for the duration of this call (the count
  // caps are cumulative and need no per-call state). The clock is passed
  // down explicitly — Score's and AtomicFactorCandidates' deadline
  // arguments — never parked in the shared provider, so concurrent
  // estimators on one provider cannot clobber each other's deadline. RAII
  // disarms on every exit path: an exception escaping a driver (an
  // embedder hook, an injected fault) must not leave a stale clock armed
  // for the next call.
  const ScopedDeadline scoped(
      &deadline_, budget_ != nullptr ? budget_->deadline_seconds : 0.0);
  // Bind the memo to the statistics generation behind the provider: if a
  // delta refresh swapped the pool between Compute() calls, the cached
  // subsets describe the old statistics and are dropped here.
  memo_.BindGeneration(provider_->pool_generation());
  // Rewind the scratch arena (its blocks are retained): everything the
  // previous call carved out — candidate lists, the parallel plan's
  // per-subset storage — is dead by contract, because no arena pointer
  // escapes a Compute() call.
  arena_.Reset();
  const int threads = budget_ != nullptr ? budget_->threads : 1;
  const MemoEntry& e =
      threads > 1 ? ComputeParallel(p, threads) : ComputeEntry(p);
  return SelEstimate{e.selectivity, e.error};
}

const GsStats& GetSelectivity::stats() const {
  counters_.Add(&stats_);
  stats_.level_stats = level_stats_;
  return stats_;
}

CONDSEL_HOT const DerivationAtom& GetSelectivity::SinglePredicateFallback(
    int i) {
  if (const DerivationAtom* hit = memo_.FindAtom(i)) return *hit;
  DerivationAtom atom = provider_->BaseAtom(*query_, i, /*describe=*/true);
  bool inserted = false;
  const DerivationAtom& stored =
      memo_.InsertAtom(i, std::move(atom), &inserted);
  // 1.0 never understates a cardinality, the safe direction for an
  // optimizer that must still produce a plan. Counted once per predicate
  // (the insert can lose a concurrent race in the parallel driver).
  if (inserted && !stored.has_stat) {
    counters_.default_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  return stored;
}

CONDSEL_HOT void GetSelectivity::EnumerateCandidates(
    PredSet p, ArenaVector<PredSet>* out) {
  if (shape_ != nullptr && shape_->CopyCandidates(p, out)) {
    counters_.shape_cache_hits.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool truncated = false;
  AtomicFactorCandidatesInto(*query_, p, &deadline_, &truncated, out);
  if (shape_ != nullptr) {
    counters_.shape_cache_misses.fetch_add(1, std::memory_order_relaxed);
    // A truncated list is an artifact of this call's deadline, not of the
    // statement's shape — caching it would leak one call's degradation
    // into every later structurally identical statement.
    if (!truncated) shape_->StoreCandidates(p, *out);
  }
}

CONDSEL_HOT MemoEntry GetSelectivity::DegradedEntry(PredSet p,
                                                    FallbackReason reason) {
  MemoEntry entry;
  entry.kind = MemoEntryKind::kDegraded;
  entry.fallback = reason;
  entry.error = kInfiniteError;  // never preferred over a scored candidate
  double sel = 1.0;
  for (int i : SetElements(p)) sel *= SinglePredicateFallback(i).selectivity;
  entry.selectivity = SanitizeSelectivity(sel);
  counters_.degraded_subproblems.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void GetSelectivity::RecordEntry(PredSet p, const MemoEntry& entry) {
  if (recorder_ == nullptr) return;
  DerivationNode& node = recorder_->AddNode(p);
  // Recording mirrors the memo entry verbatim: its selectivity was
  // sanitized when the entry was built, and re-wrapping here would
  // mask an upstream sanitize regression from the audit.
  // condsel-flow: allow(sanitize-flow)
  node.selectivity = entry.selectivity;
  node.error = entry.error;
  const FaultInjector& fi = FaultInjector::Instance();
  switch (entry.kind) {
    case MemoEntryKind::kEmpty:
      node.kind = DerivKind::kEmptySet;
      break;
    case MemoEntryKind::kSeparable:
      node.kind = DerivKind::kSeparableSplit;
      node.tails.assign(entry.components.begin(), entry.components.end());
      node.standard_split = true;
      break;
    case MemoEntryKind::kAtomic: {
      node.kind = DerivKind::kConditionalFactor;
      node.head = entry.best_p_prime;
      node.head_selectivity = entry.factor_selectivity;
      // Mutation hook (tests/derivation_audit_test.cc): a corrupted
      // recording must be *caught* by the auditor, proving the checker
      // can fail — the estimate itself is left untouched.
      if (fi.armed() && fi.enabled(Fault::kCorruptDerivationFactor)) {
        node.head_selectivity = 1.5;
      }
      const PredSet cond = p & ~entry.best_p_prime;
      node.tails.push_back(cond);
      const std::vector<FactorProvenance> provenance =
          provider_->Describe(*query_, entry.best_p_prime, entry.choice);
      for (size_t i = 0; i < entry.choice.sits.size(); ++i) {
        const SitCandidate& cand = entry.choice.sits[i];
        SitApplication app;
        app.sit_id = cand.sit->id;
        app.is_base = cand.sit->is_base();
        app.hypothesis = cand.expr_mask;
        app.conditioning = cond;
        if (fi.armed() && fi.enabled(Fault::kCorruptHypothesisSet)) {
          // Claim the statistic also accounts for the head predicates —
          // a hypothesis set outside the conditioning set.
          app.hypothesis |= entry.best_p_prime;
        }
        if (i < provenance.size()) app.provenance = provenance[i];
        node.sits.push_back(std::move(app));
      }
      break;
    }
    case MemoEntryKind::kDegraded:
      node.kind = DerivKind::kPredicateProduct;
      node.fallback = entry.fallback;
      for (int i : SetElements(p)) {
        node.atoms.push_back(SinglePredicateFallback(i));
      }
      break;
  }
}

template <typename ChildFn>
CONDSEL_HOT MemoEntry GetSelectivity::SolveNonSeparable(
    PredSet p, const ArenaVector<PredSet>& candidates, ChildFn&& child,
    ScoreScratch* scratch) {
  // Lines 9-17: non-separable — try every atomic decomposition
  // Sel(P'|Q) * Sel(Q) whose factor some SIT could approximate
  // (decomposer.h explains the candidate order, which first-seen-wins
  // tie-breaking makes load-bearing).
  MemoEntry entry;
  entry.kind = MemoEntryKind::kAtomic;
  double best_error = kInfiniteError;
  PredSet best_p_prime = 0;
  FactorChoice best_choice;

  // Candidate-loop bookkeeping accumulates locally and flushes once:
  // per-candidate fetch_add on the shared double counters is a CAS loop
  // the parallel driver's workers would serialize on.
  uint64_t considered = 0;
  double analysis_acc = 0.0;

  for (PredSet p_prime : candidates) {
    // Stop scoring further candidates once the budget runs out mid-loop;
    // whatever has been found so far (possibly nothing) decides below.
    if (BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      break;
    }
    const PredSet q = p & ~p_prime;
    // Line 11: solve the tail before scoring so the merged error is
    // available. The sequential driver recurses here; the parallel driver
    // reads the previous levels' memo entries (nullptr — possible only
    // when the budget truncated the plan — skips the candidate, another
    // flavor of the same degradation).
    const MemoEntry* qe = child(q);
    if (qe == nullptr) continue;
    // The recursion may have spent the budget; re-check before charging
    // another decomposition so the cap stays tight at every level.
    if (BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      break;
    }
    const auto t1 = Clock::now();
    ++considered;
    FactorChoice choice =
        provider_->Score(*query_, p_prime, q, &deadline_, scratch);
    analysis_acc += Seconds(t1, Clock::now());
    if (!choice.feasible) continue;
    const double merged = ErrorFunction::Merge(choice.error, qe->error);
    if (merged < best_error) {
      best_error = merged;
      best_p_prime = p_prime;
      best_choice = std::move(choice);
    }
  }

  counters_.atomic_considered.fetch_add(considered, std::memory_order_relaxed);
  counters_.analysis_seconds.fetch_add(analysis_acc,
                                       std::memory_order_relaxed);

  if (best_p_prime == 0) {
    // No feasible decomposition — a pool without base histograms for some
    // referenced column (the Try* API reports this up front), or a budget
    // that expired before the first candidate. Degrade instead of
    // aborting: the estimate must still be produced. The entry was already
    // charged to subproblems, which is why the recorded reason is
    // "no feasible decomposition" even when the budget expired mid-loop —
    // the search did run on this entry.
    return DegradedEntry(p, FallbackReason::kNoFeasibleDecomposition);
  }

  // Lines 16-17: estimate the winning factor with its chosen SITs
  // (histogram manipulation) and combine with the tail's estimate.
  const auto t2 = Clock::now();
  const double factor_sel = SanitizeSelectivity(
      provider_->Estimate(*query_, best_p_prime, best_choice));
  counters_.histogram_seconds.fetch_add(Seconds(t2, Clock::now()),
                                        std::memory_order_relaxed);
  const MemoEntry* tail = child(p & ~best_p_prime);
  CONDSEL_CHECK(tail != nullptr);  // it was solved when the winner scored

  entry.best_p_prime = best_p_prime;
  entry.choice = std::move(best_choice);
  entry.factor_selectivity = factor_sel;
  entry.error = best_error;
  entry.selectivity = SanitizeSelectivity(factor_sel * tail->selectivity);
  return entry;
}

CONDSEL_HOT const MemoEntry& GetSelectivity::ComputeEntry(PredSet p) {
  if (const MemoEntry* hit = memo_.Find(p)) {
    counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  if (p == 0) {
    MemoEntry entry;
    entry.kind = MemoEntryKind::kEmpty;
    entry.selectivity = 1.0;
    entry.error = 0.0;
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }

  // Budget gate: once any knob runs out, every *new* subset is answered by
  // the independence fallback instead of growing the search. Memoized
  // entries keep serving their (more accurate) results. Degraded entries
  // count in degraded_subproblems, not subproblems, so the cap bounds the
  // entries the search actually works on.
  if (BudgetExhausted(budget_, counters_, deadline_)) {
    counters_.budget_exhausted.store(true, std::memory_order_relaxed);
    MemoEntry entry = DegradedEntry(p, FallbackReason::kBudgetExhausted);
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }
  counters_.subproblems.fetch_add(1, std::memory_order_relaxed);

  const auto t0 = Clock::now();
  const ComponentList components = StandardDecompositionFast(*query_, p);
  if (components.size() > 1) {
    // Lines 3-7: separable — solve the standard decomposition's factors
    // independently; Property 2 makes the product exact.
    MemoEntry entry;
    entry.kind = MemoEntryKind::kSeparable;
    entry.components = components;
    counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                         std::memory_order_relaxed);
    double sel = 1.0;
    double err = 0.0;
    for (PredSet comp : components) {
      const MemoEntry& ce = ComputeEntry(comp);
      sel *= ce.selectivity;
      err = ErrorFunction::Merge(err, ce.error);
    }
    entry.selectivity = SanitizeSelectivity(sel);
    entry.error = err;
    RecordEntry(p, entry);
    return memo_.Insert(p, std::move(entry));
  }
  counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                       std::memory_order_relaxed);

  // Candidates live in the per-Compute arena: the list is consumed within
  // this frame (SolveNonSeparable iterates it; the recursion below builds
  // its own lists further down the same arena) and dies at the next
  // Compute()'s Reset.
  ArenaVector<PredSet> candidates(&arena_);
  EnumerateCandidates(p, &candidates);
  MemoEntry entry = SolveNonSeparable(
      p, candidates,
      [this](PredSet q) -> const MemoEntry* { return &ComputeEntry(q); },
      &scratch_);
  RecordEntry(p, entry);
  return memo_.Insert(p, std::move(entry));
}

CONDSEL_HOT const MemoEntry& GetSelectivity::ComputeParallel(PredSet p,
                                                             int threads) {
  // Memo-served re-request: answered (and counted) exactly like the
  // sequential driver's top-of-recursion hit, so GsStats agree across
  // drivers on repeated Compute() calls.
  if (const MemoEntry* hit = memo_.Find(p)) {
    counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  // Pass 1 (sequential): discover the reachable sub-lattice and cache the
  // per-subset analysis (standard decomposition / candidate enumeration),
  // so workers only score and estimate. The closure pushed here — every
  // separable component and every candidate tail Q = P∖P' — is exactly
  // the set the sequential recursion visits, which is what makes the two
  // drivers agree on budget-free runs.
  struct PlanNode {
    explicit PlanNode(Arena* arena) : candidates(arena) {}
    bool separable = false;
    bool degrade = false;  // the deadline expired while planning
    ComponentList components;          // separable
    ArenaVector<PredSet> candidates;   // non-separable, per-Compute arena
  };
  std::unordered_map<PredSet, PlanNode> plan;
  std::vector<PredSet> planned;  // insertion order, deduplicated
  std::vector<PredSet> stack{p};
  const auto t0 = Clock::now();
  while (!stack.empty()) {
    const PredSet s = stack.back();
    stack.pop_back();
    if (plan.count(s) != 0 || memo_.Find(s) != nullptr) continue;
    PlanNode node(&arena_);
    if (s != 0) {
      if (deadline_.Expired()) {
        // Plan no further: this subset (and everything only reachable
        // through it) degrades to the independence fallback.
        node.degrade = true;
      } else {
        const ComponentList components =
            StandardDecompositionFast(*query_, s);
        if (components.size() > 1) {
          node.separable = true;
          node.components = components;
          for (PredSet comp : components) stack.push_back(comp);
        } else {
          EnumerateCandidates(s, &node.candidates);
          for (PredSet p_prime : node.candidates) {
            stack.push_back(s & ~p_prime);
          }
        }
      }
    }
    plan.emplace(s, std::move(node));
    planned.push_back(s);
  }
  counters_.analysis_seconds.fetch_add(Seconds(t0, Clock::now()),
                                       std::memory_order_relaxed);

  // Pass 2: solve one size-level at a time — every entry depends only on
  // strict subsets, so all subsets of equal size form an antichain that
  // can run concurrently. Within a level the deterministic (size, value)
  // order fixes which worker gets which subset; results are order-free
  // anyway because entries never read their own level.
  std::sort(planned.begin(), planned.end(), [](PredSet a, PredSet b) {
    const int sa = SetSize(a), sb = SetSize(b);
    return sa != sb ? sa < sb : a < b;
  });

  // Memo-hit parity with the sequential driver: there, each *reference*
  // to a subset either recurses (first time, counted in subproblems) or
  // hits the memo. Here every reference finds a solved entry — level
  // order guarantees it — so counting finds directly would overcount by
  // the first reference of every newly computed subset. Count references
  // locally and settle the difference after the solve phase:
  //   hits = references + 1 (the top-level request) − newly computed.
  std::atomic<uint64_t> references{0};
  auto child = [this, &references](PredSet q) -> const MemoEntry* {
    const MemoEntry* e = memo_.Find(q);
    if (e != nullptr) {
      references.fetch_add(1, std::memory_order_relaxed);
    }
    return e;
  };

  auto solve = [&](PredSet s, const PlanNode& node, ScoreScratch* scratch) {
    MemoEntry entry;
    if (s == 0) {
      entry.kind = MemoEntryKind::kEmpty;
    } else if (node.degrade ||
               BudgetExhausted(budget_, counters_, deadline_)) {
      counters_.budget_exhausted.store(true, std::memory_order_relaxed);
      entry = DegradedEntry(s, FallbackReason::kBudgetExhausted);
    } else {
      counters_.subproblems.fetch_add(1, std::memory_order_relaxed);
      if (node.separable) {
        entry.kind = MemoEntryKind::kSeparable;
        entry.components = node.components;
        double sel = 1.0;
        double err = 0.0;
        // Bounded by the plan width (<= 32 components); a missing child
        // only happens on a deadline-truncated plan, and the per-component
        // fallback below IS the degradation path -- it must run to
        // completion after expiry so the caller still gets an estimate.
        // condsel-flow: allow(deadline-flow)
        for (PredSet comp : node.components) {
          const MemoEntry* ce = child(comp);
          if (ce == nullptr) {
            // Only reachable when the plan was truncated by the deadline;
            // the component contributes its independence fallback.
            const MemoEntry degraded =
                DegradedEntry(comp, FallbackReason::kBudgetExhausted);
            const MemoEntry& stored = memo_.Insert(comp, degraded);
            sel *= stored.selectivity;
            err = ErrorFunction::Merge(err, stored.error);
            continue;
          }
          sel *= ce->selectivity;
          err = ErrorFunction::Merge(err, ce->error);
        }
        entry.selectivity = SanitizeSelectivity(sel);
        entry.error = err;
      } else {
        entry = SolveNonSeparable(s, node.candidates, child, scratch);
      }
    }
    memo_.Insert(s, std::move(entry));
  };

  // Level boundaries: [begin, end) runs of equal subset size.
  std::vector<std::pair<size_t, size_t>> levels;
  size_t max_width = 0;
  for (size_t begin = 0; begin < planned.size();) {
    size_t end = begin + 1;
    const int size = SetSize(planned[begin]);
    while (end < planned.size() && SetSize(planned[end]) == size) ++end;
    levels.emplace_back(begin, end);
    max_width = std::max(max_width, end - begin);
    begin = end;
  }

  const size_t workers =
      std::min<size_t>(static_cast<size_t>(threads), max_width);
  // Small plans (narrow sub-plans, mostly-memoized lattices) are not worth
  // a pool: thread startup would dwarf the scoring work.
  constexpr size_t kMinParallelNodes = 24;
  if (workers <= 1 || planned.size() < kMinParallelNodes) {
    for (PredSet s : planned) solve(s, plan.at(s), &scratch_);
  } else {
    // In-level work stealing. Each worker owns a deque of item indices;
    // it publishes its deterministic slice of a level, drains its own
    // deque from the back, and when empty steals half the richest
    // victim's deque from the front. The per-level barrier is replaced by
    // one atomic completion counter per level (`remaining`): a worker may
    // publish its level-l slice only after remaining[l-1] reaches zero,
    // and while it waits at that gate it keeps stealing, so a level whose
    // per-subset costs are wildly unbalanced (one slow statistics lookup,
    // one worker's slice full of wide candidate lists) is finished by
    // whoever is idle instead of stalling the whole pool.
    //
    // Safety invariant: an item is visible in *any* deque only after its
    // owner passed the gate for the item's level, i.e. after every
    // strictly smaller subset was solved and published (the memo insert
    // happens before the release-decrement of `remaining`, and the gate
    // acquires it). A thief may therefore solve whatever it steals
    // immediately — including items a level ahead of its own position —
    // without ever observing an unsolved child. Deques can hold items of
    // mixed levels, so all bookkeeping is keyed by the item's own level
    // (`level_of`), never by the worker's loop position.
    //
    // Determinism: each item is popped and solved exactly once, scoring
    // is a pure function of the planned candidate lists, and the memo is
    // first-wins — so *which* worker solves an item cannot change any
    // estimate, only the steal counters (reported as schedule-dependent).
    const size_t num_levels = levels.size();
    std::vector<size_t> level_of(planned.size());
    auto remaining = std::make_unique<std::atomic<size_t>[]>(num_levels);
    for (size_t l = 0; l < num_levels; ++l) {
      remaining[l].store(levels[l].second - levels[l].first,
                         std::memory_order_relaxed);
      for (size_t i = levels[l].first; i < levels[l].second; ++i) {
        level_of[i] = l;
      }
    }

    struct WorkerDeque {
      // One rank for the whole family; the thief's pair acquisition below
      // disambiguates same-rank instances by address (== index) order.
      OrderedMutex mu{lock_rank::kWorkerDeque, "WorkerDeque::mu"};
      std::vector<size_t> items CONDSEL_GUARDED_BY(mu);  // into `planned`
      std::atomic<size_t> approx{0};  // lock-free size hint for thieves
    };
    auto deques = std::make_unique<WorkerDeque[]>(workers);

    // Worker-local scheduler accounting, aggregated after the join (no
    // contended atomics on the solve path).
    struct WorkerLocal {
      std::vector<uint64_t> solved;  // per level
      std::vector<uint64_t> steals;  // per level of the batch's first item
      std::vector<uint64_t> stolen;  // per level of each stolen item
      ScoreScratch scratch;          // this worker's candidate-list scratch
    };
    std::vector<WorkerLocal> local(workers);
    for (WorkerLocal& wl : local) {
      wl.solved.assign(num_levels, 0);
      wl.steals.assign(num_levels, 0);
      wl.stolen.assign(num_levels, 0);
    }

    // First escaping exception wins; the abort flag releases gate-waiting
    // workers whose level counters will never reach zero.
    std::atomic<bool> abort{false};
    std::exception_ptr first_error;
    OrderedMutex error_mu{lock_rank::kParallelError,
                          "parallel_driver::error_mu"};

    auto solve_item = [&](size_t idx, size_t w) {
      const PredSet s = planned[idx];
      solve(s, plan.at(s), &local[w].scratch);
      ++local[w].solved[level_of[idx]];
      // Release pairs with the gate's acquire: a worker that observes the
      // level complete also observes every entry the level inserted.
      remaining[level_of[idx]].fetch_sub(1, std::memory_order_release);
    };

    auto pop_own = [&](size_t w, size_t* idx) {
      WorkerDeque& d = deques[w];
      const std::lock_guard<OrderedMutex> lock(d.mu);
      if (d.items.empty()) return false;
      *idx = d.items.back();
      d.items.pop_back();
      d.approx.store(d.items.size(), std::memory_order_relaxed);
      return true;
    };

    // Steals up to half of the richest victim's deque (at least one item)
    // from the front — the opposite end from the owner's pops — into the
    // thief's own (empty) deque.
    auto steal_batch = [&](size_t w) {
      size_t victim = w;
      size_t best = 0;
      for (size_t v = 0; v < workers; ++v) {
        if (v == w) continue;
        const size_t n = deques[v].approx.load(std::memory_order_relaxed);
        if (n > best) {
          best = n;
          victim = v;
        }
      }
      if (best == 0) return false;
      // Both deques locked together so a concurrent thief of *this* deque
      // stays consistent. Same rank, so acquisition must follow address
      // order (std::scoped_lock's retry rotation can lock in either
      // order, which the rank checker rightly rejects).
      WorkerDeque& lo = deques[victim < w ? victim : w];
      WorkerDeque& hi = deques[victim < w ? w : victim];
      const std::lock_guard<OrderedMutex> outer(lo.mu);
      const std::lock_guard<OrderedMutex> inner(hi.mu);
      std::vector<size_t>& from = deques[victim].items;
      if (from.empty()) return false;  // raced another thief
      const size_t take = std::max<size_t>(1, from.size() / 2);
      std::vector<size_t>& into = deques[w].items;
      // Preserve order so the thief's back-pop continues level order.
      into.insert(into.end(), from.begin(),
                  from.begin() + static_cast<ptrdiff_t>(take));
      from.erase(from.begin(), from.begin() + static_cast<ptrdiff_t>(take));
      deques[victim].approx.store(from.size(), std::memory_order_relaxed);
      deques[w].approx.store(into.size(), std::memory_order_relaxed);
      ++local[w].steals[level_of[into.front()]];
      for (size_t i : into) ++local[w].stolen[level_of[i]];
      return true;
    };

    // Pop one ready item — own deque first, then a steal — and solve it.
    auto acquire_and_solve_one = [&](size_t w) {
      size_t idx;
      if (pop_own(w, &idx) || (steal_batch(w) && pop_own(w, &idx))) {
        solve_item(idx, w);
        return true;
      }
      return false;
    };

    {
      std::vector<std::jthread> pool;
      pool.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          try {
            for (size_t l = 0; l < num_levels; ++l) {
              // Gate: this level's items may be published only once the
              // previous level is fully solved. Waiting workers keep
              // stealing — that is where imbalance is absorbed.
              while (l > 0 &&
                     remaining[l - 1].load(std::memory_order_acquire) != 0) {
                if (abort.load(std::memory_order_relaxed)) return;
                if (!acquire_and_solve_one(w)) std::this_thread::yield();
              }
              {
                WorkerDeque& d = deques[w];
                const std::lock_guard<OrderedMutex> lock(d.mu);
                for (size_t i = levels[l].first + w; i < levels[l].second;
                     i += workers) {
                  d.items.push_back(i);
                }
                d.approx.store(d.items.size(), std::memory_order_relaxed);
              }
              while (!abort.load(std::memory_order_relaxed) &&
                     acquire_and_solve_one(w)) {
              }
              if (abort.load(std::memory_order_relaxed)) return;
            }
          } catch (...) {
            {
              const std::lock_guard<OrderedMutex> lock(error_mu);
              if (first_error == nullptr) {
                first_error = std::current_exception();
              }
            }
            abort.store(true, std::memory_order_relaxed);
          }
        });
      }
    }  // jthreads join here: the lattice is fully solved (or aborted)

    if (first_error != nullptr) {
      // Rethrow on the driver thread; Compute's ScopedDeadline disarms on
      // the unwind, and the memo keeps whatever was solved (first-wins
      // inserts stay individually consistent).
      std::rethrow_exception(first_error);
    }

    // Aggregate the scheduler's accounting. The per-level entries append
    // across Compute() calls (one batch per parallel run), keeping the
    // derivation auditor's algebra — Σ level.steals == steals, etc. —
    // valid for cumulative stats.
    uint64_t total_steals = 0;
    uint64_t total_stolen = 0;
    for (size_t l = 0; l < num_levels; ++l) {
      GsLevelStats ls;
      ls.level = SetSize(planned[levels[l].first]);
      ls.width = levels[l].second - levels[l].first;
      for (size_t w = 0; w < workers; ++w) {
        ls.steals += local[w].steals[l];
        ls.stolen_subsets += local[w].stolen[l];
        ls.max_solved_by_one_worker =
            std::max(ls.max_solved_by_one_worker, local[w].solved[l]);
      }
      total_steals += ls.steals;
      total_stolen += ls.stolen_subsets;
      level_stats_.push_back(ls);
    }
    counters_.steals.fetch_add(total_steals, std::memory_order_relaxed);
    counters_.stolen_subsets.fetch_add(total_stolen,
                                       std::memory_order_relaxed);
    counters_.parallel_levels.fetch_add(num_levels,
                                        std::memory_order_relaxed);
    if (max_width >
        counters_.max_level_width.load(std::memory_order_relaxed)) {
      counters_.max_level_width.store(max_width, std::memory_order_relaxed);
    }
  }

  // Settle the memo-hit parity (see `references` above). The guard only
  // fires on budget-truncated runs, where degraded inserts outside the
  // plan can exceed the reference count — parity is a budget-free
  // contract.
  const uint64_t refs = references.load(std::memory_order_relaxed);
  if (refs + 1 > planned.size()) {
    counters_.memo_hits.fetch_add(refs + 1 - planned.size(),
                                  std::memory_order_relaxed);
  }

  // Pass 3: mirror the new entries into the recorder in the same
  // deterministic order, off the worker threads (the DAG is not
  // synchronized, and post-hoc recording keeps node order reproducible
  // across thread counts).
  if (recorder_ != nullptr) {
    std::unordered_set<PredSet> seen;
    // Post-solve bookkeeping over the already-computed memo: bounded by
    // |planned| and does no histogram work, so it intentionally runs to
    // completion even when the deadline has expired (a half-recorded DAG
    // would fail the derivation audit).
    // condsel-flow: allow(deadline-flow)
    for (PredSet s : planned) {
      if (!seen.insert(s).second) continue;
      const MemoEntry* e = memo_.Find(s);
      CONDSEL_CHECK(e != nullptr);
      RecordEntry(s, *e);
    }
  }

  const MemoEntry* root = memo_.Find(p);
  CONDSEL_CHECK(root != nullptr);
  return *root;
}

std::string GetSelectivity::Explain(PredSet p) const {
  std::string out;
  GsStats snapshot;
  counters_.Add(&snapshot);
  if (snapshot.budget_exhausted) {
    out += "[budget exhausted: " +
           std::to_string(snapshot.degraded_subproblems) +
           " subset(s) degraded to the independence fallback]\n";
  }
  ExplainRec(p, 0, &out);
  return out;
}

void GetSelectivity::ExplainRec(PredSet p, int indent,
                                std::string* out) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const MemoEntry* it = memo_.Find(p);
  if (it == nullptr) {
    *out += pad + "(not computed)\n";
    return;
  }
  const MemoEntry& e = *it;
  char buf[128];
  switch (e.kind) {
    case MemoEntryKind::kEmpty:
      *out += pad + "Sel() = 1\n";
      break;
    case MemoEntryKind::kSeparable:
      std::snprintf(buf, sizeof(buf),
                    "separable: sel=%.6g err=%.4g, %zu components\n",
                    e.selectivity, e.error, e.components.size());
      *out += pad + buf;
      for (PredSet comp : e.components) ExplainRec(comp, indent + 1, out);
      break;
    case MemoEntryKind::kDegraded:
      std::snprintf(buf, sizeof(buf),
                    "degraded: sel=%.6g via independence fallback over %d "
                    "predicate(s)\n",
                    e.selectivity, SetSize(p));
      *out += pad + buf;
      // Name the statistic (or the reason none exists) behind each atom.
      for (int i : SetElements(p)) {
        const DerivationAtom* atom = memo_.FindAtom(i);
        if (atom == nullptr) continue;
        const FactorProvenance& prov = atom->sit.provenance;
        if (atom->has_stat) {
          std::snprintf(buf, sizeof(buf), "  p%d: sel=%.6g from %s ", i,
                        atom->selectivity, prov.histogram_kind.c_str());
          *out += pad + buf + prov.source;
          std::snprintf(buf, sizeof(buf), " (%d bucket(s))\n",
                        prov.buckets_touched);
          *out += buf;
        } else {
          *out +=
              pad + "  p" + std::to_string(i) + ": default 1";
          if (!prov.fallback.empty()) *out += " (" + prov.fallback + ")";
          *out += "\n";
        }
      }
      break;
    case MemoEntryKind::kAtomic: {
      std::snprintf(buf, sizeof(buf), "sel=%.6g err=%.4g, factor ",
                    e.selectivity, e.error);
      *out += pad + buf;
      *out += FactorToString(*query_,
                             Factor{e.best_p_prime, p & ~e.best_p_prime});
      *out += " via {";
      for (size_t i = 0; i < e.choice.sits.size(); ++i) {
        if (i > 0) *out += ", ";
        char sbuf[64];
        std::snprintf(sbuf, sizeof(sbuf), "sit#%d(diff=%.3f)",
                      e.choice.sits[i].sit->id, e.choice.sits[i].sit->diff);
        *out += sbuf;
      }
      *out += "}\n";
      // Provenance of the chosen statistics, from the provider's memoized
      // decision (no re-estimation).
      const std::vector<FactorProvenance> provenance =
          provider_->Describe(*query_, e.best_p_prime, e.choice);
      for (const FactorProvenance& prov : provenance) {
        if (!prov.recorded) continue;
        *out += pad + "  stat: " + prov.histogram_kind + " " + prov.source;
        std::snprintf(buf, sizeof(buf), " (%d bucket(s))\n",
                      prov.buckets_touched);
        *out += buf;
      }
      ExplainRec(p & ~e.best_p_prime, indent + 1, out);
      break;
    }
  }
}

}  // namespace condsel
