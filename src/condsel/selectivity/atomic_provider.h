// AtomicSelectivityProvider — the one layer that touches statistics.
//
// Every estimator in this library (the getSelectivity DP, the exhaustive
// reference, GVM, noSit, the feedback baseline, and the optimizer-coupled
// estimator) bottoms out in the same operation: approximate a factor
// Sel(P' | Q) with SITs, falling back to base histograms, sanitizing the
// result, and reporting where the number came from. This class owns that
// operation — SIT matching, histogram manipulation, SanitizeSelectivity,
// the FaultInjector slow-lookup hook, and FactorProvenance reporting —
// so no estimator reaches into Histogram::RangeSelectivity or
// JoinHistograms directly (condsel_lint's no-raw-histogram-lookup rule
// enforces this).
//
// Supported factor shapes for Sel(P' | Q) (Section 3.3):
//  - P' = one filter predicate: one SIT over the filter's attribute;
//  - P' = two filter predicates: one multidimensional SIT over the
//    attribute pair (Section 3.3's attribute-set form), capturing the
//    filters' correlation with no independence assumption between them;
//  - P' = one join predicate: two SITs (one per side) combined with a
//    histogram join (the wildcard transform of Sec 3.3 specialized to
//    unidimensional SITs, which is what the paper's pools contain);
//  - P' = one join plus filters over the join's own columns: histogram
//    join followed by range estimation on the result (Example 3).
// Any other multi-predicate P' would need a multidimensional SIT and is
// reported infeasible (error = infinity), exactly as getSelectivity's
// line 12 treats factors with no applicable statistics — the DP then
// reaches those predicates through further atomic decompositions.
//
// Thread-safety: the provider is stateless apart from borrowed pointers;
// after the matcher is bound to a query, Score/Estimate may be called
// concurrently from the parallel DP's workers (the matcher's call counter
// is atomic; its applicability index is read-only once bound). Deadlines
// are per-call arguments, never provider state: estimators sharing one
// provider each pass their own Deadline to Score, so concurrent searches
// cannot clobber each other's clock and an estimator destroyed mid-flight
// cannot leave a dangling deadline behind (the old set_deadline slot did
// both; condsel_lint's raw-set-deadline rule keeps it from coming back).

#pragma once

#include <string>
#include <vector>

#include "condsel/analysis/derivation.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/budget.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {

struct FactorChoice {
  bool feasible = false;
  double error = kInfiniteError;
  // Chosen SITs: {filter SIT}, or {left join SIT, right join SIT}.
  // Inline storage (SitVec): copying or memoizing a choice never touches
  // the heap.
  SitVec sits;
  // Filled by Score() only when the error function needs estimates;
  // otherwise computed later by Estimate().
  double estimate = -1.0;
};

// Reusable candidate-list scratch for Score(): the vectors are cleared
// and refilled per call, retaining their capacity, so a warmed-up driver
// scores factors without allocating. One instance per scoring thread —
// the drivers own one per worker; never share an instance concurrently.
struct ScoreScratch {
  std::vector<SitCandidate> left;
  std::vector<SitCandidate> right;
};

class AtomicSelectivityProvider {
 public:
  AtomicSelectivityProvider(SitMatcher* matcher,
                            const ErrorFunction* error_fn);

  // Cheap structural test: could Sel(P' | ...) be approximated at all?
  bool SupportedShape(const Query& query, PredSet p) const;

  // Picks the SITs minimizing the error function for Sel(P' | Q). Invokes
  // the view-matching routine (SitMatcher::Candidates); this is the
  // "decomposition analysis" side of the Fig. 8 timing split. `deadline`
  // is the caller's per-call clock (borrowed for this call only; nullptr
  // = none): when it expires mid-scoring, the remaining candidates are
  // skipped and the best choice found so far stands (possibly infeasible)
  // — the lookup, not the subproblem, bounds the overshoot. `scratch`
  // (optional, borrowed for this call like the deadline) lets hot-path
  // drivers reuse candidate-list storage across calls; nullptr scores
  // with call-local lists.
  FactorChoice Score(const Query& query, PredSet p, PredSet cond,
                     const Deadline* deadline = nullptr,
                     ScoreScratch* scratch = nullptr);

  // Histogram manipulation: evaluates the estimate of Sel(P' | Q) with
  // the chosen SITs. When `provenance` is non-null it is filled with one
  // record per chosen SIT (the strings are only built on request; pass
  // null on hot paths that do not record derivations).
  double Estimate(const Query& query, PredSet p, const FactorChoice& choice,
                  std::vector<FactorProvenance>* provenance = nullptr) const;

  // Provenance of a previously scored choice, without re-estimating —
  // lets Explain() and late recorders describe memoized decisions.
  std::vector<FactorProvenance> Describe(const Query& query, PredSet p,
                                         const FactorChoice& choice) const;

  // The shared single-predicate base-histogram path (conditioning on the
  // empty set restricts matching to base histograms): the traditional
  // noSit estimate of one predicate, as a derivation atom. has_stat is
  // false — and provenance carries the fallback reason — when the pool
  // lacks a base histogram for the column. `describe` controls whether
  // the provenance strings are built (skip on hot paths that do not
  // record derivations).
  DerivationAtom BaseAtom(const Query& query, int pred,
                          bool describe = true);

  // View-matching probe for estimators that walk candidates themselves
  // (GVM's greedy loop, charged per SIT examined like [4]'s view
  // matcher).
  std::vector<SitCandidate> Candidates(ColumnRef attr, PredSet cond,
                                       SitMatcher::CallAccounting accounting);

  // Estimates one filter predicate with one committed SIT (GVM's
  // rewritten-plan path), sanitized, with provenance.
  double EstimateFilterWith(const Query& query, int filter_pred,
                            const SitCandidate& cand,
                            FactorProvenance* provenance) const;

  const ErrorFunction& error_fn() const { return *error_fn_; }
  SitMatcher& matcher() { return *matcher_; }

  // Generation stamp of the statistics pool behind the matcher (0 for
  // pools outside the delta-maintenance path). Estimate caches keyed by
  // predicate subsets bind to this (SelectivityMemo::BindGeneration).
  uint64_t pool_generation() const { return matcher_->pool().generation(); }

 private:
  // Scoring core shared by Score and BaseAtom. BaseAtom scores through
  // here with no deadline and no throw hook: the independence fallback is
  // the degradation target and must stay available after the clock
  // expires (or a fault fires).
  FactorChoice ScoreImpl(const Query& query, PredSet p, PredSet cond,
                         const Deadline* deadline,
                         ScoreScratch* scratch = nullptr);

  // Splits P' into its join predicate (if any) and filters (a stack
  // array — at most kMaxPredicates of them); returns false for
  // unsupported shapes.
  bool SplitShape(const Query& query, PredSet p, int* join_pred,
                  int filter_preds[], int* num_filters) const;

  double EstimateWith(const Query& query, PredSet p, const SitVec& sits,
                      std::vector<FactorProvenance>* provenance) const;

  SitMatcher* matcher_;
  const ErrorFunction* error_fn_;
};

}  // namespace condsel
