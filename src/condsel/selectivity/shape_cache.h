// ShapeCache — decomposition skeletons keyed by canonical SPJ shape.
//
// Atomic-factor candidate enumeration (decomposer.h) is a pure function
// of a query's *structure*: which predicate positions are filters vs
// joins, and the pattern of column identities that attaches filters to a
// join's columns and wires the join graph together. Constants, operators,
// and the concrete table/column names never enter it. Two statements that
// differ only in constants — the classic parameterized-query workload —
// therefore share every candidate list, subset for subset.
//
// CanonicalShapeKey() encodes that structure with tables and columns
// renamed in first-appearance order over the ordered predicate list, so
// structurally identical statements collapse to one key. ShapeCache maps
// the key to a shared Entry whose per-subset candidate lists fill lazily
// as estimators enumerate; later estimators (a service's per-attempt
// sessions, a prewarmed workload's repeats) copy the skeleton instead of
// re-running the enumeration.
//
// Invalidation: none needed. The skeleton holds no statistics — snapshot
// epochs and pool generations (which do invalidate SelectivityMemo, see
// BindGeneration) leave it untouched, because candidate lists cannot
// change unless the statement's structure does, and a different structure
// is a different key.
//
// Correctness gates: a list is stored only when its enumeration ran to
// completion (never from a deadline-truncated pass), so a cached copy is
// bit-for-bit the list a fresh enumeration would produce and the
// estimator-equivalence and thread-count bit-identity properties are
// preserved.
//
// Thread-safety: the registry map and each Entry carry their own
// reader/writer locks (ranks kShapeCache / kShapeEntry); entries are
// handed out as shared_ptr so a shape outlives any estimator using it.

#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "condsel/common/arena.h"
#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"
#include "condsel/query/query.h"

namespace condsel {

// Canonical structural encoding of `query` (tables/columns renamed in
// first-appearance order): equal keys <=> identical candidate lists for
// every predicate subset.
std::string CanonicalShapeKey(const Query& query);

class ShapeCache {
 public:
  // One statement shape's lazily filled decomposition skeleton.
  class Entry {
   public:
    // Copies the cached candidate list for `p` into `out` (arena-backed,
    // cleared first). Returns false on a cold subset.
    bool CopyCandidates(PredSet p, ArenaVector<PredSet>* out) const
        CONDSEL_EXCLUDES(mu_);

    // Stores the list for `p` (first-wins; concurrent writers compute
    // identical lists, so which copy lands is unobservable). Callers must
    // only store lists from enumeration passes that ran to completion —
    // never deadline-truncated ones.
    void StoreCandidates(PredSet p, const ArenaVector<PredSet>& candidates)
        CONDSEL_EXCLUDES(mu_);

    size_t cached_subsets() const CONDSEL_EXCLUDES(mu_);

   private:
    mutable OrderedSharedMutex mu_{lock_rank::kShapeEntry,
                                   "ShapeCache::Entry::mu_"};
    std::unordered_map<PredSet, std::vector<PredSet>> nodes_
        CONDSEL_GUARDED_BY(mu_);
  };

  // The entry for `query`'s shape, created on first sight. The handle
  // stays valid independently of the cache's lifetime.
  std::shared_ptr<Entry> Acquire(const Query& query) CONDSEL_EXCLUDES(mu_);

  size_t shapes() const CONDSEL_EXCLUDES(mu_);

 private:
  mutable OrderedSharedMutex mu_{lock_rank::kShapeCache, "ShapeCache::mu_"};
  std::unordered_map<std::string, std::shared_ptr<Entry>> shapes_
      CONDSEL_GUARDED_BY(mu_);
};

}  // namespace condsel
