// Global lock-order ranks.
//
// Every rank-checked mutex in the library (common/ordered_mutex.h) is
// constructed with one of these constants. The rule: a thread may only
// acquire a mutex whose (rank, address) pair is lexicographically greater
// than that of the last mutex it already holds — lower ranks are outer,
// higher ranks are inner. Two mutexes share a rank only when they are
// instances of the same multi-instance family (e.g. the parallel driver's
// per-worker deque locks), in which case address order disambiguates.
//
// This table is mirrored by tools/lock_order.toml; tools/condsel_model.py
// fails the build if the two drift apart or if any acquisition edge in
// the source contradicts the order declared here. To add a mutex: pick a
// rank consistent with every path that nests it, add the constant here,
// add a [[mutex]] entry to tools/lock_order.toml, and construct the
// OrderedMutex with both.

#pragma once

namespace condsel {
namespace lock_rank {

// service/: admission gate is the outermost lock a session path takes.
inline constexpr int kAdmission = 10;
// service/: delta-maintenance serialization; held across the part-stats
// rebuild and the publish that follows, so it nests outside the snapshot
// pair (sanctioned blocking, see service.cc).
inline constexpr int kPartMaintenance = 15;
// service/: snapshot refresh serialization; holds while building the
// next epoch (sanctioned blocking, see snapshot.cc).
inline constexpr int kSnapshotRefresh = 20;
// service/: epoch ledger; innermost of the snapshot pair and the
// designated "acquire path" lock of the blocking-reachability check.
inline constexpr int kSnapshotEpoch = 30;
// service/: feedback application takes jitter + cache locks inside it.
inline constexpr int kServiceFeedback = 40;
inline constexpr int kServiceJitter = 50;
// service/: per-tenant circuit breaker ladder.
inline constexpr int kCircuitBreaker = 60;
// service/: GsStats aggregation ledger.
inline constexpr int kGsStatsLedger = 70;
// exec/: cardinality feedback cache; locked under kServiceFeedback via
// EstimationService::ObserveFeedback.
inline constexpr int kCardinalityCache = 80;
// selectivity/: shape-keyed decomposition cache — the shape registry map
// (Acquire, off the hot path) and the per-shape skeleton entries (looked
// up mid-Compute). Never held together: Acquire releases the registry
// lock before any skeleton lock is taken, but the entry rank sits inside
// the registry's so a future nested acquisition would still be ordered.
inline constexpr int kShapeCache = 84;
inline constexpr int kShapeEntry = 86;
// selectivity/: SIT memo (reader/writer).
inline constexpr int kSelectivityMemo = 90;
// selectivity/ parallel driver: per-worker deque locks; one rank for the
// whole family, steal_batch orders the pair by address.
inline constexpr int kWorkerDeque = 100;
// selectivity/ parallel driver: first-error slot.
inline constexpr int kParallelError = 110;
// common/: fault injector registry; leaf — nothing is acquired under it.
inline constexpr int kFaultInjector = 120;

}  // namespace lock_rank
}  // namespace condsel
