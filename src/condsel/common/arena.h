// Monotonic bump allocator backing the per-Compute hot path.
//
// One Arena lives inside each GetSelectivity instance and is Reset() at
// the top of every Compute() call: decomposer candidate lists, driver
// plan storage, and merge scratch bump-allocate out of it instead of
// hitting the global heap per subset. Blocks are retained across Reset(),
// so a warmed-up estimator reaches a steady state of zero heap
// allocations per estimate — the BENCH_*.json `allocs_per_estimate`
// metric this design targets.
//
// Lifetime rule (lint-enforced as `arena-no-escape`): memory obtained
// from an arena is scratch for the Compute() that allocated it. Nothing
// arena-backed may be stored in the memo, a recorder, or any other
// structure that outlives the call — Reset() recycles the blocks without
// running destructors or poisoning the memory.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace condsel {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 14;  // 16 KiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                  : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    BlockHeader* b = head_;
    while (b != nullptr) {
      BlockHeader* next = b->next;
      ::operator delete(b);
      b = next;
    }
  }

  // Bump-allocates `bytes` aligned to `align` (a power of two). The block
  // chain grows through ::operator new so the bench allocation counter
  // sees arena growth honestly; steady state after warm-up allocates
  // nothing.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) &
                  ~(static_cast<uintptr_t>(align) - 1);
    if (p + bytes > reinterpret_cast<uintptr_t>(end_)) {
      NextBlock(bytes + align);
      p = (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) &
          ~(static_cast<uintptr_t>(align) - 1);
    }
    ptr_ = reinterpret_cast<char*>(p + bytes);
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is recycled without running destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds to empty, retaining every block for reuse. O(1).
  void Reset() {
    current_ = head_;
    if (current_ != nullptr) {
      ptr_ = Payload(current_);
      end_ = ptr_ + current_->payload_bytes;
    } else {
      ptr_ = end_ = nullptr;
    }
  }

  // Introspection for tests and the steady-state assertions in benches.
  size_t BlockCount() const {
    size_t n = 0;
    for (BlockHeader* b = head_; b != nullptr; b = b->next) ++n;
    return n;
  }
  size_t TotalCapacity() const {
    size_t n = 0;
    for (BlockHeader* b = head_; b != nullptr; b = b->next) {
      n += b->payload_bytes;
    }
    return n;
  }

 private:
  static constexpr size_t kMinBlockBytes = 256;

  struct BlockHeader {
    BlockHeader* next;
    size_t payload_bytes;
  };

  static char* Payload(BlockHeader* b) {
    return reinterpret_cast<char*>(b) + sizeof(BlockHeader);
  }

  // Advances to the next retained block that fits `min_bytes`, or chains
  // a new one (at least block_bytes_, more for oversized requests).
  void NextBlock(size_t min_bytes) {
    BlockHeader* next = (current_ != nullptr) ? current_->next : head_;
    while (next != nullptr && next->payload_bytes < min_bytes) {
      // Too small for this request; skip it for the rest of this epoch.
      // It stays chained and serves smaller requests after later Resets.
      current_ = next;
      next = next->next;
    }
    if (next == nullptr) {
      const size_t payload =
          min_bytes > block_bytes_ ? min_bytes : block_bytes_;
      void* raw = ::operator new(sizeof(BlockHeader) + payload);
      next = static_cast<BlockHeader*>(raw);
      next->next = nullptr;
      next->payload_bytes = payload;
      if (current_ != nullptr) {
        current_->next = next;
      } else {
        head_ = next;
      }
    }
    current_ = next;
    ptr_ = Payload(current_);
    end_ = ptr_ + current_->payload_bytes;
  }

  BlockHeader* head_ = nullptr;
  BlockHeader* current_ = nullptr;
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t block_bytes_;
};

// Growable array of trivially-copyable elements living entirely in an
// Arena. Growth copies into a fresh arena span and abandons the old one
// (monotonic waste, recycled at the next Reset). Deliberately named
// Append — this is not a std::vector and must not read like one to the
// allocation census.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "growth relocates elements with memcpy");

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void Append(const T& v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }
  void clear() { size_ = 0; }

 private:
  void Grow() {
    const size_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
    T* nd = arena_->AllocateArray<T>(new_cap);
    if (size_ != 0) std::memcpy(nd, data_, size_ * sizeof(T));
    data_ = nd;
    capacity_ = new_cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace condsel
