// Deterministic pseudo-random number generation.
//
// All data generation and workload generation in this library is seeded
// explicitly so experiments are reproducible run-to-run. We use a
// xoshiro256** generator: fast, high quality, and independent of the
// standard library's unspecified distributions (std::uniform_int_distribution
// is not guaranteed to produce the same stream across implementations).

#pragma once

#include <cstdint>

namespace condsel {

// A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Bernoulli with probability p of returning true.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

}  // namespace condsel

