#include "condsel/common/zipf.h"

#include <algorithm>
#include <cmath>

#include "condsel/common/macros.h"

namespace condsel {

ZipfSampler::ZipfSampler(int64_t n, double theta) : n_(n), theta_(theta) {
  CONDSEL_CHECK(n > 0);
  CONDSEL_CHECK(theta >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[static_cast<size_t>(k)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfSampler::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(int64_t k) const {
  CONDSEL_DCHECK(k >= 0 && k < n_);
  const double prev = (k == 0) ? 0.0 : cdf_[static_cast<size_t>(k - 1)];
  return cdf_[static_cast<size_t>(k)] - prev;
}

}  // namespace condsel
