// Clang thread-safety analysis annotations.
//
// The macros expand to Clang's `capability` attributes when the compiler
// supports them (clang with -Wthread-safety, enabled by the build when
// compiling with clang) and to nothing elsewhere (gcc), so annotated code
// compiles everywhere while clang builds statically verify the locking
// discipline. Naming follows the de-facto standard (abseil / Chromium)
// with a CONDSEL_ prefix to avoid collisions with embedders' macros.
//
// Discipline for this library:
//  - structures shared across queries (CardinalityCache, FaultInjector,
//    Memo's group index) synchronize internally and annotate their fields
//    with CONDSEL_GUARDED_BY;
//  - per-query objects (GetSelectivity, Estimator sessions) remain
//    externally synchronized: one optimizer thread per query, documented
//    at the class level rather than annotated.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CONDSEL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CONDSEL_THREAD_ANNOTATION
#define CONDSEL_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lock (std::mutex already carries the attribute in
// libc++; this makes the discipline explicit for wrappers).
#define CONDSEL_CAPABILITY(name) CONDSEL_THREAD_ANNOTATION(capability(name))

// Data members: which mutex must be held to touch them.
#define CONDSEL_GUARDED_BY(mu) CONDSEL_THREAD_ANNOTATION(guarded_by(mu))
#define CONDSEL_PT_GUARDED_BY(mu) CONDSEL_THREAD_ANNOTATION(pt_guarded_by(mu))

// Functions: the mutexes they require, acquire, release, or must not hold.
#define CONDSEL_REQUIRES(...) \
  CONDSEL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CONDSEL_ACQUIRE(...) \
  CONDSEL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CONDSEL_RELEASE(...) \
  CONDSEL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CONDSEL_EXCLUDES(...) \
  CONDSEL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow (e.g. lock juggling in
// tests); use sparingly and say why at the call site.
#define CONDSEL_NO_THREAD_SAFETY_ANALYSIS \
  CONDSEL_THREAD_ANNOTATION(no_thread_safety_analysis)
