#include "condsel/common/ordered_mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "condsel/common/macros.h"

namespace condsel {
namespace lock_order_internal {
namespace {

// -1 unresolved, 0 off, 1 on. Resolution order: ForceEnabledForTesting
// override, then CONDSEL_LOCK_ORDER=0/1, then on iff !NDEBUG.
std::atomic<int> g_enabled{-1};

std::atomic<std::uint64_t> g_checks{0};

int ResolveEnabled() {
  if (const char* env = std::getenv("CONDSEL_LOCK_ORDER")) {
    if (std::strcmp(env, "0") == 0) return 0;
    if (std::strcmp(env, "1") == 0) return 1;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

struct HeldLock {
  const void* addr;
  int rank;
  const char* name;
};

// Per-thread stack of held rank-checked locks. Deep enough for any real
// path (the deepest sanctioned chain is 4); overflow aborts rather than
// silently dropping checks.
constexpr int kMaxHeld = 32;

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int size = 0;
};

thread_local HeldStack t_held;

}  // namespace

bool Enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ResolveEnabled();
    // Racing first-use threads compute the same value; any of them may
    // store it.
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void ForceEnabledForTesting(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t checks_performed() {
  return g_checks.load(std::memory_order_relaxed);
}

void NoteAcquire(const void* addr, int rank, const char* name) {
  if (!Enabled()) return;
  HeldStack& held = t_held;
  CONDSEL_CHECK_MSG(held.size < kMaxHeld,
                    "lock-order: held-lock stack overflow");
  g_checks.fetch_add(1, std::memory_order_relaxed);
  if (held.size > 0) {
    const HeldLock& top = held.entries[held.size - 1];
    // Lexicographic (rank, address): equal ranks are legal only for
    // distinct instances in ascending address order (multi-instance
    // families such as the worker deques).
    const bool ordered =
        rank > top.rank || (rank == top.rank && addr > top.addr);
    if (!ordered) {
      char msg[256];
      std::snprintf(msg, sizeof(msg),
                    "lock-order violation: acquiring \"%s\" (rank %d) "
                    "while holding \"%s\" (rank %d); see "
                    "tools/lock_order.toml",
                    name, rank, top.name, top.rank);
      CONDSEL_CHECK_MSG(false, msg);
    }
  }
  held.entries[held.size] = HeldLock{addr, rank, name};
  ++held.size;
}

void NoteRelease(const void* addr) {
  if (!Enabled()) return;
  HeldStack& held = t_held;
  // Releases are usually LIFO, but unique_lock allows out-of-order
  // release; drop the most recent entry for this address wherever it
  // sits. A release with no matching entry means enforcement was toggled
  // mid-hold (test hook); ignore it.
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].addr == addr) {
      for (int j = i; j + 1 < held.size; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.size;
      return;
    }
  }
}

}  // namespace lock_order_internal
}  // namespace condsel
