// Zipfian sampling over a finite integer domain.
//
// The paper's experiments generate attribute values "with different degrees
// of skew"; its motivating example makes the number of line-items per order
// Zipfian. ZipfSampler draws from {0, .., n-1} with P(k) proportional to
// 1/(k+1)^theta using an inverse-CDF table (O(log n) per draw).

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/common/rng.h"

namespace condsel {

class ZipfSampler {
 public:
  // `n` ranks, skew parameter `theta` >= 0. theta == 0 is uniform.
  ZipfSampler(int64_t n, double theta);

  // Draws a rank in [0, n). Rank 0 is the most frequent.
  int64_t Next(Rng& rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Probability mass of rank k.
  double Pmf(int64_t k) const;

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace condsel

