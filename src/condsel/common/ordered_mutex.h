// Rank-checked mutex wrappers: the runtime half of the concurrency
// contract (the static half is tools/condsel_model.py).
//
// OrderedMutex / OrderedSharedMutex behave exactly like std::mutex /
// std::shared_mutex, but each instance carries a rank from
// common/lock_ranks.h and a name matching its tools/lock_order.toml
// manifest entry. When enforcement is on, every acquisition is checked
// against a thread-local stack of held locks: the new lock's
// (rank, address) must be lexicographically greater than the top of the
// stack. A violation aborts with both mutex names and ranks — turning a
// would-be deadlock that TSan can only catch when two threads actually
// interleave into a deterministic failure on any single-threaded
// traversal of the bad path.
//
// Enforcement defaults on in !NDEBUG builds and can be forced either way
// with CONDSEL_LOCK_ORDER=1 / CONDSEL_LOCK_ORDER=0 in the environment
// (the TSan CI job and tests/lock_order_test.cc force it on). When off,
// the wrappers compile down to a forwarded lock/unlock with one relaxed
// atomic load on the acquire path.

#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace condsel {

namespace lock_order_internal {

// True when rank checking is active (memoized on first use).
bool Enabled();

// Test hook: overrides the environment/NDEBUG default. Passing
// `enabled` switches enforcement for every thread from the next
// acquisition on; only tests call this.
void ForceEnabledForTesting(bool enabled);

// Number of acquisition-order checks actually performed, process-wide.
// The soak test asserts this advanced, proving enforcement was live.
std::uint64_t checks_performed();

// Called by the wrappers around each acquire/release. `addr` is the
// wrapper's address (identity for same-rank instances).
void NoteAcquire(const void* addr, int rank, const char* name);
void NoteRelease(const void* addr);

}  // namespace lock_order_internal

// Exclusive rank-checked mutex. Satisfies Lockable, so it works with
// std::lock_guard, std::unique_lock, std::scoped_lock and
// std::condition_variable_any.
class OrderedMutex {
 public:
  OrderedMutex(int rank, const char* name) : rank_(rank), name_(name) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
    lock_order_internal::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    // A successful try_lock must still respect the order: a reverse-
    // order try_lock spins against a holder that waits forever.
    lock_order_internal::NoteAcquire(this, rank_, name_);
    return true;
  }
  void unlock() {
    mu_.unlock();
    lock_order_internal::NoteRelease(this);
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

// Shared (reader/writer) rank-checked mutex. Shared acquisitions are
// order-checked exactly like exclusive ones: a reader that blocks behind
// a writer participates in deadlock cycles all the same.
class OrderedSharedMutex {
 public:
  OrderedSharedMutex(int rank, const char* name)
      : rank_(rank), name_(name) {}
  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void lock() {
    lock_order_internal::NoteAcquire(this, rank_, name_);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    lock_order_internal::NoteAcquire(this, rank_, name_);
    return true;
  }
  void unlock() {
    mu_.unlock();
    lock_order_internal::NoteRelease(this);
  }

  void lock_shared() {
    lock_order_internal::NoteAcquire(this, rank_, name_);
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    lock_order_internal::NoteAcquire(this, rank_, name_);
    return true;
  }
  void unlock_shared() {
    mu_.unlock_shared();
    lock_order_internal::NoteRelease(this);
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const char* const name_;
};

}  // namespace condsel
