#include "condsel/common/fault_injector.h"

namespace condsel {

FaultInjector& FaultInjector::Instance() {
  // Leaked singleton: trivially destructible members only, but keep the
  // codebase-wide pattern of avoiding static destruction order issues.
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Set(Fault f, bool on) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  const bool was = faults_[Index(f)].exchange(on, std::memory_order_relaxed);
  if (was == on) return;
  armed_.fetch_add(on ? 1 : -1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  const std::lock_guard<OrderedMutex> lock(mu_);
  for (int i = 0; i < kNumFaults; ++i) {
    faults_[i].store(false, std::memory_order_relaxed);
  }
  armed_.store(0, std::memory_order_relaxed);
  slow_lookup_mask_.store(~0u, std::memory_order_relaxed);
}

void FaultInjector::SetSlowLookupMask(uint32_t mask) {
  const std::lock_guard<OrderedMutex> lock(mu_);
  slow_lookup_mask_.store(mask, std::memory_order_relaxed);
}

}  // namespace condsel
