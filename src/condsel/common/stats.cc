#include "condsel/common/stats.h"

#include <algorithm>
#include <cmath>

#include "condsel/common/macros.h"

namespace condsel {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double Accumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Accumulator::min() const { return min_; }
double Accumulator::max() const { return max_; }

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  CONDSEL_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double GeometricMean(const std::vector<double>& xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(std::max(x, floor));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace condsel
