// Numeric hardening for estimation results.
//
// Degenerate statistics (empty tables, all-equal columns, zero-width or
// corrupted buckets) can push intermediate arithmetic to NaN, infinity, or
// out of the meaningful range. Every value that leaves the estimation
// stack passes through one of these sanitizers so callers always observe a
// finite selectivity in [0, 1] and a finite non-negative cardinality —
// never a poisoned double that silently corrupts a plan cost.

#pragma once

#include <cmath>
#include <limits>

namespace condsel {

// Clamps to [0, 1]. NaN maps to 0 (a NaN estimate carries no evidence of
// any qualifying tuple; 0 also makes the corruption visible downstream
// instead of inflating join cardinalities), +inf to 1.
inline double SanitizeSelectivity(double sel) {
  if (std::isnan(sel)) return 0.0;
  if (sel < 0.0) return 0.0;
  if (sel > 1.0) return 1.0;
  return sel;
}

// Clamps to [0, max double]. NaN maps to 0; +inf (e.g. an overflowed
// cross-product of many large tables) saturates at the largest finite
// double so comparisons and further products stay well-defined.
inline double SanitizeCardinality(double card) {
  if (std::isnan(card)) return 0.0;
  if (card < 0.0) return 0.0;
  if (std::isinf(card)) return std::numeric_limits<double>::max();
  return card;
}

// Overflow-safe running product for cardinalities: saturates instead of
// producing inf.
inline double SaturatingMultiply(double a, double b) {
  return SanitizeCardinality(a * b);
}

}  // namespace condsel

