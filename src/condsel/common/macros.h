// Invariant-checking macros used across the library.
//
// The library does not use exceptions. Programming errors (violated
// preconditions, broken invariants) abort the process with a message that
// points at the failing expression. CONDSEL_CHECK is always active;
// CONDSEL_DCHECK compiles away in NDEBUG builds and is meant for hot paths.

#pragma once

#include <cstdio>
#include <cstdlib>

#define CONDSEL_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CONDSEL_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, (msg));                               \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define CONDSEL_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define CONDSEL_DCHECK(cond) CONDSEL_CHECK(cond)
#endif

// Marks a function as part of the estimation hot path: the memo,
// decomposer, parallel-driver, and provider inner loops that run once per
// subproblem. Semantically a no-op — it expands to nothing — but
// tools/condsel_flow.py keys its hot-path-alloc check on the annotation:
// every heap-allocation site reachable from a CONDSEL_HOT function must be
// sanctioned in tools/alloc_budget.toml, so a new allocation on the hot
// path fails CI instead of landing silently. Put it on the definition,
// before the return type.
#define CONDSEL_HOT

