// Deterministic fault injection for robustness tests.
//
// Production code queries the process-wide injector at a handful of choke
// points (SIT matching, histogram lookups, budget deadline checks); every
// fault defaults to off, so the cost on the happy path is one relaxed
// atomic load guarded behind `armed()`. Tests arm faults through
// ScopedFault, which restores the previous state on destruction, keeping
// suites order-independent.
//
// Supported faults:
//  - kDropSits: SitMatcher returns no candidates, simulating a pool whose
//    SITs were never built or failed to load (degradation to base
//    histograms / independence must kick in, never an abort);
//  - kCorruptHistograms: every histogram range lookup returns NaN, as a
//    flipped bucket would produce — exercising the NaN sanitization path;
//  - kExpireDeadline: EstimationBudget deadline checks report expiry
//    immediately, making timeout degradation deterministic in tests.
//  - kCorruptDerivationFactor: getSelectivity records an out-of-range
//    factor selectivity into its derivation DAG (the estimate itself is
//    untouched) — the DerivationAuditor must report it, proving the
//    finite-range check can fail (mutation self-test).
//  - kCorruptHypothesisSet: getSelectivity records SIT hypothesis sets
//    that claim predicates outside the conditioning set — the auditor's
//    hypothesis-consistency check must catch it (mutation self-test).
//  - kSlowAtomicLookup: every AtomicSelectivityProvider scoring pass
//    sleeps briefly, simulating cold statistics storage — deadline
//    enforcement inside the decomposition enumeration must keep the
//    overshoot bounded by one lookup, not one subproblem. Tests can
//    restrict the stall to factors intersecting a predicate mask
//    (SetSlowLookupMask), making some subset-lattice levels orders of
//    magnitude more expensive than others — the work-stealing scheduler's
//    imbalance scenario.
//  - kThrowAtomicLookup: the provider's public scoring entry point throws
//    (simulating an embedder hook or allocation failure escaping
//    mid-search) — RAII cleanup such as ScopedDeadline must leave shared
//    state clean on the unwind path. The BaseAtom degradation path stays
//    exempt, like the deadline: the fallback must outlive the fault.
//  - kFailSnapshotSwap: SnapshotPublisher::Publish reports UNAVAILABLE
//    without swapping, simulating a refresh pipeline that failed to
//    materialize its statistics mid-swap — in-flight sessions must keep
//    the previous epoch, and the failed swap must never publish a
//    half-built snapshot (the chaos soak's mid-swap failure scenario).
//  - kSlowRefresh: SnapshotPublisher::Publish stalls briefly *before*
//    taking the publication lock, simulating a slow statistics rebuild —
//    estimates on the current epoch must keep flowing at full rate while
//    the refresh drags (the no-blocking-under-epoch-lock discipline).
//  - kCorruptPartStats: PartStatsSet::BuildMergedPool corrupts one
//    working-copy piece (NaN source cardinality, the scalar a torn write
//    would hit) before validation — the merge must answer DATA_LOSS, and
//    a half-corrupt pool must never be published as a snapshot.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "condsel/common/lock_ranks.h"
#include "condsel/common/ordered_mutex.h"
#include "condsel/common/thread_annotations.h"

namespace condsel {

// The exception injected throw sites raise (kThrowAtomicLookup). It is a
// distinct type so catch sites can tell "a known-transient condition
// unwound this attempt" (retryable UNAVAILABLE) apart from an arbitrary
// std::exception escaping the library, which is a bug and must surface as
// terminal INTERNAL rather than be retried as if transient.
class TransientFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Fault {
  kDropSits = 0,
  kCorruptHistograms,
  kExpireDeadline,
  kCorruptDerivationFactor,
  kCorruptHypothesisSet,
  kSlowAtomicLookup,
  kThrowAtomicLookup,
  kFailSnapshotSwap,
  kSlowRefresh,
  kCorruptPartStats,
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // True iff any fault is armed; the cheap first-level check production
  // call sites use.
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  bool enabled(Fault f) const {
    return armed() && faults_[Index(f)].load(std::memory_order_relaxed);
  }

  // Writers serialize on mu_: concurrent Set/Reset calls (test fixtures
  // arming faults while another thread disarms) would otherwise race the
  // exchange-then-count update and leave armed_ out of sync with faults_.
  // Readers stay lock-free: armed()/enabled() are the production hot path.
  void Set(Fault f, bool on) CONDSEL_EXCLUDES(mu_);
  void Reset() CONDSEL_EXCLUDES(mu_);  // disarm everything, mask to all-ones

  // Scope of kSlowAtomicLookup: the stall only fires for factors whose
  // predicate bitmask intersects `mask` (default ~0u = every factor).
  // Lets tests slow down a chosen slice of the subset lattice to force
  // per-level cost imbalance.
  void SetSlowLookupMask(uint32_t mask) CONDSEL_EXCLUDES(mu_);
  uint32_t slow_lookup_mask() const {
    return slow_lookup_mask_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;
  static constexpr int kNumFaults = 10;
  static int Index(Fault f) { return static_cast<int>(f); }

  // Serializes writers; reads are atomic. Leaf rank: nothing may be
  // acquired while holding it.
  OrderedMutex mu_{lock_rank::kFaultInjector, "FaultInjector::mu_"};
  std::atomic<int> armed_{0};  // number of armed faults
  std::atomic<bool> faults_[kNumFaults] = {};
  std::atomic<uint32_t> slow_lookup_mask_{~0u};
};

// RAII predicate-mask scope for kSlowAtomicLookup; restores the
// match-everything default on destruction.
class ScopedSlowLookupMask {
 public:
  explicit ScopedSlowLookupMask(uint32_t mask) {
    FaultInjector::Instance().SetSlowLookupMask(mask);
  }
  ~ScopedSlowLookupMask() {
    FaultInjector::Instance().SetSlowLookupMask(~0u);
  }

  ScopedSlowLookupMask(const ScopedSlowLookupMask&) = delete;
  ScopedSlowLookupMask& operator=(const ScopedSlowLookupMask&) = delete;
};

// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(Fault f) : fault_(f) {
    FaultInjector::Instance().Set(f, true);
  }
  ~ScopedFault() { FaultInjector::Instance().Set(fault_, false); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Fault fault_;
};

}  // namespace condsel

