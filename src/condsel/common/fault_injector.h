// Deterministic fault injection for robustness tests.
//
// Production code queries the process-wide injector at a handful of choke
// points (SIT matching, histogram lookups, budget deadline checks); every
// fault defaults to off, so the cost on the happy path is one relaxed
// atomic load guarded behind `armed()`. Tests arm faults through
// ScopedFault, which restores the previous state on destruction, keeping
// suites order-independent.
//
// Supported faults:
//  - kDropSits: SitMatcher returns no candidates, simulating a pool whose
//    SITs were never built or failed to load (degradation to base
//    histograms / independence must kick in, never an abort);
//  - kCorruptHistograms: every histogram range lookup returns NaN, as a
//    flipped bucket would produce — exercising the NaN sanitization path;
//  - kExpireDeadline: EstimationBudget deadline checks report expiry
//    immediately, making timeout degradation deterministic in tests.
//  - kCorruptDerivationFactor: getSelectivity records an out-of-range
//    factor selectivity into its derivation DAG (the estimate itself is
//    untouched) — the DerivationAuditor must report it, proving the
//    finite-range check can fail (mutation self-test).
//  - kCorruptHypothesisSet: getSelectivity records SIT hypothesis sets
//    that claim predicates outside the conditioning set — the auditor's
//    hypothesis-consistency check must catch it (mutation self-test).
//  - kSlowAtomicLookup: every AtomicSelectivityProvider scoring pass
//    sleeps briefly, simulating cold statistics storage — deadline
//    enforcement inside the decomposition enumeration must keep the
//    overshoot bounded by one lookup, not one subproblem.

#pragma once

#include <atomic>
#include <mutex>

#include "condsel/common/thread_annotations.h"

namespace condsel {

enum class Fault {
  kDropSits = 0,
  kCorruptHistograms,
  kExpireDeadline,
  kCorruptDerivationFactor,
  kCorruptHypothesisSet,
  kSlowAtomicLookup,
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // True iff any fault is armed; the cheap first-level check production
  // call sites use.
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  bool enabled(Fault f) const {
    return armed() && faults_[Index(f)].load(std::memory_order_relaxed);
  }

  // Writers serialize on mu_: concurrent Set/Reset calls (test fixtures
  // arming faults while another thread disarms) would otherwise race the
  // exchange-then-count update and leave armed_ out of sync with faults_.
  // Readers stay lock-free: armed()/enabled() are the production hot path.
  void Set(Fault f, bool on) CONDSEL_EXCLUDES(mu_);
  void Reset() CONDSEL_EXCLUDES(mu_);  // disarm everything

 private:
  FaultInjector() = default;
  static constexpr int kNumFaults = 6;
  static int Index(Fault f) { return static_cast<int>(f); }

  std::mutex mu_;              // serializes writers; reads are atomic
  std::atomic<int> armed_{0};  // number of armed faults
  std::atomic<bool> faults_[kNumFaults] = {};
};

// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(Fault f) : fault_(f) {
    FaultInjector::Instance().Set(f, true);
  }
  ~ScopedFault() { FaultInjector::Instance().Set(fault_, false); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Fault fault_;
};

}  // namespace condsel

