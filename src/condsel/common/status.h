// Recoverable errors, reported by value (the library uses no exceptions).
//
// CONDSEL_CHECK remains the tool for *internal invariants* — conditions no
// input can violate without a bug in this library. Everything a caller can
// trigger from the outside (a malformed query, a SIT pool built against a
// different catalog, an exhausted estimation budget) is reported through
// Status / StatusOr<T>, matching the by-value style of ParseResult and
// IoResult but with a machine-readable code the embedding optimizer can
// branch on (retry, degrade, or surface to the user).

#pragma once

#include <string>
#include <utility>

#include "condsel/common/macros.h"

namespace condsel {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // the request itself is malformed
  kNotFound,            // a referenced object (table, column) doesn't exist
  kFailedPrecondition,  // required statistics are missing
  kResourceExhausted,   // estimation budget spent (counts)
  kDeadlineExceeded,    // estimation budget spent (wall clock)
  kDataLoss,            // persisted state is corrupt
  kInternal,            // invariant violation surfaced as an error
  kRejectedOverload,    // admission control shed the request (quota or
                        // concurrency cap); retrying immediately makes
                        // overload worse — back off at the client
  kUnavailable,         // transient serving-side failure (a snapshot swap
                        // in flight, an injected lookup fault); safe to
                        // retry idempotent requests with backoff
};

const char* StatusCodeName(StatusCode code);

// [[nodiscard]]: silently dropping a Status is how recoverable errors
// become latent bugs. Call sites that legitimately proceed regardless
// must say so with a named sink (see StatusIgnored below), not `(void)`.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }
  static Status InvalidArgument(std::string m) {
    return Error(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Error(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Error(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Error(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Error(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Error(StatusCode::kDataLoss, std::move(m));
  }
  static Status Internal(std::string m) {
    return Error(StatusCode::kInternal, std::move(m));
  }
  static Status RejectedOverload(std::string m) {
    return Error(StatusCode::kRejectedOverload, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Error(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no base histogram for R.a".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value. T must be default-constructible (all condsel value
// types are); the stored T is only meaningful when ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions keep call sites terse:
  //   StatusOr<double> f() { if (bad) return Status::NotFound(...); return 0.5; }
  StatusOr(Status status) : status_(std::move(status)) {
    // invariant: an OK StatusOr must be built from a value.
    CONDSEL_CHECK_MSG(!status_.ok(),
                      "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Aborts if !ok(): callers must branch on ok() first (or use the
  // Estimator's non-Try wrappers, which keep the historical abort-on-error
  // contract).
  const T& value() const {
    // invariant: value() requires ok(); see the contract above.
    CONDSEL_CHECK_MSG(status_.ok(), status_.message().c_str());
    return value_;
  }
  T& value() {
    // invariant: value() requires ok(); see the contract above.
    CONDSEL_CHECK_MSG(status_.ok(), status_.message().c_str());
    return value_;
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }

  // The value if ok, otherwise `fallback` — the graceful-degradation
  // one-liner: est.TryEstimateSelectivity(q).value_or(1.0).
  T value_or(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

// The one sanctioned way to discard a Status/StatusOr on purpose (e.g. a
// best-effort side channel whose failure the caller tolerates by design).
// Grep-able, unlike a `(void)` cast — and the lint rule nodiscard-status
// rejects the cast form outright.
template <typename T>
void StatusIgnored(T&&) {}

}  // namespace condsel

// Propagates a non-OK Status to the caller; on OK, falls through. The
// status-flow analyzer (tools/condsel_flow.py) recognizes the macro as an
// escape, same as an explicit `if (Status s = expr; !s.ok()) return s;`,
// and the enclosing function may return Status or any StatusOr<T> (the
// error converts implicitly). Evaluates `expr` exactly once.
#define CONDSEL_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::condsel::Status condsel_status_tmp_ = (expr);     \
    if (!condsel_status_tmp_.ok()) {                    \
      return condsel_status_tmp_;                       \
    }                                                   \
  } while (0)

