#include "condsel/common/status.h"

namespace condsel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kRejectedOverload:
      return "REJECTED_OVERLOAD";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace condsel
