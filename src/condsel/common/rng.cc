#include "condsel/common/rng.h"

#include "condsel/common/macros.h"

namespace condsel {
namespace {

// SplitMix64, used to expand the seed into the full generator state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  CONDSEL_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CONDSEL_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace condsel
