// Small aggregate helpers used by the experiment harness and tests.

#pragma once

#include <cstddef>
#include <vector>

namespace condsel {

// Online accumulator for mean / min / max / count of a stream of doubles.
class Accumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Median of a sample (copies and sorts; intended for reporting, not hot
// paths). Returns 0 for an empty sample.
double Median(std::vector<double> xs);

// p-th percentile (0 <= p <= 100) with linear interpolation.
double Percentile(std::vector<double> xs, double p);

// Geometric mean of strictly positive samples; entries <= 0 are clamped to
// `floor` first so that a single zero error does not collapse the mean.
double GeometricMean(const std::vector<double>& xs, double floor = 1e-9);

}  // namespace condsel

