// GVM — Greedy View Matching, the prior-art baseline (paper [4]).
//
// Reconstruction of "Exploiting statistics on query expressions for
// optimization" (Bruno & Chaudhuri, SIGMOD 2002) as this paper describes
// it: for each selectivity request, a greedy procedure repeatedly picks
// the SIT application that removes the most independence assumptions and
// rewrites the plan to use it. Because the rewriting is a single query
// plan, the chosen SITs must be *simultaneously* realizable by view
// matching: their generating expressions must nest (one a sub-plan of the
// other) or touch disjoint tables — the Figure 1 limitation this paper's
// framework removes. Two further properties of GVM matter experimentally:
//   * its search space is a strict subset of the decomposition space
//     explored by getSelectivity (Fig. 5), and
//   * it re-runs from scratch on every sub-plan request, with no
//     cross-request memoization (Fig. 6).

#pragma once

#include "condsel/analysis/derivation.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {

class GvmEstimator {
 public:
  explicit GvmEstimator(SitMatcher* matcher);

  // Estimated Sel(P). Runs the greedy procedure afresh (per [4], once per
  // optimizer selectivity request).
  double Estimate(const Query& query, PredSet p);

  // Number of independence assumptions of the plan chosen for the last
  // Estimate() call (nInd of the induced decomposition) — exposed for
  // tests and the ablation bench.
  double last_n_ind() const { return last_n_ind_; }

  // Optional derivation recording: each Estimate() call appends one
  // predicate-product node describing the greedily rewritten plan (per
  // predicate: the SIT or base histogram it was estimated from, and the
  // conditioning context the hypothesis claims to cover) for
  // DerivationAuditor. Borrowed; nullptr stops recording.
  void set_recorder(DerivationDag* dag) { recorder_ = dag; }

 private:
  NIndError error_fn_;
  AtomicSelectivityProvider provider_;
  double last_n_ind_ = 0.0;
  DerivationDag* recorder_ = nullptr;
};

}  // namespace condsel

