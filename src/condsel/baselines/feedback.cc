#include "condsel/baselines/feedback.h"

#include "condsel/common/numeric.h"

#include <algorithm>
#include <cmath>

#include "condsel/common/macros.h"

namespace condsel {

FeedbackEstimator::FeedbackEstimator(SitMatcher* matcher)
    : matcher_(matcher), provider_(matcher, &error_fn_) {
  CONDSEL_CHECK(matcher != nullptr);
}

void FeedbackEstimator::Observe(const Query& query, Evaluator* evaluator) {
  CONDSEL_CHECK(evaluator != nullptr);
  matcher_->BindQuery(&query);
  const PredSet joins = query.join_predicates();
  for (int f : SetElements(query.filter_predicates())) {
    const Predicate& pred = query.predicate(f);
    const double truth =
        evaluator->TrueConditionalSelectivity(query, 1u << f, joins);
    FactorChoice base = provider_.Score(query, 1u << f, /*cond=*/0);
    if (!base.feasible) continue;
    const double est = provider_.Estimate(query, 1u << f, base);
    if (truth <= 0.0 || est <= 0.0) continue;
    Adjustment& adj = adjustments_[pred.column()];
    adj.log_ratio_sum += std::log(truth / est);
    ++adj.observations;
  }
}

double FeedbackEstimator::AdjustmentFor(ColumnRef col) const {
  auto it = adjustments_.find(col);
  if (it == adjustments_.end() || it->second.observations == 0) return 1.0;
  return std::exp(it->second.log_ratio_sum /
                  static_cast<double>(it->second.observations));
}

double FeedbackEstimator::Estimate(const Query& query, PredSet p) {
  double sel = 1.0;
  for (int i : SetElements(p)) {
    // The provider's shared base-histogram path (its estimate is already
    // sanitized, so the product below sees the same factors as before).
    const DerivationAtom atom =
        provider_.BaseAtom(query, i, /*describe=*/false);
    CONDSEL_CHECK_MSG(atom.has_stat,
                      "feedback estimation requires base histograms");
    double factor = atom.selectivity;
    if (query.predicate(i).is_filter()) {
      factor =
          std::min(1.0, factor * AdjustmentFor(query.predicate(i).column()));
    }
    sel *= factor;
  }
  return SanitizeSelectivity(sel);
}

}  // namespace condsel
