#include "condsel/baselines/gvm.h"

#include <map>

#include "condsel/common/numeric.h"

#include "condsel/common/macros.h"

namespace condsel {

GvmEstimator::GvmEstimator(SitMatcher* matcher)
    : provider_(matcher, &error_fn_) {}

double GvmEstimator::Estimate(const Query& query, PredSet p) {
  // Current SIT assignment per filter predicate; absent = base histogram.
  std::map<int, SitCandidate> chosen;
  std::vector<int> filters;
  std::vector<int> joins;
  for (int i : SetElements(p)) {
    (query.predicate(i).is_filter() ? filters : joins).push_back(i);
  }

  auto compatible = [&](int pred, const SitCandidate& cand) {
    // A single rewritten plan must realize every chosen SIT: expressions
    // must nest or be table-disjoint.
    for (const auto& [other, oc] : chosen) {
      if (other == pred) continue;
      if (IsSubset(cand.expr_mask, oc.expr_mask) ||
          IsSubset(oc.expr_mask, cand.expr_mask)) {
        continue;
      }
      const TableSet t1 = query.TablesOfSubset(cand.expr_mask);
      const TableSet t2 = query.TablesOfSubset(oc.expr_mask);
      if ((t1 & t2) == 0) continue;
      return false;
    }
    return true;
  };

  // Greedy: repeatedly commit the (filter, SIT) application that removes
  // the most independence assumptions, until no application helps.
  while (true) {
    int best_pred = -1;
    SitCandidate best_cand;
    int best_benefit = 0;
    for (int f : filters) {
      const PredSet context = p & ~(1u << f);
      const int current_size =
          chosen.count(f) ? SetSize(chosen[f].expr_mask) : 0;
      for (const SitCandidate& cand : provider_.Candidates(
               query.predicate(f).column(), context,
               SitMatcher::CallAccounting::kPerSit)) {
        const int benefit = SetSize(cand.expr_mask) - current_size;
        if (benefit <= 0) continue;
        if (!compatible(f, cand)) continue;
        if (benefit > best_benefit ||
            (benefit == best_benefit && best_pred >= 0 && f < best_pred)) {
          best_benefit = benefit;
          best_pred = f;
          best_cand = cand;
        }
      }
    }
    if (best_pred < 0) break;
    chosen[best_pred] = best_cand;
  }

  // Estimate the rewritten plan: joins from base histograms, filters from
  // their assigned SITs; independence everywhere else.
  double sel = 1.0;
  double n_ind = 0.0;
  std::vector<DerivationAtom> atoms;
  auto record_atom = [&](int pred, double atom_sel, const SitCandidate& cand,
                         PredSet conditioning, const FactorProvenance& prov) {
    if (recorder_ == nullptr) return;
    DerivationAtom atom;
    atom.pred = pred;
    atom.selectivity = atom_sel;
    atom.has_stat = true;
    atom.sit.sit_id = cand.sit->id;
    atom.sit.is_base = cand.sit->is_base();
    atom.sit.hypothesis = cand.expr_mask;
    atom.sit.conditioning = conditioning;
    atom.sit.provenance = prov;
    atoms.push_back(atom);
  };
  std::vector<FactorProvenance> prov;
  for (int j : joins) {
    FactorChoice choice = provider_.Score(query, 1u << j, /*cond=*/0);
    CONDSEL_CHECK_MSG(choice.feasible, "GVM requires base histograms");
    prov.clear();
    const double join_sel = SanitizeSelectivity(provider_.Estimate(
        query, 1u << j, choice, recorder_ != nullptr ? &prov : nullptr));
    sel *= join_sel;
    n_ind += static_cast<double>(SetSize(p) - 1);
    record_atom(j, join_sel, choice.sits.front(), /*conditioning=*/0,
                prov.empty() ? FactorProvenance{} : prov.front());
  }
  for (int f : filters) {
    const PredSet context = p & ~(1u << f);
    if (chosen.count(f)) {
      const SitCandidate& cand = chosen[f];
      FactorProvenance fprov;
      const double filter_sel = provider_.EstimateFilterWith(
          query, f, cand, recorder_ != nullptr ? &fprov : nullptr);
      sel *= filter_sel;
      n_ind += static_cast<double>(SetSize(context & ~cand.expr_mask));
      record_atom(f, filter_sel, cand, context, fprov);
    } else {
      FactorChoice choice =
          provider_.Score(query, 1u << f, /*cond=*/0);
      CONDSEL_CHECK_MSG(choice.feasible, "GVM requires base histograms");
      prov.clear();
      const double filter_sel = SanitizeSelectivity(provider_.Estimate(
          query, 1u << f, choice, recorder_ != nullptr ? &prov : nullptr));
      sel *= filter_sel;
      n_ind += static_cast<double>(SetSize(context));
      record_atom(f, filter_sel, choice.sits.front(), /*conditioning=*/0,
                  prov.empty() ? FactorProvenance{} : prov.front());
    }
  }
  last_n_ind_ = n_ind;
  sel = SanitizeSelectivity(sel);
  if (recorder_ != nullptr) {
    DerivationNode& node = recorder_->AddNode(p);
    node.kind = p == 0 ? DerivKind::kEmptySet : DerivKind::kPredicateProduct;
    node.selectivity = sel;
    node.error = 0.0;
    node.atoms = std::move(atoms);
  }
  return sel;
}

}  // namespace condsel
