// LEO-style query-feedback estimation (related work, paper [25]).
//
// Section 6 contrasts SITs with feedback-driven approaches: LEO monitors
// executed queries and *adjusts* base statistics so the observed queries
// would have been estimated correctly, but "maintains a single adjusted
// histogram per attribute and still relies on the independence assumption",
// whereas SITs keep context-specific statistics per query expression.
//
// This baseline reconstructs that idea at the granularity the comparison
// needs: from a training workload with observed true cardinalities it
// learns, per filter column, a multiplicative adjustment — the geometric
// mean of (true conditional selectivity given the query's joins) /
// (base-histogram selectivity) — and applies it to future base estimates.
// One number per attribute, independence everywhere: exactly the
// structural limitation the paper attributes to [25].

#pragma once

#include <map>

#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {

class FeedbackEstimator {
 public:
  // The matcher's pool must contain base histograms (any J_i pool).
  explicit FeedbackEstimator(SitMatcher* matcher);

  // Observes a training query with execution feedback: for each filter,
  // compares the true conditional selectivity (given the query's joins)
  // with the base estimate and accumulates the log-ratio.
  void Observe(const Query& query, Evaluator* evaluator);

  // Estimated Sel(P): independent product of per-predicate estimates,
  // filters multiplied by their learned adjustment factors.
  double Estimate(const Query& query, PredSet p);

  // Learned multiplicative adjustment for a column (1.0 if unseen).
  double AdjustmentFor(ColumnRef col) const;

 private:
  struct Adjustment {
    double log_ratio_sum = 0.0;
    int observations = 0;
  };

  SitMatcher* matcher_;
  NIndError error_fn_;
  AtomicSelectivityProvider provider_;
  std::map<ColumnRef, Adjustment> adjustments_;
};

}  // namespace condsel

