#include "condsel/baselines/no_sit.h"

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"

namespace condsel {

NoSitEstimator::NoSitEstimator(SitMatcher* matcher)
    : approximator_(matcher, &error_fn_) {}

double NoSitEstimator::Estimate(const Query& query, PredSet p) {
  double sel = 1.0;
  std::vector<DerivationAtom> atoms;
  for (int i : SetElements(p)) {
    // Conditioning on the empty set restricts the candidates to base
    // histograms (expr ⊆ ∅), which is exactly the traditional estimator.
    FactorChoice choice = approximator_.Score(query, 1u << i, /*cond=*/0);
    CONDSEL_CHECK_MSG(choice.feasible,
                      "noSit requires base histograms for every column");
    const double atom_sel =
        SanitizeSelectivity(approximator_.Estimate(query, 1u << i, choice));
    sel *= atom_sel;
    if (recorder_ != nullptr) {
      DerivationAtom atom;
      atom.pred = i;
      atom.selectivity = atom_sel;
      atom.has_stat = true;
      const SitCandidate& cand = choice.sits.front();
      atom.sit.sit_id = cand.sit->id;
      atom.sit.is_base = cand.sit->is_base();
      atom.sit.hypothesis = cand.expr_mask;
      atom.sit.conditioning = 0;
      atoms.push_back(atom);
    }
  }
  sel = SanitizeSelectivity(sel);
  if (recorder_ != nullptr) {
    DerivationNode& node = recorder_->AddNode(p);
    node.kind = p == 0 ? DerivKind::kEmptySet : DerivKind::kPredicateProduct;
    node.selectivity = sel;
    node.error = 0.0;
    node.atoms = std::move(atoms);
  }
  return sel;
}

}  // namespace condsel
