#include "condsel/baselines/no_sit.h"

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"

namespace condsel {

NoSitEstimator::NoSitEstimator(SitMatcher* matcher)
    : approximator_(matcher, &error_fn_) {}

double NoSitEstimator::Estimate(const Query& query, PredSet p) {
  double sel = 1.0;
  for (int i : SetElements(p)) {
    // Conditioning on the empty set restricts the candidates to base
    // histograms (expr ⊆ ∅), which is exactly the traditional estimator.
    FactorChoice choice = approximator_.Score(query, 1u << i, /*cond=*/0);
    CONDSEL_CHECK_MSG(choice.feasible,
                      "noSit requires base histograms for every column");
    sel *= approximator_.Estimate(query, 1u << i, choice);
  }
  return SanitizeSelectivity(sel);
}

}  // namespace condsel
