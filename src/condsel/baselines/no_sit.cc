#include "condsel/baselines/no_sit.h"

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"

namespace condsel {

NoSitEstimator::NoSitEstimator(SitMatcher* matcher)
    : provider_(matcher, &error_fn_) {}

double NoSitEstimator::Estimate(const Query& query, PredSet p) {
  double sel = 1.0;
  std::vector<DerivationAtom> atoms;
  for (int i : SetElements(p)) {
    // The provider's shared base-histogram path: conditioning on the empty
    // set restricts the candidates to base histograms (expr ⊆ ∅), which is
    // exactly the traditional estimator.
    DerivationAtom atom =
        provider_.BaseAtom(query, i, /*describe=*/recorder_ != nullptr);
    CONDSEL_CHECK_MSG(atom.has_stat,
                      "noSit requires base histograms for every column");
    sel *= atom.selectivity;
    if (recorder_ != nullptr) atoms.push_back(std::move(atom));
  }
  sel = SanitizeSelectivity(sel);
  if (recorder_ != nullptr) {
    DerivationNode& node = recorder_->AddNode(p);
    node.kind = p == 0 ? DerivKind::kEmptySet : DerivKind::kPredicateProduct;
    node.selectivity = sel;
    node.error = 0.0;
    node.atoms = std::move(atoms);
  }
  return sel;
}

}  // namespace condsel
