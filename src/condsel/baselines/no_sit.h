// The traditional estimator ("noSit" in Section 5).
//
// Mimics a classical optimizer: every predicate is estimated from base
// table histograms in isolation and the selectivities are multiplied,
// assuming full independence — the estimator SITs exist to improve on.

#pragma once

#include "condsel/analysis/derivation.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/atomic_provider.h"

namespace condsel {

class NoSitEstimator {
 public:
  // The matcher's pool must contain base histograms for every column the
  // queries reference (any J_i pool qualifies).
  explicit NoSitEstimator(SitMatcher* matcher);

  // Estimated Sel(P): product over predicates of their base-histogram
  // selectivity (filters via range lookup, joins via histogram join).
  double Estimate(const Query& query, PredSet p);

  // Optional derivation recording: each Estimate() call appends one
  // predicate-product node (the full independence assumption) to `dag`
  // for DerivationAuditor. Borrowed; nullptr stops recording.
  void set_recorder(DerivationDag* dag) { recorder_ = dag; }

 private:
  NIndError error_fn_;
  AtomicSelectivityProvider provider_;
  DerivationDag* recorder_ = nullptr;
};

}  // namespace condsel
