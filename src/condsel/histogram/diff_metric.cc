#include "condsel/histogram/diff_metric.h"

#include <algorithm>
#include <cmath>

namespace condsel {

double ExactDiff(const std::vector<int64_t>& base_values,
                 const std::vector<int64_t>& expr_values) {
  if (base_values.empty() || expr_values.empty()) return 0.0;
  std::vector<int64_t> a = base_values;
  std::vector<int64_t> b = expr_values;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  double l1 = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    int64_t v;
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      v = a[i];
    } else if (i >= a.size() || b[j] < a[i]) {
      v = b[j];
    } else {
      v = a[i];
    }
    size_t ca = 0, cb = 0;
    while (i < a.size() && a[i] == v) {
      ++ca;
      ++i;
    }
    while (j < b.size() && b[j] == v) {
      ++cb;
      ++j;
    }
    l1 += std::abs(static_cast<double>(ca) / na -
                   static_cast<double>(cb) / nb);
  }
  return 0.5 * l1;
}

double HistogramDiff(const Histogram& h1, const Histogram& h2) {
  if (h1.empty() || h2.empty()) return 0.0;
  const double f1 = h1.total_frequency();
  const double f2 = h2.total_frequency();
  if (f1 <= 0.0 || f2 <= 0.0) return 0.0;

  std::vector<int64_t> cuts;
  for (const Histogram* h : {&h1, &h2}) {
    for (const Bucket& b : h->buckets()) {
      cuts.push_back(b.lo);
      cuts.push_back(b.hi + 1);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  double l1 = 0.0;
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    const int64_t lo = cuts[k];
    const int64_t hi = cuts[k + 1] - 1;
    // Mass of each normalized distribution in [lo, hi].
    const double p1 = h1.RangeSelectivity(lo, hi) / f1;
    const double p2 = h2.RangeSelectivity(lo, hi) / f2;
    l1 += std::abs(p1 - p2);
  }
  return std::min(1.0, 0.5 * l1);
}

}  // namespace condsel
