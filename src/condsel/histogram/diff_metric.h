// The diff divergence of Section 3.5.
//
// diff compares the distribution of an attribute on its base table with
// its distribution on the result of a query expression:
//   diff = 1/2 * sum_x | f_base(x)/|R|  -  f_expr(x)/|T'| |
// (half the L1 / total-variation distance between the two normalized
// frequency vectors). 0 means identical distributions (the expression adds
// no information over the base histogram, Example 4); values near 1 mean
// the expression reshapes the attribute heavily.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/histogram/histogram.h"

namespace condsel {

// Exact diff from raw value vectors (non-NULL values with multiplicity).
// Used at SIT-build time, when the expression result is materialized
// anyway. Either vector may be empty, in which case diff is 0 (an empty
// result carries no distributional information).
double ExactDiff(const std::vector<int64_t>& base_values,
                 const std::vector<int64_t>& expr_values);

// Histogram-level approximation of the same quantity (the paper's
// suggested implementation): aligns bucket boundaries and accumulates
// |p1 - p2| per aligned interval over the normalized distributions.
double HistogramDiff(const Histogram& h1, const Histogram& h2);

}  // namespace condsel

