#include <cstdint>

#include "condsel/histogram/builders.h"
#include "condsel/histogram/internal.h"

namespace condsel {

Histogram BuildEquiDepth(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets) {
  using histogram_internal::MakeBucket;
  const auto runs =
      histogram_internal::PrepareRuns(values, source_cardinality, max_buckets);
  if (runs.empty()) return Histogram({}, source_cardinality);

  uint64_t total = 0;
  for (const auto& r : runs) total += r.second;
  const double target =
      static_cast<double>(total) / static_cast<double>(max_buckets);

  std::vector<Bucket> buckets;
  size_t begin = 0;
  uint64_t in_bucket = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    in_bucket += runs[i].second;
    const bool last = (i + 1 == runs.size());
    const bool full = static_cast<double>(in_bucket) >= target &&
                      static_cast<int>(buckets.size()) < max_buckets - 1;
    if (last || full) {
      buckets.push_back(MakeBucket(runs, begin, i + 1, source_cardinality));
      begin = i + 1;
      in_bucket = 0;
    }
  }
  return Histogram(std::move(buckets), source_cardinality);
}

}  // namespace condsel
