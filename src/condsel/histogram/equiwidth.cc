#include <cstdint>

#include "condsel/common/macros.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/internal.h"

namespace condsel {

Histogram BuildEquiWidth(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets) {
  using histogram_internal::MakeBucket;
  const auto runs =
      histogram_internal::PrepareRuns(values, source_cardinality, max_buckets);
  if (runs.empty()) return Histogram({}, source_cardinality);

  const int64_t lo = runs.front().first;
  const int64_t hi = runs.back().first;
  // Arithmetic in double: hi - lo + 1 overflows int64 when the column
  // domain spans most of the representable range.
  const double width = (static_cast<double>(hi) - static_cast<double>(lo) +
                        1.0) /
                       static_cast<double>(max_buckets);

  std::vector<Bucket> buckets;
  size_t begin = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const bool last = (i + 1 == runs.size());
    // Close the bucket when the next run falls past this bucket's right
    // edge (value-domain based, unlike equi-depth's count-based rule).
    auto bucket_index = [&](int64_t v) {
      return static_cast<int64_t>(
          (static_cast<double>(v) - static_cast<double>(lo)) / width);
    };
    const bool next_outside =
        !last && bucket_index(runs[i + 1].first) > bucket_index(runs[i].first);
    if (last || next_outside) {
      buckets.push_back(MakeBucket(runs, begin, i + 1, source_cardinality));
      begin = i + 1;
    }
  }
  return Histogram(std::move(buckets), source_cardinality);
}

Histogram BuildHistogram(HistogramType type, std::vector<int64_t> values,
                         double source_cardinality, int max_buckets) {
  switch (type) {
    case HistogramType::kMaxDiff:
      return BuildMaxDiff(std::move(values), source_cardinality, max_buckets);
    case HistogramType::kEquiDepth:
      return BuildEquiDepth(std::move(values), source_cardinality,
                            max_buckets);
    case HistogramType::kEquiWidth:
      return BuildEquiWidth(std::move(values), source_cardinality,
                            max_buckets);
    case HistogramType::kEndBiased:
      return BuildEndBiased(std::move(values), source_cardinality,
                            max_buckets);
  }
  CONDSEL_CHECK(false);
  return Histogram({}, 0.0);
}

const char* HistogramTypeName(HistogramType type) {
  switch (type) {
    case HistogramType::kMaxDiff:
      return "maxdiff";
    case HistogramType::kEquiDepth:
      return "equidepth";
    case HistogramType::kEquiWidth:
      return "equiwidth";
    case HistogramType::kEndBiased:
      return "endbiased";
  }
  return "?";
}

}  // namespace condsel
