// Unidimensional bucketed histograms.
//
// A histogram summarizes the distribution of one integer attribute over a
// source relation (a base table, or the result of a query expression when
// used as a SIT). Bucket frequencies are stored as *fractions of the source
// relation's total tuple count* (including NULL tuples), so
// RangeSelectivity() directly returns a selectivity in [0, 1] and NULL
// semantics fall out naturally (NULLs occupy no bucket).
//
// Estimation uses the standard continuous-values and uniform-frequency
// assumptions inside a bucket [22].

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace condsel {

struct Bucket {
  int64_t lo = 0;          // inclusive
  int64_t hi = 0;          // inclusive
  double frequency = 0.0;  // fraction of source tuples with value in range
  double distinct = 0.0;   // estimated number of distinct values in range

  // Computed in double: hi - lo + 1 overflows int64 on buckets spanning
  // most of the representable domain.
  double Width() const {
    return static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
  }
};

class Histogram {
 public:
  Histogram() = default;
  // Buckets must be sorted by lo and non-overlapping.
  Histogram(std::vector<Bucket> buckets, double source_cardinality);

  const std::vector<Bucket>& buckets() const { return buckets_; }
  size_t num_buckets() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }

  // Number of tuples of the source relation (including NULL-attribute
  // tuples, which carry no bucket mass).
  double source_cardinality() const { return source_cardinality_; }

  // Sum of bucket frequencies == fraction of source tuples with a non-NULL
  // value; <= 1.
  double total_frequency() const { return total_frequency_; }

  // Estimated fraction of source tuples with value in [lo, hi].
  double RangeSelectivity(int64_t lo, int64_t hi) const;

  // Estimated fraction of source tuples with value == v.
  double EqualsSelectivity(int64_t v) const;

  // Estimated total number of distinct values.
  double TotalDistinct() const;

  // Value domain covered ([min lo, max hi]); {0,-1} when empty.
  std::pair<int64_t, int64_t> Domain() const;

  std::string ToString() const;

 private:
  std::vector<Bucket> buckets_;
  double source_cardinality_ = 0.0;
  double total_frequency_ = 0.0;
};

// Shared by the builders: collapses sorted raw values into (value,count)
// pairs. `values` must be sorted ascending and NULL-free.
std::vector<std::pair<int64_t, uint64_t>> DistinctCounts(
    const std::vector<int64_t>& values);

}  // namespace condsel

