// Histogram builders: MaxDiff(V,A), equi-depth, equi-width.
//
// All builders take the raw (not necessarily sorted) non-NULL values of
// the attribute plus the total tuple count of the source relation
// (`source_cardinality` >= values.size(); the difference is NULL tuples),
// and a bucket budget. The paper's experiments use MaxDiff histograms with
// at most 200 buckets [22]; equi-depth and equi-width exist for the
// histogram-type ablation bench.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/histogram/histogram.h"

namespace condsel {

// MaxDiff(V,A): bucket boundaries at the (max_buckets - 1) largest
// differences in *area* (frequency x spread) between adjacent distinct
// values, so heavy or isolated values tend to get their own buckets.
Histogram BuildMaxDiff(std::vector<int64_t> values, double source_cardinality,
                       int max_buckets);

// Equi-depth: each bucket holds ~ the same number of tuples.
Histogram BuildEquiDepth(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets);

// Equi-width: the value domain is split into equally wide ranges.
Histogram BuildEquiWidth(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets);

// End-biased [Ioannidis]: singleton buckets for the most frequent values,
// range buckets for the rest — strong for equality predicates over
// heavy-hitter values.
Histogram BuildEndBiased(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets);

enum class HistogramType { kMaxDiff, kEquiDepth, kEquiWidth, kEndBiased };

Histogram BuildHistogram(HistogramType type, std::vector<int64_t> values,
                         double source_cardinality, int max_buckets);

const char* HistogramTypeName(HistogramType type);

}  // namespace condsel

