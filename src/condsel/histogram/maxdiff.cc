#include <algorithm>
#include <cmath>
#include <cstdint>

#include "condsel/common/macros.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/internal.h"

namespace condsel {
namespace histogram_internal {

Bucket MakeBucket(const std::vector<std::pair<int64_t, uint64_t>>& runs,
                  size_t begin, size_t end, double source_cardinality) {
  Bucket b;
  b.lo = runs[begin].first;
  b.hi = runs[end - 1].first;
  uint64_t count = 0;
  for (size_t i = begin; i < end; ++i) count += runs[i].second;
  b.frequency = source_cardinality > 0.0
                    ? static_cast<double>(count) / source_cardinality
                    : 0.0;
  b.distinct = static_cast<double>(end - begin);
  return b;
}

std::vector<std::pair<int64_t, uint64_t>> PrepareRuns(
    std::vector<int64_t>& values, double source_cardinality,
    int max_buckets) {
  CONDSEL_CHECK(max_buckets >= 1);
  CONDSEL_CHECK(source_cardinality >= static_cast<double>(values.size()));
  std::sort(values.begin(), values.end());
  return DistinctCounts(values);
}

}  // namespace histogram_internal

Histogram BuildMaxDiff(std::vector<int64_t> values, double source_cardinality,
                       int max_buckets) {
  using histogram_internal::MakeBucket;
  const auto runs =
      histogram_internal::PrepareRuns(values, source_cardinality, max_buckets);
  if (runs.empty()) return Histogram({}, source_cardinality);

  // Area of distinct value i: frequency(i) * spread(i), where spread is
  // the gap to the next distinct value (the last value gets the average
  // spread). Boundaries go after the (max_buckets - 1) largest areas.
  // Spreads are differences of arbitrary int64 values: compute in double
  // so extreme domains cannot overflow.
  const size_t d = runs.size();
  std::vector<double> area(d);
  double avg_spread = 1.0;
  if (d > 1) {
    avg_spread = (static_cast<double>(runs.back().first) -
                  static_cast<double>(runs.front().first)) /
                 static_cast<double>(d - 1);
  }
  for (size_t i = 0; i < d; ++i) {
    const double spread =
        (i + 1 < d) ? static_cast<double>(runs[i + 1].first) -
                          static_cast<double>(runs[i].first)
                    : avg_spread;
    area[i] = static_cast<double>(runs[i].second) * spread;
  }

  // MaxDiff(V,A) proper: a bucket boundary goes between adjacent distinct
  // values i and i+1 where the *difference* in area is largest, so spikes
  // get isolated from both sides. Boundary i means "a bucket ends at run
  // i"; the final run always ends the last bucket.
  std::vector<size_t> order(d - 1);
  for (size_t i = 0; i + 1 < d; ++i) order[i] = i;
  auto delta = [&](size_t i) { return std::abs(area[i + 1] - area[i]); };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (delta(a) != delta(b)) return delta(a) > delta(b);
    return a < b;
  });
  const size_t num_boundaries =
      std::min<size_t>(static_cast<size_t>(max_buckets) - 1, d - 1);
  std::vector<size_t> boundaries(
      order.begin(), order.begin() + static_cast<long>(num_boundaries));
  std::sort(boundaries.begin(), boundaries.end());

  std::vector<Bucket> buckets;
  size_t begin = 0;
  for (size_t b : boundaries) {
    buckets.push_back(MakeBucket(runs, begin, b + 1, source_cardinality));
    begin = b + 1;
  }
  buckets.push_back(MakeBucket(runs, begin, d, source_cardinality));
  return Histogram(std::move(buckets), source_cardinality);
}

}  // namespace condsel
