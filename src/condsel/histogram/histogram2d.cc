#include "condsel/histogram/histogram2d.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/histogram/builders.h"

namespace condsel {

Histogram2d::Histogram2d(std::vector<Bucket2d> buckets,
                         double source_cardinality)
    : buckets_(std::move(buckets)), source_cardinality_(source_cardinality) {
  for (const Bucket2d& b : buckets_) {
    CONDSEL_CHECK(b.x_lo <= b.x_hi);
    CONDSEL_CHECK(b.y_lo <= b.y_hi);
    CONDSEL_CHECK(b.frequency >= 0.0);
    total_frequency_ += b.frequency;
  }
}

double Histogram2d::RangeSelectivity(int64_t x_lo, int64_t x_hi,
                                     int64_t y_lo, int64_t y_hi) const {
  {
    const FaultInjector& fi = FaultInjector::Instance();
    if (fi.armed() && fi.enabled(Fault::kCorruptHistograms)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  if (x_lo > x_hi || y_lo > y_hi) return 0.0;
  double sel = 0.0;
  for (const Bucket2d& b : buckets_) {
    const int64_t ox_lo = std::max(x_lo, b.x_lo);
    const int64_t ox_hi = std::min(x_hi, b.x_hi);
    const int64_t oy_lo = std::max(y_lo, b.y_lo);
    const int64_t oy_hi = std::min(y_hi, b.y_hi);
    if (ox_lo > ox_hi || oy_lo > oy_hi) continue;
    // Double arithmetic: these differences overflow int64 on buckets
    // spanning most of the representable domain.
    auto span = [](int64_t lo, int64_t hi) {
      return static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
    };
    const double fx = span(ox_lo, ox_hi) / span(b.x_lo, b.x_hi);
    const double fy = span(oy_lo, oy_hi) / span(b.y_lo, b.y_hi);
    sel += b.frequency * fx * fy;
  }
  return SanitizeSelectivity(sel);
}

std::string Histogram2d::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Histogram2d(card=%g, cells=%zu, f=%.4f)",
                source_cardinality_, buckets_.size(), total_frequency_);
  return buf;
}

Histogram2d BuildHistogram2d(const std::vector<int64_t>& xs,
                             const std::vector<int64_t>& ys,
                             double source_cardinality, int max_buckets) {
  CONDSEL_CHECK(xs.size() == ys.size());
  CONDSEL_CHECK(max_buckets >= 1);
  if (xs.empty()) return Histogram2d({}, source_cardinality);

  // Phase 1: MaxDiff over x with ~sqrt(budget) buckets.
  const int x_buckets = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(max_buckets))));
  const int y_buckets = std::max(1, max_buckets / x_buckets);
  const Histogram hx =
      BuildMaxDiff(xs, static_cast<double>(xs.size()), x_buckets);

  // Phase 2: per x-slice, MaxDiff over the y values falling in it.
  std::vector<Bucket2d> cells;
  for (const Bucket& bx : hx.buckets()) {
    std::vector<int64_t> slice_ys;
    for (size_t i = 0; i < xs.size(); ++i) {
      if (xs[i] >= bx.lo && xs[i] <= bx.hi) slice_ys.push_back(ys[i]);
    }
    if (slice_ys.empty()) continue;
    const double slice_count = static_cast<double>(slice_ys.size());
    const Histogram hy = BuildMaxDiff(slice_ys, slice_count, y_buckets);
    for (const Bucket& by : hy.buckets()) {
      Bucket2d cell;
      cell.x_lo = bx.lo;
      cell.x_hi = bx.hi;
      cell.y_lo = by.lo;
      cell.y_hi = by.hi;
      cell.frequency =
          by.frequency * slice_count /
          (source_cardinality > 0.0 ? source_cardinality : 1.0);
      cells.push_back(cell);
    }
  }
  return Histogram2d(std::move(cells), source_cardinality);
}

}  // namespace condsel
