#include "condsel/histogram/histogram.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"

namespace condsel {

Histogram::Histogram(std::vector<Bucket> buckets, double source_cardinality)
    : buckets_(std::move(buckets)), source_cardinality_(source_cardinality) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    CONDSEL_CHECK(b.lo <= b.hi);
    CONDSEL_CHECK(b.frequency >= 0.0);
    if (i > 0) CONDSEL_CHECK(buckets_[i - 1].hi < b.lo);
    total_frequency_ += b.frequency;
  }
}

double Histogram::RangeSelectivity(int64_t lo, int64_t hi) const {
  // Fault injection: a flipped bucket produces NaN; emit it here so the
  // downstream sanitization layer (not this accessor) is what tests
  // exercise.
  {
    const FaultInjector& fi = FaultInjector::Instance();
    if (fi.armed() && fi.enabled(Fault::kCorruptHistograms)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  if (lo > hi) return 0.0;
  double sel = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.hi < lo) continue;
    if (b.lo > hi) break;
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    const double frac = (static_cast<double>(ohi) -
                         static_cast<double>(olo) + 1.0) /
                        b.Width();
    sel += b.frequency * frac;
  }
  // Degenerate inputs (frequencies summing past 1 after rounding, widths
  // computed from extreme domains) must not leak outside [0, 1].
  return SanitizeSelectivity(sel);
}

double Histogram::EqualsSelectivity(int64_t v) const {
  for (const Bucket& b : buckets_) {
    if (v < b.lo || v > b.hi) continue;
    // Uniform-frequency assumption: each of the bucket's distinct values
    // carries frequency / distinct mass.
    if (b.distinct <= 0.0) return 0.0;
    return SanitizeSelectivity(b.frequency / b.distinct);
  }
  return 0.0;
}

double Histogram::TotalDistinct() const {
  double d = 0.0;
  for (const Bucket& b : buckets_) d += b.distinct;
  return d;
}

std::pair<int64_t, int64_t> Histogram::Domain() const {
  if (buckets_.empty()) return {0, -1};
  return {buckets_.front().lo, buckets_.back().hi};
}

std::string Histogram::ToString() const {
  std::string s = "Histogram(card=" + std::to_string(source_cardinality_);
  s += ", buckets=[";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s[%" PRId64 ",%" PRId64 "]:f=%.4g,d=%.3g",
                  i > 0 ? " " : "", buckets_[i].lo, buckets_[i].hi,
                  buckets_[i].frequency, buckets_[i].distinct);
    s += buf;
  }
  s += "])";
  return s;
}

std::vector<std::pair<int64_t, uint64_t>> DistinctCounts(
    const std::vector<int64_t>& values) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  for (size_t i = 0; i < values.size();) {
    CONDSEL_DCHECK(i == 0 || values[i - 1] <= values[i]);
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    out.emplace_back(values[i], static_cast<uint64_t>(j - i));
    i = j;
  }
  return out;
}

}  // namespace condsel
