#include "condsel/histogram/histogram_join.h"

#include <algorithm>
#include <vector>

#include "condsel/common/numeric.h"

namespace condsel {
namespace {

// Sub-bucket of `h` restricted to [lo, hi] under the continuous-values
// assumption.
struct Slice {
  double frequency = 0.0;
  double distinct = 0.0;
};

Slice SliceBucket(const Bucket& b, int64_t lo, int64_t hi) {
  Slice s;
  const int64_t olo = std::max(lo, b.lo);
  const int64_t ohi = std::min(hi, b.hi);
  if (olo > ohi) return s;
  const double frac = static_cast<double>(ohi - olo + 1) / b.Width();
  s.frequency = b.frequency * frac;
  s.distinct = b.distinct * frac;
  return s;
}

}  // namespace

JoinEstimate JoinHistograms(const Histogram& h1, const Histogram& h2) {
  JoinEstimate out;
  if (h1.empty() || h2.empty()) {
    out.result = Histogram({}, 0.0);
    return out;
  }

  // Collect the union of bucket boundaries; aligned intervals are the
  // half-open spans between consecutive cut points. Using value cut points
  // [lo, hi] inclusive: interval k is [cuts[k], cuts[k+1] - 1].
  std::vector<int64_t> cuts;
  for (const Histogram* h : {&h1, &h2}) {
    for (const Bucket& b : h->buckets()) {
      cuts.push_back(b.lo);
      cuts.push_back(b.hi + 1);  // exclusive end
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<Bucket> result_buckets;
  double sel = 0.0;
  size_t i1 = 0, i2 = 0;
  for (size_t k = 0; k + 1 < cuts.size(); ++k) {
    const int64_t lo = cuts[k];
    const int64_t hi = cuts[k + 1] - 1;
    // Advance bucket cursors (buckets are sorted).
    while (i1 < h1.num_buckets() && h1.buckets()[i1].hi < lo) ++i1;
    while (i2 < h2.num_buckets() && h2.buckets()[i2].hi < lo) ++i2;
    if (i1 >= h1.num_buckets() || i2 >= h2.num_buckets()) break;
    const Bucket& b1 = h1.buckets()[i1];
    const Bucket& b2 = h2.buckets()[i2];
    if (b1.lo > hi || b2.lo > hi) continue;

    const Slice s1 = SliceBucket(b1, lo, hi);
    const Slice s2 = SliceBucket(b2, lo, hi);
    const double dmax = std::max(s1.distinct, s2.distinct);
    if (dmax <= 0.0 || s1.frequency <= 0.0 || s2.frequency <= 0.0) continue;
    const double contrib = s1.frequency * s2.frequency / dmax;
    sel += contrib;

    Bucket rb;
    rb.lo = lo;
    rb.hi = hi;
    rb.frequency = contrib;  // normalized below
    rb.distinct = std::min(s1.distinct, s2.distinct);
    result_buckets.push_back(rb);
  }

  out.selectivity = SanitizeSelectivity(sel);
  if (sel > 0.0) {
    for (Bucket& b : result_buckets) b.frequency /= sel;
  }
  // Saturate: two near-max source cardinalities would overflow to inf.
  const double join_card = SaturatingMultiply(
      SaturatingMultiply(h1.source_cardinality(), h2.source_cardinality()),
      out.selectivity);
  out.result = Histogram(std::move(result_buckets), join_card);
  return out;
}

}  // namespace condsel
