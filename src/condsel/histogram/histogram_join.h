// Histogram equi-join (Section 3.3 of the paper).
//
// Joining SIT_R(x,..|Q1) with SIT_R(y,..|Q2) on x = y yields both the join
// selectivity Sel(x=y | Q1, Q2) and a new histogram over the (now equal)
// join attribute on the join result, which can estimate further predicates
// on that attribute (the paper's Example 3).
//
// The computation aligns bucket boundaries and, inside each aligned
// interval, applies the containment/uniform-distinct assumption:
//   sel += f1' * f2' / max(d1', d2')
// where primes denote the fraction of the bucket falling in the interval.

#pragma once

#include "condsel/histogram/histogram.h"

namespace condsel {

struct JoinEstimate {
  // Estimated Sel(x = y) over the cross product of the two source
  // relations, i.e. a fraction in [0, 1].
  double selectivity = 0.0;
  // Histogram over the join attribute on the join result. Frequencies are
  // normalized to the estimated join result; source_cardinality is the
  // estimated join cardinality |R1| * |R2| * selectivity.
  Histogram result;
};

JoinEstimate JoinHistograms(const Histogram& h1, const Histogram& h2);

}  // namespace condsel

