// Shared helpers for the histogram builders. Internal to
// condsel/histogram; do not include from outside the module.

#pragma once

#include <cstdint>
#include <vector>

#include "condsel/histogram/histogram.h"

namespace condsel {
namespace histogram_internal {

// Builds one bucket from the distinct-value runs [begin, end).
Bucket MakeBucket(const std::vector<std::pair<int64_t, uint64_t>>& runs,
                  size_t begin, size_t end, double source_cardinality);

// Sorts values and verifies builder preconditions; returns the
// distinct-value runs. Empty result for empty input.
std::vector<std::pair<int64_t, uint64_t>> PrepareRuns(
    std::vector<int64_t>& values, double source_cardinality, int max_buckets);

}  // namespace histogram_internal
}  // namespace condsel

