// Two-dimensional histograms (MHIST-style phased partitioning).
//
// The paper's framework allows SITs over attribute *sets* —
// SIT_R(a1, .., aj | Q) — and its Assumption 1 reasons about replacing a
// two-dimensional histogram with unidimensional ones when independence
// holds. This histogram supports the converse case: when two filter
// attributes are correlated, a 2-d SIT approximates the joint factor
// Sel(f_a, f_b | Q) directly, with no independence assumption between
// the filters.
//
// Construction partitions the x attribute with MaxDiff, then partitions
// each x-slice's y values with MaxDiff (the "phased" MHIST-2 strategy),
// so the bucket budget is split ~sqrt/sqrt across the dimensions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condsel/histogram/histogram.h"

namespace condsel {

struct Bucket2d {
  int64_t x_lo = 0, x_hi = 0;  // inclusive
  int64_t y_lo = 0, y_hi = 0;  // inclusive
  double frequency = 0.0;      // fraction of source tuples in the cell
};

class Histogram2d {
 public:
  Histogram2d() = default;
  Histogram2d(std::vector<Bucket2d> buckets, double source_cardinality);

  const std::vector<Bucket2d>& buckets() const { return buckets_; }
  size_t num_buckets() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }
  double source_cardinality() const { return source_cardinality_; }
  double total_frequency() const { return total_frequency_; }

  // Estimated fraction of source tuples with x in [x_lo, x_hi] and
  // y in [y_lo, y_hi] (continuous assumption within a cell).
  double RangeSelectivity(int64_t x_lo, int64_t x_hi, int64_t y_lo,
                          int64_t y_hi) const;

  std::string ToString() const;

 private:
  std::vector<Bucket2d> buckets_;
  double source_cardinality_ = 0.0;
  double total_frequency_ = 0.0;
};

// Builds a 2-d histogram from paired samples (xs[i], ys[i]) — rows where
// either attribute is NULL must be excluded by the caller; they still
// count into source_cardinality. `max_buckets` is the total cell budget.
Histogram2d BuildHistogram2d(const std::vector<int64_t>& xs,
                             const std::vector<int64_t>& ys,
                             double source_cardinality, int max_buckets);

}  // namespace condsel

