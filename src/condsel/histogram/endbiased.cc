#include <algorithm>
#include <cstdint>

#include "condsel/common/macros.h"
#include "condsel/histogram/builders.h"
#include "condsel/histogram/internal.h"

namespace condsel {

Histogram BuildEndBiased(std::vector<int64_t> values,
                         double source_cardinality, int max_buckets) {
  using histogram_internal::MakeBucket;
  const auto runs =
      histogram_internal::PrepareRuns(values, source_cardinality, max_buckets);
  if (runs.empty()) return Histogram({}, source_cardinality);

  // The (max_buckets - 1) most frequent values get singleton buckets; the
  // remaining values share range buckets split at the singleton gaps —
  // Ioannidis' end-biased layout, strong for equality predicates on
  // heavy hitters.
  const size_t d = runs.size();
  std::vector<size_t> order(d);
  for (size_t i = 0; i < d; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (runs[a].second != runs[b].second) {
      return runs[a].second > runs[b].second;
    }
    return a < b;
  });
  const size_t singles =
      std::min<size_t>(d, std::max<size_t>(1, max_buckets / 2));
  std::vector<bool> is_single(d, false);
  for (size_t k = 0; k < singles; ++k) is_single[order[k]] = true;

  std::vector<Bucket> buckets;
  size_t begin = 0;
  for (size_t i = 0; i < d; ++i) {
    if (!is_single[i]) continue;
    if (begin < i) {
      buckets.push_back(MakeBucket(runs, begin, i, source_cardinality));
    }
    buckets.push_back(MakeBucket(runs, i, i + 1, source_cardinality));
    begin = i + 1;
  }
  if (begin < d) {
    buckets.push_back(MakeBucket(runs, begin, d, source_cardinality));
  }

  // The layout can exceed the budget when singletons split many ranges;
  // merge the lightest adjacent non-singleton pairs until it fits.
  while (static_cast<int>(buckets.size()) > max_buckets &&
         buckets.size() >= 2) {
    size_t best = 0;
    double best_mass = -1.0;
    for (size_t i = 0; i + 1 < buckets.size(); ++i) {
      const double mass = buckets[i].frequency + buckets[i + 1].frequency;
      if (best_mass < 0.0 || mass < best_mass) {
        best_mass = mass;
        best = i;
      }
    }
    buckets[best].hi = buckets[best + 1].hi;
    buckets[best].frequency += buckets[best + 1].frequency;
    buckets[best].distinct += buckets[best + 1].distinct;
    buckets.erase(buckets.begin() + static_cast<long>(best) + 1);
  }
  return Histogram(std::move(buckets), source_cardinality);
}

}  // namespace condsel
