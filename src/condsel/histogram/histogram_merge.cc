#include "condsel/histogram/histogram_merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "condsel/common/macros.h"

namespace condsel {

namespace {

// Exact integer width of [lo, hi] as a double. Computed through uint64
// subtraction: the difference is exact for spans below 2^53 and only then
// rounded once, unlike casting each endpoint to double first, which loses
// up to 1024 near ±2^63 (doubles there are 1024 apart) — enough to make an
// open-ended bucket's width off by a whole kilo-range and overlap
// fractions sum past 1.
double SpanWidth(int64_t lo, int64_t hi) {
  return static_cast<double>(static_cast<uint64_t>(hi) -
                             static_cast<uint64_t>(lo)) +
         1.0;
}

// Coalesces `buckets` down to at most `max_buckets` by merging runs of
// adjacent buckets. Even-count runs keep the pass deterministic and cheap;
// the merged summary is an introspection artifact, not the estimation
// path, so boundary placement finesse buys nothing here.
std::vector<Bucket> Coalesce(std::vector<Bucket> buckets, int max_buckets) {
  const size_t cap = static_cast<size_t>(std::max(1, max_buckets));
  if (buckets.size() <= cap) return buckets;
  const size_t run = (buckets.size() + cap - 1) / cap;
  std::vector<Bucket> out;
  out.reserve(cap);
  for (size_t i = 0; i < buckets.size(); i += run) {
    const size_t j = std::min(buckets.size(), i + run);
    Bucket b = buckets[i];
    for (size_t k = i + 1; k < j; ++k) {
      b.hi = buckets[k].hi;
      // Distinct values in disjoint ranges add exactly; no union estimate
      // needed when concatenating segments of one already-merged summary.
      b.frequency += buckets[k].frequency;
      b.distinct += buckets[k].distinct;
    }
    b.distinct = std::min(b.distinct, SpanWidth(b.lo, b.hi));
    out.push_back(b);
  }
  return out;
}

}  // namespace

Histogram MergeHistograms(const std::vector<const Histogram*>& pieces,
                          int max_buckets) {
  double total_card = 0.0;
  for (const Histogram* p : pieces) {
    CONDSEL_CHECK(p != nullptr);
    total_card += p->source_cardinality();
  }

  // Union of bucket boundaries: each boundary value starts a segment, so
  // every piece bucket covers whole segments and its mass distributes by
  // width fraction under the same uniform assumption the piece itself
  // makes. Open-ended buckets (hi == INT64_MAX) contribute only their lo
  // boundary — the guard below keeps hi + 1 from overflowing — and end at
  // the final, explicitly open-ended segment.
  std::set<int64_t> starts;
  for (const Histogram* p : pieces) {
    for (const Bucket& b : p->buckets()) {
      starts.insert(b.lo);
      if (b.hi < std::numeric_limits<int64_t>::max()) starts.insert(b.hi + 1);
    }
  }
  if (starts.empty() || total_card <= 0.0) {
    return Histogram({}, total_card);
  }

  std::vector<int64_t> edges(starts.begin(), starts.end());
  const size_t num_segments = edges.size();  // last segment is open-ended
  std::vector<Bucket> segments(num_segments);
  for (size_t i = 0; i < num_segments; ++i) {
    segments[i].lo = edges[i];
    segments[i].hi = (i + 1 < num_segments)
                         ? edges[i + 1] - 1
                         : std::numeric_limits<int64_t>::max();
  }

  // Per-segment distinct-count accumulators. The pieces cover disjoint
  // *rows*, not disjoint values: the same key range in every part means
  // the same values over and over, so per-piece distinct contributions
  // must combine sublinearly, not add. Model each piece's d_i distinct
  // values in a width-W segment as uniform draws; the expected union is
  //   W * (1 - Π_i (1 - d_i / W)),
  // capped by both W and Σ d_i. A segment a single piece touches keeps
  // that piece's estimate bit-for-bit (the single-part path estimators
  // compare against). log1p/expm1 keep the complement product accurate
  // when d_i / W underflows (the open-ended tail segment).
  std::vector<double> log_miss(num_segments, 0.0);  // Σ log(1 - d_i/W)
  std::vector<double> sum_distinct(num_segments, 0.0);
  std::vector<int> contributors(num_segments, 0);

  for (const Histogram* p : pieces) {
    const double weight = p->source_cardinality() / total_card;
    if (weight <= 0.0) continue;
    for (const Bucket& b : p->buckets()) {
      const double width = SpanWidth(b.lo, b.hi);
      // Segments covering [b.lo, b.hi]: contiguous, found by binary search.
      size_t i = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), b.lo) -
          edges.begin() - 1);
      for (; i < num_segments && segments[i].lo <= b.hi; ++i) {
        // Clamp in int64 first: the intersection endpoints are exact, and
        // the uint64 subtraction in SpanWidth stays exact for any span
        // below 2^53. Casting endpoints to double first rounds values near
        // 2^63 to the same double, producing overlaps one kilo-range too
        // wide (fractions summing past 1) or negative-width phantoms.
        const int64_t lo_c = std::max(b.lo, segments[i].lo);
        const int64_t hi_c = std::min(b.hi, segments[i].hi);
        if (hi_c < lo_c) continue;
        const double fraction = SpanWidth(lo_c, hi_c) / width;
        segments[i].frequency += weight * b.frequency * fraction;
        const double d = b.distinct * fraction;
        if (d <= 0.0) continue;
        sum_distinct[i] += d;
        const double seg_width = SpanWidth(segments[i].lo, segments[i].hi);
        log_miss[i] += std::log1p(-std::min(d / seg_width, 1.0));
        ++contributors[i];
      }
    }
  }

  std::vector<Bucket> buckets;
  buckets.reserve(num_segments);
  for (size_t i = 0; i < num_segments; ++i) {
    Bucket& s = segments[i];
    const double seg_width = SpanWidth(s.lo, s.hi);
    if (contributors[i] <= 1) {
      s.distinct = sum_distinct[i];
    } else {
      const double unioned = seg_width * -std::expm1(log_miss[i]);
      s.distinct = std::min(sum_distinct[i], unioned);
    }
    if (s.frequency <= 0.0 && s.distinct <= 0.0) continue;
    s.distinct = std::min(s.distinct, seg_width);
    buckets.push_back(s);
  }
  return Histogram(Coalesce(std::move(buckets), max_buckets), total_card);
}

}  // namespace condsel
