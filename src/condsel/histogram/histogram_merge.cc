#include "condsel/histogram/histogram_merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "condsel/common/macros.h"

namespace condsel {

namespace {

// Coalesces `buckets` down to at most `max_buckets` by merging runs of
// adjacent buckets. Even-count runs keep the pass deterministic and cheap;
// the merged summary is an introspection artifact, not the estimation
// path, so boundary placement finesse buys nothing here.
std::vector<Bucket> Coalesce(std::vector<Bucket> buckets, int max_buckets) {
  const size_t cap = static_cast<size_t>(std::max(1, max_buckets));
  if (buckets.size() <= cap) return buckets;
  const size_t run = (buckets.size() + cap - 1) / cap;
  std::vector<Bucket> out;
  out.reserve(cap);
  for (size_t i = 0; i < buckets.size(); i += run) {
    const size_t j = std::min(buckets.size(), i + run);
    Bucket b = buckets[i];
    for (size_t k = i + 1; k < j; ++k) {
      b.hi = buckets[k].hi;
      b.frequency += buckets[k].frequency;
      b.distinct += buckets[k].distinct;
    }
    b.distinct = std::min(b.distinct, b.Width());
    out.push_back(b);
  }
  return out;
}

}  // namespace

Histogram MergeHistograms(const std::vector<const Histogram*>& pieces,
                          int max_buckets) {
  double total_card = 0.0;
  for (const Histogram* p : pieces) {
    CONDSEL_CHECK(p != nullptr);
    total_card += p->source_cardinality();
  }

  // Union of bucket boundaries: each boundary value starts a segment, so
  // every piece bucket covers whole segments and its mass distributes by
  // width fraction under the same uniform assumption the piece itself
  // makes.
  std::set<int64_t> starts;
  for (const Histogram* p : pieces) {
    for (const Bucket& b : p->buckets()) {
      starts.insert(b.lo);
      if (b.hi < std::numeric_limits<int64_t>::max()) starts.insert(b.hi + 1);
    }
  }
  if (starts.empty() || total_card <= 0.0) {
    return Histogram({}, total_card);
  }

  std::vector<int64_t> edges(starts.begin(), starts.end());
  const size_t num_segments = edges.size();  // last segment is open-ended
  std::vector<Bucket> segments(num_segments);
  for (size_t i = 0; i < num_segments; ++i) {
    segments[i].lo = edges[i];
    segments[i].hi = (i + 1 < num_segments)
                         ? edges[i + 1] - 1
                         : std::numeric_limits<int64_t>::max();
  }

  for (const Histogram* p : pieces) {
    const double weight = p->source_cardinality() / total_card;
    if (weight <= 0.0) continue;
    for (const Bucket& b : p->buckets()) {
      // Segments covering [b.lo, b.hi]: contiguous, found by binary search.
      size_t i = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), b.lo) -
          edges.begin() - 1);
      for (; i < num_segments && segments[i].lo <= b.hi; ++i) {
        const double overlap =
            std::min(static_cast<double>(b.hi),
                     static_cast<double>(segments[i].hi)) -
            std::max(static_cast<double>(b.lo),
                     static_cast<double>(segments[i].lo)) +
            1.0;
        const double fraction = overlap / b.Width();
        segments[i].frequency += weight * b.frequency * fraction;
        segments[i].distinct += b.distinct * fraction;
      }
    }
  }

  std::vector<Bucket> buckets;
  buckets.reserve(num_segments);
  for (Bucket& s : segments) {
    if (s.frequency <= 0.0 && s.distinct <= 0.0) continue;
    s.distinct = std::min(s.distinct, s.Width());
    buckets.push_back(s);
  }
  return Histogram(Coalesce(std::move(buckets), max_buckets), total_card);
}

}  // namespace condsel
