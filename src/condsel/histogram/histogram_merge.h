// Merging unidimensional histograms built over disjoint row sets.
//
// A partitioned statistic (catalog/part_stats.h) keeps one histogram per
// part of the owning table; the pieces describe disjoint slices of the
// same source relation, so the union's distribution is the cardinality-
// weighted mixture of the pieces. MergeHistograms materializes that
// mixture as an ordinary Histogram over the union of the pieces' bucket
// boundaries (coalesced down to `max_buckets`), for consumers that need a
// single summary — introspection, distinct-count math, serialization of a
// flat view. Selectivity estimation does NOT go through the merged
// summary: AtomicSelectivityProvider merges per-piece estimates directly,
// which is exact where this summary re-applies the uniform-bucket
// assumption.

#pragma once

#include <vector>

#include "condsel/histogram/histogram.h"

namespace condsel {

// Merges pieces built over disjoint row sets of one relation. The result's
// source_cardinality is the sum of the pieces'; each piece contributes
// frequency mass proportional to its cardinality. Pieces must be sane
// (finite, non-negative cardinalities and frequencies) — callers holding
// untrusted pieces validate first (PartStatsSet does). Null/empty input
// merges to an empty histogram.
Histogram MergeHistograms(const std::vector<const Histogram*>& pieces,
                          int max_buckets);

}  // namespace condsel
