// Constructs SITs by exact evaluation of their generating expression.
//
// Mirrors how a real system would create statistics on a view: execute (or
// sample) the expression, build the histogram over the projected attribute,
// and record the diff divergence against the base-table distribution
// (Section 3.5 notes diff is computed once, at creation time).

#pragma once

#include <vector>

#include "condsel/exec/evaluator.h"
#include "condsel/histogram/builders.h"
#include "condsel/sit/sit.h"

namespace condsel {

struct SitBuildOptions {
  HistogramType histogram_type = HistogramType::kMaxDiff;
  int max_buckets = 200;  // the paper's setting
};

class SitBuilder {
 public:
  SitBuilder(Evaluator* evaluator, SitBuildOptions options);

  // Builds SIT(attr | expression). An empty expression builds the base
  // histogram. The returned Sit has id == -1 (assigned by SitPool).
  Sit Build(ColumnRef attr, std::vector<Predicate> expression) const;

  // Builds several SITs sharing one generating expression, evaluating the
  // expression only once (pool generation creates many SITs per
  // expression). `expression` must be non-empty and connected, and every
  // attribute's table must appear in it.
  std::vector<Sit> BuildMany(const std::vector<ColumnRef>& attrs,
                             std::vector<Predicate> expression) const;

  // Builds the multidimensional SIT(a, b | expression) over the joint
  // distribution of two attributes. With an empty expression both
  // attributes must live in the same table (a base-table 2-d histogram);
  // otherwise both tables must appear in the (connected) expression. The
  // SIT's diff records the joint-vs-product-of-marginals divergence.
  Sit Build2d(ColumnRef a, ColumnRef b,
              std::vector<Predicate> expression) const;

  // Part-scoped builds: the same statistics with the owning table —
  // attr.table (every attrs entry for BuildManyForRange) — restricted to
  // rows [row_begin, row_end), i.e. one part's slice. Other expression
  // tables contribute all rows, so the pieces over a table's parts
  // partition the expression result exactly. The diff divergence is
  // likewise computed against the part's own base distribution. A
  // full-range restriction reproduces the unrestricted build bit for bit.
  Sit BuildForRange(ColumnRef attr, std::vector<Predicate> expression,
                    size_t row_begin, size_t row_end) const;
  std::vector<Sit> BuildManyForRange(const std::vector<ColumnRef>& attrs,
                                     std::vector<Predicate> expression,
                                     size_t row_begin, size_t row_end) const;

  const Catalog& catalog() const;

 private:
  std::vector<Sit> BuildManyImpl(const std::vector<ColumnRef>& attrs,
                                 std::vector<Predicate> expression,
                                 const RowRestriction* restriction) const;

  Evaluator* evaluator_;
  SitBuildOptions options_;
};

}  // namespace condsel

