// The pool of available SITs, and generation of the paper's J_i pools.
//
// Section 5 ("Available SITs"): pool J_i contains every SIT_R(a | Q) where
// Q is a set of at most i join predicates and both Q and a appear
// syntactically in some workload query; J_0 holds exactly the base-table
// histograms. We additionally require Q to be a connected join expression
// that reaches a's table (other combinations do not describe a meaningful
// query expression for a), and we always include base histograms for every
// column any workload query references, since join predicates need base
// histograms on their endpoints even in the richest pools.

#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "condsel/query/query.h"
#include "condsel/sit/sit.h"
#include "condsel/sit/sit_builder.h"

namespace condsel {

class SitPool {
 public:
  // Adds a SIT (deduplicating by (attr, expression)); returns its id.
  SitId Add(Sit sit);

  int32_t size() const { return static_cast<int32_t>(sits_.size()); }
  const Sit& sit(SitId id) const;
  const std::vector<Sit>& sits() const { return sits_; }

  // The base histogram for `col`, or nullptr if absent.
  const Sit* FindBase(ColumnRef col) const;

  // True if a SIT with this (attr, canonical expression) already exists.
  bool Has(ColumnRef attr, const std::vector<Predicate>& expression) const;

  // Statistics generation this pool was built from (0 for pools outside
  // the delta-maintenance path). Estimate caches keyed by predicate sets
  // bind to this stamp: two pools with different generations may assign
  // the same SitId to different statistics contents.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t g) { generation_ = g; }

 private:
  std::vector<Sit> sits_;
  uint64_t generation_ = 0;
  std::map<std::tuple<ColumnRef, ColumnRef, std::vector<Predicate>>,
           SitId>
      index_;
};

// Builds pool J_i for `workload`. For i == 0 the pool holds base
// histograms only. Base histograms cover every column referenced by any
// workload query (filter and join columns alike).
SitPool GenerateSitPool(const std::vector<Query>& workload, int max_join_preds,
                        const SitBuilder& builder);

}  // namespace condsel

