#include "condsel/sit/sit_matcher.h"

#include <algorithm>

#include "condsel/common/fault_injector.h"
#include "condsel/common/macros.h"

namespace condsel {

SitMatcher::SitMatcher(const SitPool* pool) : pool_(pool) {
  CONDSEL_CHECK(pool != nullptr);
}

void SitMatcher::BindQuery(const Query* query) {
  CONDSEL_CHECK(query != nullptr);
  query_ = query;
  applicable_.clear();
  applicable2_.clear();

  // Map each pool SIT's expression onto the query's predicate indices.
  // A SIT applies iff every expression predicate occurs in the query.
  for (const Sit& sit : pool_->sits()) {
    PredSet mask = 0;
    bool ok = true;
    for (const Predicate& ep : sit.expression) {
      int found = -1;
      for (int i = 0; i < query->num_predicates(); ++i) {
        if (query->predicate(i) == ep) {
          found = i;
          break;
        }
      }
      if (found < 0) {
        ok = false;
        break;
      }
      mask = With(mask, found);
    }
    if (!ok) continue;
    if (sit.is_multidim()) {
      applicable2_[{sit.attr, sit.attr2}].push_back(
          SitCandidate{&sit, mask});
    } else {
      applicable_[sit.attr].push_back(SitCandidate{&sit, mask});
    }
  }
}

CONDSEL_HOT void SitMatcher::FilterMaximalInto(
    const std::vector<SitCandidate>* list, PredSet cond,
    CallAccounting accounting, std::vector<SitCandidate>* out) {
  out->clear();
  if (accounting == CallAccounting::kIndexed) {
    ++num_calls_;
  } else {
    // One probe per applicable SIT examined (at least one for the probe
    // that finds nothing).
    num_calls_ +=
        list == nullptr ? 1 : std::max<size_t>(1, list->size());
  }
  if (list == nullptr) return;
  // Fault injection: behave as if no SIT (not even a base histogram)
  // matched, simulating a pool that failed to load. Downstream must
  // degrade, never abort.
  {
    const FaultInjector& fi = FaultInjector::Instance();
    if (fi.armed() && fi.enabled(Fault::kDropSits)) return;
  }
  // Consistency (rule 2) and maximality (rule 3) in one pass: keep
  // candidates with expr ⊆ cond whose expression no other consistent
  // candidate's expression strictly contains. Applicability lists are
  // short (SITs per attribute), so the quadratic domination scan beats
  // materializing the consistent subset first.
  for (const SitCandidate& c : *list) {
    if (!IsSubset(c.expr_mask, cond)) continue;
    bool dominated = false;
    for (const SitCandidate& d : *list) {
      if (!IsSubset(d.expr_mask, cond)) continue;
      if (d.sit != c.sit && IsSubset(c.expr_mask, d.expr_mask) &&
          c.expr_mask != d.expr_mask) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out->push_back(c);
  }
}

void SitMatcher::CandidatesInto(ColumnRef attr, PredSet cond,
                                CallAccounting accounting,
                                std::vector<SitCandidate>* out) {
  CONDSEL_CHECK(query_ != nullptr);
  auto it = applicable_.find(attr);
  FilterMaximalInto(it == applicable_.end() ? nullptr : &it->second, cond,
                    accounting, out);
}

void SitMatcher::Candidates2Into(ColumnRef a, ColumnRef b, PredSet cond,
                                 CallAccounting accounting,
                                 std::vector<SitCandidate>* out) {
  CONDSEL_CHECK(query_ != nullptr);
  if (b < a) std::swap(a, b);
  auto it = applicable2_.find({a, b});
  FilterMaximalInto(it == applicable2_.end() ? nullptr : &it->second, cond,
                    accounting, out);
}

std::vector<SitCandidate> SitMatcher::Candidates(
    ColumnRef attr, PredSet cond, CallAccounting accounting) {
  std::vector<SitCandidate> out;
  CandidatesInto(attr, cond, accounting, &out);
  return out;
}

std::vector<SitCandidate> SitMatcher::Candidates2(
    ColumnRef a, ColumnRef b, PredSet cond, CallAccounting accounting) {
  std::vector<SitCandidate> out;
  Candidates2Into(a, b, cond, accounting, &out);
  return out;
}

}  // namespace condsel
