// Candidate-SIT matching (Section 3.3).
//
// For a factor Sel_R(P | Q) with a predicate over attribute `a`, the
// candidate SITs are every SIT(a | Q') with (1) the right attribute,
// (2) Q' a subset of Q ("consistent with the input query"; independence is
// assumed between P and Q - Q'), and (3) Q' maximal among the available
// SITs. This plays the role of the view-matching routine shared by both
// getSelectivity (line 12) and the GVM baseline, and keeps the call
// counter that Figure 6 reports.

#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <vector>

#include "condsel/query/query.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

struct SitCandidate {
  const Sit* sit = nullptr;
  // The SIT's expression as a bitmask over the bound query's predicates
  // (Q' above). Empty for base histograms.
  PredSet expr_mask = 0;
};

// Fixed-capacity list of the SITs chosen for one factor: a single SIT for
// filter shapes, one per side for a join — never more than two. Inline
// storage replaces std::vector in FactorChoice so constructing, copying,
// and memoizing a choice performs no heap allocation; the
// initializer_list constructor keeps `{c}` / `{cl, cr}` call sites and
// test literals working unchanged.
class SitVec {
 public:
  static constexpr size_t kCapacity = 2;

  SitVec() = default;
  SitVec(std::initializer_list<SitCandidate> list) {  // NOLINT
    for (const SitCandidate& c : list) Append(c);
  }

  void Append(const SitCandidate& c) { data_[size_++] = c; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const SitCandidate& operator[](size_t i) const { return data_[i]; }
  SitCandidate& operator[](size_t i) { return data_[i]; }
  const SitCandidate& front() const { return data_[0]; }
  const SitCandidate* begin() const { return data_; }
  const SitCandidate* end() const { return data_ + size_; }

 private:
  SitCandidate data_[kCapacity];
  size_t size_ = 0;
};

class SitMatcher {
 public:
  explicit SitMatcher(const SitPool* pool);

  // Binds a query: precomputes, per attribute, which pool SITs are
  // applicable (their whole expression appears among the query's
  // predicates) and the corresponding predicate bitmask.
  void BindQuery(const Query* query);

  // How Candidates() charges the view-matching call counter.
  //  - kIndexed: one call per invocation. getSelectivity's line-12
  //    subroutine retrieves a factor's qualifying SITs with one indexed
  //    lookup over the per-attribute applicability lists built by
  //    BindQuery.
  //  - kPerSit: one call per applicable SIT examined. GVM's greedy
  //    procedure ([4]) tests each materialized-view candidate against
  //    the current plan individually, so each probe is a separate
  //    view-matching invocation.
  enum class CallAccounting { kIndexed, kPerSit };

  // View matching: candidates for attribute `attr` conditioned on `cond`.
  // Returns all applicable SITs with expr_mask ⊆ cond that are maximal
  // (no other candidate's expression strictly contains theirs). The base
  // histogram (expr_mask == 0) qualifies only when nothing else does or
  // nothing strictly contains it — i.e. it is subject to the same
  // maximality rule. Charges the call counter per `accounting`.
  std::vector<SitCandidate> Candidates(
      ColumnRef attr, PredSet cond,
      CallAccounting accounting = CallAccounting::kIndexed);

  // View matching for multidimensional SITs: candidates covering the
  // attribute pair {a, b} (order-insensitive), consistent with `cond`,
  // maximal. Same counter semantics as Candidates().
  std::vector<SitCandidate> Candidates2(
      ColumnRef a, ColumnRef b, PredSet cond,
      CallAccounting accounting = CallAccounting::kIndexed);

  // Scratch-filling variants for the estimation hot path: `out` is
  // cleared and refilled, retaining its capacity, so a caller reusing one
  // vector across calls reaches a steady state of zero allocations per
  // lookup. Identical contents and order to the returning forms.
  void CandidatesInto(ColumnRef attr, PredSet cond,
                      CallAccounting accounting,
                      std::vector<SitCandidate>* out);
  void Candidates2Into(ColumnRef a, ColumnRef b, PredSet cond,
                       CallAccounting accounting,
                       std::vector<SitCandidate>* out);

  uint64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCounter() { num_calls_.store(0, std::memory_order_relaxed); }

  const SitPool& pool() const { return *pool_; }

 private:
  // Shared consistency + maximality filtering over an applicability list,
  // single pass, no intermediate storage beyond `out`.
  void FilterMaximalInto(const std::vector<SitCandidate>* list, PredSet cond,
                         CallAccounting accounting,
                         std::vector<SitCandidate>* out);

  const SitPool* pool_;
  const Query* query_ = nullptr;
  // attr -> (sit, expr mask), applicable to the bound query.
  std::map<ColumnRef, std::vector<SitCandidate>> applicable_;
  // (attr, attr2) with attr <= attr2 -> multidimensional candidates.
  std::map<std::pair<ColumnRef, ColumnRef>, std::vector<SitCandidate>>
      applicable2_;
  // Atomic so the parallel getSelectivity driver's workers can charge
  // view-matching calls concurrently; the applicability maps above are
  // read-only once BindQuery returns, so lookups need no lock.
  std::atomic<uint64_t> num_calls_{0};
};

}  // namespace condsel

