#include "condsel/sit/sit_advisor.h"

#include "condsel/catalog/catalog.h"

#include <limits>
#include <map>
#include <set>

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

namespace condsel {
namespace {

// Total Diff score of the workload under `pool` (sum over queries of the
// best decomposition's error for the full query).
double WorkloadScore(const std::vector<Query>& workload,
                     const SitPool& pool) {
  DiffError diff;
  double total = 0.0;
  for (const Query& q : workload) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff);
    GetSelectivity gs(&q, &fa);
    total += gs.Compute(q.all_predicates()).error;
  }
  return total;
}

// Builds the candidate universe (without bases).
std::vector<Sit> BuildCandidates(const std::vector<Query>& workload,
                                 const SitBuilder& builder,
                                 const AdvisorOptions& opt) {
  // Reuse the pool generator for the 1-d universe, then strip bases.
  const SitPool universe =
      GenerateSitPool(workload, opt.max_join_preds, builder);
  std::vector<Sit> candidates;
  for (const Sit& s : universe.sits()) {
    if (!s.is_base()) candidates.push_back(s);
  }

  if (opt.consider_multidim) {
    std::set<std::pair<ColumnRef, ColumnRef>> pairs;
    for (const Query& q : workload) {
      const std::vector<int> fs = SetElements(q.filter_predicates());
      for (size_t a = 0; a < fs.size(); ++a) {
        for (size_t b = a + 1; b < fs.size(); ++b) {
          ColumnRef ca = q.predicate(fs[a]).column();
          ColumnRef cb = q.predicate(fs[b]).column();
          if (ca.table != cb.table) continue;  // base 2-d SITs only
          if (cb < ca) std::swap(ca, cb);
          pairs.insert({ca, cb});
        }
      }
    }
    for (const auto& [ca, cb] : pairs) {
      candidates.push_back(builder.Build2d(ca, cb, {}));
    }
  }
  return candidates;
}

// Runs the workload once more under the final pool, recording derivations,
// and counts how many atomic factors each statistic supplied — the
// provenance-backed citation report of AdvisorResult::citations.
std::vector<SitCitation> CollectCitations(const std::vector<Query>& workload,
                                          const SitPool& pool) {
  std::map<SitId, SitCitation> by_id;
  for (const Sit& s : pool.sits()) {
    SitCitation c;
    c.sit_id = s.id;
    by_id.emplace(s.id, std::move(c));
  }
  DiffError diff;
  for (const Query& q : workload) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider provider(&matcher, &diff);
    GetSelectivity gs(&q, &provider);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    for (const DerivationNode& node : dag.nodes()) {
      for (const SitApplication& app : node.sits) {
        auto it = by_id.find(app.sit_id);
        if (it == by_id.end()) continue;
        ++it->second.uses;
        if (it->second.source.empty() && app.provenance.recorded) {
          it->second.source = app.provenance.source;
          it->second.kind = app.provenance.histogram_kind;
        }
      }
      for (const DerivationAtom& atom : node.atoms) {
        if (!atom.has_stat) continue;
        auto it = by_id.find(atom.sit.sit_id);
        if (it == by_id.end()) continue;
        ++it->second.uses;
        if (it->second.source.empty() && atom.sit.provenance.recorded) {
          it->second.source = atom.sit.provenance.source;
          it->second.kind = atom.sit.provenance.histogram_kind;
        }
      }
    }
  }
  std::vector<SitCitation> out;
  out.reserve(by_id.size());
  for (auto& [id, citation] : by_id) {
    (void)id;
    out.push_back(std::move(citation));
  }
  return out;
}

}  // namespace

AdvisorResult AdviseSits(const std::vector<Query>& workload,
                         const SitBuilder& builder,
                         const AdvisorOptions& options) {
  CONDSEL_CHECK(options.budget >= 0);
  AdvisorResult result;

  // Base histograms: always included — for *every* catalog column, as a
  // real system maintains base statistics independent of any workload.
  const Catalog& catalog = builder.catalog();
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    for (ColumnId c = 0; c < catalog.table(t).num_columns(); ++c) {
      result.pool.Add(builder.Build(ColumnRef{t, c}, {}));
    }
  }
  result.initial_score = WorkloadScore(workload, result.pool);

  std::vector<Sit> candidates = BuildCandidates(workload, builder, options);
  std::vector<bool> used(candidates.size(), false);

  double current = result.initial_score;
  for (int round = 0; round < options.budget; ++round) {
    int best = -1;
    double best_score = current;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      SitPool trial = result.pool;
      trial.Add(candidates[c]);
      const double score = WorkloadScore(workload, trial);
      if (score < best_score - 1e-12) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;  // no candidate improves the score
    used[static_cast<size_t>(best)] = true;
    const SitId id = result.pool.Add(candidates[static_cast<size_t>(best)]);
    result.steps.push_back(AdvisorStep{id, best_score});
    current = best_score;
  }
  result.citations = CollectCitations(workload, result.pool);
  return result;
}

}  // namespace condsel
