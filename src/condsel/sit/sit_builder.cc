#include "condsel/sit/sit_builder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "condsel/common/macros.h"
#include "condsel/histogram/diff_metric.h"
#include "condsel/query/join_graph.h"
#include "condsel/query/query.h"

namespace condsel {

SitBuilder::SitBuilder(Evaluator* evaluator, SitBuildOptions options)
    : evaluator_(evaluator), options_(options) {
  CONDSEL_CHECK(evaluator != nullptr);
  // User-supplied configuration: clamp rather than abort, so the histogram
  // builders' max_buckets >= 1 precondition stays an internal invariant.
  options_.max_buckets = std::max(1, options_.max_buckets);
}

const Catalog& SitBuilder::catalog() const { return evaluator_->catalog(); }

Sit SitBuilder::Build(ColumnRef attr,
                      std::vector<Predicate> expression) const {
  if (expression.empty()) {
    const ColumnProjection base =
        evaluator_->ProjectColumn(Query(std::vector<Predicate>{}), 0, attr);
    Sit sit;
    sit.attr = attr;
    sit.histogram =
        BuildHistogram(options_.histogram_type, base.values,
                       static_cast<double>(base.total_tuples),
                       options_.max_buckets);
    sit.diff = 0.0;
    return sit;
  }
  std::vector<Sit> sits = BuildMany({attr}, std::move(expression));
  return std::move(sits[0]);
}

std::vector<Sit> SitBuilder::BuildMany(
    const std::vector<ColumnRef>& attrs,
    std::vector<Predicate> expression) const {
  return BuildManyImpl(attrs, std::move(expression), /*restriction=*/nullptr);
}

std::vector<Sit> SitBuilder::BuildManyImpl(
    const std::vector<ColumnRef>& attrs, std::vector<Predicate> expression,
    const RowRestriction* restriction) const {
  CONDSEL_CHECK(!expression.empty());
  std::sort(expression.begin(), expression.end());

  const Query expr_query(expression);
  const PredSet all = expr_query.all_predicates();
  CONDSEL_CHECK_MSG(
      ConnectedComponents(expr_query.predicates(), all).size() == 1,
      "SIT expression must be connected");

  // Evaluate the expression once; project each attribute from the
  // materialized result.
  const JoinResult jr =
      evaluator_->EvaluateComponent(expr_query, all, restriction);
  const size_t width = jr.tables.size();
  const Catalog& catalog = evaluator_->catalog();

  std::vector<Sit> out;
  out.reserve(attrs.size());
  for (const ColumnRef& attr : attrs) {
    // Under a restriction the attribute must live in the restricted
    // table: that is what makes the pieces over a table's parts a
    // partition of the expression result.
    CONDSEL_CHECK(restriction == nullptr ||
                  attr.table == restriction->table);
    const int slot = jr.TableSlot(attr.table);
    CONDSEL_CHECK_MSG(slot >= 0,
                      "SIT attribute's table must appear in its expression");
    const Table& t = catalog.table(attr.table);
    std::vector<int64_t> values;
    values.reserve(jr.num_tuples);
    for (size_t i = 0; i < jr.num_tuples; ++i) {
      const int64_t v = t.value(
          jr.tuple_rows[i * width + static_cast<size_t>(slot)], attr.column);
      if (!IsNull(v)) values.push_back(v);
    }

    Sit sit;
    sit.attr = attr;
    sit.expression = expression;
    const ColumnProjection base = evaluator_->ProjectColumn(
        Query(std::vector<Predicate>{}), 0, attr, restriction);
    sit.histogram = BuildHistogram(options_.histogram_type, values,
                                   static_cast<double>(jr.num_tuples),
                                   options_.max_buckets);
    sit.diff = ExactDiff(base.values, values);
    out.push_back(std::move(sit));
  }
  return out;
}

Sit SitBuilder::BuildForRange(ColumnRef attr,
                              std::vector<Predicate> expression,
                              size_t row_begin, size_t row_end) const {
  const RowRestriction restriction{attr.table, row_begin, row_end};
  if (expression.empty()) {
    const ColumnProjection base = evaluator_->ProjectColumn(
        Query(std::vector<Predicate>{}), 0, attr, &restriction);
    Sit sit;
    sit.attr = attr;
    sit.histogram =
        BuildHistogram(options_.histogram_type, base.values,
                       static_cast<double>(base.total_tuples),
                       options_.max_buckets);
    sit.diff = 0.0;
    return sit;
  }
  std::vector<Sit> sits =
      BuildManyImpl({attr}, std::move(expression), &restriction);
  return std::move(sits[0]);
}

std::vector<Sit> SitBuilder::BuildManyForRange(
    const std::vector<ColumnRef>& attrs, std::vector<Predicate> expression,
    size_t row_begin, size_t row_end) const {
  CONDSEL_CHECK(!attrs.empty());
  const RowRestriction restriction{attrs[0].table, row_begin, row_end};
  return BuildManyImpl(attrs, std::move(expression), &restriction);
}


namespace {

// 0.5 * L1 distance between the joint distribution of the pairs and the
// product of its marginals: the correlation mass a 2-d SIT captures that
// two unidimensional histograms structurally cannot. Computed on a
// coarse quantile grid (16 x 16) so sparse-sample noise does not read as
// correlation.
double JointVsMarginalsDiff(std::vector<int64_t> xs,
                            std::vector<int64_t> ys) {
  if (xs.empty()) return 0.0;
  constexpr int kBins = 16;
  const size_t n = xs.size();

  // Quantile bin index of v within the sorted copy of `values`.
  auto bin_edges = [&](std::vector<int64_t> values) {
    std::sort(values.begin(), values.end());
    std::vector<int64_t> edges;  // upper inclusive bound per bin
    for (int b = 1; b <= kBins; ++b) {
      const size_t idx =
          std::min(n - 1, n * static_cast<size_t>(b) / kBins);
      edges.push_back(values[idx == 0 ? 0 : idx - 1]);
    }
    return edges;
  };
  const std::vector<int64_t> ex = bin_edges(xs);
  const std::vector<int64_t> ey = bin_edges(ys);
  auto bin_of = [&](const std::vector<int64_t>& edges, int64_t v) {
    for (int b = 0; b < kBins; ++b) {
      if (v <= edges[static_cast<size_t>(b)]) return b;
    }
    return kBins - 1;
  };

  std::vector<double> joint(kBins * kBins, 0.0);
  std::vector<double> mx(kBins, 0.0), my(kBins, 0.0);
  const double w = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const int bx = bin_of(ex, xs[i]);
    const int by = bin_of(ey, ys[i]);
    joint[static_cast<size_t>(bx * kBins + by)] += w;
    mx[static_cast<size_t>(bx)] += w;
    my[static_cast<size_t>(by)] += w;
  }
  double l1 = 0.0;
  for (int bx = 0; bx < kBins; ++bx) {
    for (int by = 0; by < kBins; ++by) {
      l1 += std::abs(joint[static_cast<size_t>(bx * kBins + by)] -
                     mx[static_cast<size_t>(bx)] *
                         my[static_cast<size_t>(by)]);
    }
  }
  return std::min(1.0, 0.5 * l1);
}

}  // namespace

Sit SitBuilder::Build2d(ColumnRef a, ColumnRef b,
                        std::vector<Predicate> expression) const {
  if (b < a) std::swap(a, b);
  std::sort(expression.begin(), expression.end());

  Sit sit;
  sit.attr = a;
  sit.attr2 = b;
  sit.expression = expression;

  std::vector<int64_t> xs, ys;
  double total = 0.0;
  const Catalog& catalog = evaluator_->catalog();
  if (expression.empty()) {
    CONDSEL_CHECK_MSG(a.table == b.table,
                      "base 2-d histogram needs same-table attributes");
    const Table& t = catalog.table(a.table);
    total = static_cast<double>(t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      const int64_t x = t.value(r, a.column);
      const int64_t y = t.value(r, b.column);
      if (IsNull(x) || IsNull(y)) continue;
      xs.push_back(x);
      ys.push_back(y);
    }
  } else {
    const Query expr_query(expression);
    const PredSet all = expr_query.all_predicates();
    CONDSEL_CHECK_MSG(
        ConnectedComponents(expr_query.predicates(), all).size() == 1,
        "SIT expression must be connected");
    const JoinResult jr = evaluator_->EvaluateComponent(expr_query, all);
    const int slot_a = jr.TableSlot(a.table);
    const int slot_b = jr.TableSlot(b.table);
    CONDSEL_CHECK_MSG(slot_a >= 0 && slot_b >= 0,
                      "both attributes' tables must appear in the expression");
    total = static_cast<double>(jr.num_tuples);
    const Table& ta = catalog.table(a.table);
    const Table& tb = catalog.table(b.table);
    const size_t width = jr.tables.size();
    for (size_t i = 0; i < jr.num_tuples; ++i) {
      const int64_t x = ta.value(
          jr.tuple_rows[i * width + static_cast<size_t>(slot_a)], a.column);
      const int64_t y = tb.value(
          jr.tuple_rows[i * width + static_cast<size_t>(slot_b)], b.column);
      if (IsNull(x) || IsNull(y)) continue;
      xs.push_back(x);
      ys.push_back(y);
    }
  }
  sit.histogram2d =
      BuildHistogram2d(xs, ys, total, options_.max_buckets);
  sit.diff = JointVsMarginalsDiff(std::move(xs), std::move(ys));
  return sit;
}

}  // namespace condsel
