#include "condsel/sit/sit_pool.h"

#include <algorithm>
#include <set>

#include "condsel/common/macros.h"
#include "condsel/query/join_graph.h"

namespace condsel {

SitId SitPool::Add(Sit sit) {
  std::sort(sit.expression.begin(), sit.expression.end());
  const auto key = std::make_tuple(sit.attr, sit.attr2, sit.expression);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  sit.id = static_cast<SitId>(sits_.size());
  index_.emplace(key, sit.id);
  sits_.push_back(std::move(sit));
  return sits_.back().id;
}

const Sit& SitPool::sit(SitId id) const {
  CONDSEL_CHECK(id >= 0 && id < size());
  return sits_[static_cast<size_t>(id)];
}

const Sit* SitPool::FindBase(ColumnRef col) const {
  auto it = index_.find(
      std::make_tuple(col, ColumnRef{}, std::vector<Predicate>{}));
  if (it == index_.end()) return nullptr;
  return &sits_[static_cast<size_t>(it->second)];
}

bool SitPool::Has(ColumnRef attr,
                  const std::vector<Predicate>& expression) const {
  std::vector<Predicate> sorted = expression;
  std::sort(sorted.begin(), sorted.end());
  return index_.count(std::make_tuple(attr, ColumnRef{}, sorted)) > 0;
}

SitPool GenerateSitPool(const std::vector<Query>& workload,
                        int max_join_preds, const SitBuilder& builder) {
  SitPool pool;

  // Base histograms for every referenced column.
  std::set<ColumnRef> columns;
  for (const Query& q : workload) {
    for (const Predicate& p : q.predicates()) {
      for (const ColumnRef& c : p.attrs()) columns.insert(c);
    }
  }
  for (const ColumnRef& c : columns) {
    pool.Add(builder.Build(c, {}));
  }
  if (max_join_preds == 0) return pool;

  // SIT(a | Q): a is a filter attribute of some query, Q a connected
  // subset of that query's join predicates reaching a's table. Group the
  // wanted SITs by expression first so each expression is evaluated once.
  std::map<std::vector<Predicate>, std::set<ColumnRef>> wanted;
  for (const Query& q : workload) {
    std::vector<ColumnRef> filter_attrs;
    for (int i : SetElements(q.filter_predicates())) {
      filter_attrs.push_back(q.predicate(i).column());
    }
    for (PredSet joins : ConnectedSubsets(q.predicates(),
                                          q.join_predicates(),
                                          max_join_preds)) {
      const TableSet joined = q.TablesOfSubset(joins);
      const std::vector<Predicate> expr = q.CanonicalSubset(joins);
      for (const ColumnRef& a : filter_attrs) {
        if (!Contains(joined, a.table)) continue;
        wanted[expr].insert(a);
      }
    }
  }
  for (const auto& [expr, attr_set] : wanted) {
    const std::vector<ColumnRef> attrs(attr_set.begin(), attr_set.end());
    for (Sit& sit : builder.BuildMany(attrs, expr)) {
      pool.Add(std::move(sit));
    }
  }
  return pool;
}

}  // namespace condsel
