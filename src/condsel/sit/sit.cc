#include "condsel/sit/sit.h"

#include "condsel/catalog/catalog.h"

namespace condsel {

std::string Sit::ToString(const Catalog& catalog) const {
  const TableSchema& schema = catalog.table(attr.table).schema();
  std::string s = "SIT(" + schema.name + "." +
                  schema.columns[static_cast<size_t>(attr.column)].name;
  if (is_multidim()) {
    const TableSchema& schema2 = catalog.table(attr2.table).schema();
    s += ", " + schema2.name + "." +
         schema2.columns[static_cast<size_t>(attr2.column)].name;
  }
  if (!expression.empty()) {
    s += " | ";
    for (size_t i = 0; i < expression.size(); ++i) {
      if (i > 0) s += ", ";
      s += expression[i].ToString(catalog);
    }
  }
  s += ")";
  return s;
}

}  // namespace condsel
