// SIT: a statistic (histogram) built on a query expression [4, 26].
//
// SIT_R(a | q1, .., qk) is a histogram over attribute `a` computed on the
// result of sigma_{q1 ^ .. ^ qk}(R^x). The expression predicates are stored
// as a canonical (sorted) predicate list over the catalog, so a SIT can be
// matched against any query that syntactically contains them. An empty
// expression makes the SIT an ordinary base-table histogram.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/histogram/histogram.h"
#include "condsel/histogram/histogram2d.h"
#include "condsel/query/predicate.h"

namespace condsel {

class Catalog;

using SitId = int32_t;

struct Sit {
  SitId id = -1;
  ColumnRef attr;
  // Second attribute of a multidimensional SIT — SIT_R(a, b | Q), the
  // attribute-set form of Section 3.3. Unset (invalid table) for the
  // common unidimensional case. Canonicalized so attr <= attr2.
  ColumnRef attr2;
  // Canonical (sorted) generating expression; join predicates in the
  // paper's pools, but arbitrary predicates are supported.
  std::vector<Predicate> expression;
  Histogram histogram;      // unidimensional SITs
  Histogram2d histogram2d;  // multidimensional SITs
  // For unidimensional SITs: the Section 3.5 divergence between the base
  // distribution of `attr` and its distribution on the expression result
  // (0 for base histograms by definition). For multidimensional SITs:
  // the divergence between the joint distribution and the product of its
  // marginals — the correlation mass only this SIT can capture.
  double diff = 0.0;

  bool is_base() const { return expression.empty(); }
  bool is_multidim() const { return attr2.table != kInvalidTableId; }
  std::string ToString(const Catalog& catalog) const;
};

}  // namespace condsel

