// SIT: a statistic (histogram) built on a query expression [4, 26].
//
// SIT_R(a | q1, .., qk) is a histogram over attribute `a` computed on the
// result of sigma_{q1 ^ .. ^ qk}(R^x). The expression predicates are stored
// as a canonical (sorted) predicate list over the catalog, so a SIT can be
// matched against any query that syntactically contains them. An empty
// expression makes the SIT an ordinary base-table histogram.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condsel/catalog/schema.h"
#include "condsel/histogram/histogram.h"
#include "condsel/histogram/histogram2d.h"
#include "condsel/query/predicate.h"
#include "condsel/storage/part.h"

namespace condsel {

class Catalog;

using SitId = int32_t;

// One part's contribution to a partitioned SIT: the same statistic
// restricted to the rows of part `part` (at `generation`) of the owning
// table — always attr.table, whose parts partition the expression result.
// The piece histogram's source_cardinality carries its merge weight.
struct SitPart {
  PartId part = kInvalidPartId;
  uint64_t generation = 0;
  Histogram histogram;      // unidimensional pieces
  Histogram2d histogram2d;  // multidimensional pieces
};

struct Sit {
  SitId id = -1;
  ColumnRef attr;
  // Second attribute of a multidimensional SIT — SIT_R(a, b | Q), the
  // attribute-set form of Section 3.3. Unset (invalid table) for the
  // common unidimensional case. Canonicalized so attr <= attr2.
  ColumnRef attr2;
  // Canonical (sorted) generating expression; join predicates in the
  // paper's pools, but arbitrary predicates are supported.
  std::vector<Predicate> expression;
  Histogram histogram;      // unidimensional SITs
  Histogram2d histogram2d;  // multidimensional SITs
  // Per-part pieces of a partitioned SIT (catalog/part_stats.h), in the
  // owning table's part order. Empty for an unpartitioned SIT — every
  // consumer then reads the flat histogram exactly as before, which is
  // what keeps single-part databases bit-identical. When pieces are
  // present, `histogram` holds the cardinality-weighted merged summary
  // (introspection and distinct-count math); selectivity estimation
  // merges the pieces directly (AtomicSelectivityProvider).
  std::vector<SitPart> parts;
  // For unidimensional SITs: the Section 3.5 divergence between the base
  // distribution of `attr` and its distribution on the expression result
  // (0 for base histograms by definition). For multidimensional SITs:
  // the divergence between the joint distribution and the product of its
  // marginals — the correlation mass only this SIT can capture.
  double diff = 0.0;

  bool is_base() const { return expression.empty(); }
  bool is_multidim() const { return attr2.table != kInvalidTableId; }
  bool is_partitioned() const { return !parts.empty(); }
  std::string ToString(const Catalog& catalog) const;
};

}  // namespace condsel

