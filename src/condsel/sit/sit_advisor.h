// Workload-driven SIT selection under a budget (extension).
//
// The paper assumes a SIT pool is given; a deployment has to decide which
// SITs to build. This advisor picks greedily: starting from the base
// histograms, it repeatedly materializes the candidate SIT that most
// reduces the workload's total getSelectivity Diff score — a purely
// statistics-side signal (the Section 3.5 ranking), requiring no query
// execution or ground truth, exactly what a production advisor could
// afford. bench_sit_advisor validates the choices against true errors.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condsel/query/query.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

struct AdvisorOptions {
  // Number of SITs to pick beyond the base histograms.
  int budget = 10;
  // Candidate universe: every SIT of the J_i pools up to this join count.
  int max_join_preds = 3;
  // Also consider 2-d SITs over filter-attribute pairs that co-occur on
  // one table within a workload query.
  bool consider_multidim = false;
};

struct AdvisorStep {
  SitId chosen;         // id within the returned pool
  double score_after;   // total workload Diff score after adding it
};

// How often one statistic of the final pool supplied an atomic factor
// across the workload's best decompositions, with the provider's
// provenance description ("T2.c1 | T0.c0 = T1.c1" for a SIT, "T2.c1" for
// a base histogram). Statistics the decompositions never cite are listed
// with uses == 0 — a signal the advisor's pick went stale.
struct SitCitation {
  SitId sit_id = -1;
  std::string source;        // FactorProvenance::source
  std::string kind;          // FactorProvenance::histogram_kind
  uint64_t uses = 0;         // atomic factors the statistic supplied
};

struct AdvisorResult {
  // Base histograms plus the chosen SITs, in selection order.
  SitPool pool;
  std::vector<AdvisorStep> steps;
  double initial_score = 0.0;  // bases only
  // Per-statistic citation counts under the final pool, in pool id order.
  std::vector<SitCitation> citations;
};

AdvisorResult AdviseSits(const std::vector<Query>& workload,
                         const SitBuilder& builder,
                         const AdvisorOptions& options);

}  // namespace condsel

