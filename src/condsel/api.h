// condsel/api.h — the one-stop facade.
//
// Wraps the catalog + SIT pool + matcher + getSelectivity wiring behind a
// single object, the way an optimizer would embed the library:
//
//   Estimator est(&catalog, &pool, Ranking::kDiff);
//   double rows = est.EstimateCardinality(query);
//   std::string why = est.Explain(query);
//
// The estimator keeps one memoized DP per distinct query (keyed by the
// query's canonical predicate list), so an optimizer issuing many
// sub-plan requests against the same query pays for one search.
// Lower-level control (custom error functions, direct factor access)
// remains available through the individual headers.

#ifndef CONDSEL_API_H_
#define CONDSEL_API_H_

#include <map>
#include <memory>
#include <string>

#include "condsel/catalog/catalog.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

// Which decomposition-ranking error function to use (Sections 3.2, 3.5).
enum class Ranking { kNInd, kDiff };

class Estimator {
 public:
  // Both pointers are borrowed and must outlive the estimator. The pool
  // must contain base histograms for every column the queries reference.
  Estimator(const Catalog* catalog, const SitPool* pool,
            Ranking ranking = Ranking::kDiff);
  ~Estimator();

  Estimator(const Estimator&) = delete;
  Estimator& operator=(const Estimator&) = delete;

  // Estimated Sel(P) for a predicate subset of `query` (default: all).
  double EstimateSelectivity(const Query& query, PredSet p);
  double EstimateSelectivity(const Query& query);

  // Estimated |sigma_P(tables(P)^x)|.
  double EstimateCardinality(const Query& query, PredSet p);
  double EstimateCardinality(const Query& query);

  // The chosen decomposition for the full query, human-readable.
  std::string Explain(const Query& query);

  // Number of distinct queries with a live memoized search.
  size_t cached_queries() const { return sessions_.size(); }
  void ClearCache();

 private:
  // Per-query session: owns the bound matcher, approximator, and DP.
  struct Session;
  Session& SessionFor(const Query& query);

  const Catalog* catalog_;
  const SitPool* pool_;
  Ranking ranking_;
  std::map<std::vector<Predicate>, std::unique_ptr<Session>> sessions_;
};

}  // namespace condsel

#endif  // CONDSEL_API_H_
