// condsel/api.h — the one-stop facade.
//
// Wraps the catalog + SIT pool + matcher + getSelectivity wiring behind a
// single object, the way an optimizer would embed the library:
//
//   Estimator est(&catalog, &pool, Ranking::kDiff);
//   double rows = est.EstimateCardinality(query);
//   std::string why = est.Explain(query);
//
// The estimator keeps one memoized DP per distinct query (keyed by the
// query's canonical predicate list), so an optimizer issuing many
// sub-plan requests against the same query pays for one search.
// Lower-level control (custom error functions, direct factor access)
// remains available through the individual headers.
//
// Production embeddings should prefer the TryEstimate* entry points: they
// validate the request against the catalog and pool up front and report
// every user-triggerable failure (unknown columns, missing base
// histograms, a pool deserialized against the wrong catalog) as a
// recoverable Status instead of aborting. The historical double-returning
// methods remain as thin wrappers that CHECK-fail on error, preserving
// their original contract. An EstimationBudget (see get_selectivity.h)
// caps the per-query search; on exhaustion estimates degrade to the
// independence assumption rather than blocking or failing. The budget's
// deadline is per-Compute state owned by each session's driver and passed
// down the layers as a call argument (budget.h documents the contract):
// an AtomicSelectivityProvider shared by several concurrent estimation
// sessions carries no deadline — or any other per-search — state, so the
// sessions cannot clobber each other's clock.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "condsel/catalog/catalog.h"
#include "condsel/common/status.h"
#include "condsel/exec/evaluator.h"
#include "condsel/query/query.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/selectivity/shape_cache.h"
#include "condsel/sit/sit_matcher.h"
#include "condsel/sit/sit_pool.h"

namespace condsel {

// Which decomposition-ranking error function to use (Sections 3.2, 3.5).
enum class Ranking { kNInd, kDiff };

class Estimator {
 public:
  // Both pointers are borrowed and must outlive the estimator. The pool
  // must contain base histograms for every column the queries reference
  // (TryEstimate* reports a violation as FAILED_PRECONDITION; the
  // non-Try wrappers abort). `shape_cache` (optional, borrowed) shares
  // decomposition skeletons across estimators — a service passes one
  // cache to every per-attempt estimator so structurally identical
  // statements enumerate candidates once; when null, the estimator uses
  // a private cache (still shared across its own sessions).
  Estimator(const Catalog* catalog, const SitPool* pool,
            Ranking ranking = Ranking::kDiff,
            EstimationBudget budget = EstimationBudget{},
            ShapeCache* shape_cache = nullptr);
  ~Estimator();

  Estimator(const Estimator&) = delete;
  Estimator& operator=(const Estimator&) = delete;

  // Recoverable entry points. Errors:
  //  - INVALID_ARGUMENT: a predicate references a table/column outside the
  //    catalog, or `p` is not a subset of the query's predicates;
  //  - FAILED_PRECONDITION: the pool lacks a base histogram for a
  //    referenced column, or the pool references columns outside the
  //    catalog (e.g. loaded against the wrong database).
  // Budget exhaustion is NOT an error: the estimate degrades gracefully
  // and the degradation is visible via StatsFor()/Explain().
  StatusOr<double> TryEstimateSelectivity(const Query& query, PredSet p);
  StatusOr<double> TryEstimateSelectivity(const Query& query);
  StatusOr<double> TryEstimateCardinality(const Query& query, PredSet p);
  StatusOr<double> TryEstimateCardinality(const Query& query);
  StatusOr<std::string> TryExplain(const Query& query);

  // Like TryEstimateSelectivity, but treats graceful degradation as an
  // error: if the estimation budget ran out or any subproblem fell back
  // to the independence estimate, returns RESOURCE_EXHAUSTED instead of
  // the (still well-formed) degraded value. For callers that would rather
  // re-plan with a bigger budget than consume a low-fidelity estimate.
  StatusOr<double> TryEstimateSelectivityStrict(const Query& query,
                                                PredSet p);

  // Historical abort-on-error wrappers around the Try* methods.
  double EstimateSelectivity(const Query& query, PredSet p);
  double EstimateSelectivity(const Query& query);
  double EstimateCardinality(const Query& query, PredSet p);
  double EstimateCardinality(const Query& query);
  std::string Explain(const Query& query);

  // The budget applies to every live and future memoized search (it is
  // re-read on each Compute call).
  void set_budget(const EstimationBudget& budget) { budget_ = budget; }
  const EstimationBudget& budget() const { return budget_; }

  // Search statistics for `query`'s memoized session, or nullptr if no
  // estimate has been requested for it yet. Includes the degradation
  // accounting (GsStats::budget_exhausted, degraded_subproblems).
  const GsStats* StatsFor(const Query& query) const;

  // Post-estimate derivation auditing. When on, every session records its
  // DP steps into a DerivationDag (analysis/derivation.h) and each
  // estimate is followed by a DerivationAuditor pass over the session's
  // derivation; a violation aborts — it means a library bug, never user
  // error (user-triggerable failures surface as Status beforehand).
  // Defaults to on in debug builds and off in release; the CONDSEL_AUDIT
  // environment variable overrides either way ("0"/"false"/"off"/"no"
  // disables, anything else enables). Toggling affects sessions created
  // afterward, not live memoized searches.
  void set_audit(bool on) { audit_ = on; }
  bool audit() const { return audit_; }

  // Recorded derivation DAG for `query`'s session, or nullptr if auditing
  // was off when the session was created (or no estimate was requested).
  const DerivationDag* DerivationFor(const Query& query) const;

  // Number of distinct queries with a live memoized search.
  size_t cached_queries() const { return sessions_.size(); }
  void ClearCache();

 private:
  // Per-query session: owns the bound matcher, provider, and DP.
  struct Session;
  Session& SessionFor(const Query& query);
  // Pre-flight validation of a request; only the predicates selected by
  // `subset` are checked (see TryEstimateSelectivity).
  Status ValidateQuery(const Query& query, PredSet subset) const;
  Status ValidatePool() const;
  // Runs the auditor over the session's derivation if one is recorded and
  // has grown since the last pass; aborts on violations.
  void AuditSession(Session& session);

  const Catalog* catalog_;
  const SitPool* pool_;
  Ranking ranking_;
  EstimationBudget budget_;
  bool audit_;
  // Decomposition-skeleton sharing: points at the caller's cache, or at
  // own_shapes_ when none was provided.
  ShapeCache own_shapes_;
  ShapeCache* shape_cache_;
  // Lazily computed, cached result of ValidatePool, keyed by the pool's
  // generation stamp: a delta-refreshed pool (same object, new contents)
  // re-validates; a pool outside the maintenance path (generation 0,
  // never changing) validates once.
  mutable bool pool_validated_ = false;
  mutable uint64_t pool_generation_validated_ = 0;
  mutable Status pool_status_;
  std::map<std::vector<Predicate>, std::unique_ptr<Session>> sessions_;
};

}  // namespace condsel

