#pragma once

#include <mutex>

namespace demo {

// A correctly annotated lock/field pair: the model must stay silent.
class Counter {
 public:
  void Add(int delta) {
    const std::lock_guard<std::mutex> lock(mu_);
    total_ += delta;
  }

 private:
  mutable std::mutex mu_;
  int total_ CONDSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace demo
