#pragma once

#include <atomic>

namespace demo {

enum class Fault {
  kDropPackets = 0,
  kCorruptChecksum,
};

class FaultInjector {
 public:
  bool enabled(Fault f) const;

 private:
  static constexpr int kNumFaults = 2;
  std::atomic<bool> faults_[kNumFaults] = {};
};

}  // namespace demo
