// Covers kDropPackets only; the checksum-corruption fault is deliberately
// left untested so the fault census flags exactly that enumerator.
#include "fault_injector.h"

namespace demo {

void ExerciseDropPackets() {
  FaultInjector fi;
  (void)fi.enabled(Fault::kDropPackets);
}

}  // namespace demo
