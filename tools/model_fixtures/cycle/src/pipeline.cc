#include <mutex>

namespace demo {

std::mutex g_ingest_mu;
std::mutex g_flush_mu;

// Seeded deadlock: Ingest nests flush under ingest, Flush nests the other
// way around. The acquires-while-holding graph must report the cycle.
void Ingest() {
  const std::lock_guard<std::mutex> a(g_ingest_mu);
  const std::lock_guard<std::mutex> b(g_flush_mu);
}

void Flush() {
  const std::lock_guard<std::mutex> a(g_flush_mu);
  const std::lock_guard<std::mutex> b(g_ingest_mu);
}

}  // namespace demo
