#pragma once

namespace demo::lock_rank {

inline constexpr int kEpoch = 10;

}  // namespace demo::lock_rank
