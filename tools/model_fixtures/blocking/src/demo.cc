#include "demo.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace demo {

// Seeded stall on the acquire path: a sleep while holding the lock that
// every reader must take. blocking-reachable must flag the sleep site.
void Epoch::Publish() {
  const std::lock_guard<OrderedMutex> lock(epoch_mu_);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace demo
