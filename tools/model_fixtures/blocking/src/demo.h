#pragma once

#include "lock_ranks.h"

namespace demo {

class Epoch {
 public:
  void Publish();

 private:
  OrderedMutex epoch_mu_{lock_rank::kEpoch, "Epoch::epoch_mu_"};
};

}  // namespace demo
