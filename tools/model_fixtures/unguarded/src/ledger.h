#pragma once

#include <mutex>
#include <vector>

namespace demo {

// Seeded annotation gap: entries_ follows the mutex but carries no
// CONDSEL_GUARDED_BY, so guarded-field must flag it.
class Ledger {
 public:
  void Append(int value) {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(value);
  }

 private:
  mutable std::mutex mu_;
  std::vector<int> entries_;
};

}  // namespace demo
