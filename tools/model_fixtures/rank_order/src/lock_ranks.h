#pragma once

namespace demo::lock_rank {

inline constexpr int kFirst = 10;
inline constexpr int kSecond = 20;

}  // namespace demo::lock_rank
