#pragma once

#include "lock_ranks.h"

namespace demo {

class Demo {
 public:
  void Update();

 private:
  OrderedMutex first_mu_{lock_rank::kFirst, "Demo::first_mu_"};
  OrderedMutex second_mu_{lock_rank::kSecond, "Demo::second_mu_"};
};

}  // namespace demo
