#include "demo.h"

#include <mutex>

namespace demo {

// Seeded out-of-order acquisition: second_mu_ (rank 20) is held while
// first_mu_ (rank 10) is acquired, inverting the manifest order.
void Demo::Update() {
  const std::lock_guard<OrderedMutex> outer(second_mu_);
  const std::lock_guard<OrderedMutex> inner(first_mu_);
}

}  // namespace demo
