#!/usr/bin/env python3
"""cpp_model_common — the one copy of every C++-shape regex shared by
condsel_lint.py (line-level rules) and condsel_model.py (the project
model / lock-graph analyzer).

Both tools reason about the same surface syntax — mutex declarations,
GUARDED_BY annotations, lock-guard acquisition sites, blocking calls —
and PR 7 deliberately routes those regexes through this module so the
two tools cannot drift apart: a mutex shape condsel_model inventories is
by construction the same shape condsel_lint's guarded-by rule keys on.

Run `cpp_model_common.py --self-test` to validate every exported regex
and helper against an embedded corpus of positive/negative examples.
"""

from __future__ import annotations

import os
import re
import sys

# --------------------------------------------------------------------------
# Source tree shape.

SCAN_DIRS = ("src", "tests", "tools", "fuzz", "bench", "examples")
LIBRARY_DIRS = ("src",)
EXTENSIONS = (".h", ".cc")


def iter_source_files(root: str, dirs=SCAN_DIRS):
    """Yields absolute paths of every .h/.cc under `dirs`, fixture
    corpora excluded, in deterministic order."""
    for base in dirs:
        top = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("lint_fixtures",
                                              "model_fixtures"))
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, name)


def strip_line_comment(line: str) -> str:
    """Code portion of a line (text before any // comment)."""
    return line.split("//")[0]


# --------------------------------------------------------------------------
# Suppression markers. Each tool has its own marker; a checker shared by
# both tools accepts a list so a site suppressed for one cannot silently
# re-fire under the other.

LINT_ALLOW_RE = re.compile(r"condsel-lint:\s*allow\(([a-z0-9-]+)\)")
MODEL_ALLOW_RE = re.compile(r"condsel-model:\s*allow\(([a-z0-9-]+)\)")


def make_allowed(lines, allow_res):
    """Returns allowed(idx, rule) -> True when line idx (0-based) carries
    or follows a matching allow marker for any regex in `allow_res`."""
    def allowed(idx: int, rule: str) -> bool:
        for probe in (idx, idx - 1):
            if 0 <= probe < len(lines):
                for allow_re in allow_res:
                    for m in allow_re.finditer(lines[probe]):
                        if m.group(1) == rule:
                            return True
        return False
    return allowed


# --------------------------------------------------------------------------
# Mutex and member declarations.

# Every lock type the project uses. OrderedMutex / OrderedSharedMutex
# (common/ordered_mutex.h) are the rank-checked wrappers; plain std types
# remain legal for externally-synchronized or single-lock classes.
STD_MUTEX_TYPE = r"std::(?:recursive_)?mutex|std::shared_mutex"
ORDERED_MUTEX_TYPE = r"(?:condsel::)?Ordered(?:Shared)?Mutex"
ANY_MUTEX_TYPE = f"(?:{STD_MUTEX_TYPE}|{ORDERED_MUTEX_TYPE})"

# A mutex data member (class/struct scope). Ordered types carry a brace
# initializer with their rank and manifest name.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>" + ANY_MUTEX_TYPE + r")\s+"
    r"(?P<name>\w+)\s*(?P<init>\{[^;]*\})?\s*;")

# A file-scope / function-scope static mutex in a .cc.
STATIC_MUTEX_RE = re.compile(
    r"^\s*static\s+(?:mutable\s+)?(?P<type>" + ANY_MUTEX_TYPE + r")\s+"
    r"(?P<name>\w+)\s*(?P<init>\{[^;]*\})?\s*;")

# An OrderedMutex construction site with its rank constant and manifest
# name, e.g.:  mutable OrderedMutex mu_{lock_rank::kAdmission,
#                                       "AdmissionController::mu_"};
ORDERED_DECL_RE = re.compile(
    r"\b(?P<type>Ordered(?:Shared)?Mutex)\s+(?P<name>\w+)\s*\{\s*"
    r"lock_rank::(?P<const>k\w+)\s*,\s*\"(?P<label>[^\"]+)\"\s*\}")

# A rank constant in common/lock_ranks.h.
LOCK_RANK_CONST_RE = re.compile(
    r"^\s*inline\s+constexpr\s+int\s+(?P<const>k\w+)\s*=\s*"
    r"(?P<rank>\d+)\s*;")

# A data member by project convention: trailing-underscore name, optional
# array extent / brace-or-equals initializer / GUARDED_BY annotation.
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>[\w:]+(?:<[^;()]*>)?(?:\s*[*&])?)\s+"
    r"\w+_\s*(?:\[[^\]]*\])?\s*(?:\{[^{}]*\}|=\s*[^;]*)?\s*"
    r"(?:CONDSEL_(?:PT_)?GUARDED_BY\([^)]*\))?\s*;")

# A static local/file-scope data declaration (for the .cc static variant
# of the guarded-by rule; no trailing-underscore convention there).
STATIC_DECL_RE = re.compile(
    r"^\s*static\s+(?:mutable\s+)?(?P<type>[\w:]+(?:<[^;()]*>)?"
    r"(?:\s*[*&])?)\s+\w+\s*(?:\[[^\]]*\])?\s*"
    r"(?:\{[^{}]*\}|=\s*[^;]*)?\s*"
    r"(?:CONDSEL_(?:PT_)?GUARDED_BY\([^)]*\))?\s*;")

# Types that synchronize themselves (or are the synchronization).
SELF_SYNCED_TYPE_RE = re.compile(
    r"std::(?:atomic\b|mutex\b|recursive_mutex\b|shared_mutex\b|"
    r"once_flag\b|condition_variable\b|condition_variable_any\b)|"
    r"\bOrdered(?:Shared)?Mutex\b")


# --------------------------------------------------------------------------
# Lock acquisition sites.

# An RAII guard: std::lock_guard / unique_lock / scoped_lock /
# shared_lock, with or without explicit template arguments (CTAD), paren
# or brace initialized. `args` holds the raw argument list.
GUARD_RE = re.compile(
    r"\bstd::(?P<kind>lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^<>]*>)?\s+\w+\s*[({](?P<args>[^;{}]*)[)}]")

_TAG_ARGS = ("std::defer_lock", "std::adopt_lock", "std::try_to_lock")


def guard_mutex_exprs(args: str):
    """The mutex expressions a guard argument list names (lock tags and
    duration arguments filtered out)."""
    exprs = []
    depth = 0
    current = []
    for ch in args:
        if ch == "," and depth == 0:
            exprs.append("".join(current).strip())
            current = []
            continue
        if ch in "([<{":
            depth += 1
        elif ch in ")]>}":
            depth -= 1
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        exprs.append(tail)
    return [e for e in exprs if e and e not in _TAG_ARGS]


MUTEX_EXPR_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def mutex_expr_name(expr: str) -> str | None:
    """The final identifier of a mutex expression: `mu_` for
    `publisher_.mu_`, `mu` for `deques[victim].mu`."""
    m = MUTEX_EXPR_NAME_RE.search(expr.rstrip(")"))
    if not m or m.group(1) == "this":
        return None
    return m.group(1)


# --------------------------------------------------------------------------
# Blocking calls. None of these may run while a mutex on the snapshot
# acquire path is held (condsel_lint's no-blocking-under-epoch-lock rule,
# generalized to graph reachability by condsel_model).

BLOCKING_CALL_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|wait_for|wait_until|"
    r"make_shared|make_unique|"
    r"Compute|TryEstimate\w*|Submit|Publish|Refresh)\s*"
    r"(?:<[^()]*>)?\s*\(|"
    r"\.\s*(?:wait|join)\s*\(")

# The epoch-lock acquisition shape condsel_lint's single-purpose rule
# keys on (kept alongside the graph check: the lint rule runs even on
# trees where the model's manifest is absent).
EPOCH_LOCK_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s*"
    r"\w+\s*[({][^)}]*epoch_mu[^)}]*[)}]")


# --------------------------------------------------------------------------
# Fault enumeration (common/fault_injector.h).

FAULT_ENUM_OPEN_RE = re.compile(r"^\s*enum\s+class\s+Fault\s*\{")
FAULT_ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*[,=}]")
NUM_FAULTS_RE = re.compile(
    r"constexpr\s+int\s+kNumFaults\s*=\s*(\d+)\s*;")


def parse_fault_enumerators(text: str):
    """The Fault enumerators declared in fault_injector.h text, in
    declaration order."""
    enumerators = []
    in_enum = False
    for line in text.splitlines():
        code = strip_line_comment(line)
        if not in_enum:
            if FAULT_ENUM_OPEN_RE.match(code):
                in_enum = True
            continue
        if "}" in code and not FAULT_ENUMERATOR_RE.match(code):
            break
        m = FAULT_ENUMERATOR_RE.match(code)
        if m:
            enumerators.append(m.group(1))
        if re.search(r"^\s*\};", code):
            break
    return enumerators


# --------------------------------------------------------------------------
# Shared guarded-by checker.
#
# Header (member) mode: data members declared after a mutex member must
# carry CONDSEL_GUARDED_BY / CONDSEL_PT_GUARDED_BY or be
# synchronization-free by type. .cc (static) mode: the same contract for
# file-/function-scope statics following a static mutex.


def guarded_field_findings(path: str, lines, allowed, rule: str):
    """Yields (line_number_1based, message) for unannotated mutable state
    declared after a mutex at the same scope. `allowed(idx, rule)` is the
    suppression predicate; `rule` is the reporting tool's rule id."""
    is_header = path.endswith(".h")
    mutex_re = MUTEX_MEMBER_RE if is_header else STATIC_MUTEX_RE
    decl_re = MEMBER_DECL_RE if is_header else STATIC_DECL_RE
    scope_of = "a std::mutex member" if is_header else "a static mutex"
    in_mutex_scope = False
    for i, line in enumerate(lines):
        if mutex_re.match(line):
            in_mutex_scope = True
            continue
        if not in_mutex_scope:
            continue
        if re.match(r"\s*};", line) or re.match(r"\s*}\s*(?:\/\/.*)?$",
                                                line):
            in_mutex_scope = False  # class / namespace scope closed
            continue
        m = decl_re.match(strip_line_comment(line))
        if not m:
            continue
        if "GUARDED_BY" in line or "static" in m.group("type"):
            continue
        if SELF_SYNCED_TYPE_RE.search(m.group("type")):
            continue
        if allowed(i, rule):
            continue
        yield (i + 1,
               f"data member follows {scope_of} but carries no "
               "CONDSEL_GUARDED_BY annotation (atomics are exempt); "
               "annotate it or justify with an allow")


# --------------------------------------------------------------------------
# Self-test.

_SELF_TEST_CASES = [
    # (description, callable) pairs; each callable raises AssertionError.
]


def _case(description):
    def wrap(fn):
        _SELF_TEST_CASES.append((description, fn))
        return fn
    return wrap


@_case("MUTEX_MEMBER_RE matches std and Ordered mutex members")
def _t_mutex_member():
    assert MUTEX_MEMBER_RE.match("  mutable std::mutex mu_;")
    assert MUTEX_MEMBER_RE.match("  std::shared_mutex mu_;")
    assert MUTEX_MEMBER_RE.match("  std::recursive_mutex big_lock_;")
    assert MUTEX_MEMBER_RE.match(
        '  mutable OrderedMutex mu_{lock_rank::kAdmission, "A::mu_"};')
    assert MUTEX_MEMBER_RE.match(
        '  OrderedSharedMutex mu_{lock_rank::kMemo, "M::mu_"};')
    assert MUTEX_MEMBER_RE.match("  std::mutex mu;")  # aggregate member
    assert not MUTEX_MEMBER_RE.match("  std::mutex* borrowed_;")
    assert not MUTEX_MEMBER_RE.match("  // std::mutex mu_;")


@_case("STATIC_MUTEX_RE matches only static declarations")
def _t_static_mutex():
    assert STATIC_MUTEX_RE.match("static std::mutex g_mu;")
    assert STATIC_MUTEX_RE.match(
        '  static OrderedMutex g_mu{lock_rank::kX, "g_mu"};')
    assert not STATIC_MUTEX_RE.match("std::mutex mu_;")


@_case("ORDERED_DECL_RE extracts rank constant and manifest label")
def _t_ordered_decl():
    m = ORDERED_DECL_RE.search(
        "mutable OrderedMutex epoch_mu_{lock_rank::kSnapshotEpoch, "
        '"SnapshotPublisher::epoch_mu_"};')
    assert m and m.group("const") == "kSnapshotEpoch"
    assert m.group("label") == "SnapshotPublisher::epoch_mu_"
    assert m.group("name") == "epoch_mu_"
    assert not ORDERED_DECL_RE.search("std::mutex mu_;")


@_case("LOCK_RANK_CONST_RE parses lock_ranks.h constants")
def _t_rank_const():
    m = LOCK_RANK_CONST_RE.match("inline constexpr int kAdmission = 10;")
    assert m and m.group("const") == "kAdmission"
    assert m.group("rank") == "10"
    assert not LOCK_RANK_CONST_RE.match("constexpr double kX = 1.0;")


@_case("GUARD_RE matches every guard shape the repo uses")
def _t_guard():
    for text, want in [
        ("const std::lock_guard<std::mutex> lock(mu_);", ["mu_"]),
        ("std::unique_lock<OrderedMutex> lock(mu_);", ["mu_"]),
        ("std::shared_lock<std::shared_mutex> lock(mu_);", ["mu_"]),
        ("std::scoped_lock lock(deques[victim].mu, deques[w].mu);",
         ["deques[victim].mu", "deques[w].mu"]),
        ("std::shared_lock lock(mu_);", ["mu_"]),
        ("std::unique_lock<std::mutex> lock(mu_, std::defer_lock);",
         ["mu_"]),
    ]:
        m = GUARD_RE.search(text)
        assert m, text
        assert guard_mutex_exprs(m.group("args")) == want, text
    assert not GUARD_RE.search("slot_freed_.wait_for(lock, dur);")
    assert not GUARD_RE.search("// std::lock_guard<std::mutex> lock(mu_);"
                               .split("//")[0])


@_case("mutex_expr_name takes the final identifier")
def _t_expr_name():
    assert mutex_expr_name("mu_") == "mu_"
    assert mutex_expr_name("d.mu") == "mu"
    assert mutex_expr_name("deques[victim].mu") == "mu"
    assert mutex_expr_name("publisher_.epoch_mu_") == "epoch_mu_"
    assert mutex_expr_name("*this") is None


@_case("BLOCKING_CALL_RE matches parks and slow work, not bookkeeping")
def _t_blocking():
    for text in [
        "std::this_thread::sleep_for(ms);",
        "cv.wait_for(lock, dur);",
        "auto s = std::make_shared<const Snapshot>(1);",
        "worker.join();",
        "gs.Compute(p);",
        "service.Submit(tenant, q);",
    ]:
        assert BLOCKING_CALL_RE.search(text), text
    for text in [
        "counters_.submitted.fetch_add(1);",
        "ledger_.emplace_back(epoch, snap);",
        "int waiting = 0;",
    ]:
        assert not BLOCKING_CALL_RE.search(text), text


@_case("parse_fault_enumerators walks the enum body")
def _t_faults():
    text = """
enum class Fault {
  kDropSits = 0,
  kCorruptHistograms,
  kSlowRefresh,
};
"""
    assert parse_fault_enumerators(text) == [
        "kDropSits", "kCorruptHistograms", "kSlowRefresh"]
    assert parse_fault_enumerators("enum class Other { kX };") == []


@_case("guarded_field_findings: header members after a mutex")
def _t_guarded_header():
    lines = [
        "class C {",
        "  mutable std::mutex mu_;",
        "  int covered_ CONDSEL_GUARDED_BY(mu_) = 0;",
        "  std::atomic<int> free_{0};",
        "  int naked_ = 0;",
        "};",
    ]
    hits = list(guarded_field_findings(
        "src/c.h", lines, lambda i, r: False, "guarded-field"))
    assert [ln for ln, _ in hits] == [5], hits


@_case("guarded_field_findings: .cc statics after a static mutex")
def _t_guarded_static():
    lines = [
        "static std::mutex g_mu;",
        "static int g_covered CONDSEL_GUARDED_BY(g_mu) = 0;",
        "static std::atomic<int> g_free{0};",
        "static int g_naked = 0;",
    ]
    hits = list(guarded_field_findings(
        "src/c.cc", lines, lambda i, r: False, "guarded-field"))
    assert [ln for ln, _ in hits] == [4], hits
    # Member declarations in a .cc do not trip the static variant.
    member_lines = ["std::mutex mu_;", "int naked_ = 0;"]
    assert not list(guarded_field_findings(
        "src/c.cc", member_lines, lambda i, r: False, "guarded-field"))


@_case("make_allowed honors same-line and preceding-line markers")
def _t_allowed():
    lines = [
        "// condsel-model: allow(lock-cycle)",
        "code here",
        "other code  // condsel-lint: allow(guarded-by-coverage)",
    ]
    allowed = make_allowed(lines, [LINT_ALLOW_RE, MODEL_ALLOW_RE])
    assert allowed(1, "lock-cycle")
    assert allowed(2, "guarded-by-coverage")
    assert not allowed(1, "guarded-by-coverage")


def run_self_test() -> int:
    failures = 0
    for description, fn in _SELF_TEST_CASES:
        try:
            fn()
        except AssertionError as e:
            failures += 1
            print(f"self-test FAIL: {description}: {e}", file=sys.stderr)
    total = len(_SELF_TEST_CASES)
    if failures:
        print(f"cpp_model_common --self-test: {failures}/{total} cases "
              "failed", file=sys.stderr)
        return 1
    print(f"cpp_model_common --self-test: {total} cases ok",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(run_self_test())
    print(__doc__)
    sys.exit(0)
