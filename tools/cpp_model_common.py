#!/usr/bin/env python3
"""cpp_model_common — the one copy of every C++-shape regex shared by
condsel_lint.py (line-level rules) and condsel_model.py (the project
model / lock-graph analyzer).

Both tools reason about the same surface syntax — mutex declarations,
GUARDED_BY annotations, lock-guard acquisition sites, blocking calls —
and PR 7 deliberately routes those regexes through this module so the
two tools cannot drift apart: a mutex shape condsel_model inventories is
by construction the same shape condsel_lint's guarded-by rule keys on.

Run `cpp_model_common.py --self-test` to validate every exported regex
and helper against an embedded corpus of positive/negative examples.
"""

from __future__ import annotations

import os
import re
import sys

# --------------------------------------------------------------------------
# Source tree shape.

SCAN_DIRS = ("src", "tests", "tools", "fuzz", "bench", "examples")
LIBRARY_DIRS = ("src",)
EXTENSIONS = (".h", ".cc")


def iter_source_files(root: str, dirs=SCAN_DIRS):
    """Yields absolute paths of every .h/.cc under `dirs`, fixture
    corpora excluded, in deterministic order."""
    for base in dirs:
        top = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("lint_fixtures",
                                              "model_fixtures",
                                              "flow_fixtures"))
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, name)


def strip_line_comment(line: str) -> str:
    """Code portion of a line (text before any // comment)."""
    return line.split("//")[0]


# --------------------------------------------------------------------------
# Suppression markers. Each tool has its own marker; a checker shared by
# both tools accepts a list so a site suppressed for one cannot silently
# re-fire under the other.

LINT_ALLOW_RE = re.compile(r"condsel-lint:\s*allow\(([a-z0-9-]+)\)")
MODEL_ALLOW_RE = re.compile(r"condsel-model:\s*allow\(([a-z0-9-]+)\)")
FLOW_ALLOW_RE = re.compile(r"condsel-flow:\s*allow\(([a-z0-9-]+)\)")


def make_allowed(lines, allow_res):
    """Returns allowed(idx, rule) -> True when line idx (0-based) carries
    or follows a matching allow marker for any regex in `allow_res`."""
    def allowed(idx: int, rule: str) -> bool:
        for probe in (idx, idx - 1):
            if 0 <= probe < len(lines):
                for allow_re in allow_res:
                    for m in allow_re.finditer(lines[probe]):
                        if m.group(1) == rule:
                            return True
        return False
    return allowed


# --------------------------------------------------------------------------
# Mutex and member declarations.

# Every lock type the project uses. OrderedMutex / OrderedSharedMutex
# (common/ordered_mutex.h) are the rank-checked wrappers; plain std types
# remain legal for externally-synchronized or single-lock classes.
STD_MUTEX_TYPE = r"std::(?:recursive_)?mutex|std::shared_mutex"
ORDERED_MUTEX_TYPE = r"(?:condsel::)?Ordered(?:Shared)?Mutex"
ANY_MUTEX_TYPE = f"(?:{STD_MUTEX_TYPE}|{ORDERED_MUTEX_TYPE})"

# A mutex data member (class/struct scope). Ordered types carry a brace
# initializer with their rank and manifest name.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>" + ANY_MUTEX_TYPE + r")\s+"
    r"(?P<name>\w+)\s*(?P<init>\{[^;]*\})?\s*;")

# A file-scope / function-scope static mutex in a .cc.
STATIC_MUTEX_RE = re.compile(
    r"^\s*static\s+(?:mutable\s+)?(?P<type>" + ANY_MUTEX_TYPE + r")\s+"
    r"(?P<name>\w+)\s*(?P<init>\{[^;]*\})?\s*;")

# An OrderedMutex construction site with its rank constant and manifest
# name, e.g.:  mutable OrderedMutex mu_{lock_rank::kAdmission,
#                                       "AdmissionController::mu_"};
ORDERED_DECL_RE = re.compile(
    r"\b(?P<type>Ordered(?:Shared)?Mutex)\s+(?P<name>\w+)\s*\{\s*"
    r"lock_rank::(?P<const>k\w+)\s*,\s*\"(?P<label>[^\"]+)\"\s*\}")

# A rank constant in common/lock_ranks.h.
LOCK_RANK_CONST_RE = re.compile(
    r"^\s*inline\s+constexpr\s+int\s+(?P<const>k\w+)\s*=\s*"
    r"(?P<rank>\d+)\s*;")

# A data member by project convention: trailing-underscore name, optional
# array extent / brace-or-equals initializer / GUARDED_BY annotation.
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>[\w:]+(?:<[^;()]*>)?(?:\s*[*&])?)\s+"
    r"\w+_\s*(?:\[[^\]]*\])?\s*(?:\{[^{}]*\}|=\s*[^;]*)?\s*"
    r"(?:CONDSEL_(?:PT_)?GUARDED_BY\([^)]*\))?\s*;")

# A static local/file-scope data declaration (for the .cc static variant
# of the guarded-by rule; no trailing-underscore convention there).
STATIC_DECL_RE = re.compile(
    r"^\s*static\s+(?:mutable\s+)?(?P<type>[\w:]+(?:<[^;()]*>)?"
    r"(?:\s*[*&])?)\s+\w+\s*(?:\[[^\]]*\])?\s*"
    r"(?:\{[^{}]*\}|=\s*[^;]*)?\s*"
    r"(?:CONDSEL_(?:PT_)?GUARDED_BY\([^)]*\))?\s*;")

# Types that synchronize themselves (or are the synchronization).
SELF_SYNCED_TYPE_RE = re.compile(
    r"std::(?:atomic\b|mutex\b|recursive_mutex\b|shared_mutex\b|"
    r"once_flag\b|condition_variable\b|condition_variable_any\b)|"
    r"\bOrdered(?:Shared)?Mutex\b")


# --------------------------------------------------------------------------
# Lock acquisition sites.

# An RAII guard: std::lock_guard / unique_lock / scoped_lock /
# shared_lock, with or without explicit template arguments (CTAD), paren
# or brace initialized. `args` holds the raw argument list.
GUARD_RE = re.compile(
    r"\bstd::(?P<kind>lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^<>]*>)?\s+\w+\s*[({](?P<args>[^;{}]*)[)}]")

_TAG_ARGS = ("std::defer_lock", "std::adopt_lock", "std::try_to_lock")


def guard_mutex_exprs(args: str):
    """The mutex expressions a guard argument list names (lock tags and
    duration arguments filtered out)."""
    exprs = []
    depth = 0
    current = []
    for ch in args:
        if ch == "," and depth == 0:
            exprs.append("".join(current).strip())
            current = []
            continue
        if ch in "([<{":
            depth += 1
        elif ch in ")]>}":
            depth -= 1
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        exprs.append(tail)
    return [e for e in exprs if e and e not in _TAG_ARGS]


MUTEX_EXPR_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def mutex_expr_name(expr: str) -> str | None:
    """The final identifier of a mutex expression: `mu_` for
    `publisher_.mu_`, `mu` for `deques[victim].mu`."""
    m = MUTEX_EXPR_NAME_RE.search(expr.rstrip(")"))
    if not m or m.group(1) == "this":
        return None
    return m.group(1)


# --------------------------------------------------------------------------
# Blocking calls. None of these may run while a mutex on the snapshot
# acquire path is held (condsel_lint's no-blocking-under-epoch-lock rule,
# generalized to graph reachability by condsel_model).

BLOCKING_CALL_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|wait_for|wait_until|"
    r"make_shared|make_unique|"
    r"Compute|TryEstimate\w*|Submit|Publish|Refresh)\s*"
    r"(?:<[^()]*>)?\s*\(|"
    r"\.\s*(?:wait|join)\s*\(")

# The epoch-lock acquisition shape condsel_lint's single-purpose rule
# keys on (kept alongside the graph check: the lint rule runs even on
# trees where the model's manifest is absent).
EPOCH_LOCK_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s*"
    r"\w+\s*[({][^)}]*epoch_mu[^)}]*[)}]")


# --------------------------------------------------------------------------
# Fault enumeration (common/fault_injector.h).

FAULT_ENUM_OPEN_RE = re.compile(r"^\s*enum\s+class\s+Fault\s*\{")
FAULT_ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*[,=}]")
NUM_FAULTS_RE = re.compile(
    r"constexpr\s+int\s+kNumFaults\s*=\s*(\d+)\s*;")


def parse_fault_enumerators(text: str):
    """The Fault enumerators declared in fault_injector.h text, in
    declaration order."""
    enumerators = []
    in_enum = False
    for line in text.splitlines():
        code = strip_line_comment(line)
        if not in_enum:
            if FAULT_ENUM_OPEN_RE.match(code):
                in_enum = True
            continue
        if "}" in code and not FAULT_ENUMERATOR_RE.match(code):
            break
        m = FAULT_ENUMERATOR_RE.match(code)
        if m:
            enumerators.append(m.group(1))
        if re.search(r"^\s*\};", code):
            break
    return enumerators


# --------------------------------------------------------------------------
# Shared guarded-by checker.
#
# Header (member) mode: data members declared after a mutex member must
# carry CONDSEL_GUARDED_BY / CONDSEL_PT_GUARDED_BY or be
# synchronization-free by type. .cc (static) mode: the same contract for
# file-/function-scope statics following a static mutex.


def guarded_field_findings(path: str, lines, allowed, rule: str):
    """Yields (line_number_1based, message) for unannotated mutable state
    declared after a mutex at the same scope. `allowed(idx, rule)` is the
    suppression predicate; `rule` is the reporting tool's rule id."""
    is_header = path.endswith(".h")
    mutex_re = MUTEX_MEMBER_RE if is_header else STATIC_MUTEX_RE
    decl_re = MEMBER_DECL_RE if is_header else STATIC_DECL_RE
    scope_of = "a std::mutex member" if is_header else "a static mutex"
    in_mutex_scope = False
    for i, line in enumerate(lines):
        if mutex_re.match(line):
            in_mutex_scope = True
            continue
        if not in_mutex_scope:
            continue
        if re.match(r"\s*};", line) or re.match(r"\s*}\s*(?:\/\/.*)?$",
                                                line):
            in_mutex_scope = False  # class / namespace scope closed
            continue
        m = decl_re.match(strip_line_comment(line))
        if not m:
            continue
        if "GUARDED_BY" in line or "static" in m.group("type"):
            continue
        if SELF_SYNCED_TYPE_RE.search(m.group("type")):
            continue
        if allowed(i, rule):
            continue
        yield (i + 1,
               f"data member follows {scope_of} but carries no "
               "CONDSEL_GUARDED_BY annotation (atomics are exempt); "
               "annotate it or justify with an allow")


# --------------------------------------------------------------------------
# Function / call-site / return-statement inventory (condsel_flow.py).
#
# The flow analyzer reasons about whole function bodies — which callees a
# loop reaches, which return statements mention a tainted variable — so it
# needs a statement-level view of the tree that the line-oriented lint
# rules never build. The parser below is deliberately regex-grade: it
# strips strings and comments, joins multi-line signatures, and tracks
# braces; it does not parse C++. That is the same precision contract as
# the mutex inventory, and it gets the same embedded self-test corpus.

_STR_LITERAL_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')


def strip_code(raw: str, in_block_comment: bool):
    """Code portion of one raw line: string/char literals blanked, // and
    /* */ comments removed. Returns (code, still_in_block_comment)."""
    out = []
    i, n = 0, len(raw)
    while i < n:
        if in_block_comment:
            end = raw.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = raw[i]
        if ch in "\"'":
            m = _STR_LITERAL_RE.match(raw, i)
            if m:
                out.append('""' if ch == '"' else "''")
                i = m.end()
                continue
        if raw.startswith("//", i):
            break
        if raw.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


# Keywords that look like `name (` but never are calls or definitions.
CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "catch", "do", "else",
    "sizeof", "alignof", "alignas", "decltype", "static_assert", "new",
    "delete", "case", "defined", "noexcept", "throw", "co_return",
    "co_await", "assert", "requires"))

_HEAD_NAME_RE = re.compile(r"((?:[\w~]+\s*::\s*)*[\w~]+)\s*$")

# A call site inside a body: optional `Qual::` chain plus the callee.
INV_CALL_RE = re.compile(r"(?<![\w:])((?:\w+\s*::\s*)*[A-Za-z_]\w*)\s*\(")

LOOP_HEAD_RE = re.compile(r"(?<!\w)(for|while)\s*\(|(?<!\w)do\s*\{")


class FunctionDef:
    """One function definition: identity, head text, stripped body lines,
    and the harvested call sites / return statements / loops."""

    __slots__ = ("path", "name", "cls", "line", "end_line", "head",
                 "params", "hot", "body", "calls", "returns", "loops")

    def __init__(self, path, name, cls, line, head, params):
        self.path = path
        self.name = name
        self.cls = cls
        self.line = line
        self.end_line = line
        self.head = head
        self.params = params
        self.hot = "CONDSEL_HOT" in head
        self.body = []       # [(lineno_1based, stripped_code)]
        self.calls = []      # [(lineno, callee_text)]  e.g. "Status::Internal"
        self.returns = []    # [(lineno, full_return_statement)]
        self.loops = []      # [(lineno, header_text, body_text, end_lineno)]

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def body_text(self) -> str:
        return "\n".join(code for _, code in self.body)


def _extract_params(head: str) -> str:
    start = head.index("(")
    depth = 0
    for k in range(start, len(head)):
        if head[k] == "(":
            depth += 1
        elif head[k] == ")":
            depth -= 1
            if depth == 0:
                return head[start + 1:k]
    return head[start + 1:]


def _validate_head(head: str):
    """None, or (name, cls, params) when `head` (the text before a
    top-level `{`) is a plausible function definition signature."""
    if "(" not in head:
        return None  # class/struct/namespace/extern blocks
    stripped = head.strip()
    if stripped.startswith("#"):
        return None
    if re.match(r"^(?:class|struct|enum|union|namespace|extern)\b",
                stripped):
        return None
    before = head[:head.index("(")]
    # Reject assignments before the parameter list: lambdas and
    # brace-initialized globals (`auto f = [] (...) {`). operator= is the
    # one legitimate `=` there.
    if re.search(r"(?<![=!<>])=(?!=)", before.replace("operator=", "@")):
        return None
    m = _HEAD_NAME_RE.search(before)
    if not m:
        return None
    qual = re.sub(r"\s+", "", m.group(1))
    parts = qual.split("::")
    name = parts[-1].lstrip("~")
    cls = parts[-2] if len(parts) > 1 else None
    if not name or name in CONTROL_KEYWORDS:
        return None
    return name, cls, _extract_params(head)


def _match_head(code_lines, i):
    """Try to read a function head starting at line i. Returns None or
    (name, cls, params, head, open_idx, open_col) where open_idx/open_col
    locate the body's opening `{`."""
    first = code_lines[i].strip()
    if not first or first.startswith("#") or first.startswith("}"):
        return None
    paren = 0
    buf = []
    for j in range(i, min(len(code_lines), i + 14)):
        seg = code_lines[j]
        for k, c in enumerate(seg):
            if c == "(":
                paren += 1
            elif c == ")":
                paren -= 1
            elif c == ";":
                return None
            elif c == "{":
                if paren > 0:
                    continue  # brace inside a default argument
                head = "".join(buf) + seg[:k]
                v = _validate_head(head)
                if v is None:
                    return None
                name, cls, params = v
                return name, cls, params, head, j, k
            elif c == "}" and paren == 0:
                return None
        buf.append(seg + "\n")
    return None


def _harvest(fn: FunctionDef):
    """Fills calls / returns / loops from the recorded body lines."""
    for lineno, code in fn.body:
        for m in INV_CALL_RE.finditer(code):
            callee = re.sub(r"\s+", "", m.group(1))
            if callee.split("::")[-1] in CONTROL_KEYWORDS:
                continue
            fn.calls.append((lineno, callee))
    # Return statements, joined to the terminating `;`.
    body = fn.body
    k = 0
    while k < len(body):
        lineno, code = body[k]
        m = re.search(r"(?<![\w])return(?![\w])", code)
        if not m:
            k += 1
            continue
        stmt = code[m.start():]
        j = k
        while ";" not in stmt and j + 1 < len(body) and j - k < 10:
            j += 1
            stmt += " " + body[j][1]
        stmt = re.sub(r"\s+", " ", stmt.split(";")[0]).strip()
        fn.returns.append((lineno, stmt))
        k = j + 1
    # Loops: for/while/do with the nested body text extracted by brace
    # matching over the flattened body.
    flat_parts, line_at = [], []
    for lineno, code in body:
        flat_parts.append(code + "\n")
        line_at.append(lineno)
    flat = "".join(flat_parts)
    offsets = []  # offset of each line start in flat
    pos = 0
    for part in flat_parts:
        offsets.append(pos)
        pos += len(part)

    def line_of(off):
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if offsets[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return line_at[lo]

    for m in LOOP_HEAD_RE.finditer(flat):
        kw = m.group(1) or "do"
        if kw == "do":
            header = "do"
            body_start = flat.index("{", m.start())
        else:
            depth = 0
            p = flat.index("(", m.start())
            q = p
            while q < len(flat):
                if flat[q] == "(":
                    depth += 1
                elif flat[q] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                q += 1
            header = re.sub(r"\s+", " ", flat[m.start():q + 1])
            r = q + 1
            while r < len(flat) and flat[r] in " \t\n":
                r += 1
            if r >= len(flat):
                continue
            if flat[r] != "{":
                # Single-statement loop body: up to the `;`.
                end = flat.find(";", r)
                if end < 0:
                    end = len(flat) - 1
                fn.loops.append((line_of(m.start()), header, flat[r:end],
                                 line_of(end)))
                continue
            body_start = r
        depth = 0
        q = body_start
        while q < len(flat):
            if flat[q] == "{":
                depth += 1
            elif flat[q] == "}":
                depth -= 1
                if depth == 0:
                    break
            q += 1
        fn.loops.append((line_of(m.start()), header,
                         flat[body_start + 1:q], line_of(min(q, len(flat) - 1))))


def parse_functions(path: str, text: str):
    """Every function definition in `text` with harvested calls, returns
    and loops. `path` is recorded on each FunctionDef verbatim."""
    in_block = False
    code_lines = []
    for rawline in text.splitlines():
        code, in_block = strip_code(rawline, in_block)
        code_lines.append(code)
    funcs = []
    i, n = 0, len(code_lines)
    # Enclosing class/struct tracking so header-inline methods get their
    # class name: a stack of (class_name, body_depth), maintained only
    # over the lines between function definitions.
    scope_stack = []
    outer_depth = 0
    pending_class = None
    _CLASS_RE = re.compile(r"(?:^|[\s;{}])(?:class|struct)\s+"
                           r"(?:alignas\s*\([^)]*\)\s*)?(\w+)")

    def scan_outer_line(seg):
        nonlocal outer_depth, pending_class
        m = _CLASS_RE.search(re.sub(r"template\s*<[^<>]*>", "", seg))
        if m:
            pending_class = m.group(1)
        for ch in seg:
            if ch == "{":
                outer_depth += 1
                if pending_class is not None:
                    scope_stack.append((pending_class, outer_depth))
                    pending_class = None
            elif ch == "}":
                outer_depth -= 1
                while scope_stack and scope_stack[-1][1] > outer_depth:
                    scope_stack.pop()
            elif ch == ";":
                pending_class = None  # forward declaration

    while i < n:
        head = _match_head(code_lines, i)
        if head is None:
            scan_outer_line(code_lines[i])
            i += 1
            continue
        name, cls, params, head_text, open_idx, open_col = head
        if cls is None and scope_stack:
            cls = scope_stack[-1][0]
        fn = FunctionDef(path, name, cls, i + 1, head_text, params)
        depth, end_idx, end_col = 0, None, None
        j = open_idx
        while j < n:
            seg = code_lines[j]
            k = open_col if j == open_idx else 0
            while k < len(seg):
                if seg[k] == "{":
                    depth += 1
                elif seg[k] == "}":
                    depth -= 1
                    if depth == 0:
                        end_idx, end_col = j, k
                        break
                k += 1
            if end_idx is not None:
                break
            j += 1
        if end_idx is None:
            i = open_idx + 1  # unterminated body; skip the head
            continue
        if open_idx == end_idx:
            fn.body = [(open_idx + 1,
                        code_lines[open_idx][open_col + 1:end_col])]
        else:
            fn.body = [(open_idx + 1, code_lines[open_idx][open_col + 1:])]
            fn.body += [(k + 1, code_lines[k])
                        for k in range(open_idx + 1, end_idx)]
            fn.body.append((end_idx + 1, code_lines[end_idx][:end_col]))
        fn.end_line = end_idx + 1
        _harvest(fn)
        funcs.append(fn)
        i = end_idx + 1
    return funcs


def build_function_inventory(root: str, dirs=LIBRARY_DIRS):
    """parse_functions over every source file under `dirs`. Returns
    (functions, by_name) where by_name maps simple name -> [FunctionDef]."""
    functions = []
    for path in iter_source_files(root, dirs):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        functions.extend(parse_functions(path, text))
    by_name = {}
    for fn in functions:
        by_name.setdefault(fn.name, []).append(fn)
    return functions, by_name


# --------------------------------------------------------------------------
# Self-test.

_SELF_TEST_CASES = [
    # (description, callable) pairs; each callable raises AssertionError.
]


def _case(description):
    def wrap(fn):
        _SELF_TEST_CASES.append((description, fn))
        return fn
    return wrap


@_case("MUTEX_MEMBER_RE matches std and Ordered mutex members")
def _t_mutex_member():
    assert MUTEX_MEMBER_RE.match("  mutable std::mutex mu_;")
    assert MUTEX_MEMBER_RE.match("  std::shared_mutex mu_;")
    assert MUTEX_MEMBER_RE.match("  std::recursive_mutex big_lock_;")
    assert MUTEX_MEMBER_RE.match(
        '  mutable OrderedMutex mu_{lock_rank::kAdmission, "A::mu_"};')
    assert MUTEX_MEMBER_RE.match(
        '  OrderedSharedMutex mu_{lock_rank::kMemo, "M::mu_"};')
    assert MUTEX_MEMBER_RE.match("  std::mutex mu;")  # aggregate member
    assert not MUTEX_MEMBER_RE.match("  std::mutex* borrowed_;")
    assert not MUTEX_MEMBER_RE.match("  // std::mutex mu_;")


@_case("STATIC_MUTEX_RE matches only static declarations")
def _t_static_mutex():
    assert STATIC_MUTEX_RE.match("static std::mutex g_mu;")
    assert STATIC_MUTEX_RE.match(
        '  static OrderedMutex g_mu{lock_rank::kX, "g_mu"};')
    assert not STATIC_MUTEX_RE.match("std::mutex mu_;")


@_case("ORDERED_DECL_RE extracts rank constant and manifest label")
def _t_ordered_decl():
    m = ORDERED_DECL_RE.search(
        "mutable OrderedMutex epoch_mu_{lock_rank::kSnapshotEpoch, "
        '"SnapshotPublisher::epoch_mu_"};')
    assert m and m.group("const") == "kSnapshotEpoch"
    assert m.group("label") == "SnapshotPublisher::epoch_mu_"
    assert m.group("name") == "epoch_mu_"
    assert not ORDERED_DECL_RE.search("std::mutex mu_;")


@_case("LOCK_RANK_CONST_RE parses lock_ranks.h constants")
def _t_rank_const():
    m = LOCK_RANK_CONST_RE.match("inline constexpr int kAdmission = 10;")
    assert m and m.group("const") == "kAdmission"
    assert m.group("rank") == "10"
    assert not LOCK_RANK_CONST_RE.match("constexpr double kX = 1.0;")


@_case("GUARD_RE matches every guard shape the repo uses")
def _t_guard():
    for text, want in [
        ("const std::lock_guard<std::mutex> lock(mu_);", ["mu_"]),
        ("std::unique_lock<OrderedMutex> lock(mu_);", ["mu_"]),
        ("std::shared_lock<std::shared_mutex> lock(mu_);", ["mu_"]),
        ("std::scoped_lock lock(deques[victim].mu, deques[w].mu);",
         ["deques[victim].mu", "deques[w].mu"]),
        ("std::shared_lock lock(mu_);", ["mu_"]),
        ("std::unique_lock<std::mutex> lock(mu_, std::defer_lock);",
         ["mu_"]),
    ]:
        m = GUARD_RE.search(text)
        assert m, text
        assert guard_mutex_exprs(m.group("args")) == want, text
    assert not GUARD_RE.search("slot_freed_.wait_for(lock, dur);")
    assert not GUARD_RE.search("// std::lock_guard<std::mutex> lock(mu_);"
                               .split("//")[0])


@_case("mutex_expr_name takes the final identifier")
def _t_expr_name():
    assert mutex_expr_name("mu_") == "mu_"
    assert mutex_expr_name("d.mu") == "mu"
    assert mutex_expr_name("deques[victim].mu") == "mu"
    assert mutex_expr_name("publisher_.epoch_mu_") == "epoch_mu_"
    assert mutex_expr_name("*this") is None


@_case("BLOCKING_CALL_RE matches parks and slow work, not bookkeeping")
def _t_blocking():
    for text in [
        "std::this_thread::sleep_for(ms);",
        "cv.wait_for(lock, dur);",
        "auto s = std::make_shared<const Snapshot>(1);",
        "worker.join();",
        "gs.Compute(p);",
        "service.Submit(tenant, q);",
    ]:
        assert BLOCKING_CALL_RE.search(text), text
    for text in [
        "counters_.submitted.fetch_add(1);",
        "ledger_.emplace_back(epoch, snap);",
        "int waiting = 0;",
    ]:
        assert not BLOCKING_CALL_RE.search(text), text


@_case("parse_fault_enumerators walks the enum body")
def _t_faults():
    text = """
enum class Fault {
  kDropSits = 0,
  kCorruptHistograms,
  kSlowRefresh,
};
"""
    assert parse_fault_enumerators(text) == [
        "kDropSits", "kCorruptHistograms", "kSlowRefresh"]
    assert parse_fault_enumerators("enum class Other { kX };") == []


@_case("guarded_field_findings: header members after a mutex")
def _t_guarded_header():
    lines = [
        "class C {",
        "  mutable std::mutex mu_;",
        "  int covered_ CONDSEL_GUARDED_BY(mu_) = 0;",
        "  std::atomic<int> free_{0};",
        "  int naked_ = 0;",
        "};",
    ]
    hits = list(guarded_field_findings(
        "src/c.h", lines, lambda i, r: False, "guarded-field"))
    assert [ln for ln, _ in hits] == [5], hits


@_case("guarded_field_findings: .cc statics after a static mutex")
def _t_guarded_static():
    lines = [
        "static std::mutex g_mu;",
        "static int g_covered CONDSEL_GUARDED_BY(g_mu) = 0;",
        "static std::atomic<int> g_free{0};",
        "static int g_naked = 0;",
    ]
    hits = list(guarded_field_findings(
        "src/c.cc", lines, lambda i, r: False, "guarded-field"))
    assert [ln for ln, _ in hits] == [4], hits
    # Member declarations in a .cc do not trip the static variant.
    member_lines = ["std::mutex mu_;", "int naked_ = 0;"]
    assert not list(guarded_field_findings(
        "src/c.cc", member_lines, lambda i, r: False, "guarded-field"))


@_case("make_allowed honors same-line and preceding-line markers")
def _t_allowed():
    lines = [
        "// condsel-model: allow(lock-cycle)",
        "code here",
        "other code  // condsel-lint: allow(guarded-by-coverage)",
    ]
    allowed = make_allowed(lines, [LINT_ALLOW_RE, MODEL_ALLOW_RE])
    assert allowed(1, "lock-cycle")
    assert allowed(2, "guarded-by-coverage")
    assert not allowed(1, "guarded-by-coverage")


_PARSE_CORPUS = """
#include "x.h"

namespace condsel {

// A declaration, not a definition.
double Declared(int x);

CONDSEL_HOT double GetSelectivity::Compute(PredSet p) {
  double sel = provider_->Estimate(q, p);  // comment with return junk
  for (int i = 0; i < n; ++i) {
    sel *= ComputeEntry(i).selectivity;
  }
  while (deadline_.Expired()) break;
  return SanitizeSelectivity(sel);
}

class Memo {
 public:
  int Find(PredSet p) const { return table_.count(p); }

 private:
  int naked_ = 0;
};

Status Service::Submit(const std::string& tenant,
                       const Query& query) {
  Status s = Status::Internal("boom {not a brace}");
  return
      s;
}

}  // namespace condsel
"""


@_case("parse_functions finds definitions, skips declarations")
def _t_parse_defs():
    fns = parse_functions("src/x.cc", _PARSE_CORPUS)
    quals = [f.qual for f in fns]
    assert quals == ["GetSelectivity::Compute", "Memo::Find",
                     "Service::Submit"], quals
    assert all(f.name != "Declared" for f in fns)


@_case("parse_functions records CONDSEL_HOT, params, line spans")
def _t_parse_hot():
    fns = {f.qual: f for f in parse_functions("src/x.cc", _PARSE_CORPUS)}
    comp = fns["GetSelectivity::Compute"]
    assert comp.hot and not fns["Memo::Find"].hot
    assert "PredSet p" in comp.params
    assert comp.end_line > comp.line
    sub = fns["Service::Submit"]
    assert "tenant" in sub.params and "query" in sub.params


@_case("parse_functions harvests calls, multi-line returns, loops")
def _t_parse_harvest():
    fns = {f.qual: f for f in parse_functions("src/x.cc", _PARSE_CORPUS)}
    comp = fns["GetSelectivity::Compute"]
    callees = {c for _, c in comp.calls}
    assert {"ComputeEntry", "SanitizeSelectivity", "Estimate",
            "Expired"} <= callees, callees
    assert "for" not in callees and "while" not in callees
    assert [s for _, s in comp.returns] == ["return SanitizeSelectivity(sel)"]
    heads = [h for _, h, _, _ in comp.loops]
    assert any(h.startswith("for") for h in heads), heads
    assert any(h.startswith("while") for h in heads), heads
    start, _, for_body, end = next(
        loop for loop in comp.loops if loop[1].startswith("for"))
    assert "ComputeEntry" in for_body
    assert end >= start
    # Braces inside string literals must not confuse the brace tracking,
    # and the joined return picks up the continuation line.
    sub = fns["Service::Submit"]
    assert [s for _, s in sub.returns] == ["return s"], sub.returns
    assert any(c == "Status::Internal" for _, c in sub.calls)


@_case("strip_code blanks strings and strips both comment styles")
def _t_strip_code():
    code, blk = strip_code('x = "a // b {" + y; // tail', False)
    assert code == 'x = "" + y; ', code
    assert not blk
    code, blk = strip_code("a /* open", False)
    assert code == "a " and blk
    code, blk = strip_code("still comment */ b", True)
    assert code == " b" and not blk


def run_self_test() -> int:
    failures = 0
    for description, fn in _SELF_TEST_CASES:
        try:
            fn()
        except AssertionError as e:
            failures += 1
            print(f"self-test FAIL: {description}: {e}", file=sys.stderr)
    total = len(_SELF_TEST_CASES)
    if failures:
        print(f"cpp_model_common --self-test: {failures}/{total} cases "
              "failed", file=sys.stderr)
        return 1
    print(f"cpp_model_common --self-test: {total} cases ok",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(run_self_test())
    print(__doc__)
    sys.exit(0)
