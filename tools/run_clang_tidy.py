#!/usr/bin/env python3
"""Runs clang-tidy over the project's compilation database.

Used by the `clang_tidy` ctest target and the CI tidy job:

    tools/run_clang_tidy.py --build-dir build [--clang-tidy clang-tidy-18]

Only first-party translation units are checked (src/, tests/, tools/,
fuzz/, bench/, examples/); the configuration lives in .clang-tidy at the
repository root. Exit status is non-zero when any file produces findings,
so wiring it into a test suite makes tidy regressions fail the build.
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys

FIRST_PARTY = ("src/", "tests/", "tools/", "fuzz/", "bench/", "examples/")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def first_party_sources(build_dir: str) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write(
            f"error: {db_path} not found; configure with cmake first "
            "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)\n")
        sys.exit(2)
    with open(db_path, encoding="utf-8") as fh:
        database = json.load(fh)
    root = repo_root()
    files = set()
    for entry in database:
        path = os.path.abspath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(FIRST_PARTY):
            files.add(path)
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build directory with compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to run")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1))
    args = parser.parse_args()

    sources = first_party_sources(args.build_dir)
    if not sources:
        sys.stderr.write("error: no first-party sources in the database\n")
        return 2

    def run(source: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", source],
            capture_output=True, text=True, check=False)
        return source, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, code, output in pool.map(run, sources):
            rel = os.path.relpath(source, repo_root())
            if code != 0:
                failures += 1
                sys.stderr.write(f"== {rel} ==\n{output}\n")
            else:
                sys.stderr.write(f"ok {rel}\n")
    if failures:
        sys.stderr.write(f"clang-tidy: {failures} file(s) with findings\n")
        return 1
    sys.stderr.write(f"clang-tidy: {len(sources)} files clean\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
