// condsel_cli — command-line cardinality estimation.
//
// Loads (or synthesizes) a database, builds SIT pools, and answers
// COUNT(*) SQL with estimates, explanations, and optional ground truth.
//
//   condsel_cli [options] "SELECT COUNT(*) FROM ... WHERE ..." [more sql]
//
// Options:
//   --db=snowflake|tpch     synthetic database to use   (default snowflake)
//   --scale=<float>         data scale                  (default 0.01)
//   --sits=<int>            SIT pool join depth J_i     (default 2)
//   --ranking=diff|nind     decomposition ranking       (default diff)
//   --catalog=<path>        load a serialized catalog instead of --db
//   --pool=<path>           load a serialized SIT pool (with --catalog)
//   --truth                 also run the query exactly and show the error
//   --explain               print the chosen decomposition
//   --max-subproblems=<N>   budget: memo entries computed     (0 = unlimited)
//   --max-atomic=<N>        budget: atomic decompositions     (0 = unlimited)
//   --deadline-ms=<F>       budget: wall clock per estimate   (0 = unlimited)
//   --threads=<N>           getSelectivity DP worker threads  (default 1)
//   --stats                 print search statistics and degradation flags
//   --audit                 record every estimator's derivation DAG and
//                           statically verify it (DerivationAuditor); a
//                           violation fails the run with exit code 1
//   --serve-selftest        stand up an in-process EstimationService and
//                           drive it from concurrent session threads while
//                           epochs refresh and injected faults pulse; the
//                           telemetry invariants (balanced books, zero torn
//                           snapshots) are checked and a violation fails
//                           the run with exit code 1. With no SQL, a
//                           default synthetic workload is generated.
//
// With no SQL arguments, reads one statement per line from stdin.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "condsel/analysis/auditor.h"
#include "condsel/api.h"
#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/datagen/snowflake.h"
#include "condsel/optimizer/integration.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/datagen/tpch_lite.h"
#include "condsel/datagen/workload.h"
#include "condsel/common/fault_injector.h"
#include "condsel/io/serialize.h"
#include "condsel/parser/parser.h"
#include "condsel/service/service.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/version.h"

using namespace condsel;  // NOLINT: tool brevity

namespace {

struct Options {
  std::string db = "snowflake";
  double scale = 0.01;
  int sits = 2;
  Ranking ranking = Ranking::kDiff;
  std::string catalog_path;
  std::string pool_path;
  bool truth = false;
  bool explain = false;
  bool stats = false;
  bool audit = false;
  bool serve_selftest = false;
  EstimationBudget budget;
  std::vector<std::string> sql;
};

bool ParseArgs(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    // One hoisted cursor, not per-branch `const char* v` declarations:
    // in an else-if chain each inner declaration sits inside the outer
    // condition's scope, which -Wshadow rejects.
    const char* v = nullptr;
    if ((v = value("--db=")) != nullptr) {
      out->db = v;
    } else if ((v = value("--scale=")) != nullptr) {
      out->scale = std::atof(v);
    } else if ((v = value("--sits=")) != nullptr) {
      out->sits = std::atoi(v);
    } else if ((v = value("--ranking=")) != nullptr) {
      if (std::string(v) == "nind") {
        out->ranking = Ranking::kNInd;
      } else if (std::string(v) == "diff") {
        out->ranking = Ranking::kDiff;
      } else {
        std::fprintf(stderr, "unknown ranking '%s'\n", v);
        return false;
      }
    } else if ((v = value("--catalog=")) != nullptr) {
      out->catalog_path = v;
    } else if ((v = value("--pool=")) != nullptr) {
      out->pool_path = v;
    } else if ((v = value("--max-subproblems=")) != nullptr) {
      out->budget.max_subproblems =
          static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = value("--max-atomic=")) != nullptr) {
      out->budget.max_atomic_decompositions =
          static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = value("--deadline-ms=")) != nullptr) {
      out->budget.deadline_seconds = std::atof(v) / 1000.0;
    } else if ((v = value("--threads=")) != nullptr) {
      out->budget.threads = std::max(1, std::atoi(v));
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--audit") {
      out->audit = true;
    } else if (arg == "--serve-selftest") {
      out->serve_selftest = true;
    } else if (arg == "--truth") {
      out->truth = true;
    } else if (arg == "--explain") {
      out->explain = true;
    } else if (arg == "--version") {
      std::printf("condsel %s\n", kVersionString);
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      out->sql.push_back(arg);
    }
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: condsel_cli [--db=snowflake|tpch] [--scale=F] [--sits=J]\n"
      "                   [--ranking=diff|nind] [--catalog=PATH "
      "[--pool=PATH]]\n"
      "                   [--max-subproblems=N] [--max-atomic=N]\n"
      "                   [--deadline-ms=F] [--threads=N] [--stats] "
      "[--audit]\n"
      "                   [--serve-selftest] [--truth] [--explain] "
      "[SQL ...]\n"
      "With no SQL arguments, statements are read from stdin, one per "
      "line.\n");
}

// Exhaustive search is exponential-factorial; past this many predicates
// the reference estimator is skipped in the audit sweep.
constexpr int kMaxExhaustivePreds = 6;

// Records and statically verifies the derivation of every estimator on
// `q`. Prints one line per estimator; returns false if any audit fails.
bool AuditQuery(const Query& q, const SitPool& pool, Ranking ranking,
                const EstimationBudget& budget) {
  SitMatcher matcher(&pool);
  matcher.BindQuery(&q);
  static const NIndError n_ind;
  static const DiffError diff;
  const ErrorFunction* fn =
      ranking == Ranking::kNInd ? static_cast<const ErrorFunction*>(&n_ind)
                                : static_cast<const ErrorFunction*>(&diff);
  AtomicSelectivityProvider approx(&matcher, fn);
  const DerivationAuditor auditor;
  bool all_ok = true;

  auto show = [&](const char* name, const AuditReport& report) {
    if (report.ok()) {
      std::printf("  audit:    %-14s clean (%zu node%s)\n", name,
                  report.nodes_checked,
                  report.nodes_checked == 1 ? "" : "s");
    } else {
      all_ok = false;
      std::printf("  audit:    %-14s %s", name, report.ToString().c_str());
    }
  };

  {
    EstimationBudget b = budget;  // GetSelectivity borrows the budget
    GetSelectivity gs(&q, &approx, &b);
    DerivationDag dag;
    gs.set_recorder(&dag);
    gs.Compute(q.all_predicates());
    show("getSelectivity", auditor.Audit(q, dag, gs.stats()));
  }
  if (SetSize(q.all_predicates()) <= kMaxExhaustivePreds) {
    DerivationDag dag;
    ExhaustiveBest(q, q.all_predicates(), &approx,
                   /*separable_first=*/true, &dag);
    show("exhaustive", auditor.Audit(q, dag));
  } else {
    std::printf("  audit:    %-14s skipped (%d predicates)\n", "exhaustive",
                SetSize(q.all_predicates()));
  }
  {
    GvmEstimator gvm(&matcher);
    DerivationDag dag;
    gvm.set_recorder(&dag);
    gvm.Estimate(q, q.all_predicates());
    show("gvm", auditor.Audit(q, dag));
  }
  {
    NoSitEstimator no_sit(&matcher);
    DerivationDag dag;
    no_sit.set_recorder(&dag);
    no_sit.Estimate(q, q.all_predicates());
    show("noSit", auditor.Audit(q, dag));
  }
  {
    OptimizerCoupledEstimator coupled(&q, &approx);
    DerivationDag dag;
    coupled.set_recorder(&dag);
    const StatusOr<SelEstimate> est = coupled.TryEstimate(q.all_predicates());
    if (est.ok()) {
      show("optimizer", auditor.Audit(q, dag));
    } else {
      std::printf("  audit:    %-14s skipped (%s)\n", "optimizer",
                  est.status().message().c_str());
    }
  }
  return all_ok;
}

// In-process overload drill: concurrent tenants against one
// EstimationService while epochs refresh and injected faults pulse.
// Returns false if any serving invariant is violated.
bool RunServeSelftest(const Catalog& catalog, const SitPool& pool,
                      const std::vector<Query>& queries, Ranking ranking) {
  constexpr int kSessionThreads = 8;
  constexpr int kSubmitsPerThread = 16;
  constexpr int kRefreshes = 12;

  ServiceOptions options;
  options.ranking = ranking;
  options.admission.max_concurrent = 4;
  options.admission.queue_limit = 4;
  options.retry.initial_backoff_seconds = 1e-4;
  options.breaker.open_after = 2;
  options.breaker.close_after = 2;
  EstimationService service(options);
  {
    const StatusOr<uint64_t> seed = service.Refresh(catalog, pool);
    if (!seed.ok()) {
      std::fprintf(stderr, "serve-selftest: seed refresh failed: %s\n",
                   seed.status().ToString().c_str());
      return false;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> err_count{0};
  std::vector<std::thread> sessions;
  for (int t = 0; t < kSessionThreads; ++t) {
    sessions.emplace_back([&, t]() {
      const std::string tenant = "tenant-" + std::to_string(t % 3);
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        const Query& q = queries[(t + i) % queries.size()];
        SubmitOptions submit;
        submit.deadline_seconds = i % 2 == 0 ? 0.0 : 1.0;
        if (service.Submit(tenant, q, submit).ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          err_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread refresher([&]() {
    for (int i = 0; i < kRefreshes; ++i) {
      if (i % 4 == 3) {
        const ScopedFault fault(Fault::kFailSnapshotSwap);
        StatusIgnored(service.Refresh(catalog, pool));
      } else {
        StatusIgnored(service.Refresh(catalog, pool));
      }
      std::this_thread::yield();
    }
  });
  std::thread fault_pulser([&]() {
    int pulse = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (pulse++ % 2 == 0) {
        const ScopedFault fault(Fault::kThrowAtomicLookup);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  });
  for (std::thread& th : sessions) th.join();
  stop.store(true, std::memory_order_relaxed);
  refresher.join();
  fault_pulser.join();

  const ServiceStatsSnapshot stats = service.Stats();
  std::printf(
      "serve-selftest: %llu submitted = %llu completed + %llu failed\n"
      "  admission: %llu quota, %llu queue-full, %llu queue-timeout\n"
      "  retries: %llu (%llu transient faults, %llu no-retry deadline)\n"
      "  modes: %llu full / %llu capped / %llu independence "
      "(%llu down, %llu up)\n"
      "  epochs: %llu published, %llu failed swaps, %llu live, "
      "%llu torn\n"
      "  latency: p50 %.3f ms, p99 %.3f ms\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected_quota),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.queue_timeouts),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.transient_faults),
      static_cast<unsigned long long>(stats.no_retry_deadline),
      static_cast<unsigned long long>(stats.mode_submissions[0]),
      static_cast<unsigned long long>(stats.mode_submissions[1]),
      static_cast<unsigned long long>(stats.mode_submissions[2]),
      static_cast<unsigned long long>(stats.step_downs),
      static_cast<unsigned long long>(stats.step_ups),
      static_cast<unsigned long long>(stats.epochs_published),
      static_cast<unsigned long long>(stats.failed_swaps),
      static_cast<unsigned long long>(service.live_epochs()),
      static_cast<unsigned long long>(stats.incoherent_snapshots),
      stats.latency_p50_seconds * 1000.0, stats.latency_p99_seconds * 1000.0);

  bool ok = true;
  const uint64_t expected =
      static_cast<uint64_t>(kSessionThreads) * kSubmitsPerThread;
  auto violation = [&](const char* what) {
    std::fprintf(stderr, "serve-selftest: VIOLATION: %s\n", what);
    ok = false;
  };
  if (stats.submitted != expected) violation("submitted count mismatch");
  if (stats.completed + stats.failed != stats.submitted) {
    violation("books do not balance (completed + failed != submitted)");
  }
  if (stats.latency_count != stats.submitted) {
    violation("latency samples do not cover every request");
  }
  if (stats.completed != ok_count.load() || stats.failed != err_count.load()) {
    violation("caller-observed outcomes disagree with telemetry");
  }
  if (stats.incoherent_snapshots != 0) violation("torn snapshot observed");
  if (stats.completed == 0) violation("service starved every session");
  if (service.live_epochs() != 1) violation("retired epochs still live");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    Usage();
    return 2;
  }

  // --- database ------------------------------------------------------
  Catalog catalog;
  if (!opt.catalog_path.empty()) {
    const IoResult r = ReadCatalog(opt.catalog_path, &catalog);
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
  } else if (opt.db == "snowflake") {
    SnowflakeOptions sopt;
    sopt.scale = opt.scale;
    catalog = BuildSnowflake(sopt);
  } else if (opt.db == "tpch") {
    TpchLiteOptions topt;
    topt.scale = opt.scale;
    catalog = BuildTpchLite(topt);
  } else {
    std::fprintf(stderr, "unknown --db '%s'\n", opt.db.c_str());
    return 2;
  }
  std::fprintf(stderr, "# %d tables loaded\n", catalog.num_tables());

  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});

  // --- statements ----------------------------------------------------
  std::vector<std::string> statements = opt.sql;
  if (statements.empty() && !opt.serve_selftest) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) statements.push_back(line);
    }
  }
  if (statements.empty() && !opt.serve_selftest) {
    Usage();
    return 2;
  }

  // Parse everything first: the SIT pool is generated from the parsed
  // queries (their join expressions), mirroring a workload-driven build.
  std::vector<Query> queries;
  for (const std::string& sql : statements) {
    const ParseResult r = ParseQuery(catalog, sql);
    if (!r.ok) {
      std::fprintf(stderr, "parse error in \"%s\": %s\n", sql.c_str(),
                   r.error.c_str());
      return 1;
    }
    queries.push_back(r.query);
  }
  if (queries.empty()) {
    // --serve-selftest with no SQL: drill over a synthetic workload.
    WorkloadOptions wopt;
    wopt.num_queries = 3;
    wopt.num_joins = 3;
    wopt.num_filters = 3;
    wopt.seed = 7;
    queries = GenerateWorkload(catalog, &evaluator, wopt);
    std::fprintf(stderr, "# %zu synthetic workload queries generated\n",
                 queries.size());
  }

  SitPool pool;
  if (!opt.pool_path.empty()) {
    const IoResult r = ReadSitPool(opt.pool_path, catalog, &pool);
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
  } else {
    pool = GenerateSitPool(queries, opt.sits, builder);
  }
  std::fprintf(stderr, "# %d statistics available\n", pool.size());

  if (opt.serve_selftest) {
    return RunServeSelftest(catalog, pool, queries, opt.ranking) ? 0 : 1;
  }

  Estimator estimator(&catalog, &pool, opt.ranking, opt.budget);
  bool audit_ok = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const double est = estimator.EstimateCardinality(q);
    std::printf("%s\n  estimate: %.1f rows\n", statements[i].c_str(), est);
    if (opt.audit) {
      audit_ok &= AuditQuery(q, pool, opt.ranking, opt.budget);
    }
    if (opt.truth) {
      const double truth = evaluator.Cardinality(q, q.all_predicates());
      std::printf("  true:     %.0f rows  (q-error %.2f)\n", truth,
                  truth > 0 && est > 0
                      ? std::max(truth / est, est / truth)
                      : 0.0);
    }
    if (opt.explain) {
      std::printf("  decomposition:\n%s", estimator.Explain(q).c_str());
    }
    if (opt.stats) {
      const GsStats* s = estimator.StatsFor(q);
      if (s != nullptr) {
        std::printf(
            "  stats:    %llu subproblems, %llu memo hits, %llu atomic "
            "decompositions\n",
            static_cast<unsigned long long>(s->subproblems),
            static_cast<unsigned long long>(s->memo_hits),
            static_cast<unsigned long long>(s->atomic_considered));
        std::printf("            analysis %.3f ms, histograms %.3f ms\n",
                    s->analysis_seconds * 1000.0,
                    s->histogram_seconds * 1000.0);
        if (s->budget_exhausted || s->degraded_subproblems > 0 ||
            s->default_fallbacks > 0) {
          std::printf(
              "            budget exhausted: %s, degraded subproblems: "
              "%llu, default fallbacks: %llu\n",
              s->budget_exhausted ? "yes" : "no",
              static_cast<unsigned long long>(s->degraded_subproblems),
              static_cast<unsigned long long>(s->default_fallbacks));
        }
        if (s->parallel_levels > 0) {
          std::printf(
              "            scheduler: %llu levels (widest %llu), %llu "
              "steals moved %llu subsets\n",
              static_cast<unsigned long long>(s->parallel_levels),
              static_cast<unsigned long long>(s->max_level_width),
              static_cast<unsigned long long>(s->steals),
              static_cast<unsigned long long>(s->stolen_subsets));
          for (const GsLevelStats& ls : s->level_stats) {
            if (ls.steals == 0 && ls.max_solved_by_one_worker == 0) continue;
            std::printf(
                "              level %d: width %llu, busiest worker "
                "solved %llu, %llu steals (%llu subsets)\n",
                ls.level, static_cast<unsigned long long>(ls.width),
                static_cast<unsigned long long>(
                    ls.max_solved_by_one_worker),
                static_cast<unsigned long long>(ls.steals),
                static_cast<unsigned long long>(ls.stolen_subsets));
          }
        }
      }
    }
  }
  if (!audit_ok) {
    std::fprintf(stderr, "audit: derivation violations found\n");
    return 1;
  }
  return 0;
}
