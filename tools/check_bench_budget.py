#!/usr/bin/env python3
"""Fail when a bench allocation counter regresses above its ceiling.

Reads the BENCH_*.json artifacts a bench run wrote (in --bench-dir,
default the current directory) and compares the allocation counters
against tools/bench_alloc_ceiling.toml. Exits non-zero, naming each
offending counter, when any measured value exceeds its ceiling.

Allocation counts are deterministic for the pinned bench configuration,
unlike wall-clock numbers, which is what makes a hard CI gate viable.
A missing artifact is an error too: a bench that silently stopped
writing its JSON must not look like a pass.

Usage: python3 tools/check_bench_budget.py [--bench-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tomllib

REPO = pathlib.Path(__file__).resolve().parent.parent
CEILING_FILE = REPO / "tools" / "bench_alloc_ceiling.toml"


def fail(errors: list[str]) -> int:
    for e in errors:
        print(f"check_bench_budget: {e}", file=sys.stderr)
    print(
        "check_bench_budget: a ceiling in tools/bench_alloc_ceiling.toml "
        "was exceeded (or an artifact is missing). If the regression is "
        "intended, raise the ceiling in the same PR and say why.",
        file=sys.stderr,
    )
    return 1


def check_fig6(bench_dir: pathlib.Path, rules: list[dict],
               errors: list[str]) -> None:
    path = bench_dir / "BENCH_fig6_efficiency.json"
    if not path.is_file():
        errors.append(f"missing artifact {path}")
        return
    doc = json.loads(path.read_text())
    by_joins = {w["num_joins"]: w for w in doc.get("workloads", [])}
    for rule in rules:
        joins, ceiling = rule["num_joins"], rule["ceiling"]
        workload = by_joins.get(joins)
        if workload is None:
            errors.append(f"{path.name}: no {joins}-way workload recorded")
            continue
        measured = workload["gs"]["allocs_per_estimate"]
        if measured > ceiling:
            errors.append(
                f"{path.name}: {joins}-way gs.allocs_per_estimate = "
                f"{measured:.1f} exceeds ceiling {ceiling:.1f}")
        else:
            print(f"ok: fig6 {joins}-way gs allocs/estimate "
                  f"{measured:.1f} <= {ceiling:.1f}")


def check_throughput(bench_dir: pathlib.Path, rule: dict,
                     errors: list[str]) -> None:
    path = bench_dir / "BENCH_throughput.json"
    if not path.is_file():
        errors.append(f"missing artifact {path}")
        return
    doc = json.loads(path.read_text())
    threads, ceiling = rule["threads"], rule["ceiling"]
    sweep = next((s for s in doc.get("sweeps", [])
                  if s["threads"] == threads), None)
    if sweep is None:
        errors.append(f"{path.name}: no {threads}-thread sweep recorded")
        return
    measured = sweep["allocs_per_estimate"]
    if measured > ceiling:
        errors.append(
            f"{path.name}: {threads}-thread allocs_per_estimate = "
            f"{measured:.1f} exceeds ceiling {ceiling:.1f}")
    else:
        print(f"ok: throughput {threads}-thread allocs/estimate "
              f"{measured:.1f} <= {ceiling:.1f}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", type=pathlib.Path,
                        default=pathlib.Path("."),
                        help="directory holding the BENCH_*.json artifacts")
    args = parser.parse_args()

    ceilings = tomllib.loads(CEILING_FILE.read_text())
    errors: list[str] = []
    check_fig6(args.bench_dir, ceilings["fig6_gs"], errors)
    check_throughput(args.bench_dir, ceilings["throughput"], errors)
    if errors:
        return fail(errors)
    print("check_bench_budget: all counters within ceilings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
