#!/usr/bin/env python3
"""condsel_model — project-model concurrency-contract analyzer.

Where condsel_lint.py checks single lines, this tool parses the whole
C++ tree into a model — every mutex declaration (including the rank and
manifest name at OrderedMutex construction sites), every RAII lock
acquisition, the Fault enumeration, and the GsStats/ServiceStatsSnapshot
counter blocks — and checks the *relations* between them:

  lock-cycle          the acquires-while-holding graph has a cycle: two
                      code paths disagree about nesting order, which is a
                      deadlock waiting for the right interleaving.
  rank-order          an acquisition edge contradicts the ranks declared
                      in tools/lock_order.toml (outer lock must have the
                      strictly smaller rank; equal ranks only for `pair`
                      families, which order by address at runtime).
  manifest-sync       tools/lock_order.toml, common/lock_ranks.h, and the
                      OrderedMutex construction sites disagree — a rank
                      the runtime checker enforces must be the rank the
                      manifest documents.
  blocking-reachable  a blocking call (sleep, condition wait, allocation
                      of snapshot-sized state, estimation entry points)
                      runs while holding a mutex from which an
                      `acquire_path` lock is reachable in the lock graph.
                      This generalizes condsel_lint's single-purpose
                      no-blocking-under-epoch-lock rule: holding any such
                      mutex can stall the session acquire path
                      transitively.
  guarded-field       mutable state declared after a mutex at the same
                      scope without a CONDSEL_GUARDED_BY annotation
                      (shared with condsel_lint's guarded-by-coverage —
                      both tools call the same cpp_model_common checker).
  fault-census        a Fault enumerator in fault_injector.h is tripped
                      by no test in tests/*.cc: an untested failure edge
                      is an untrusted failure edge. Also verifies the
                      enumerator count matches kNumFaults.
  counter-census      a GsStats / ServiceStatsSnapshot counter field is
                      referenced by no test: telemetry nobody asserts on
                      regresses silently.

Sites can be suppressed with `condsel-model: allow(<check>)` on the same
or preceding line; `condsel-lint: allow(guarded-by-coverage)` also
suppresses guarded-field, so the two tools cannot disagree about a
justified exception.

Usage:
  condsel_model.py [--root DIR] [--dot FILE] [--max-seconds N]
  condsel_model.py --self-test     # mutation fixtures under
                                   # tools/model_fixtures/, each of which
                                   # must trip exactly its EXPECT checks
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import time
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model_common as cm  # noqa: E402


# --------------------------------------------------------------------------
# Model data.

class MutexNode:
    def __init__(self, key, kind, file, line):
        self.key = key        # canonical name, e.g. "SnapshotPublisher::epoch_mu_"
        self.kind = kind      # "std" | "ordered" | "ordered-shared" | "unresolved"
        self.file = file
        self.line = line
        self.rank = None      # from the manifest, when listed there
        self.pair = False
        self.acquire_path = False
        self.rank_const = None  # lock_rank:: constant at the decl site


class Edge:
    def __init__(self, src, dst, file, line, via=None):
        self.src = src        # MutexNode keys
        self.dst = dst
        self.file = file
        self.line = line
        self.via = via        # callee name for call-graph edges


class Finding:
    def __init__(self, check, file, line, message):
        self.check = check
        self.file = file
        self.line = line
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.file, root) if self.file else "<model>"
        where = f"{rel}:{self.line}" if self.line else rel
        return f"{where}: [{self.check}] {self.message}"


class Model:
    def __init__(self, root):
        self.root = root
        self.nodes = {}            # key -> MutexNode
        self.edges = []            # deduped on (src, dst)
        self._edge_keys = set()
        self.blocking_sites = []   # (held keys tuple, file, line, text)
        self.method_acquires = {}  # simple name -> set of node keys
        self.method_defs = {}      # simple name -> definition count
        self.call_sites = []       # (held keys tuple, callee, file, line)
        self.ordered_sites = []    # (const, label, file, line)
        self.findings = []

    def node(self, key, kind, file, line):
        if key not in self.nodes:
            self.nodes[key] = MutexNode(key, kind, file, line)
        return self.nodes[key]

    def add_edge(self, src, dst, file, line, via=None):
        k = (src, dst)
        if k in self._edge_keys:
            return
        self._edge_keys.add(k)
        self.edges.append(Edge(src, dst, file, line, via))


# --------------------------------------------------------------------------
# Parsing one file into the model.

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CLASS_OPEN_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?(?::[^{;]*)?\{")
METHOD_DEF_RE = re.compile(r"\b(\w+)::(~?\w+)\s*\(")
LOCAL_STD_MUTEX_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:" + cm.STD_MUTEX_TYPE + r")\s+(\w+)\s*;")
CALL_RE = re.compile(r"\b(\w+)\s*\(")

# Method names too generic (or too container-like) to use for call-graph
# expansion: a false edge here invents cycles, so expansion stays
# conservative — unique definition, non-generic name, acquires a lock.
CALL_DENYLIST = {
    "size", "find", "insert", "count", "reset", "release", "clear",
    "begin", "end", "get", "at", "back", "front", "push_back",
    "pop_back", "emplace", "emplace_back", "erase", "total", "record",
    "lock", "unlock", "try_lock", "wait", "notify_all", "notify_one",
    "load", "store", "fetch_add", "fetch_sub", "min", "max", "swap",
}

KIND_BY_TYPE = {
    "OrderedMutex": "ordered",
    "OrderedSharedMutex": "ordered-shared",
}


def brace_delta(code):
    return code.count("{") - code.count("}")


class FileParser:
    """Parses one .h/.cc: mutex declarations, class/method context,
    held-lock tracking, acquisition edges, blocking and call sites."""

    def __init__(self, model, path):
        self.model = model
        self.path = path
        with open(path, encoding="utf-8", errors="replace") as f:
            self.lines = f.read().splitlines()
        self.allowed = cm.make_allowed(
            self.lines, [cm.LINT_ALLOW_RE, cm.MODEL_ALLOW_RE])
        # name -> set of node keys declared in this file
        self.local_names = {}

    def _register(self, key, kind, name, lineno):
        self.model.node(key, kind, self.path, lineno)
        self.local_names.setdefault(name, set()).add(key)

    def _mutex_kind(self, type_text):
        for t, kind in KIND_BY_TYPE.items():
            if t in type_text:
                return kind
        return "std"

    def collect_declarations(self):
        """First pass: every mutex declaration in the file, with class
        context, so acquisition resolution in any file can see them."""
        # Ordered declarations usually wrap onto a second line (rank +
        # manifest name); match them against the whole file text and map
        # offsets back to line numbers.
        text = "\n".join(self.lines)
        ordered_lines = set()
        for m in cm.ORDERED_DECL_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            ordered_lines.update(
                range(lineno, text.count("\n", 0, m.end()) + 2))
            self._register(m.group("label"), KIND_BY_TYPE[m.group("type")],
                           m.group("name"), lineno)
            self.model.ordered_sites.append(
                (m.group("const"), m.group("label"), self.path, lineno))
        depth = 0
        class_stack = []  # (name, depth at open)
        in_block_comment = False
        for lineno, raw in enumerate(self.lines, start=1):
            code, in_block_comment = _strip_code(raw, in_block_comment)
            for m in CLASS_OPEN_RE.finditer(code):
                class_stack.append((m.group(1), depth))
            if lineno not in ordered_lines:
                member = cm.MUTEX_MEMBER_RE.match(code)
                static = cm.STATIC_MUTEX_RE.match(code)
                decl = static or member
                if decl:
                    name = decl.group("name")
                    if static is None and class_stack:
                        key = f"{class_stack[-1][0]}::{name}"
                    else:
                        rel = os.path.basename(self.path)
                        key = f"{rel}::{name}"
                    self._register(key, self._mutex_kind(decl.group("type")),
                                   name, lineno)
                else:
                    local = LOCAL_STD_MUTEX_RE.match(code)
                    if local and not class_stack and depth > 0:
                        rel = os.path.basename(self.path)
                        self._register(f"{rel}::{local.group(1)}", "std",
                                       local.group(1), lineno)
            depth += brace_delta(code)
            while class_stack and depth <= class_stack[-1][1]:
                class_stack.pop()

    def analyze_acquisitions(self, resolve):
        """Second pass: held-lock stack per brace depth; records
        acquisition edges, blocking sites, and call sites under locks."""
        depth = 0
        class_stack = []
        method = None          # (simple name, class name or None, depth)
        held = []              # (node key, depth at acquisition line end)
        in_block_comment = False
        for lineno, raw in enumerate(self.lines, start=1):
            code, in_block_comment = _strip_code(raw, in_block_comment)
            for m in CLASS_OPEN_RE.finditer(code):
                class_stack.append((m.group(1), depth))
            if depth == (class_stack[-1][1] + 1 if class_stack else 0):
                md = METHOD_DEF_RE.search(code)
                if md and not code.rstrip().endswith(";"):
                    method = (md.group(2), md.group(1), depth)

            guard = cm.GUARD_RE.search(code)
            acquired_here = []
            if guard:
                enclosing = (method[1] if method else
                             (class_stack[-1][0] if class_stack else None))
                # An allow(lock-cycle) on the preceding line drops this
                # site's edges from the graph (the lock is still tracked
                # as held). For deliberately-inverted acquisitions in
                # death tests, not for production code.
                edges_ok = not self.allowed(lineno - 1, "lock-cycle")
                for expr in cm.guard_mutex_exprs(guard.group("args")):
                    name = cm.mutex_expr_name(expr)
                    if name is None:
                        continue
                    key = resolve(self, enclosing, name)
                    if edges_ok:
                        for held_key, _ in held:
                            self.model.add_edge(held_key, key, self.path,
                                                lineno)
                        for prev in acquired_here:
                            self.model.add_edge(prev, key, self.path,
                                                lineno)
                    acquired_here.append(key)
                if not held and method and acquired_here:
                    simple = method[0]
                    self.model.method_acquires.setdefault(
                        simple, set()).update(acquired_here)

            if held and not guard:
                if (cm.BLOCKING_CALL_RE.search(code)
                        and not self.allowed(lineno - 1,
                                             "blocking-reachable")):
                    self.model.blocking_sites.append(
                        (tuple(k for k, _ in held), self.path, lineno,
                         code.strip()))
                for cm_ in CALL_RE.finditer(code):
                    callee = cm_.group(1)
                    if callee.lower() not in CALL_DENYLIST:
                        self.model.call_sites.append(
                            (tuple(k for k, _ in held), callee, self.path,
                             lineno))

            depth += brace_delta(code)
            new_depth_for_guards = depth
            for key in acquired_here:
                held.append((key, new_depth_for_guards))
            while held and held[-1][1] > depth:
                held.pop()
            while class_stack and depth <= class_stack[-1][1]:
                class_stack.pop()
            if method and depth <= method[2]:
                # Count definitions per simple name for expansion safety.
                self.model.method_defs[method[0]] = (
                    self.model.method_defs.get(method[0], 0) + 1)
                method = None


def _strip_code(raw, in_block_comment):
    """Code text of a raw line, with strings blanked and //- and
    /*-comments removed; returns (code, still_in_block_comment)."""
    s = STRING_RE.sub('""', raw)
    out = []
    i = 0
    while i < len(s):
        if in_block_comment:
            end = s.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        if s.startswith("//", i):
            break
        if s.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        out.append(s[i])
        i += 1
    return "".join(out), in_block_comment


def make_resolver(model, per_file_names, global_names, unit_of):
    """Resolution for the last identifier of a guarded mutex expression:
    enclosing class member, then unique in the file unit (x.cc + x.h),
    then unique across the inventory, else an unresolved file-local node
    (participates in the graph unranked)."""

    def resolve(parser, enclosing_class, name):
        if enclosing_class:
            key = f"{enclosing_class}::{name}"
            if key in model.nodes:
                return key
        unit = unit_of(parser.path)
        candidates = per_file_names.get(unit, {}).get(name, set())
        if len(candidates) == 1:
            return next(iter(candidates))
        candidates = global_names.get(name, set())
        if len(candidates) == 1:
            return next(iter(candidates))
        rel = os.path.basename(parser.path)
        key = f"{rel}::{name}?"
        model.node(key, "unresolved", parser.path, 0)
        return key

    return resolve


# --------------------------------------------------------------------------
# Model construction.

def find_named(root, filename):
    hits = []
    for path in cm.iter_source_files(root):
        if os.path.basename(path) == filename:
            hits.append(path)
    return hits


def build_model(root):
    model = Model(root)
    parsers = []
    for path in cm.iter_source_files(root):
        p = FileParser(model, path)
        p.collect_declarations()
        parsers.append(p)

    def unit_of(path):
        return os.path.splitext(path)[0]

    per_file_names = {}
    global_names = {}
    for p in parsers:
        unit = unit_of(p.path)
        merged = per_file_names.setdefault(unit, {})
        for name, keys in p.local_names.items():
            merged.setdefault(name, set()).update(keys)
            global_names.setdefault(name, set()).update(keys)

    resolve = make_resolver(model, per_file_names, global_names, unit_of)
    for p in parsers:
        p.analyze_acquisitions(resolve)

    # One-level call-graph expansion: a call made under a held lock, to a
    # method defined exactly once in the model that itself acquires
    # lock(s) at its top level, contributes held -> acquired edges.
    for held, callee, path, lineno in model.call_sites:
        if model.method_defs.get(callee, 0) != 1:
            continue
        acquired = model.method_acquires.get(callee)
        if not acquired:
            continue
        for h in held:
            for a in acquired:
                model.add_edge(h, a, path, lineno, via=callee)
    return model


def load_manifest(root):
    path = os.path.join(root, "tools", "lock_order.toml")
    if not os.path.exists(path):
        return None, path
    with open(path, "rb") as f:
        return tomllib.load(f), path


def load_lock_ranks(root):
    """constant -> (rank, file, line) from a lock_ranks.h, if present."""
    hits = find_named(root, "lock_ranks.h")
    if not hits:
        return None, None
    consts = {}
    path = hits[0]
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = cm.LOCK_RANK_CONST_RE.match(cm.strip_line_comment(line))
            if m:
                consts[m.group("const")] = (int(m.group("rank")), path,
                                            lineno)
    return consts, path


# --------------------------------------------------------------------------
# Checks.

def check_manifest_sync(model, manifest, manifest_path, rank_consts):
    out = []
    if manifest is None:
        if model.ordered_sites:
            _, _, path, lineno = model.ordered_sites[0]
            out.append(Finding(
                "manifest-sync", path, lineno,
                "OrderedMutex construction sites exist but "
                "tools/lock_order.toml is missing"))
        return out
    entries = manifest.get("mutex", [])
    by_name = {}
    ranks_seen = {}
    for e in entries:
        name, const, rank = e.get("name"), e.get("constant"), e.get("rank")
        if name is None or const is None or rank is None:
            out.append(Finding("manifest-sync", manifest_path, 0,
                               f"manifest entry {e!r} lacks "
                               "name/constant/rank"))
            continue
        if name in by_name:
            out.append(Finding("manifest-sync", manifest_path, 0,
                               f'duplicate manifest entry "{name}"'))
        by_name[name] = e
        if rank in ranks_seen:
            out.append(Finding(
                "manifest-sync", manifest_path, 0,
                f'rank {rank} assigned to both "{ranks_seen[rank]}" and '
                f'"{name}" (ranks are unique; instances of one family '
                "share a single `pair` entry)"))
        ranks_seen[rank] = name
        if rank_consts is not None:
            if const not in rank_consts:
                out.append(Finding(
                    "manifest-sync", manifest_path, 0,
                    f'manifest constant "{const}" has no lock_rank:: '
                    "definition in lock_ranks.h"))
            elif rank_consts[const][0] != rank:
                cr, cf, cl = rank_consts[const]
                out.append(Finding(
                    "manifest-sync", cf, cl,
                    f"lock_rank::{const} = {cr} but the manifest says "
                    f'rank {rank} for "{name}"'))
        # Attach manifest facts to nodes.
        node = model.nodes.get(name)
        if node is not None:
            node.rank = rank
            node.pair = bool(e.get("pair", False))
            node.acquire_path = bool(e.get("acquire_path", False))

    site_labels = set()
    for const, label, path, lineno in model.ordered_sites:
        site_labels.add(label)
        entry = by_name.get(label)
        if entry is None:
            out.append(Finding(
                "manifest-sync", path, lineno,
                f'OrderedMutex "{label}" is not listed in '
                "tools/lock_order.toml"))
        elif entry.get("constant") != const:
            out.append(Finding(
                "manifest-sync", path, lineno,
                f'OrderedMutex "{label}" is constructed with '
                f"lock_rank::{const} but the manifest assigns "
                f"{entry.get('constant')}"))
        node = model.nodes.get(label)
        if node is not None:
            node.rank_const = const
    for name in by_name:
        if name not in site_labels:
            out.append(Finding(
                "manifest-sync", manifest_path, 0,
                f'manifest lists "{name}" but no OrderedMutex '
                "construction site uses that name"))
    return out


def check_lock_cycle(model):
    out = []
    adj = {}
    for e in model.edges:
        if e.src == e.dst:
            node = model.nodes.get(e.src)
            if node is not None and node.pair:
                continue  # same-rank family; runtime orders by address
            out.append(Finding(
                "lock-cycle", e.file, e.line,
                f'"{e.src}" acquired while already held '
                "(self-deadlock unless this is a `pair` family)"))
            continue
        adj.setdefault(e.src, []).append(e)

    # Iterative DFS with colors; report each cycle once.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {k: WHITE for k in model.nodes}
    reported = set()

    def dfs(start):
        stack = [(start, iter(adj.get(start, [])))]
        color[start] = GRAY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for e in it:
                if color.get(e.dst, WHITE) == GRAY:
                    i = path.index(e.dst)
                    cycle = tuple(sorted(path[i:] + [e.dst]))
                    if cycle not in reported:
                        reported.add(cycle)
                        chain = " -> ".join(path[i:] + [e.dst])
                        out.append(Finding(
                            "lock-cycle", e.file, e.line,
                            f"lock-order cycle: {chain} (each edge is an "
                            "acquires-while-holding site; one of them "
                            "must reverse)"))
                elif color.get(e.dst, WHITE) == WHITE:
                    color[e.dst] = GRAY
                    path.append(e.dst)
                    stack.append((e.dst, iter(adj.get(e.dst, []))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()

    for key in list(model.nodes):
        if color.get(key, WHITE) == WHITE:
            dfs(key)
    return out


def check_rank_order(model):
    out = []
    for e in model.edges:
        src = model.nodes.get(e.src)
        dst = model.nodes.get(e.dst)
        if src is None or dst is None:
            continue
        if src.rank is None or dst.rank is None:
            continue
        if e.src == e.dst:
            continue  # pair families handled by lock-cycle
        if src.rank >= dst.rank:
            via = f" via {e.via}()" if e.via else ""
            out.append(Finding(
                "rank-order", e.file, e.line,
                f'"{e.dst}" (rank {dst.rank}) acquired{via} while '
                f'holding "{e.src}" (rank {src.rank}); the manifest '
                "requires strictly increasing ranks inward"))
    return out


def check_blocking_reachable(model):
    # Danger set: acquire_path locks plus everything that can reach one
    # (holding such a mutex can transitively stall the acquire path).
    adj = {}
    for e in model.edges:
        adj.setdefault(e.src, set()).add(e.dst)
    acquire_path = {k for k, n in model.nodes.items() if n.acquire_path}
    if not acquire_path:
        return []
    danger = set(acquire_path)
    changed = True
    while changed:
        changed = False
        for src, dsts in adj.items():
            if src not in danger and dsts & danger:
                danger.add(src)
                changed = True
    out = []
    for held, path, lineno, text in model.blocking_sites:
        bad = [k for k in held if k in danger]
        if bad:
            out.append(Finding(
                "blocking-reachable", path, lineno,
                f'blocking call while holding "{bad[0]}", from which the '
                "acquire-path lock "
                f"({', '.join(sorted(acquire_path))}) is reachable: "
                f"`{text}`"))
    return out


def check_guarded_field(root):
    out = []
    for path in cm.iter_source_files(root):
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
        allowed_model = cm.make_allowed(
            lines, [cm.LINT_ALLOW_RE, cm.MODEL_ALLOW_RE])

        def allowed(idx, rule):
            # A lint-side guarded-by-coverage allow also silences the
            # model's guarded-field check: one justified exception, not
            # two disagreeing tools.
            return (allowed_model(idx, rule)
                    or allowed_model(idx, "guarded-by-coverage"))

        for lineno, message in cm.guarded_field_findings(
                path, lines, allowed, "guarded-field"):
            out.append(Finding("guarded-field", path, lineno, message))
    return out


def fault_census(root):
    """(findings, report rows). Every Fault enumerator must appear in at
    least one tests/*.cc; the enum size must match kNumFaults."""
    injector = find_named(root, "fault_injector.h")
    if not injector:
        return [], []
    path = injector[0]
    with open(path, encoding="utf-8") as f:
        text = f.read()
    enumerators = cm.parse_fault_enumerators(text)
    out = []
    m = cm.NUM_FAULTS_RE.search(text)
    if m and int(m.group(1)) != len(enumerators):
        out.append(Finding(
            "fault-census", path, 0,
            f"kNumFaults = {m.group(1)} but the Fault enum declares "
            f"{len(enumerators)} enumerators"))
    tests = {}
    tests_dir = os.path.join(root, "tests")
    if os.path.isdir(tests_dir):
        for name in sorted(os.listdir(tests_dir)):
            if name.endswith(".cc"):
                with open(os.path.join(tests_dir, name),
                          encoding="utf-8", errors="replace") as f:
                    tests[name] = f.read()
    rows = []
    for enum in enumerators:
        hits = [n for n, t in tests.items()
                if re.search(rf"\b{re.escape(enum)}\b", t)]
        rows.append((enum, hits))
        if not hits:
            out.append(Finding(
                "fault-census", path, 0,
                f"Fault::{enum} is tripped by no test in tests/*.cc — an "
                "untested failure edge; add a test that arms it"))
    return out, rows


COUNTER_STRUCTS = (("budget.h", "GsStats"),
                   ("service_stats.h", "ServiceStatsSnapshot"))
STRUCT_FIELD_RE = re.compile(
    r"^\s*(?:[\w:<>,*&\s]+?)\s+(\w+)\s*(?:\[[^\]]*\])?\s*"
    r"(?:=[^;]*|\{[^;]*\})?\s*;")


def parse_struct_fields(path, struct_name):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    fields = []
    depth = None
    open_re = re.compile(rf"\bstruct\s+{struct_name}\s*\{{")
    running = 0
    for raw in lines:
        code = cm.strip_line_comment(raw)
        if depth is None:
            if open_re.search(code):
                depth = running + 1
            running += brace_delta(code)
            continue
        if running + brace_delta(code) < depth and "}" in code:
            break
        m = STRUCT_FIELD_RE.match(code)
        if m and running == depth:
            fields.append(m.group(1))
        running += brace_delta(code)
        if running < depth:
            break
    return fields


def counter_census(root):
    out = []
    rows = []
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return out, rows
    corpus = ""
    for name in sorted(os.listdir(tests_dir)):
        if name.endswith(".cc"):
            with open(os.path.join(tests_dir, name),
                      encoding="utf-8", errors="replace") as f:
                corpus += f.read()
    for filename, struct in COUNTER_STRUCTS:
        hits = [p for p in find_named(root, filename)]
        if not hits:
            continue
        fields = parse_struct_fields(hits[0], struct)
        for field in fields:
            n = len(re.findall(rf"\b{re.escape(field)}\b", corpus))
            rows.append((f"{struct}.{field}", n))
            if n == 0:
                out.append(Finding(
                    "counter-census", hits[0], 0,
                    f"{struct}.{field} is referenced by no test in "
                    "tests/*.cc — unasserted telemetry regresses "
                    "silently"))
    return out, rows


# --------------------------------------------------------------------------
# DOT emission.

def write_dot(model, path):
    lines = ["digraph lock_order {", "  rankdir=LR;"]
    for key, node in sorted(model.nodes.items()):
        attrs = []
        label = key
        if node.rank is not None:
            label += f"\\nrank {node.rank}"
        if node.acquire_path:
            attrs.append("style=bold")
        if node.kind == "unresolved":
            attrs.append("style=dashed")
        attrs.insert(0, f'label="{label}"')
        lines.append(f'  "{key}" [{", ".join(attrs)}];')
    for e in sorted(model.edges, key=lambda e: (e.src, e.dst)):
        attr = f' [label="{e.via}()"]' if e.via else ""
        lines.append(f'  "{e.src}" -> "{e.dst}"{attr};')
    lines.append("}")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# --------------------------------------------------------------------------
# Driver.

def run_checks(root):
    model = build_model(root)
    manifest, manifest_path = load_manifest(root)
    rank_consts, _ = load_lock_ranks(root)
    findings = []
    findings += check_manifest_sync(model, manifest, manifest_path,
                                    rank_consts)
    findings += check_lock_cycle(model)
    findings += check_rank_order(model)
    findings += check_blocking_reachable(model)
    findings += check_guarded_field(root)
    fault_findings, fault_rows = fault_census(root)
    findings += fault_findings
    counter_findings, counter_rows = counter_census(root)
    findings += counter_findings
    return model, findings, fault_rows, counter_rows


def print_report(model, findings, fault_rows, counter_rows, root):
    print(f"condsel_model: {len(model.nodes)} mutexes, "
          f"{len(model.edges)} acquisition edges")
    if fault_rows:
        print("fault census (enumerator -> covering tests):")
        for enum, hits in fault_rows:
            cover = ", ".join(hits) if hits else "UNCOVERED"
            print(f"  {enum:<28} {cover}")
    if counter_rows:
        uncovered = sum(1 for _, n in counter_rows if n == 0)
        print(f"counter census: {len(counter_rows)} fields, "
              f"{uncovered} unreferenced by tests")
    for f in findings:
        print(f.render(root), file=sys.stderr)
    if findings:
        print(f"condsel_model: {len(findings)} finding(s)",
              file=sys.stderr)
    else:
        print("condsel_model: clean")


def run_self_test(fixtures_dir):
    if not os.path.isdir(fixtures_dir):
        print(f"no fixtures at {fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    for name in sorted(os.listdir(fixtures_dir)):
        fixture = os.path.join(fixtures_dir, name)
        expect_path = os.path.join(fixture, "EXPECT")
        if not os.path.isdir(fixture) or not os.path.exists(expect_path):
            continue
        with open(expect_path, encoding="utf-8") as f:
            expected = {line.strip() for line in f
                        if line.strip() and not line.startswith("#")}
        expected.discard("clean")
        _, findings, _, _ = run_checks(fixture)
        got = {f.check for f in findings}
        if got != expected:
            failures += 1
            print(f"self-test FAIL: fixture '{name}': expected checks "
                  f"{sorted(expected) or ['<clean>']}, got "
                  f"{sorted(got) or ['<clean>']}", file=sys.stderr)
            for f in findings:
                print(f"  {f.render(fixture)}", file=sys.stderr)
        else:
            label = ", ".join(sorted(got)) if got else "clean"
            print(f"self-test ok: fixture '{name}' -> {label}")
    if failures:
        print(f"condsel_model --self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print("condsel_model --self-test: all fixtures behaved")
    return 0


def main(argv):
    tools_dir = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(tools_dir))
    ap.add_argument("--dot", help="write the lock graph as DOT here")
    ap.add_argument("--max-seconds", type=float, default=0.0,
                    help="fail if the whole pass exceeds this wall time")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test(os.path.join(tools_dir, "model_fixtures"))

    start = time.monotonic()
    model, findings, fault_rows, counter_rows = run_checks(args.root)
    if args.dot:
        write_dot(model, args.dot)
    print_report(model, findings, fault_rows, counter_rows, args.root)
    elapsed = time.monotonic() - start
    print(f"condsel_model: wall time {elapsed:.2f}s")
    if args.max_seconds > 0 and elapsed > args.max_seconds:
        print(f"condsel_model: exceeded --max-seconds "
              f"{args.max_seconds:.0f} (took {elapsed:.2f}s) — the "
              "analyzer may not become the slowest gate", file=sys.stderr)
        return 1
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
