// Mutation: a CONDSEL_HOT function grew a second allocation site that
// tools/alloc_budget.toml does not sanction (the budget says one
// push_back; the source now has a push_back AND a make_unique). Must
// trip hot-path-alloc only.
#include <memory>
#include <vector>

namespace condsel {

class Engine {
 public:
  CONDSEL_HOT double ScoreOne(int i) {
    scores_.push_back(i);  // sanctioned: count = 1 in the budget
    // Seeded regression: a fresh heap allocation on the hot path.
    auto scratch = std::make_unique<double[]>(8);
    scratch[0] = 0.5 * i;
    return SanitizeSelectivity(scratch[0]);
  }

 private:
  std::vector<int> scores_;
};

}  // namespace condsel
