// Clean fixture: every status escapes, every working loop polls the
// deadline, every selectivity return is sanitized, and the one hot-path
// allocation is sanctioned in tools/alloc_budget.toml. condsel_flow must
// report nothing here.
#include <vector>

namespace condsel {

class Engine {
 public:
  Status Validate(int n) {
    if (n < 0) {
      return Status::InvalidArgument("negative");
    }
    return Status::Ok();
  }

  StatusOr<double> Compute(int n) {
    // Bound + consult: the canonical propagation shape.
    Status checked = Validate(n);
    if (!checked.ok()) return checked;
    double sel = 1.0;
    for (int i = 0; i < n; ++i) {
      if (deadline_.Expired()) break;
      sel *= provider_.Estimate(i);
      sel = SanitizeSelectivity(sel);
    }
    return SanitizeSelectivity(sel);
  }

  CONDSEL_HOT double ScoreOne(int i) {
    scores_.push_back(i);  // sanctioned in alloc_budget.toml
    return SanitizeSelectivity(provider_.Estimate(i));
  }

  void Warm(int n) {
    // Deliberate discard through the sanctioned sink.
    StatusIgnored(Validate(n));
  }

 private:
  Deadline deadline_;
  Provider provider_;
  std::vector<int> scores_;
};

}  // namespace condsel
