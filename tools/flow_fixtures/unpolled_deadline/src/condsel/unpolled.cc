// Mutation: a loop reachable from Compute does library work while a
// deadline is armed but never polls it. Must trip deadline-flow only.

namespace condsel {

class Engine {
 public:
  double Estimate(int i) { return 0.5 * i; }

  double Compute(int n) {
    deadline_.Arm(n);
    double sel = 1.0;
    for (int i = 0; i < n; ++i) {
      // Bug: calls into the library every iteration, no Expired()/
      // remaining()/BudgetExhausted() check anywhere in the loop.
      sel = sel * Estimate(i);
    }
    return sel;
  }

 private:
  Deadline deadline_;
};

}  // namespace condsel
