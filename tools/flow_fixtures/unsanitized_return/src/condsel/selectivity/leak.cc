// Mutation: a provider-sourced selectivity flows through intermediate
// arithmetic and escapes a `double` return without ever passing
// SanitizeSelectivity. Must trip sanitize-flow only.

namespace condsel {

class Baseline {
 public:
  double EstimateAll(int n) {
    double sel = 1.0;
    for (int i = 0; i < n; ++i) {
      // Taint enters here...
      sel *= provider_.Estimate(i);
    }
    // ...and the arithmetic result escapes unsanitized. A correct
    // implementation returns SanitizeSelectivity(sel) or cleanses the
    // variable with `sel = SanitizeSelectivity(sel);` first.
    return sel;
  }

 private:
  Provider provider_;
};

}  // namespace condsel
