// Mutation: two ways to drop an error Status on the floor. Must trip
// status-flow (and nothing else).

namespace condsel {

class Engine {
 public:
  Status Validate(int n) {
    if (n < 0) {
      return Status::InvalidArgument("negative");
    }
    return Status::Ok();
  }

  void Broken(int n) {
    // Bug 1: a constructed error reaches no return / call / sink.
    Status::Internal("constructed and immediately forgotten");
    // Bug 2: bound to a local that is never consulted again.
    Status checked = Validate(n);
  }
};

}  // namespace condsel
