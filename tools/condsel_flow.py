#!/usr/bin/env python3
"""condsel_flow: flow-sensitive, one-level-interprocedural dataflow checks.

Where condsel_lint checks single lines and condsel_model checks the lock
graph, this tool follows *values* between layers over the function/call/
return inventory in cpp_model_common.py.  Four check families:

  status-flow     Every constructed `Status`/`StatusOr` error value must
                  reach a `return`, a CONDSEL_RETURN_IF_ERROR propagation,
                  a call argument, or the grep-able StatusIgnored() sink.
                  A Status bound to a local that is never consulted again
                  is a dropped error.
  status-census   Every StatusCode enumerator must be constructed somewhere
                  in src/, classified exactly once in RetryPolicy's
                  terminal-vs-retryable switch (service/retry.cc), and
                  asserted by at least one test.
  deadline-flow   Every loop in a deadline-scoped function reachable from
                  EstimationService::Submit / GetSelectivity::Compute that
                  does nontrivial work (calls into the library or blocks)
                  must poll the deadline -- directly (`Expired()`,
                  `remaining()`/`remaining[]`, `BudgetExhausted()`, a
                  local `expired()` alias) or through a callee that polls.
                  Blocking sleep/wait calls in scoped functions must sit
                  inside a polling loop.
  sanitize-flow   Selectivity-typed values are tainted at the provider /
                  histogram accessors and tracked through assignments and
                  arithmetic; every escaping path (a `double` return, a
                  write to a `.selectivity`-like field) must pass through
                  SanitizeSelectivity.  Supersedes condsel_lint's regex
                  `sanitize-selectivity` rule, which stays as a fast
                  pre-check.
  hot-path-alloc  CONDSEL_HOT (common/macros.h) marks the estimation hot
                  path.  Every heap-allocation site reachable from a hot
                  function is censused into tools/alloc_budget.toml; a new
                  unsanctioned site (or a stale budget entry) fails CI.
                  Regenerate with --write-budget after an intentional
                  change.

Suppression: `// condsel-flow: allow(<check>)` on the flagged line or the
line above, with a justification comment.  Allows are themselves the
sanctioned escape hatch the checks key on -- they are grep-able.

Self-test: tools/flow_fixtures/<name>/{EXPECT, src/..., tools/...} are
mutated mini-trees; each must trip exactly the check ids in its EXPECT
file ("clean" fixture: empty EXPECT).

Exit status: 0 = clean, 1 = findings (or self-test failure).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import time
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_model_common as cm  # noqa: E402


# --------------------------------------------------------------------------
# Findings.


class Finding:
    def __init__(self, check: str, file: str, line: int, message: str):
        self.check = check
        self.file = file
        self.line = line
        self.message = message

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.file, root) if self.file else "<census>"
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


# --------------------------------------------------------------------------
# Project model: inventory + raw lines + allow map per file.


class FlowModel:
    def __init__(self, root: str):
        self.root = root
        self.functions: list[cm.FunctionDef] = []
        self.by_name: dict[str, list[cm.FunctionDef]] = {}
        self.raw_lines: dict[str, list[str]] = {}
        self.allowed: dict[str, object] = {}
        for path in cm.iter_source_files(root, cm.LIBRARY_DIRS):
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            lines = text.splitlines()
            self.raw_lines[path] = lines
            self.allowed[path] = cm.make_allowed(lines, [cm.FLOW_ALLOW_RE])
            for fn in cm.parse_functions(path, text):
                self.functions.append(fn)
                self.by_name.setdefault(fn.name, []).append(fn)

    def is_allowed(self, path: str, lineno: int, check: str) -> bool:
        allow = self.allowed.get(path)
        return bool(allow and allow(lineno - 1, check))

    def find_file(self, *, containing: str) -> str | None:
        for path, lines in sorted(self.raw_lines.items()):
            for line in lines:
                if containing in line:
                    return path
        return None


# Names never resolved to an inventory definition when building call
# graphs: containers/std verbs, tiny bounded helpers (bit twiddling over
# the 32-wide predicate set, accessors), and vocabulary words that would
# otherwise alias across classes.
FLOW_CALL_DENYLIST = frozenset({
    # std / containers / language.
    "assert", "at", "back", "begin", "c_str", "clear", "count", "data",
    "emplace", "emplace_back", "empty", "end", "erase", "exchange", "find",
    "front", "get", "insert", "load", "lock", "make_pair", "make_shared",
    "make_unique", "max", "min", "move", "push_back", "pop_back", "reserve",
    "reset", "resize", "size", "sort", "store", "swap", "to_string",
    "unlock", "value", "value_or",
    # Bounded predicate-set / accessor helpers (O(32) by construction).
    "Contains", "SetElements", "SetSize", "Singleton", "With", "Without",
    "predicate", "is_filter", "is_join", "column", "table", "left", "right",
    "ok", "code",
    "message", "Seconds", "NowSeconds", "SanitizeSelectivity",
    "SanitizeCardinality", "SaturatingMultiply",
})


def resolve_callee(model: FlowModel, callee_text: str) -> cm.FunctionDef | None:
    """Resolve a harvested call to its unique inventory definition, or None.

    Conservative: ambiguous simple names (several definitions) and
    denylisted vocabulary resolve to nothing, same policy as
    condsel_model's lock-graph expansion."""
    name = callee_text.split("::")[-1].strip()
    if name in FLOW_CALL_DENYLIST:
        return None
    defs = model.by_name.get(name)
    if defs and len(defs) == 1:
        return defs[0]
    return None


def reachable_functions(model: FlowModel, roots) -> set[cm.FunctionDef]:
    seen: set[int] = set()
    out: set[cm.FunctionDef] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        out.add(fn)
        for _, callee in fn.calls:
            target = resolve_callee(model, callee)
            if target is not None and id(target) not in seen:
                work.append(target)
    return out


def statement_at(fn: cm.FunctionDef, idx: int) -> tuple[str, int, int]:
    """Join the statement covering body line `idx` (best effort).

    Returns (text, start_idx, end_idx) over fn.body indices.  Walks back
    to the previous terminator and forward to the next `;` / `{`."""
    start = idx
    while start > 0 and idx - start < 6:
        prev = fn.body[start - 1][1].rstrip()
        if prev.endswith((";", "{", "}", ":")) or prev == "":
            break
        start -= 1
    parts = []
    end = start
    for k in range(start, min(start + 12, len(fn.body))):
        code = fn.body[k][1]
        parts.append(code.strip())
        end = k
        if ";" in code or code.rstrip().endswith("{"):
            break
    return " ".join(parts), start, end


def _statement_prefix(fn: cm.FunctionDef, idx: int, col: int) -> str:
    """Statement text strictly before column `col` of body line `idx`:
    the joined lines back to the previous terminator plus this line's
    prefix.  Used to classify where a Status construction lands."""
    start = idx
    while start > 0 and idx - start < 6:
        prev = fn.body[start - 1][1].rstrip()
        if prev.endswith((";", "{", "}", ":")) or prev == "":
            break
        start -= 1
    parts = [fn.body[k][1].strip() for k in range(start, idx)]
    parts.append(fn.body[idx][1][:col])
    return " ".join(parts)


# --------------------------------------------------------------------------
# Check 1: status-flow.

STATUS_ERROR_FACTORIES = (
    "Error", "InvalidArgument", "NotFound", "FailedPrecondition",
    "ResourceExhausted", "DeadlineExceeded", "DataLoss", "Internal",
    "RejectedOverload", "Unavailable",
)
STATUS_CONSTRUCT_RE = re.compile(
    r"\bStatus\s*::\s*(%s)\s*\(" % "|".join(STATUS_ERROR_FACTORIES))
# `Status s = ...` / `StatusOr<T> s = ...` / `auto s = StatusFn(...)`.
STATUS_DECL_RE = re.compile(
    r"(?:^|[({;]\s*)(?:const\s+)?(?:Status|StatusOr<[^;=()]*>)\s+"
    r"([A-Za-z_]\w*)\s*=")
ESCAPE_BEFORE_RE = re.compile(
    r"\breturn\b|\bco_return\b|\bthrow\b|\bCONDSEL_RETURN_IF_ERROR\b|"
    r"\bStatusIgnored\s*\(")


def _paren_depth(text: str) -> int:
    return text.count("(") - text.count(")")


def check_status_flow(model: FlowModel) -> list[Finding]:
    findings: list[Finding] = []
    for fn in model.functions:
        tracked: dict[str, int] = {}  # var -> body index after which a
        #                               mention must appear
        for i, (lineno, code) in enumerate(fn.body):
            stmt, _, end = statement_at(fn, i)
            # (a) explicit error constructions on this line.
            for m in STATUS_CONSTRUCT_RE.finditer(code):
                before = _statement_prefix(fn, i, m.start())
                if ESCAPE_BEFORE_RE.search(before):
                    continue  # returned / thrown / propagated / sunk
                if _paren_depth(before) > 0:
                    continue  # argument of a call: escapes to the callee
                bind = re.search(r"([A-Za-z_]\w*)\s*[*+/|&-]?=\s*$", before)
                if bind:
                    var = bind.group(1)
                    if var.endswith("_") or "->" in before or "." in before:
                        continue  # member / field: escapes the function
                    tracked[var] = end
                    continue
                if model.is_allowed(fn.path, lineno, "status-flow"):
                    continue
                findings.append(Finding(
                    "status-flow", fn.path, lineno,
                    f"{fn.qual}: constructed Status::{m.group(1)} is "
                    "dropped -- it reaches no return, propagation macro, "
                    "call argument, or StatusIgnored() sink"))
            # (b) declared Status locals initialized from a call.
            if ";" in code or code.rstrip().endswith("{"):
                for dm in STATUS_DECL_RE.finditer(stmt):
                    var = dm.group(1)
                    if var not in tracked:
                        tracked[var] = end
        # A tracked local must be consulted after its binding statement
        # (same statement counts: `if (Status s = F(); !s.ok()) ...`).
        for var, end in tracked.items():
            bind_line = fn.body[min(end, len(fn.body) - 1)][0]
            mention = re.compile(r"\b%s\b" % re.escape(var))
            stmt_text, start, _ = statement_at(fn, end)
            tail = stmt_text.split("=", 1)[1] if "=" in stmt_text else ""
            consulted = bool(mention.search(tail))
            for _, later in fn.body[end + 1:]:
                if mention.search(later):
                    consulted = True
                    break
            if consulted:
                continue
            if model.is_allowed(fn.path, bind_line, "status-flow"):
                continue
            findings.append(Finding(
                "status-flow", fn.path, bind_line,
                f"{fn.qual}: Status bound to '{var}' is never consulted "
                "afterwards -- dropped error (return it, test .ok(), or "
                "sink it through StatusIgnored())"))
    return findings


# --------------------------------------------------------------------------
# Check 2: status-census.

ENUM_OPEN_RE = re.compile(r"^\s*enum\s+class\s+StatusCode\b")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*[,=}]")
CASE_RE = re.compile(r"\bcase\s+StatusCode::(k\w+)\s*:")


def parse_status_codes(text: str) -> list[str]:
    out, in_enum = [], False
    for raw in text.splitlines():
        line = cm.strip_line_comment(raw)
        if not in_enum:
            if ENUM_OPEN_RE.search(line):
                in_enum = True
            continue
        m = ENUMERATOR_RE.match(line)
        if m:
            out.append(m.group(1))
        if "}" in line:
            break
    return out


def check_status_census(model: FlowModel):
    """Returns (findings, census_rows). Skips silently when the tree has
    no StatusCode enum (mutation fixtures)."""
    findings: list[Finding] = []
    enum_path = model.find_file(containing="enum class StatusCode")
    if enum_path is None:
        return findings, []
    codes = parse_status_codes("\n".join(model.raw_lines[enum_path]))

    # Construction sites: Status::<Factory>( or Error(StatusCode::kX.
    constructed: dict[str, int] = {c: 0 for c in codes}
    for path, lines in model.raw_lines.items():
        if path == enum_path:
            continue  # the factory declarations themselves don't count
        text = "\n".join(cm.strip_line_comment(l) for l in lines)
        for code in codes:
            factory = code[1:] if code.startswith("k") else code
            n = len(re.findall(r"\bStatus::%s\s*\(" % factory, text))
            n += len(re.findall(
                r"Error\s*\(\s*StatusCode::%s\b" % code, text))
            constructed[code] += n
    # kOk is also constructed by the default Status() constructor.
    ok_default = "kOk" in constructed and model.find_file(
        containing="StatusCode::kOk;") is not None
    for code in codes:
        if constructed[code] == 0 and not (code == "kOk" and ok_default):
            findings.append(Finding(
                "status-census", enum_path, 1,
                f"StatusCode::{code} is never constructed in src/ -- "
                "dead error vocabulary (add the producing path or remove "
                "the enumerator)"))

    # Classification: exactly one `case` in RetryableStatusCode's switch.
    retry_defs = [fn for fn in model.functions
                  if fn.name == "RetryableStatusCode"]
    if retry_defs:
        rp = retry_defs[0]
        cases: dict[str, int] = {}
        for _, code_line in rp.body:
            for m in CASE_RE.finditer(code_line):
                cases[m.group(1)] = cases.get(m.group(1), 0) + 1
        for code in codes:
            n = cases.get(code, 0)
            if n != 1:
                findings.append(Finding(
                    "status-census", rp.path, rp.line,
                    f"StatusCode::{code} appears {n}x in "
                    "RetryableStatusCode's terminal-vs-retryable switch "
                    "(must be classified exactly once)"))
        for code, n in sorted(cases.items()):
            if code not in codes:
                findings.append(Finding(
                    "status-census", rp.path, rp.line,
                    f"RetryableStatusCode classifies unknown enumerator "
                    f"StatusCode::{code}"))

    # Test assertions: each code referenced by at least one test.
    tests_dir = os.path.join(model.root, "tests")
    tested: dict[str, int] = {c: 0 for c in codes}
    if os.path.isdir(tests_dir):
        for path in cm.iter_source_files(model.root, ("tests",)):
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            for code in codes:
                factory = code[1:] if code.startswith("k") else code
                if re.search(r"\bStatusCode::%s\b" % code, text) or \
                        re.search(r"\bStatus::%s\s*\(" % factory, text):
                    tested[code] += 1
        for code in codes:
            if tested[code] == 0:
                findings.append(Finding(
                    "status-census", enum_path, 1,
                    f"StatusCode::{code} is asserted by no test under "
                    "tests/"))

    rows = [(c, constructed[c], tested.get(c, 0)) for c in codes]
    return findings, rows


# --------------------------------------------------------------------------
# Check 3: deadline-flow.

DEADLINE_ROOT_NAMES = ("Submit", "Compute")
POLL_RE = re.compile(
    r"(?i)\bexpired\s*\(|\bremaining\s*[(\[]|\bBudgetExhausted\s*\(|"
    r"deadline")
SLEEP_WAIT_RE = re.compile(
    r"\b(?:sleep_for|sleep_until|wait_for|wait_until)\s*\(|"
    r"\.\s*(?:wait|join)\s*\(")


def deadline_scoped(fn: cm.FunctionDef) -> bool:
    return "eadline" in fn.head or "eadline" in fn.body_text()


def _loop_polls(model: FlowModel, text: str) -> bool:
    if POLL_RE.search(text):
        return True
    # One-level interprocedural: a callee that polls counts as polling
    # (e.g. the separable-components loop delegating to ComputeEntry).
    for m in cm.INV_CALL_RE.finditer(text):
        target = resolve_callee(model, m.group(1))
        if target is not None and POLL_RE.search(target.body_text()):
            return True
    return False


def _loop_does_work(model: FlowModel, fn: cm.FunctionDef, text: str) -> bool:
    if cm.BLOCKING_CALL_RE.search(text):
        return True
    for m in cm.INV_CALL_RE.finditer(text):
        target = resolve_callee(model, m.group(1))
        if target is not None and target is not fn:
            return True
    return False


def check_deadline_flow(model: FlowModel) -> list[Finding]:
    findings: list[Finding] = []
    roots = [fn for fn in model.functions if fn.name in DEADLINE_ROOT_NAMES]
    for fn in sorted(reachable_functions(model, roots),
                     key=lambda f: (f.path, f.line)):
        if not deadline_scoped(fn):
            continue  # no deadline in scope: nothing can be armed here
        polling_spans = []  # loops that poll, for the blocking-call check
        for lineno, header, body, end_lineno in fn.loops:
            text = header + "\n" + body
            polls = _loop_polls(model, text)
            if polls:
                polling_spans.append((lineno, end_lineno))
            if not _loop_does_work(model, fn, body):
                continue  # bounded local arithmetic: exempt
            if polls:
                continue
            if model.is_allowed(fn.path, lineno, "deadline-flow"):
                continue
            findings.append(Finding(
                "deadline-flow", fn.path, lineno,
                f"{fn.qual}: loop does library work while a deadline can "
                "be armed but never polls it (check Expired()/remaining()"
                "/BudgetExhausted(), or document an allow)"))
        # Blocking sleep/wait sites must sit inside a polling loop, or --
        # for timed waits -- take a deadline-derived timeout.
        for i, (lineno, code) in enumerate(fn.body):
            if not SLEEP_WAIT_RE.search(code):
                continue
            inside = any(a <= lineno <= b for a, b in polling_spans)
            if inside or model.is_allowed(fn.path, lineno, "deadline-flow"):
                continue
            stmt, _, _ = statement_at(fn, i)
            if re.search(r"_for\s*\(|_until\s*\(", code) and re.search(
                    r"(?i)max_wait|backoff|remaining|deadline|timeout|"
                    r"expired", stmt):
                continue  # bounded by a deadline-derived budget
            findings.append(Finding(
                "deadline-flow", fn.path, lineno,
                f"{fn.qual}: blocking call while a deadline can be armed, "
                "outside any deadline-polling loop"))
    return findings


# --------------------------------------------------------------------------
# Check 4: sanitize-flow.

TAINT_SOURCE_RE = re.compile(
    r"(?:->|\.)\s*(?:Estimate|EstimateWith|EstimateFilterWith|Score)\s*\(|"
    r"\bRangeSelectivity\s*\(|\bEqualsSelectivity\s*\(|"
    r"\bJoinHistograms\s*\(|(?:\.|->)\s*selectivity\b")
SANITIZE_WRAP_RE = re.compile(
    r"^\s*(?:::)?(?:condsel::)?Sanitize(?:Selectivity|Cardinality)\s*\(")
SINK_FIELD_RE = re.compile(
    r"([A-Za-z_]\w*(?:\.|->))(selectivity|factor_selectivity|"
    r"head_selectivity)\s*([*+/-]?=)(?!=)\s*(.+?);")
ASSIGN_RE = re.compile(
    r"(?:^|[({;]\s*)(?:const\s+)?(?:double|auto)?\s*&?\s*"
    r"([A-Za-z_]\w*)\s*([*+/-]?=)(?!=)\s*(.+?);")
DOUBLE_RETURN_RE = re.compile(r"\b(?:double|StatusOr<double>)\b")


def sanitize_scope(model: FlowModel, path: str) -> bool:
    rel = os.path.relpath(path, model.root).replace(os.sep, "/")
    return ("/selectivity/" in rel or "/baselines/" in rel
            or rel.endswith("api.cc"))


def _expr_tainted(expr: str, tainted: set[str]) -> bool:
    if SANITIZE_WRAP_RE.match(expr.strip()):
        return False
    if TAINT_SOURCE_RE.search(expr):
        return True
    return any(re.search(r"\b%s\b" % re.escape(v), expr) for v in tainted)


def _sanitizing_functions(model: FlowModel) -> set[str]:
    """Function names whose every return statement is sanitize-wrapped.
    Calls to these are clean sources (one-level interprocedural)."""
    out = set()
    for fn in model.functions:
        if not fn.returns:
            continue
        if all("SanitizeSelectivity" in stmt or "SanitizeCardinality" in stmt
               for _, stmt in fn.returns):
            out.add(fn.name)
    return out


def check_sanitize_flow(model: FlowModel, taint_edges: list) -> list[Finding]:
    findings: list[Finding] = []
    sanitizers = _sanitizing_functions(model)

    def scrub(expr: str) -> str:
        # Calls to always-sanitizing functions are clean: blank them out
        # before source matching.
        for name in sanitizers:
            expr = re.sub(r"\b%s\s*\(" % re.escape(name), "__clean__(", expr)
        return expr

    for fn in model.functions:
        if not sanitize_scope(model, fn.path):
            continue
        tainted: set[str] = set()
        for lineno, code in fn.body:
            # Field sinks first (their pattern also matches ASSIGN_RE).
            sink = SINK_FIELD_RE.search(code)
            if sink:
                rhs = scrub(sink.group(4))
                if _expr_tainted(rhs, tainted):
                    if not model.is_allowed(fn.path, lineno, "sanitize-flow"):
                        findings.append(Finding(
                            "sanitize-flow", fn.path, lineno,
                            f"{fn.qual}: unsanitized selectivity escapes "
                            f"into field '{sink.group(1)}{sink.group(2)}' "
                            "(wrap the value in SanitizeSelectivity)"))
                        taint_edges.append((fn, lineno, "field", False))
                else:
                    taint_edges.append((fn, lineno, "field", True))
                continue
            m = ASSIGN_RE.search(code)
            if m:
                var, op, rhs = m.group(1), m.group(2), scrub(m.group(3))
                if op == "=" and SANITIZE_WRAP_RE.match(rhs.strip()):
                    tainted.discard(var)  # `sel = SanitizeSelectivity(sel);`
                elif _expr_tainted(rhs, tainted):
                    tainted.add(var)
        if not DOUBLE_RETURN_RE.search(fn.head.split(fn.name)[0]):
            continue
        for lineno, stmt in fn.returns:
            expr = scrub(stmt[len("return"):].strip().rstrip(";"))
            if not expr or SANITIZE_WRAP_RE.match(expr):
                continue
            if _expr_tainted(expr, tainted):
                if model.is_allowed(fn.path, lineno, "sanitize-flow"):
                    continue
                findings.append(Finding(
                    "sanitize-flow", fn.path, lineno,
                    f"{fn.qual}: returns a selectivity that never passed "
                    "SanitizeSelectivity on this path"))
                taint_edges.append((fn, lineno, "return", False))
            else:
                taint_edges.append((fn, lineno, "return", True))
    return findings


# --------------------------------------------------------------------------
# Check 5: hot-path-alloc.

ALLOC_KINDS = (
    ("new", re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")),
    ("make_unique", re.compile(r"\bmake_unique\b")),
    ("make_shared", re.compile(r"\bmake_shared\b")),
    ("push_back", re.compile(r"(?:\.|->)\s*push_back\s*\(")),
    ("emplace_back", re.compile(r"(?:\.|->)\s*emplace_back\s*\(")),
    ("emplace", re.compile(r"(?:\.|->)\s*emplace\s*\(")),
    ("insert", re.compile(r"(?:\.|->)\s*insert\s*\(")),
    ("resize", re.compile(r"(?:\.|->)\s*resize\s*\(")),
    ("reserve", re.compile(r"(?:\.|->)\s*reserve\s*\(")),
    ("to_string", re.compile(r"\bto_string\s*\(")),
)
BUDGET_RELPATH = os.path.join("tools", "alloc_budget.toml")


def hot_alloc_census(model: FlowModel):
    """{(relpath, qual, kind): count} over functions reachable from any
    CONDSEL_HOT-annotated function."""
    hot_roots = [fn for fn in model.functions if fn.hot]
    census: dict[tuple[str, str, str], int] = {}
    for fn in sorted(reachable_functions(model, hot_roots),
                     key=lambda f: (f.path, f.line)):
        rel = os.path.relpath(fn.path, model.root).replace(os.sep, "/")
        for lineno, code in fn.body:
            if model.is_allowed(fn.path, lineno, "hot-path-alloc"):
                continue
            for kind, rx in ALLOC_KINDS:
                hits = len(rx.findall(code))
                if hits:
                    key = (rel, fn.qual, kind)
                    census[key] = census.get(key, 0) + hits
    return census


def load_budget(path: str) -> dict[tuple[str, str, str], int]:
    with open(path, "rb") as f:
        data = tomllib.load(f)
    out: dict[tuple[str, str, str], int] = {}
    for site in data.get("site", []):
        out[(site["file"], site["function"], site["kind"])] = site["count"]
    return out


def render_budget(census) -> str:
    lines = [
        "# Hot-path allocation budget -- generated by",
        "#   python3 tools/condsel_flow.py --write-budget",
        "# Every heap-allocation site reachable from a CONDSEL_HOT",
        "# function. condsel_flow fails when source and budget disagree",
        "# in either direction; regenerate after an intentional change.",
        "# The arena/dense-memo work tracks this file toward zero.",
        "",
    ]
    for (rel, qual, kind), count in sorted(census.items()):
        lines += [
            "[[site]]",
            f'file = "{rel}"',
            f'function = "{qual}"',
            f'kind = "{kind}"',
            f"count = {count}",
            "",
        ]
    return "\n".join(lines)


def check_hot_path_alloc(model: FlowModel):
    findings: list[Finding] = []
    census = hot_alloc_census(model)
    budget_path = os.path.join(model.root, BUDGET_RELPATH)
    if not any(fn.hot for fn in model.functions):
        return findings, census  # tree without annotations: nothing to gate
    if not os.path.isfile(budget_path):
        findings.append(Finding(
            "hot-path-alloc", budget_path, 1,
            "tools/alloc_budget.toml is missing -- run "
            "`python3 tools/condsel_flow.py --write-budget`"))
        return findings, census
    budget = load_budget(budget_path)
    for key, count in sorted(census.items()):
        sanctioned = budget.get(key, 0)
        if count > sanctioned:
            rel, qual, kind = key
            findings.append(Finding(
                "hot-path-alloc", os.path.join(model.root, rel), 1,
                f"{qual}: {count}x '{kind}' on the hot path but only "
                f"{sanctioned} sanctioned in tools/alloc_budget.toml "
                "(avoid the allocation, or regenerate with "
                "--write-budget and justify in the PR)"))
    for key, sanctioned in sorted(budget.items()):
        if census.get(key, 0) < sanctioned:
            rel, qual, kind = key
            findings.append(Finding(
                "hot-path-alloc", budget_path, 1,
                f"stale budget entry: {qual} '{kind}' sanctions "
                f"{sanctioned} but source has {census.get(key, 0)} -- "
                "regenerate with --write-budget"))
    return findings, census


# --------------------------------------------------------------------------
# DOT dumps (CI failure artifacts).


def write_status_dot(path: str, model: FlowModel, census_rows) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("digraph status_flow {\n  rankdir=LR;\n")
        f.write('  node [shape=box, fontsize=10];\n')
        for fn in model.functions:
            body = fn.body_text()
            for m in STATUS_CONSTRUCT_RE.finditer(body):
                f.write(f'  "{fn.qual}" -> "Status::{m.group(1)}";\n')
        for code, built, tested in census_rows:
            color = "black" if built and tested else "red"
            f.write(f'  "StatusCode::{code}" '
                    f'[shape=ellipse, color={color}, '
                    f'label="StatusCode::{code}\\nbuilt={built} '
                    f'tested={tested}"];\n')
        f.write("}\n")


def write_taint_dot(path: str, model: FlowModel, taint_edges) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("digraph taint_flow {\n  rankdir=LR;\n")
        f.write('  node [shape=box, fontsize=10];\n')
        for fn, lineno, kind, clean in taint_edges:
            rel = os.path.relpath(fn.path, model.root)
            color = "green" if clean else "red"
            f.write(f'  "{fn.qual}" -> "{kind}@{rel}:{lineno}" '
                    f'[color={color}];\n')
        f.write("}\n")


# --------------------------------------------------------------------------
# Driver.


def run_checks(root: str, status_dot: str | None = None,
               taint_dot: str | None = None, verbose: bool = True):
    model = FlowModel(root)
    findings: list[Finding] = []
    taint_edges: list = []

    findings += check_status_flow(model)
    census_findings, census_rows = check_status_census(model)
    findings += census_findings
    findings += check_deadline_flow(model)
    findings += check_sanitize_flow(model, taint_edges)
    alloc_findings, alloc_census = check_hot_path_alloc(model)
    findings += alloc_findings

    if status_dot:
        write_status_dot(status_dot, model, census_rows)
    if taint_dot:
        write_taint_dot(taint_dot, model, taint_edges)

    if verbose:
        hot = sum(1 for fn in model.functions if fn.hot)
        print(f"condsel_flow: {len(model.functions)} functions, "
              f"{hot} CONDSEL_HOT, "
              f"{sum(alloc_census.values())} hot-path allocation sites "
              f"across {len(alloc_census)} budget entries")
        if census_rows:
            print("status-census (code / constructions / test files):")
            for code, built, tested in census_rows:
                print(f"  {code:<22} {built:>3} {tested:>3}")
    return findings, model, alloc_census


def run_self_test(fixtures_dir: str) -> int:
    names = sorted(d for d in os.listdir(fixtures_dir)
                   if os.path.isdir(os.path.join(fixtures_dir, d)))
    if not names:
        print(f"no fixtures under {fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    for name in names:
        fixture = os.path.join(fixtures_dir, name)
        expect_path = os.path.join(fixture, "EXPECT")
        with open(expect_path, encoding="utf-8") as f:
            expected = {line.strip() for line in f
                        if line.strip() and not line.startswith("#")}
        findings, _, _ = run_checks(fixture, verbose=False)
        got = {f.check for f in findings}
        if got != expected:
            failures += 1
            print(f"self-test FAIL: fixture '{name}': expected "
                  f"{sorted(expected) or ['<clean>']}, got "
                  f"{sorted(got) or ['<clean>']}", file=sys.stderr)
            for f_ in findings:
                print(f"    {f_.render(fixture)}", file=sys.stderr)
        else:
            print(f"self-test ok: fixture '{name}' -> "
                  f"{', '.join(sorted(expected)) or '<clean>'}")
    if failures:
        return 1
    print(f"condsel_flow --self-test: all {len(names)} fixtures behaved")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="project root (default: repo root above tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the flow_fixtures mutation corpus")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the analysis exceeds this wall time")
    parser.add_argument("--status-dot", default=None,
                        help="write the status/census graph to this file")
    parser.add_argument("--taint-dot", default=None,
                        help="write the selectivity taint graph to this file")
    parser.add_argument("--write-budget", action="store_true",
                        help="regenerate tools/alloc_budget.toml and exit")
    args = parser.parse_args(argv)

    tools_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(tools_dir)

    if args.self_test:
        return run_self_test(os.path.join(tools_dir, "flow_fixtures"))

    start = time.monotonic()
    if args.write_budget:
        model = FlowModel(root)
        census = hot_alloc_census(model)
        out = os.path.join(root, BUDGET_RELPATH)
        with open(out, "w", encoding="utf-8") as f:
            f.write(render_budget(census))
        print(f"wrote {len(census)} budget entries to {out}")
        return 0

    findings, _, _ = run_checks(root, status_dot=args.status_dot,
                                taint_dot=args.taint_dot)
    elapsed = time.monotonic() - start
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"condsel_flow: exceeded --max-seconds budget "
              f"({elapsed:.1f}s > {args.max_seconds:.1f}s)",
              file=sys.stderr)
        return 1
    if findings:
        for f in sorted(findings, key=lambda f: (f.file, f.line, f.check)):
            print(f.render(root), file=sys.stderr)
        print(f"condsel_flow: {len(findings)} finding(s) in {elapsed:.1f}s",
              file=sys.stderr)
        return 1
    print(f"condsel_flow: clean in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
