// Fixture: a selectivity-returning Estimate that skips the numeric
// sanitizer, so NaN/out-of-range values can escape to callers.
// lint-fixture-path: src/condsel/baselines/bad_missing_sanitize.cc
// lint-expect: sanitize-selectivity

namespace condsel {

class LeakyEstimator {
 public:
  double Estimate(double a, double b);
};

double LeakyEstimator::Estimate(double a, double b) {
  return a / b;  // 0/0 leaks NaN straight into plan costing
}

}  // namespace condsel
