// Fixture: disciplined arena use — the arena is an instance member,
// scratch containers are locals, helpers receive the scratch by
// pointer parameter (which must not trip the escaping-declarator
// pattern), and anything that outlives the call is copied by value.
// lint-fixture-path: src/condsel/selectivity/good_arena_scratch.cc

#include <vector>

#include "condsel/common/arena.h"

namespace condsel {

class ScratchUser {
 public:
  std::vector<int> Harvest() {
    arena_.Reset();
    ArenaVector<int> scratch(&arena_);
    Fill(&scratch);
    // Values are copied out; no pointer into the arena survives the call.
    return std::vector<int>(scratch.begin(), scratch.end());
  }

 private:
  // An ArenaVector* parameter is a sink, not an escape.
  void Fill(ArenaVector<int>* out) {
    for (int i = 0; i < 8; ++i) out->Append(i);
  }

  Arena arena_;
};

}  // namespace condsel
