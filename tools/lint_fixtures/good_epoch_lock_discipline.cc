// Fixture: the sanctioned publish shape — construct the snapshot first,
// stall (if at all) before any lock, then take the epoch lock only for
// the counter bump and the pointer swap. Must produce zero findings.
// lint-fixture-path: src/condsel/service/good_epoch_lock_discipline.cc

#include "condsel/service/snapshot.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

namespace condsel {

class DisciplinedPublisher {
 public:
  void Publish(Catalog catalog, SitPool pool) {
    // Slow work happens with no lock held at all.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    uint64_t epoch = 0;
    {
      const std::lock_guard<std::mutex> lock(epoch_mu_);
      epoch = next_epoch_++;
    }
    // Construction outside the lock: Acquire() never waits on a build.
    auto snap = std::make_shared<const Snapshot>(epoch, std::move(catalog),
                                                 std::move(pool));
    {
      const std::lock_guard<std::mutex> lock(epoch_mu_);
      current_ = std::move(snap);
    }
  }

 private:
  std::mutex epoch_mu_;
  uint64_t next_epoch_ = 1;
  std::shared_ptr<const Snapshot> current_;
};

}  // namespace condsel
