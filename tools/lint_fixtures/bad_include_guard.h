// Fixture: a header still using an #ifndef include guard.
// lint-fixture-path: src/condsel/common/bad_include_guard.h
// lint-expect: pragma-once

#ifndef CONDSEL_COMMON_BAD_INCLUDE_GUARD_H_
#define CONDSEL_COMMON_BAD_INCLUDE_GUARD_H_

namespace condsel {
inline int Answer() { return 42; }
}  // namespace condsel

#endif  // CONDSEL_COMMON_BAD_INCLUDE_GUARD_H_
