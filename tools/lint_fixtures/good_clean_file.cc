// Fixture: a clean library file — justified CHECK, sanitized estimate,
// repo-rooted includes. Must produce zero findings.
// lint-fixture-path: src/condsel/selectivity/good_clean_file.cc

#include "condsel/common/macros.h"
#include "condsel/common/numeric.h"
#include "condsel/common/status.h"

namespace condsel {

class CleanEstimator {
 public:
  double Estimate(double sel);
};

double CleanEstimator::Estimate(double sel) {
  // invariant: the constructor already rejected negative inputs.
  CONDSEL_CHECK(sel >= 0.0);
  return SanitizeSelectivity(sel);
}

}  // namespace condsel
