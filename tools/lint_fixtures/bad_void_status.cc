// Fixture: `(void)` laundering of a [[nodiscard]] Status must be flagged —
// both on a direct Try* call and on a stored status object. The sanctioned
// discard path is StatusIgnored() (common/status.h).
// lint-fixture-path: src/condsel/exec/bad_void_status.cc
// lint-expect: nodiscard-status
// lint-expect: nodiscard-status

#include "condsel/common/status.h"

namespace condsel {

Status TryWarmCache();

void Tick() {
  (void)TryWarmCache();
  const Status status = TryWarmCache();
  (void)status;
  int dropped = 0;
  (void)dropped;  // a plain value discard is fine; only Status-ish flagged
}

}  // namespace condsel
