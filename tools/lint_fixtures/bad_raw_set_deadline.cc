// Fixture: a shared layer storing a borrowed deadline pointer through a
// set_deadline() setter — the pattern behind the shared-provider deadline
// race: two concurrent estimators clobber each other's clock, and an
// estimator destroyed mid-flight leaves the pointer dangling. Deadlines
// are per-call arguments armed through ScopedDeadline (budget.h).
// lint-fixture-path: src/condsel/selectivity/bad_raw_set_deadline.cc
// lint-expect: raw-set-deadline

#include "condsel/selectivity/budget.h"

namespace condsel {

class SharedScorer {
 public:
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }

 private:
  const Deadline* deadline_ = nullptr;
};

void AttachClock(SharedScorer* scorer, const Deadline* deadline) {
  scorer->set_deadline(deadline);
}

}  // namespace condsel
