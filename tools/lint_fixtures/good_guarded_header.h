// Fixture: annotated, atomic, and explicitly allow-marked members next to a
// mutex all pass guarded-by-coverage. Zero findings.
// lint-fixture-path: src/condsel/exec/good_guarded_header.h

#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>

#include "condsel/common/thread_annotations.h"

namespace condsel {

class GuardedCache {
 public:
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<int, double> entries_ CONDSEL_GUARDED_BY(mu_);
  std::atomic<int> hits_{0};
  // Append-only; readers are bounded by the release store to hits_.
  // condsel-lint: allow(guarded-by-coverage)
  std::deque<int> log_;
};

}  // namespace condsel
