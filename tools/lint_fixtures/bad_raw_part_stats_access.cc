// Fixture: estimator code reaching into partitioned statistics directly
// — iterating a SIT's per-part pieces and consuming a PartStatsSet —
// instead of estimating through AtomicSelectivityProvider's merge loop.
// Hand-rolled merges skip the cardinality weighting, the corrupt-piece
// validation, and provenance recording.
// lint-fixture-path: src/condsel/selectivity/bad_raw_part_stats_access.cc
// lint-expect: no-raw-histogram-lookup

#include "condsel/catalog/part_stats.h"
#include "condsel/sit/sit.h"

namespace condsel {

double MergeByHand(const Sit& sit, int64_t lo, int64_t hi) {
  double merged = 0.0;
  for (const SitPart& piece : sit.parts) {
    merged += piece.histogram.source_cardinality();
  }
  (void)lo;
  (void)hi;
  return merged;
}

double FirstPieceRows(const PartStatsSet& stats, TableId table,
                      PartId part) {
  const PartStatsEntry* entry = stats.FindEntry(table, part);
  return entry != nullptr ? entry->rows : 0.0;
}

}  // namespace condsel
