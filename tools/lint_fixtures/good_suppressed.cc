// Fixture: explicit suppressions must silence each rule. Zero findings.
// lint-fixture-path: src/condsel/exec/good_suppressed.cc

#include "condsel/common/macros.h"
#include "condsel/common/status.h"

// condsel-lint: allow(include-hygiene)
#include <iostream>

namespace condsel {

StatusOr<int> Checked(int v) {
  // condsel-lint: allow(check-justified)
  CONDSEL_CHECK(v != 3);
  return v;
}

}  // namespace condsel
