// Fixture: library code calling abort()/exit() directly instead of going
// through CONDSEL_CHECK or returning a Status.
// lint-fixture-path: src/condsel/harness/bad_direct_abort.cc
// lint-expect: no-direct-abort

#include <cstdlib>

namespace condsel {

void Validate(int rows) {
  if (rows < 0) std::abort();
}

}  // namespace condsel
