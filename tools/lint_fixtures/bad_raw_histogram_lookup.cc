// Fixture: estimator code reading a histogram's selectivity accessors
// directly instead of routing through AtomicSelectivityProvider — the
// lookup would bypass SanitizeSelectivity, the fault-injection hooks,
// and FactorProvenance recording.
// lint-fixture-path: src/condsel/baselines/bad_raw_histogram_lookup.cc
// lint-expect: no-raw-histogram-lookup

#include "condsel/histogram/histogram.h"

namespace condsel {

double EstimateFilter(const Histogram& h, int64_t lo, int64_t hi) {
  return SanitizeSelectivity(h.RangeSelectivity(lo, hi));
}

double EstimatePoint(const Histogram* h, int64_t v) {
  return SanitizeSelectivity(h->EqualsSelectivity(v));
}

}  // namespace condsel
