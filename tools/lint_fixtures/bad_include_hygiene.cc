// Fixture: relative include path and <iostream> in library code.
// lint-fixture-path: src/condsel/histogram/bad_include_hygiene.cc
// lint-expect: include-hygiene

#include "../common/macros.h"

#include <iostream>

namespace condsel {
inline void Dump(int v) { std::cout << v << "\n"; }
}  // namespace condsel
