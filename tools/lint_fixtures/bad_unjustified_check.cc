// Fixture: a naked CONDSEL_CHECK in a file exposing a Status path. The
// CHECK aborts on conditions the caller could trigger, which is exactly
// what the Try*/Status layer exists to prevent.
// lint-fixture-path: src/condsel/io/bad_unjustified_check.cc
// lint-expect: check-justified

#include "condsel/common/macros.h"
#include "condsel/common/status.h"

namespace condsel {

StatusOr<double> ParseRatio(double num, double den) {
  CONDSEL_CHECK(den != 0.0);
  return num / den;
}

}  // namespace condsel
