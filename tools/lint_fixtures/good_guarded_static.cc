// lint-fixture-path: src/condsel/common/good_guarded_static.cc
//
// The annotated twin of bad_unguarded_static.cc: a GUARDED_BY on the
// static (or an atomic type) satisfies the .cc guarded-by rule.
#include <atomic>
#include <mutex>

namespace condsel {

int NextTicket() {
  static std::mutex mu;
  static int next_ticket CONDSEL_GUARDED_BY(mu) = 0;
  const std::lock_guard<std::mutex> lock(mu);
  return next_ticket++;
}

uint64_t NextSequence() {
  static std::atomic<uint64_t> seq{0};
  return seq.fetch_add(1);
}

}  // namespace condsel
