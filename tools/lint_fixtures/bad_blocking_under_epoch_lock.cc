// Fixture: a publisher that builds the snapshot and sleeps while holding
// the epoch lock — every session's Acquire() now stalls behind a refresh.
// The epoch lock covers only the counter, the ledger, and the pointer
// swap; construction and stalls belong outside it.
// lint-fixture-path: src/condsel/service/bad_blocking_under_epoch_lock.cc
// lint-expect: no-blocking-under-epoch-lock

#include "condsel/service/snapshot.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

namespace condsel {

class BlockingPublisher {
 public:
  void Publish(Catalog catalog, SitPool pool) {
    const std::lock_guard<std::mutex> lock(epoch_mu_);
    // Heavy construction under the lock: sessions block on Acquire().
    auto snap = std::make_shared<const Snapshot>(next_epoch_++,
                                                 std::move(catalog),
                                                 std::move(pool));
    // A stalled rebuild under the lock: the whole service stalls with it.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    current_ = std::move(snap);
  }

 private:
  std::mutex epoch_mu_;
  uint64_t next_epoch_ = 1;
  std::shared_ptr<const Snapshot> current_;
};

}  // namespace condsel
