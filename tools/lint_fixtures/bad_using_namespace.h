// Fixture: `using namespace` in a header.
// lint-fixture-path: src/condsel/common/bad_using_namespace.h
// lint-expect: using-namespace

#pragma once

#include <vector>

using namespace std;

namespace condsel {
inline vector<int> Empty() { return {}; }
}  // namespace condsel
