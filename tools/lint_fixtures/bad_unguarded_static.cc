// lint-fixture-path: src/condsel/common/bad_unguarded_static.cc
// lint-expect: guarded-by-coverage
//
// A function-scope static following a static mutex with no
// CONDSEL_GUARDED_BY: the .cc variant of the guarded-by rule must flag it.
#include <mutex>

namespace condsel {

int NextTicket() {
  static std::mutex mu;
  static int next_ticket = 0;
  const std::lock_guard<std::mutex> lock(mu);
  return next_ticket++;
}

}  // namespace condsel
