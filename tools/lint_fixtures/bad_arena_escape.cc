// Fixture: arena-backed scratch escaping its Compute() three ways — a
// static arena shared across every call and thread, a member pinned to
// an Allocate() result that dangles after the next Reset(), and an
// accessor handing the caller a reference into arena storage.
// lint-fixture-path: src/condsel/selectivity/bad_arena_escape.cc
// lint-expect: arena-no-escape

#include "condsel/common/arena.h"

namespace condsel {

// Outlives every Compute() and is shared across threads.
static Arena g_scratch_arena(1 << 12);

class EscapingEstimator {
 public:
  void Compute() {
    arena_.Reset();
    // Pins arena memory in a member: the next Reset() recycles the block
    // underneath cached_ without running destructors.
    cached_ = arena_.AllocateArray<int>(64);
  }

  // Hands the caller a reference into arena storage.
  ArenaVector<int>& scratch() { return scratch_; }

 private:
  Arena arena_;
  ArenaVector<int> scratch_{&arena_};
  int* cached_ = nullptr;
};

}  // namespace condsel
