// Fixture: a StatusCode switch hiding behind a default label. When an
// enumerator is added, -Wswitch stays silent here and the new code is
// silently classified as non-retryable — exactly the rot the
// exhaustive-switch convention prevents.
// lint-fixture-path: src/condsel/service/bad_default_status_switch.cc
// lint-expect: exhaustive-status-switch

#include "condsel/common/status.h"

namespace condsel {

bool LooksRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace condsel
