// Fixture: the sanctioned merge layer. Inside atomic_provider.cc the
// per-part piece iteration and the histogram selectivity accessors are
// exactly where they belong — the rule's one exempt file — so this file
// must produce zero findings despite doing everything the bad fixtures
// are flagged for.
// lint-fixture-path: src/condsel/selectivity/atomic_provider.cc

#include "condsel/common/numeric.h"
#include "condsel/sit/sit.h"

namespace condsel {

double MergePieces(const Sit& sit, int64_t lo, int64_t hi) {
  if (!sit.is_partitioned()) {
    return SanitizeSelectivity(sit.histogram.RangeSelectivity(lo, hi));
  }
  double weighted = 0.0;
  double total = 0.0;
  for (const SitPart& piece : sit.parts) {
    const double rows = piece.histogram.source_cardinality();
    weighted += rows * piece.histogram.RangeSelectivity(lo, hi);
    total += rows;
  }
  return SanitizeSelectivity(total > 0.0 ? weighted / total : 0.0);
}

}  // namespace condsel
