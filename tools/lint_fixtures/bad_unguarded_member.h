// Fixture: a data member declared after a std::mutex member without a
// CONDSEL_GUARDED_BY annotation must be flagged (atomics are exempt).
// lint-fixture-path: src/condsel/exec/bad_unguarded_member.h
// lint-expect: guarded-by-coverage

#pragma once

#include <map>
#include <mutex>

#include "condsel/common/thread_annotations.h"

namespace condsel {

class ResultCache {
 public:
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<int, double> entries_;
};

}  // namespace condsel
