// Fixture: the sanctioned StatusCode switch shape — every enumerator
// listed, no default, the unreachable fallthrough return outside the
// switch. A default in an *unrelated* switch (over a local enum) stays
// legal. Must produce zero findings.
// lint-fixture-path: src/condsel/service/good_exhaustive_status_switch.cc

#include "condsel/common/status.h"

namespace condsel {

enum class Lane { kFast, kSlow };

int LaneWeight(Lane lane) {
  switch (lane) {
    case Lane::kFast:
      return 1;
    default:
      return 4;  // non-StatusCode switches may default freely
  }
}

bool IsTerminal(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return false;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
    case StatusCode::kRejectedOverload:
      return true;
  }
  return true;
}

}  // namespace condsel
