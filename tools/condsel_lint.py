#!/usr/bin/env python3
"""condsel_lint — project invariants clang-tidy cannot express.

Rules (suppress one occurrence with `condsel-lint: allow(<rule>)` in a
comment on the same or the preceding line):

  pragma-once           every header uses `#pragma once`; no `#ifndef`
                        include guards.
  using-namespace       no `using namespace` in headers anywhere, nor in
                        library code under src/ (tools/tests/bench may,
                        with an explicit allow).
  check-justified       in files that expose a Status/StatusOr path,
                        every CONDSEL_CHECK / CONDSEL_CHECK_MSG must be
                        justified as an internal invariant: a comment
                        containing `invariant` on the CHECK's line or the
                        line above. Unjustified CHECKs in status-routed
                        code are exactly the aborts PR 1 set out to
                        eliminate — validate and return Status instead.
  sanitize-selectivity  a .cc under src/condsel/{selectivity,baselines}/
                        defining a double-returning Estimate method must
                        route results through SanitizeSelectivity. This is
                        the *fast pre-check*: it fires on the definition
                        line with zero flow reasoning. The authoritative
                        check is condsel_flow's sanitize-flow, which
                        taint-tracks selectivity values through locals and
                        arithmetic to every return and field write; this
                        rule stays because its diagnostic is immediate and
                        its false-negative space (a file that mentions
                        SanitizeSelectivity anywhere) is exactly what the
                        flow analyzer covers.
  exhaustive-status-switch
                        no `default:` label in a switch over StatusCode in
                        library code. StatusCodeName and
                        RetryableStatusCode stay exhaustive so that adding
                        an enumerator breaks the build (-Wswitch +
                        -Werror) at every classification site instead of
                        silently falling into a default; condsel_flow's
                        status-census then checks each enumerator is
                        constructed, classified once, and tested.
  include-hygiene       no relative (`"../"`, `"./"`) or `"src/`-prefixed
                        includes; library code does not include
                        <iostream> (embedders own logging policy, and the
                        library is printf-style throughout).
  no-direct-abort       library code never calls abort()/exit() directly;
                        CONDSEL_CHECK (macros.h) is the only allowed
                        abort path.
  nodiscard-status      Status and StatusOr are [[nodiscard]]; library
                        code must not launder a discarded result through a
                        `(void)` cast. Intentional discards use the
                        grep-able StatusIgnored() sink (status.h) with an
                        explicit allow.
  guarded-by-coverage   in a library header, data members declared after a
                        mutex member (std::mutex or condsel::OrderedMutex)
                        must either carry a CONDSEL_GUARDED_BY /
                        CONDSEL_PT_GUARDED_BY annotation or be
                        synchronization-free by type (std::atomic, another
                        mutex); in a library .cc, the same contract holds
                        for file-/function-scope statics following a
                        static mutex. The checker is shared with
                        condsel_model (cpp_model_common), so the two tools
                        cannot disagree about what "guarded" means.
                        Unannotated mutable state next to a mutex is where
                        thread-safety claims silently rot.
  no-raw-histogram-lookup
                        estimator code (src/condsel/{selectivity,baselines,
                        optimizer}/) must not call the histogram selectivity
                        accessors (RangeSelectivity / EqualsSelectivity),
                        read a SIT's per-part piece vector (`sit.parts`),
                        or touch PartStatsSet/PartStatsEntry directly —
                        AtomicSelectivityProvider
                        (selectivity/atomic_provider.cc, the one exempt
                        file) is the single lookup *and* part-merge layer,
                        so sanitization, fault injection, the
                        cardinality-weighted merge, and FactorProvenance
                        cannot be bypassed. histogram/ itself and the
                        non-estimator approximation layers are out of
                        scope.
  raw-set-deadline      library code under src/ must not park a deadline in
                        shared mutable state via a `set_deadline(...)`
                        setter: deadlines are per-call arguments (Score's
                        deadline parameter) armed through the RAII
                        ScopedDeadline helper, so concurrent estimators
                        sharing a provider cannot clobber — or dangle —
                        each other's clock. selectivity/budget.{h,cc}
                        (which define the sanctioned primitives) are
                        exempt.
  arena-no-escape       memory obtained from an Arena (common/arena.h) is
                        scratch for the Compute() that allocated it:
                        Reset() recycles blocks without destructors or
                        poisoning. Library code must not declare a
                        static/thread_local arena (outlives every call,
                        shared across threads), pin an Allocate result in
                        a member, or hand out a pointer/reference to an
                        ArenaVector from a function — copy values out
                        instead. arena.h itself (the primitives) is
                        exempt.
  no-blocking-under-epoch-lock
                        library code holding a lock on an `*epoch_mu*`
                        mutex must not block while it is held: no sleeps,
                        condition-variable waits, thread joins, snapshot
                        construction (make_shared/make_unique), or
                        estimation entry points (Compute/TryEstimate*/
                        Submit/Publish/Refresh). The epoch lock guards
                        only the epoch counter, the retirement ledger,
                        and the pointer swap — every session's Acquire
                        path is wait-free exactly because nothing slow
                        ever runs under it. Build the snapshot first,
                        then take the lock to swap it in.

Usage:
  condsel_lint.py [--root REPO]      lint the repository (exit 1 on findings)
  condsel_lint.py --self-test        run the rules against the fixture
                                     corpus in tools/lint_fixtures/
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_model_common as cm  # noqa: E402

EXTENSIONS = (".h", ".cc")

ALLOW_RE = cm.LINT_ALLOW_RE


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allowed(lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) carries or follows an allow marker."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def check_pragma_once(path: str, text: str, lines: list[str]) -> list[Finding]:
    if not path.endswith(".h"):
        return []
    findings = []
    if "#pragma once" not in text:
        findings.append(Finding(path, 1, "pragma-once",
                                "header lacks `#pragma once`"))
    for i, line in enumerate(lines):
        if re.match(r"\s*#ifndef\s+\w*_H_?\b", line):
            if not _allowed(lines, i, "pragma-once"):
                findings.append(Finding(
                    path, i + 1, "pragma-once",
                    "include guard found; use `#pragma once` instead"))
    return findings


def check_using_namespace(path: str, text: str,
                          lines: list[str]) -> list[Finding]:
    in_header = path.endswith(".h")
    in_library = path.startswith("src/")
    if not (in_header or in_library):
        return []
    findings = []
    for i, line in enumerate(lines):
        if re.match(r"\s*using\s+namespace\b", line):
            if _allowed(lines, i, "using-namespace"):
                continue
            where = "headers" if in_header else "library code"
            findings.append(Finding(
                path, i + 1, "using-namespace",
                f"`using namespace` is not allowed in {where}"))
    return findings


CHECK_RE = re.compile(r"\bCONDSEL_CHECK(_MSG)?\s*\(")
STATUS_RE = re.compile(r"\bStatusOr<|\bStatus\s+[A-Za-z_]|\bStatus::")


def check_justified(path: str, text: str, lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    if not STATUS_RE.search(text):
        return []  # no recoverable path exists in this file
    findings = []
    for i, line in enumerate(lines):
        if not CHECK_RE.search(line):
            continue
        if line.lstrip().startswith("//") or line.lstrip().startswith("#"):
            continue  # comment or macro definition, not a call
        context = lines[max(0, i - 1): i + 1]
        if any("invariant" in c for c in context):
            continue
        if _allowed(lines, i, "check-justified"):
            continue
        findings.append(Finding(
            path, i + 1, "check-justified",
            "CONDSEL_CHECK in status-routed code needs an `invariant:` "
            "comment (or convert it to a Status return)"))
    return findings


ESTIMATE_DEF_RE = re.compile(r"^double\s+\w+::\w*Estimate\w*\s*\(",
                             re.MULTILINE)


def check_sanitize(path: str, text: str, lines: list[str]) -> list[Finding]:
    if not (path.startswith("src/condsel/selectivity/")
            or path.startswith("src/condsel/baselines/")):
        return []
    if not path.endswith(".cc"):
        return []
    m = ESTIMATE_DEF_RE.search(text)
    if not m:
        return []
    if "SanitizeSelectivity" in text:
        return []
    line = text.count("\n", 0, m.start()) + 1
    if _allowed(lines, line - 1, "sanitize-selectivity"):
        return []
    return [Finding(
        path, line, "sanitize-selectivity",
        "selectivity-returning Estimate defined here, but nothing routes "
        "through SanitizeSelectivity")]


def check_includes(path: str, text: str, lines: list[str]) -> list[Finding]:
    findings = []
    for i, line in enumerate(lines):
        m = re.match(r'\s*#include\s+"([^"]+)"', line)
        if m:
            target = m.group(1)
            if target.startswith(("../", "./")) or target.startswith("src/"):
                if not _allowed(lines, i, "include-hygiene"):
                    findings.append(Finding(
                        path, i + 1, "include-hygiene",
                        f'include "{target}" must be repo-rooted '
                        '(e.g. "condsel/...")'))
        if path.startswith("src/") and re.match(
                r"\s*#include\s+<iostream>", line):
            if not _allowed(lines, i, "include-hygiene"):
                findings.append(Finding(
                    path, i + 1, "include-hygiene",
                    "library code must not include <iostream>"))
    return findings


ABORT_RE = re.compile(r"\b(?:std::)?(abort|exit)\s*\(")


def check_no_abort(path: str, text: str, lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    if path.endswith("common/macros.h"):
        return []  # the one sanctioned abort site
    findings = []
    for i, line in enumerate(lines):
        stripped = line.split("//")[0]
        if ABORT_RE.search(stripped):
            if not _allowed(lines, i, "no-direct-abort"):
                findings.append(Finding(
                    path, i + 1, "no-direct-abort",
                    "library code must not call abort()/exit() directly; "
                    "use CONDSEL_CHECK or return a Status"))
    return findings


VOID_DISCARD_RE = re.compile(r"\(void\)\s*([A-Za-z_][^;]*)")
STATUSISH_RE = re.compile(r"[Ss]tatus|\bTry[A-Z]")


def check_nodiscard_status(path: str, text: str,
                           lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    findings = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        m = VOID_DISCARD_RE.search(code)
        if not m or not STATUSISH_RE.search(m.group(1)):
            continue
        if _allowed(lines, i, "nodiscard-status"):
            continue
        findings.append(Finding(
            path, i + 1, "nodiscard-status",
            "`(void)` cast launders a [[nodiscard]] Status; handle it or "
            "discard explicitly with StatusIgnored()"))
    return findings


def check_guarded_by(path: str, text: str, lines: list[str]) -> list[Finding]:
    """Header members after a mutex member, and .cc statics after a static
    mutex, must be annotated. The checker itself lives in cpp_model_common
    so condsel_model's guarded-field check cannot drift from this rule."""
    if not path.startswith("src/"):
        return []
    findings = []
    for lineno, message in cm.guarded_field_findings(
            path, lines,
            lambda idx, rule: _allowed(lines, idx, rule),
            "guarded-by-coverage"):
        findings.append(
            Finding(path, lineno, "guarded-by-coverage", message))
    return findings


RAW_HISTOGRAM_RE = re.compile(
    r"(?:\.|->)\s*(RangeSelectivity|EqualsSelectivity)\s*\(")
# Partitioned statistics: a Sit's per-part piece vector and the stored
# PartStatsSet/PartStatsEntry containers. Estimator code reading these
# directly would re-implement the cardinality-weighted merge (and skip
# its validation); AtomicSelectivityProvider's ForEachPiece is the only
# sanctioned merge loop.
RAW_PART_PIECES_RE = re.compile(r"(?:\.|->)\s*parts\s*(?:\[|\.|\b)")
RAW_PART_STATS_RE = re.compile(r"\bPartStats(?:Set|Entry)\b")
ESTIMATOR_DIRS = ("src/condsel/selectivity/", "src/condsel/baselines/",
                  "src/condsel/optimizer/")


def check_raw_histogram_lookup(path: str, text: str,
                               lines: list[str]) -> list[Finding]:
    if not path.startswith(ESTIMATOR_DIRS):
        return []
    if path == "src/condsel/selectivity/atomic_provider.cc":
        return []  # the one sanctioned lookup layer
    findings = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        m = RAW_HISTOGRAM_RE.search(code)
        part_reason = None
        if m:
            part_reason = (
                f"estimator code calls Histogram::{m.group(1)} directly; "
                "route the lookup through AtomicSelectivityProvider so "
                "sanitization, fault hooks, and provenance apply")
        elif RAW_PART_PIECES_RE.search(code):
            part_reason = (
                "estimator code reads a SIT's per-part pieces directly; "
                "the cardinality-weighted merge lives in "
                "AtomicSelectivityProvider (ForEachPiece) so partitioned "
                "and flat statistics estimate through one code path")
        elif RAW_PART_STATS_RE.search(code):
            part_reason = (
                "estimator code touches PartStatsSet/PartStatsEntry "
                "directly; estimators consume the merged SitPool — "
                "per-part storage is the maintenance layer's, behind "
                "BuildMergedPool's validation")
        if part_reason is None:
            continue
        if _allowed(lines, i, "no-raw-histogram-lookup"):
            continue
        findings.append(Finding(
            path, i + 1, "no-raw-histogram-lookup", part_reason))
    return findings


SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_STATUS_RE = re.compile(r"\bcase\s+StatusCode::")
DEFAULT_LABEL_RE = re.compile(r"^\s*default\s*:")


def check_status_switch(path: str, text: str,
                        lines: list[str]) -> list[Finding]:
    """A switch over StatusCode must stay exhaustive: with -Wswitch (and
    -Werror in CI) a new enumerator then fails to compile at every
    classification site, instead of sliding into a default branch."""
    if not path.startswith("src/"):
        return []
    findings = []
    depth = 0
    pending_switch = False  # saw `switch (` but not its `{` yet
    # Open switch scopes: [scope depth, saw `case StatusCode::`,
    # default-label line indices]. Judged at scope close so a default
    # written above the cases is still caught.
    stack: list[list] = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if SWITCH_RE.search(code):
            pending_switch = True
        if pending_switch and "{" in code:
            stack.append([depth, False, []])
            pending_switch = False
        if stack:
            if CASE_STATUS_RE.search(code):
                stack[-1][1] = True
            if DEFAULT_LABEL_RE.match(code):
                stack[-1][2].append(i)
        depth += code.count("{") - code.count("}")
        while stack and depth <= stack[-1][0]:
            _, is_status, defaults = stack.pop()
            if not is_status:
                continue
            for idx in defaults:
                if _allowed(lines, idx, "exhaustive-status-switch"):
                    continue
                findings.append(Finding(
                    path, idx + 1, "exhaustive-status-switch",
                    "switch over StatusCode must not have a default: "
                    "label — keep it exhaustive so -Wswitch flags every "
                    "classification site when an enumerator is added"))
    return findings


RAW_SET_DEADLINE_RE = re.compile(r"\bset_deadline\s*\(")
DEADLINE_EXEMPT_FILES = ("src/condsel/selectivity/budget.h",
                         "src/condsel/selectivity/budget.cc")


def check_raw_set_deadline(path: str, text: str,
                           lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    if path in DEADLINE_EXEMPT_FILES:
        return []  # the sanctioned deadline primitives live here
    findings = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if not RAW_SET_DEADLINE_RE.search(code):
            continue
        if _allowed(lines, i, "raw-set-deadline"):
            continue
        findings.append(Finding(
            path, i + 1, "raw-set-deadline",
            "deadline parked in shared mutable state via set_deadline(); "
            "deadlines are per-call arguments armed through ScopedDeadline "
            "(budget.h), so concurrent searches on shared layers cannot "
            "clobber or dangle each other's clock"))
    return findings


ARENA_EXEMPT_FILES = ("src/condsel/common/arena.h",)
# A static or thread_local Arena/ArenaVector outlives every Compute().
ARENA_STATIC_RE = re.compile(
    r"\b(?:static|thread_local)\s+(?:const\s+)?(?:condsel::)?"
    r"Arena(?:Vector<[^;{>]*>)?\s+\w")
# `member_ = <arena>.Allocate...` pins recycled memory past the call.
ARENA_MEMBER_STORE_RE = re.compile(
    r"\b[A-Za-z]\w*_\s*(?:\[[^\]]*\])?\s*=(?!=)[^;=]*"
    r"\b\w*[Aa]rena\w*\s*(?:\.|->)\s*Allocate(?:Array)?\b")
# A function returning ArenaVector& / ArenaVector* aliases arena storage
# for the caller. Parameters of those types don't match: the name must be
# followed by `(`, i.e. this is a declarator, not a parameter.
ARENA_REF_RETURN_RE = re.compile(
    r"\bArenaVector<[^>]*>\s*[&*]\s*[A-Za-z_][\w:]*\s*\(")


def check_arena_no_escape(path: str, text: str,
                          lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    if path in ARENA_EXEMPT_FILES:
        return []  # the allocator itself manages its own blocks
    findings = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        reason = None
        if ARENA_STATIC_RE.search(code):
            reason = (
                "static/thread_local arena outlives every Compute() and is "
                "shared across threads; arenas live inside one estimator "
                "instance and are Reset() per call (common/arena.h)")
        elif ARENA_MEMBER_STORE_RE.search(code):
            reason = (
                "arena allocation pinned in a member; Reset() recycles the "
                "block at the next Compute() without running destructors, "
                "so the member dangles — copy the values out instead")
        elif ARENA_REF_RETURN_RE.search(code):
            reason = (
                "function hands out a pointer/reference to an ArenaVector; "
                "arena-backed memory is scratch for the Compute() that "
                "allocated it — copy values out to let them outlive it")
        if reason is None:
            continue
        if _allowed(lines, i, "arena-no-escape"):
            continue
        findings.append(Finding(path, i + 1, "arena-no-escape", reason))
    return findings


# Shared with condsel_model, which generalizes this rule to every lock
# the epoch lock can nest under (blocking-reachable).
EPOCH_LOCK_RE = cm.EPOCH_LOCK_RE
EPOCH_BLOCKING_RE = cm.BLOCKING_CALL_RE


def check_epoch_lock_blocking(path: str, text: str,
                              lines: list[str]) -> list[Finding]:
    if not path.startswith("src/"):
        return []
    findings = []
    depth = 0
    # Depths at which an epoch lock is currently held; the lock dies when
    # its enclosing scope closes (depth drops below the acquisition depth).
    held_at: list[int] = []
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if held_at and EPOCH_BLOCKING_RE.search(code):
            if not _allowed(lines, i, "no-blocking-under-epoch-lock"):
                findings.append(Finding(
                    path, i + 1, "no-blocking-under-epoch-lock",
                    "blocking call while an *epoch_mu* lock is held; the "
                    "epoch lock covers only the counter, the ledger, and "
                    "the pointer swap — construct/sleep/estimate outside "
                    "it, then lock to swap"))
        if EPOCH_LOCK_RE.search(code):
            held_at.append(depth)
        depth += code.count("{") - code.count("}")
        held_at = [d for d in held_at if depth >= d]
    return findings


RULES = [
    check_pragma_once,
    check_using_namespace,
    check_justified,
    check_sanitize,
    check_includes,
    check_no_abort,
    check_nodiscard_status,
    check_guarded_by,
    check_status_switch,
    check_raw_histogram_lookup,
    check_raw_set_deadline,
    check_epoch_lock_blocking,
    check_arena_no_escape,
]


def lint_text(rel_path: str, text: str) -> list[Finding]:
    lines = text.splitlines()
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule(rel_path, text, lines))
    return findings


def run_lint(root: str) -> int:
    findings: list[Finding] = []
    count = 0
    for path in cm.iter_source_files(root):
        count += 1
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as fh:
            findings.extend(lint_text(rel, fh.read()))
    for f in findings:
        print(f)
    if findings:
        print(f"condsel_lint: {len(findings)} finding(s) in {count} files",
              file=sys.stderr)
        return 1
    print(f"condsel_lint: {count} files clean", file=sys.stderr)
    return 0


EXPECT_RE = re.compile(r"lint-expect:\s*([a-z0-9-]+)")
FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")


def run_self_test(root: str) -> int:
    """Fixture corpus: each file declares its virtual repo path and the
    exact set of rules it must trigger (`lint-expect:` lines)."""
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"error: fixture corpus missing at {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    total = 0
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith(EXTENSIONS):
            continue
        total += 1
        with open(os.path.join(fixtures, name), encoding="utf-8") as fh:
            text = fh.read()
        m = FIXTURE_PATH_RE.search(text)
        virtual = m.group(1) if m else f"src/condsel/{name}"
        expected = sorted(set(EXPECT_RE.findall(text)))
        got = sorted({f.rule for f in lint_text(virtual, text)})
        if got != expected:
            failures += 1
            print(f"self-test FAIL {name} (as {virtual}):\n"
                  f"  expected rules: {expected}\n"
                  f"  got:            {got}", file=sys.stderr)
    if failures:
        print(f"condsel_lint --self-test: {failures}/{total} fixtures "
              "failed", file=sys.stderr)
        return 1
    print(f"condsel_lint --self-test: {total} fixtures ok",
          file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="condsel project lint", add_help=True)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true",
                        help="validate the rules against the fixture corpus")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(args.root)
    return run_lint(args.root)


if __name__ == "__main__":
    sys.exit(main())
