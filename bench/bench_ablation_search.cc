// Ablation: search-strategy cost. Compares, per query size n:
//  - the exhaustive decomposition search (reference; factorial),
//  - the getSelectivity DP (memoized; <= 3^n),
//  - the optimizer-coupled search (entry-induced decompositions only),
// in nodes explored / subproblems / memo entries, plus the achieved
// error, quantifying what each level of pruning costs.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "condsel/optimizer/integration.h"
#include "condsel/selectivity/exhaustive.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  DiffError diff;

  std::printf("\nsearch-strategy ablation (GS-Diff ranking):\n\n");
  std::vector<std::string> header = {
      "n (preds)", "exhaustive nodes", "DP subproblems",
      "memo entries",  "exh err",         "DP err",
      "coupled err"};
  std::vector<std::vector<std::string>> rows;

  for (int joins = 2; joins <= 5; ++joins) {
    const Query query = env.Workload(joins, 1, 777).front();
    const SitPool pool = GenerateSitPool({query}, 2, *env.builder);
    SitMatcher matcher(&pool);
    matcher.BindQuery(&query);

    AtomicSelectivityProvider fa_ex(&matcher, &diff);
    const ExhaustiveResult ex =
        ExhaustiveBest(query, query.all_predicates(), &fa_ex, true);

    AtomicSelectivityProvider fa_dp(&matcher, &diff);
    GetSelectivity gs(&query, &fa_dp);
    const SelEstimate dp = gs.Compute(query.all_predicates());

    AtomicSelectivityProvider fa_cp(&matcher, &diff);
    OptimizerCoupledEstimator coupled(&query, &fa_cp);
    const SelEstimate cp = coupled.Estimate(query.all_predicates());

    rows.push_back({std::to_string(query.num_predicates()),
                    std::to_string(ex.nodes_explored),
                    std::to_string(gs.stats().subproblems),
                    std::to_string(coupled.memo().num_groups()),
                    FormatDouble(ex.error, 3), FormatDouble(dp.error, 3),
                    FormatDouble(cp.error, 3)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: exhaustive node counts explode with n while the\n"
      "DP's subproblem count stays polynomial in the visited subsets; the\n"
      "DP matches the exhaustive error exactly (Theorem 1), and the\n"
      "optimizer-coupled search is close with far fewer entries.\n");

  // Memoization payoff inside one query: cost of answering every
  // sub-plan request after the first full computation.
  std::printf("\nmemoization payoff (7-way query):\n");
  const Query query = env.Workload(7, 1, 778).front();
  const SitPool pool = GenerateSitPool({query}, 3, *env.builder);
  SitMatcher matcher(&pool);
  matcher.BindQuery(&query);
  AtomicSelectivityProvider fa(&matcher, &diff);
  GetSelectivity gs(&query, &fa);

  const auto t0 = std::chrono::steady_clock::now();
  gs.Compute(query.all_predicates());
  const auto t1 = std::chrono::steady_clock::now();
  for (PredSet p = 1; p <= query.all_predicates(); ++p) {
    if (IsSubset(p, query.all_predicates())) gs.Compute(p);
  }
  const auto t2 = std::chrono::steady_clock::now();
  std::printf(
      "  first full computation: %.3f ms; all %u subset requests after: "
      "%.3f ms (memo hits: %llu)\n",
      std::chrono::duration<double, std::milli>(t1 - t0).count(),
      query.all_predicates(),
      std::chrono::duration<double, std::milli>(t2 - t1).count(),
      static_cast<unsigned long long>(gs.stats().memo_hits));
  return 0;
}
