// Ablation (extension): histogram SITs vs sample SITs.
//
// The paper's framework is estimator-agnostic; this bench compares the
// two concrete estimators on the same conditional-selectivity task:
// Sel(filter | join expression), sweeping the space budget. Histograms
// spend their budget on bucket boundaries (low variance, smoothing bias);
// samples spend it on rows (unbiased, variance grows as selectivities
// shrink).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/sampling/sample.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 15);
  const std::vector<Query> workload = env.Workload(3, num_queries);

  // Task: for each query, estimate Sel(f | all joins) for each filter f,
  // using (a) a MaxDiff SIT and (b) a sample SIT over the join result.
  std::printf(
      "\nhistogram vs sample SITs: avg |est - true| of Sel(filter | "
      "joins)\n\n");
  std::vector<std::string> header = {"budget", "histogram err",
                                     "sample err", "sample/hist"};
  std::vector<std::vector<std::string>> rows;

  for (const int budget : {50, 200, 1000, 4000}) {
    // Budget: histogram buckets vs sample rows (a bucket stores ~4
    // numbers vs 1-3 per sample row; close enough for the shape).
    double hist_err = 0.0, sample_err = 0.0;
    int n = 0;
    SitBuilder hist_builder(env.evaluator.get(),
                            {HistogramType::kMaxDiff, budget});
    SampleSitBuilder sample_builder(env.evaluator.get(),
                                    static_cast<size_t>(budget));
    for (const Query& q : workload) {
      const PredSet joins = q.join_predicates();
      const std::vector<Predicate> expr = q.CanonicalSubset(joins);
      for (int f : SetElements(q.filter_predicates())) {
        const Predicate& filter = q.predicate(f);
        const double truth = env.evaluator->TrueConditionalSelectivity(
            q, 1u << f, joins);

        const Sit hist = hist_builder.Build(filter.column(), expr);
        const double h_est =
            hist.histogram.RangeSelectivity(filter.lo(), filter.hi());

        const SampleSit sample =
            sample_builder.Build({filter.column()}, expr);
        const double s_est = sample.Selectivity({filter});

        hist_err += std::abs(h_est - truth);
        sample_err += std::abs(s_est - truth);
        ++n;
      }
    }
    hist_err /= n;
    sample_err /= n;
    rows.push_back({std::to_string(budget), FormatDouble(hist_err, 4),
                    FormatDouble(sample_err, 4),
                    hist_err > 1e-6
                        ? FormatDouble(sample_err / hist_err, 2)
                        : std::string("- (hist exact)")});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: histograms win at every budget here (attribute\n"
      "domains are small enough that a few hundred buckets are exact),\n"
      "while sample error shrinks as ~1/sqrt(budget); samples' advantage\n"
      "— capturing cross-attribute correlation — shows in\n"
      "bench_ablation_multidim-style workloads instead.\n");
  return 0;
}
