// Related-work comparison: self-tuning base statistics ([1, 5]) vs SITs
// under data drift. Fact rows referencing keys beyond the dimension's
// range are dangling (and, being the high-fk rows, carry the largest
// attribute values), so the join genuinely reshapes the attribute's
// distribution — base statistics cannot express that even when fresh.
//
// Scenario: statistics are built, then the fact table's correlated
// attribute drifts (values shift upward). Static statistics go stale;
// the self-tuning histogram repairs its *base* distribution from query
// feedback — but, as Section 6 argues, it still owns one distribution
// per attribute and keeps the independence assumption, so it cannot fix
// the filter-vs-join interaction that SITs capture. Rebuilt SITs fix
// both.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/common/zipf.h"
#include "condsel/selftuning/self_tuning_histogram.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  // fact(fk, a) joining dim(pk): a correlates with fk popularity.
  Rng rng(11);
  auto build_catalog = [&](int64_t shift) {
    Catalog catalog;
    {
      TableSchema s;
      s.name = "fact";
      s.columns = {{"fk", 0, 249, true}, {"a", 0, 999, false}};
      Table t(s);
      // fk ranges over 0..249 but the dimension only holds 0..199: the
      // tail (which carries the largest `a` values) dangles.
      ZipfSampler z(250, 0.4);
      for (int i = 0; i < 20000; ++i) {
        const int64_t fk = z.Next(rng);
        const int64_t a =
            std::clamp<int64_t>(fk * 3 + rng.NextInRange(0, 99) + shift, 0,
                                999);
        t.AppendRow({fk, a});
      }
      catalog.AddTable(std::move(t));
    }
    {
      TableSchema s;
      s.name = "dim";
      s.columns = {{"pk", 0, 199, true}, {"c", 0, 9, false}};
      Table t(s);
      for (int64_t i = 0; i < 200; ++i) {
        t.AppendRow({i, rng.NextInRange(0, 9)});
      }
      catalog.AddTable(std::move(t));
    }
    return catalog;
  };

  // Statistics built on the ORIGINAL data.
  Catalog original = build_catalog(0);
  CardinalityCache cache0;
  Evaluator eval0(&original, &cache0);
  SitBuilder builder0(&eval0, SitBuildOptions{});
  const ColumnRef f_a{0, 1};
  const Sit stale_base = builder0.Build(f_a, {});

  // The DRIFTED world the queries actually run against.
  Catalog drifted = build_catalog(400);
  CardinalityCache cache1;
  Evaluator eval1(&drifted, &cache1);

  // Self-tuning histogram trained by feedback from drifted executions.
  SelfTuningHistogram tuned(0, 999, 200);
  {
    Rng qrng(23);
    const Table& fact = drifted.table(0);
    const Column fact_c1 = fact.MaterializeColumn(1);
    for (int i = 0; i < 300; ++i) {
      const int64_t lo = qrng.NextInRange(0, 900);
      const int64_t hi = lo + qrng.NextInRange(20, 99);
      size_t c = 0;
      for (int64_t v : fact_c1.values()) c += (v >= lo && v <= hi);
      tuned.Observe(lo, hi,
                    static_cast<double>(c) /
                        static_cast<double>(fact.num_rows()));
    }
  }

  // Fresh statistics on the drifted data (what SIT rebuild gives).
  SitBuilder builder1(&eval1, SitBuildOptions{});
  const Sit fresh_base = builder1.Build(f_a, {});
  const Query probe({Predicate::Join({0, 0}, {1, 0}),
                     Predicate::Filter(f_a, 0, 0)});  // shape only
  const Predicate join = probe.predicate(0);
  const Sit fresh_sit = builder1.Build(f_a, {join});

  // Task: estimate Sel(a in R | join) over the drifted data for a sweep
  // of ranges (the join skews the distribution of `a`).
  std::printf("\nself-tuning vs SITs under data drift\n\n");
  std::vector<std::string> header = {"estimator", "avg |est - true|",
                                     "notes"};
  double e_stale = 0.0, e_tuned = 0.0, e_fresh = 0.0, e_sit = 0.0;
  int n = 0;
  for (int64_t lo = 0; lo <= 900; lo += 100) {
    const int64_t hi = lo + 99;
    const Query q({join, Predicate::Filter(f_a, lo, hi)});
    const double truth =
        eval1.TrueConditionalSelectivity(q, 0b10, 0b01);
    e_stale += std::abs(stale_base.histogram.RangeSelectivity(lo, hi) -
                        truth);
    e_tuned += std::abs(tuned.RangeSelectivity(lo, hi) - truth);
    e_fresh += std::abs(fresh_base.histogram.RangeSelectivity(lo, hi) -
                        truth);
    e_sit += std::abs(fresh_sit.histogram.RangeSelectivity(lo, hi) - truth);
    ++n;
  }
  std::vector<std::vector<std::string>> rows = {
      {"stale base histogram", FormatDouble(e_stale / n, 4),
       "built pre-drift"},
      {"self-tuning histogram", FormatDouble(e_tuned / n, 4),
       "feedback-repaired base, independence kept"},
      {"fresh base histogram", FormatDouble(e_fresh / n, 4),
       "rebuilt, independence kept"},
      {"fresh SIT(a | join)", FormatDouble(e_sit / n, 4),
       "rebuilt, conditioning captured"},
  };
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: feedback repairs the *base* distribution (close\n"
      "to the fresh rebuild, far better than stale), but only the SIT\n"
      "models the join's effect on the attribute — Section 6's argument\n"
      "for statistics per query expression.\n");
  return 0;
}
