// Estimate freshness under churn: delta-maintained part statistics vs a
// stale global pool.
//
// Two experiments, one artifact (BENCH_staleness.json):
//
//  error-vs-staleness   A fact ⋈ dimension database takes rounds of
//                       insert/delete churn whose inserts are drawn from
//                       a *shifted* distribution (hot values the initial
//                       data barely has). After each round we compare,
//                       against brute-force truth on the live data, the
//                       estimates from (a) the pool built before any
//                       churn (stale) and (b) the delta-maintained
//                       merged pool (fresh). Fresh error must stay flat;
//                       stale error must climb.
//
//  rebuild-cost         The same fixed insert batch is applied to tables
//                       of growing part counts (same rows per part).
//                       ApplyDelta's wall time tracks the parts it
//                       touched (one new part plus nothing else), while
//                       BuildAll's tracks the whole table — the cost ∝
//                       parts-touched property.
//
// Scale knobs: CONDSEL_STALENESS_PARTS (default 8),
// CONDSEL_STALENESS_ROWS (rows per part, default 250),
// CONDSEL_STALENESS_ROUNDS (churn rounds, default 8).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "condsel/api.h"
#include "condsel/catalog/part_stats.h"
#include "condsel/exec/evaluator.h"

namespace condsel {
namespace bench {
namespace {

constexpr int kDimRows = 20;

// F(a, d_id) in `parts` sealed parts of `rows_per_part` rows each, plus
// a dimension D(pk, c). Initial F.a mass sits in [0, 700): the churn
// shifts it toward [850, 1000) so stale statistics go wrong where the
// hot-range query looks.
Catalog MakeChurnCatalog(int parts, int rows_per_part) {
  Catalog catalog;
  TableSchema fact_schema;
  fact_schema.name = "F";
  for (const char* name : {"a", "d_id"}) {
    ColumnSchema cs;
    cs.name = name;
    cs.min_value = 0;
    cs.max_value = 1000;
    fact_schema.columns.push_back(cs);
  }
  Table fact(fact_schema);
  int row = 0;
  for (int p = 0; p < parts; ++p) {
    for (int r = 0; r < rows_per_part; ++r, ++row) {
      fact.AppendRow({(row * 97) % 700, row % kDimRows});
    }
    fact.SealTail();
  }
  catalog.AddTable(std::move(fact));

  TableSchema dim_schema;
  dim_schema.name = "D";
  for (const char* name : {"pk", "c"}) {
    ColumnSchema cs;
    cs.name = name;
    cs.is_key = name[0] == 'p';
    cs.min_value = 0;
    cs.max_value = 1000;
    dim_schema.columns.push_back(cs);
  }
  Table dim(dim_schema);
  for (int64_t i = 0; i < kDimRows; ++i) dim.AppendRow({i, (i * 7) % 100});
  dim.SealTail();
  catalog.AddTable(std::move(dim));
  return catalog;
}

std::vector<Query> ChurnWorkload() {
  const ColumnRef fa{0, 0};
  const ColumnRef fd{0, 1};
  const ColumnRef dpk{1, 0};
  return {
      // The hot range the churn floods.
      Query({Predicate::Join(fd, dpk), Predicate::Filter(fa, 850, 999)}),
      // The cold range the churn dilutes.
      Query({Predicate::Join(fd, dpk), Predicate::Filter(fa, 0, 99)}),
      // Join-only: sensitive to the d_id skew the churn introduces.
      Query({Predicate::Join(fd, dpk)}),
      // Filter-only on the shifting attribute.
      Query({Predicate::Filter(fa, 700, 999)}),
  };
}

DeltaBatch ChurnBatch(int round, int batch_rows) {
  DeltaBatch batch;
  batch.table = 0;
  for (int i = 0; i < batch_rows; ++i) {
    const int64_t a = 850 + ((round * 131 + i * 37) % 150);
    const int64_t d = (round + i) % 3;  // skew toward three hot keys
    batch.insert_rows.push_back({a, d});
  }
  if (round % 3 == 2) {
    // Periodically erode the oldest rows so deletes (and part drops,
    // eventually) are part of the measured path.
    for (size_t r = 0; r < 25; ++r) batch.delete_rows.push_back(r);
  }
  return batch;
}

double MeanAbsError(const Catalog& catalog, const SitPool& pool,
                    const std::vector<Query>& workload) {
  // Fresh truth evaluator each call: the catalog mutates between rounds
  // and the cardinality cache is keyed by predicates alone.
  Evaluator truth(&catalog, nullptr);
  SitPool copy = pool;
  Estimator estimator(&catalog, &copy);
  double total = 0.0;
  for (const Query& q : workload) {
    const double actual = truth.TrueSelectivity(q, q.all_predicates());
    const StatusOr<double> estimate = estimator.TryEstimateSelectivity(q);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimate failed: %s\n",
                   estimate.status().ToString().c_str());
      std::exit(1);
    }
    total += std::abs(estimate.value() - actual);
  }
  return total / static_cast<double>(workload.size());
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace
}  // namespace bench
}  // namespace condsel

int main() {
  using namespace condsel;         // NOLINT: bench brevity
  using namespace condsel::bench;  // NOLINT: bench brevity
  using Clock = std::chrono::steady_clock;

  const int parts = EnvInt("CONDSEL_STALENESS_PARTS", 8);
  const int rows_per_part = EnvInt("CONDSEL_STALENESS_ROWS", 250);
  const int rounds = EnvInt("CONDSEL_STALENESS_ROUNDS", 8);
  const int batch_rows = EnvInt("CONDSEL_STALENESS_BATCH", 100);
  const SitBuildOptions options{HistogramType::kMaxDiff, 64};
  const std::vector<Query> workload = ChurnWorkload();

  // --- error vs staleness -------------------------------------------------
  Catalog catalog = MakeChurnCatalog(parts, rows_per_part);
  PartStatsMaintainer maintainer(&catalog, workload, 1, options);
  if (!maintainer.BuildAll().ok()) {
    std::fprintf(stderr, "BuildAll failed\n");
    return 1;
  }
  // The pool frozen before any churn: what a deployment that never
  // refreshes statistics would keep serving.
  const SitPool stale_pool = *maintainer.MergedPool().value();

  Json curve = Json::Array();
  std::printf("%-6s %12s %12s %10s %10s %8s\n", "round", "stale_err",
              "fresh_err", "rebuilt", "reused", "ms");
  double final_stale = 0.0, final_fresh = 0.0;
  for (int round = 0; round <= rounds; ++round) {
    double delta_seconds = 0.0;
    int parts_touched = 0, reused = 0, cross_pieces = 0;
    if (round > 0) {
      const DeltaBatch batch = ChurnBatch(round, batch_rows);
      const auto t0 = Clock::now();
      const StatusOr<DeltaReport> report = maintainer.ApplyDelta(batch);
      delta_seconds = Seconds(t0, Clock::now());
      if (!report.ok()) {
        std::fprintf(stderr, "ApplyDelta failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      parts_touched = static_cast<int>(report.value().rebuilt_parts.size() +
                                       report.value().dropped_parts.size());
      reused = report.value().reused_entries;
      cross_pieces = report.value().cross_table_pieces_rebuilt;
    }
    const SitPool fresh_pool = *maintainer.MergedPool().value();
    const double stale_err = MeanAbsError(catalog, stale_pool, workload);
    const double fresh_err = MeanAbsError(catalog, fresh_pool, workload);
    final_stale = stale_err;
    final_fresh = fresh_err;
    std::printf("%-6d %12.6f %12.6f %10d %10d %8.3f\n", round, stale_err,
                fresh_err, parts_touched, reused, delta_seconds * 1000.0);

    Json entry = Json::Object();
    entry.Set("round", round)
        .Set("rows", static_cast<uint64_t>(catalog.table(0).num_rows()))
        .Set("stale_mean_abs_error", stale_err)
        .Set("fresh_mean_abs_error", fresh_err)
        .Set("parts_touched", parts_touched)
        .Set("entries_reused", reused)
        .Set("cross_table_pieces_rebuilt", cross_pieces)
        .Set("apply_delta_seconds", delta_seconds);
    curve.Push(std::move(entry));
  }

  // --- rebuild cost vs parts touched --------------------------------------
  // The same one-batch delta against tables of growing part counts: the
  // delta cost should stay flat (it touches one new part) while the full
  // rebuild cost grows with the table.
  Json scaling = Json::Array();
  std::printf("\n%-8s %10s %14s %14s %10s\n", "parts", "rows",
              "build_all(ms)", "delta(ms)", "touched");
  for (const int p : {2, 4, 8, 16}) {
    Catalog scaled = MakeChurnCatalog(p, rows_per_part);
    PartStatsMaintainer scaled_maintainer(&scaled, workload, 1, options);
    const auto b0 = Clock::now();
    if (!scaled_maintainer.BuildAll().ok()) {
      std::fprintf(stderr, "BuildAll failed at %d parts\n", p);
      return 1;
    }
    const double build_seconds = Seconds(b0, Clock::now());

    const DeltaBatch batch = ChurnBatch(1, batch_rows);
    const auto d0 = Clock::now();
    const StatusOr<DeltaReport> report = scaled_maintainer.ApplyDelta(batch);
    const double delta_seconds = Seconds(d0, Clock::now());
    if (!report.ok()) {
      std::fprintf(stderr, "ApplyDelta failed at %d parts\n", p);
      return 1;
    }
    const int touched = static_cast<int>(report.value().rebuilt_parts.size() +
                                         report.value().dropped_parts.size());
    std::printf("%-8d %10zu %14.3f %14.3f %10d\n", p,
                scaled.table(0).num_rows(), build_seconds * 1000.0,
                delta_seconds * 1000.0, touched);

    Json entry = Json::Object();
    entry.Set("parts", p)
        .Set("rows", static_cast<uint64_t>(scaled.table(0).num_rows()))
        .Set("build_all_seconds", build_seconds)
        .Set("apply_delta_seconds", delta_seconds)
        .Set("parts_touched", touched)
        .Set("entries_reused", report.value().reused_entries);
    scaling.Push(std::move(entry));
  }

  Json root = Json::Object();
  root.Set("bench", "staleness")
      .Set("parts", parts)
      .Set("rows_per_part", rows_per_part)
      .Set("rounds", rounds)
      .Set("batch_rows", batch_rows)
      .Set("final_stale_mean_abs_error", final_stale)
      .Set("final_fresh_mean_abs_error", final_fresh)
      .Set("fresh_beats_stale", final_fresh < final_stale)
      .Set("error_vs_staleness", std::move(curve))
      .Set("rebuild_cost", std::move(scaling));
  WriteBenchJson("BENCH_staleness.json", root);
  return 0;
}
