// Related-work comparison (paper Section 6): LEO-style feedback vs SITs.
//
// Both approaches consume the same "training" information budget — the
// executed training workload — then estimate (a) the training queries
// themselves and (b) a fresh test workload over different join contexts.
// The paper's argument: feedback folds corrections into one adjusted
// statistic per attribute and keeps assuming independence, so it helps
// exactly where it was trained and can mislead elsewhere; SITs keep
// context-specific statistics and generalize across queries that share
// query expressions.

#include <cmath>
#include <functional>
#include <cstdio>

#include "bench_common.h"
#include "condsel/baselines/feedback.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

double AvgError(const std::vector<Query>& queries, BenchEnv& env,
                const std::function<double(const Query&, PredSet)>& est) {
  double total = 0.0;
  int n = 0;
  for (const Query& q : queries) {
    for (PredSet plan : SubPlanFamily(q)) {
      const double cross = CrossProductCardinality(env.catalog, q, plan);
      const double truth = env.evaluator->Cardinality(q, plan);
      total += std::abs(est(q, plan) * cross - truth);
      ++n;
    }
  }
  return total / n;
}

}  // namespace

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 12);
  const std::vector<Query> train = env.Workload(4, num_queries, 111);
  const std::vector<Query> test = env.Workload(4, num_queries, 777);

  // Base-only pool for noSit and feedback (bases must cover the test
  // queries' columns too — any system has base statistics everywhere).
  std::vector<Query> both = train;
  both.insert(both.end(), test.begin(), test.end());
  const SitPool bases = GenerateSitPool(both, 0, *env.builder);
  // SIT side: bases plus SITs generated from the *training* workload only.
  SitPool pool = bases;
  const SitPool trained = GenerateSitPool(train, 2, *env.builder);
  for (const Sit& s : trained.sits()) {
    pool.Add(s);
  }

  // Feedback side: observe every training query's execution.
  SitMatcher fb_matcher(&bases);
  FeedbackEstimator feedback(&fb_matcher);
  for (const Query& q : train) {
    feedback.Observe(q, env.evaluator.get());
  }

  DiffError diff;
  auto gs_est = [&](const Query& q, PredSet p) {
    SitMatcher matcher(&pool);
    matcher.BindQuery(&q);
    AtomicSelectivityProvider fa(&matcher, &diff);
    GetSelectivity gs(&q, &fa);
    return gs.Compute(p).selectivity;
  };
  auto fb_est = [&](const Query& q, PredSet p) {
    fb_matcher.BindQuery(&q);
    return feedback.Estimate(q, p);
  };
  auto no_est = [&](const Query& q, PredSet p) {
    SitMatcher matcher(&bases);
    matcher.BindQuery(&q);
    NIndError n_ind;
    AtomicSelectivityProvider fa(&matcher, &n_ind);
    GetSelectivity gs(&q, &fa);
    return gs.Compute(p).selectivity;
  };

  std::vector<std::string> header = {"workload", "noSit", "feedback (LEO)",
                                     "SITs (GS-Diff)"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"training", FormatDouble(AvgError(train, env, no_est), 2),
                  FormatDouble(AvgError(train, env, fb_est), 2),
                  FormatDouble(AvgError(train, env, gs_est), 2)});
  rows.push_back({"test (unseen)",
                  FormatDouble(AvgError(test, env, no_est), 2),
                  FormatDouble(AvgError(test, env, fb_est), 2),
                  FormatDouble(AvgError(test, env, gs_est), 2)});
  std::printf("\nfeedback vs SITs: avg abs sub-plan error (4-way joins)\n\n");
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: feedback beats noSit on the training workload but\n"
      "generalizes poorly (one adjustment per attribute, independence\n"
      "retained); SITs improve both workloads because test queries reuse\n"
      "the same join expressions.\n");
  return 0;
}
