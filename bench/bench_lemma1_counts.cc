// Lemma 1: the number of decompositions T(n) and its bounds
//   0.5 * (n+1)!  <=  T(n)  <=  1.5^n * n!
// together with the DP's O(3^n) subproblem bound — the exponential gap
// the paper's Section 3.4 highlights.

#include <cmath>
#include <cstdio>

#include "condsel/harness/report.h"
#include "condsel/selectivity/decomposition.h"

using namespace condsel;  // NOLINT: bench brevity

int main() {
  std::printf("Lemma 1: decomposition counts vs the DP search space\n\n");
  std::vector<std::string> header = {"n",        "T(n)",      "0.5*(n+1)!",
                                     "1.5^n*n!", "3^n (DP)",  "T(n)/3^n"};
  std::vector<std::vector<std::string>> rows;
  for (int n = 1; n <= 12; ++n) {
    const double t = static_cast<double>(CountDecompositions(n));
    const double lo = 0.5 * static_cast<double>(Factorial(n + 1));
    const double hi = std::pow(1.5, n) * static_cast<double>(Factorial(n));
    const double dp = std::pow(3.0, n);
    rows.push_back({std::to_string(n), FormatCount(t), FormatCount(lo),
                    FormatCount(std::floor(hi)), FormatCount(dp),
                    FormatDouble(t / dp, 1)});
    if (!Lemma1LowerBoundHolds(n) || !Lemma1UpperBoundHolds(n)) {
      std::printf("BOUND VIOLATION at n=%d\n", n);
      return 1;
    }
  }
  PrintTable(header, rows);

  // Cross-check the recurrence against explicit enumeration.
  std::printf("\nenumeration cross-check (n = 1..6): ");
  for (int n = 1; n <= 6; ++n) {
    const PredSet full = (1u << n) - 1;
    if (CountChainDecompositions(full) != CountDecompositions(n)) {
      std::printf("MISMATCH at n=%d\n", n);
      return 1;
    }
  }
  std::printf("ok\n");
  std::printf(
      "\nT(n) outgrows the DP's 3^n exponentially: memoization + the\n"
      "monotone error principle give the exponential saving of Sec 3.4.\n");
  return 0;
}
