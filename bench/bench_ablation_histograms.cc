// Ablation: histogram type (MaxDiff vs equi-depth vs equi-width) and
// bucket budget. The paper standardizes on MaxDiff with 200 buckets;
// this bench shows how much of the result depends on that choice.

#include <cstdio>

#include "bench_common.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 10);
  const std::vector<Query> workload = env.Workload(4, num_queries);
  Runner runner(&env.catalog, env.evaluator.get());

  std::printf(
      "\nhistogram ablation, 4-way joins, J2 pools, GS-Diff error:\n\n");
  std::vector<std::string> header = {"type", "buckets", "#SITs", "GS-Diff",
                                     "noSit"};
  std::vector<std::vector<std::string>> rows;
  for (const HistogramType type :
       {HistogramType::kMaxDiff, HistogramType::kEquiDepth,
        HistogramType::kEquiWidth, HistogramType::kEndBiased}) {
    for (const int buckets : {20, 50, 200}) {
      SitBuilder builder(env.evaluator.get(), {type, buckets});
      const SitPool pool = GenerateSitPool(workload, 2, builder);
      rows.push_back(
          {HistogramTypeName(type), std::to_string(buckets),
           std::to_string(pool.size()),
           FormatDouble(
               runner.Run(workload, pool, Technique::kGsDiff).avg_abs_error,
               1),
           FormatDouble(
               runner.Run(workload, pool, Technique::kNoSit).avg_abs_error,
               1)});
    }
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: MaxDiff degrades most gracefully as buckets\n"
      "shrink (it spends boundaries on frequency jumps); with a 200-bucket\n"
      "budget all types land close together on this data.\n");
  return 0;
}
