// Figure 8 (a, b, c): execution time of getSelectivity (GS-Diff) per
// query, split into decomposition analysis (search + view matching +
// ranking) and histogram manipulation (estimating with the chosen SITs),
// as the SIT pool grows. Uses google-benchmark for the measurements and
// prints the paper-style split table at the end.
//
// Paper's shape: single-digit milliseconds per query, growing mildly
// with the pool size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

struct Setup {
  std::unique_ptr<BenchEnv> env;
  std::map<int, std::vector<Query>> workloads;      // by join count
  std::map<std::pair<int, int>, SitPool> pools;     // (joins, pool J)
  // (joins, pool J) -> measured ms split, filled by the benchmark.
  std::map<std::pair<int, int>, std::pair<double, double>> split_ms;
};

Setup& GetSetup() {
  static Setup* setup = [] {
    auto* s = new Setup();
    s->env = std::make_unique<BenchEnv>();
    const int num_queries = EnvInt("CONDSEL_QUERIES", 8);
    for (int j : {3, 5, 7}) {
      s->workloads[j] = s->env->Workload(j, num_queries);
      for (int pool_j = 0; pool_j <= j; pool_j += (pool_j < 2 ? 1 : 2)) {
        s->pools.emplace(std::make_pair(j, pool_j),
                         GenerateSitPool(s->workloads[j], pool_j,
                                         *s->env->builder));
      }
    }
    return s;
  }();
  return *setup;
}

// One iteration = full getSelectivity over every sub-plan of every
// workload query (fresh memo per query, as the optimizer would see).
void BM_GetSelectivity(benchmark::State& state) {
  Setup& s = GetSetup();
  const int j = static_cast<int>(state.range(0));
  const int pool_j = static_cast<int>(state.range(1));
  const auto key = std::make_pair(j, pool_j);
  if (s.pools.find(key) == s.pools.end()) {
    state.SkipWithError("pool conditions on more joins than the queries");
    return;
  }
  const SitPool& pool = s.pools.at(key);
  const std::vector<Query>& workload = s.workloads.at(j);

  DiffError diff;
  double analysis = 0.0, histogram = 0.0;
  for (auto _ : state) {
    analysis = histogram = 0.0;
    for (const Query& q : workload) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider fa(&matcher, &diff);
      GetSelectivity gs(&q, &fa);
      gs.Compute(q.all_predicates());
      analysis += gs.stats().analysis_seconds;
      histogram += gs.stats().histogram_seconds;
    }
    benchmark::DoNotOptimize(analysis);
  }
  const double per_query = 1000.0 / static_cast<double>(workload.size());
  s.split_ms[key] = {analysis * per_query, histogram * per_query};
  state.counters["analysis_ms_per_query"] = analysis * per_query;
  state.counters["histogram_ms_per_query"] = histogram * per_query;
  state.counters["pool_size"] = pool.size();
}

}  // namespace

BENCHMARK(BM_GetSelectivity)
    ->ArgsProduct({{3, 5, 7}, {0, 1, 2, 4, 6}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Paper-style summary (skipping (j, pool) combos that don't exist —
  // pools can't condition on more joins than the queries have).
  Setup& s = GetSetup();
  std::printf("\nFigure 8: GS-Diff time per query (ms), split\n\n");
  std::vector<std::string> header = {"workload", "pool", "#SITs",
                                     "analysis", "histogram", "total"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& [key, split] : s.split_ms) {
    rows.push_back({std::to_string(key.first) + "-way",
                    "J" + std::to_string(key.second),
                    std::to_string(s.pools.at(key).size()),
                    FormatDouble(split.first, 3),
                    FormatDouble(split.second, 3),
                    FormatDouble(split.first + split.second, 3)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: (sub-)millisecond cost per query, scaling\n"
      "gracefully with the pool size and the join count. In our build the\n"
      "split leans toward histogram manipulation (the bitmask DP makes\n"
      "analysis very cheap); the paper's absolute budget (<6ms/query)\n"
      "holds with a wide margin.\n");
  benchmark::Shutdown();
  return 0;
}
