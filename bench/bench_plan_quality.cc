// Extension experiment (the paper's stated future work): how do the
// estimation techniques affect the *plans* an optimizer picks?
//
// For each workload query, a Selinger-style DP picks the C_out-optimal
// bushy join tree under each technique's cardinality estimates; the
// chosen plan is then re-costed with exact cardinalities and compared to
// the true optimum (the plan picked under exact cardinalities).
// Reported: geometric-mean true-cost ratio vs optimal, and how often the
// technique picks the exactly-optimal plan.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/baselines/gvm.h"
#include "condsel/baselines/no_sit.h"
#include "condsel/common/stats.h"
#include "condsel/harness/metrics.h"
#include "condsel/optimizer/join_ordering.h"
#include "condsel/selectivity/get_selectivity.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 15);

  std::printf("\nplan quality: true C_out of the chosen plan vs optimal\n");
  for (int j : {3, 5, 7}) {
    const std::vector<Query> workload = env.Workload(j, num_queries);
    const SitPool pool = GenerateSitPool(workload, 3, *env.builder);

    std::vector<std::string> header = {"technique", "geomean cost ratio",
                                       "optimal plans"};
    std::vector<std::vector<std::string>> rows;
    for (Technique tech : {Technique::kNoSit, Technique::kGvm,
                           Technique::kGsNInd, Technique::kGsDiff}) {
      std::vector<double> ratios;
      int optimal_picks = 0;
      for (const Query& q : workload) {
        JoinOrderOptimizer opt(&q, &env.catalog);
        const CardinalityFn truth = [&](PredSet p) {
          return env.evaluator->Cardinality(q, p);
        };
        const double best_cost = opt.Cost(opt.Optimize(truth).tree, truth);

        SitMatcher matcher(&pool);
        matcher.BindQuery(&q);
        NIndError n_ind;
        DiffError diff;
        const ErrorFunction* fn =
            tech == Technique::kGsDiff
                ? static_cast<const ErrorFunction*>(&diff)
                : static_cast<const ErrorFunction*>(&n_ind);
        AtomicSelectivityProvider fa(&matcher, fn);
        GetSelectivity gs(&q, &fa);
        NoSitEstimator no_sit(&matcher);
        GvmEstimator gvm(&matcher);

        const CardinalityFn est = [&](PredSet p) {
          double sel = 0.0;
          switch (tech) {
            case Technique::kNoSit:
              sel = no_sit.Estimate(q, p);
              break;
            case Technique::kGvm:
              sel = gvm.Estimate(q, p);
              break;
            default:
              sel = gs.Compute(p).selectivity;
              break;
          }
          return sel * CrossProductCardinality(env.catalog, q, p);
        };
        const double chosen_cost =
            opt.Cost(opt.Optimize(est).tree, truth);
        ratios.push_back(best_cost > 0 ? chosen_cost / best_cost : 1.0);
        optimal_picks += std::abs(chosen_cost - best_cost) < 1e-9;
      }
      char picks[32];
      std::snprintf(picks, sizeof(picks), "%d/%zu", optimal_picks,
                    workload.size());
      rows.push_back({TechniqueName(tech),
                      FormatDouble(GeometricMean(ratios), 3), picks});
    }
    std::printf("\n%d-way join workload (%d queries, J3 pool):\n\n", j,
                num_queries);
    PrintTable(header, rows);
  }
  std::printf(
      "\nExpected shape: better estimates pick cheaper plans — GS-Diff\n"
      "should sit closest to 1.0 and pick the optimal plan most often,\n"
      "with noSit worst. (This experiment is the paper's stated future\n"
      "work; it is an extension, not a reproduced figure.)\n");
  return 0;
}
