// Figure 7 (a, b, c): average absolute cardinality error for 3-, 5-, and
// 7-way join workloads, for every technique, as the SIT pool grows from
// J_0 (base histograms only) to J_J (every join expression present in
// the workload).
//
// Paper's shape: the error collapses by roughly an order of magnitude
// from J_0 to the full pool; GS-Diff tracks GS-Opt closely and beats
// GS-nInd; most of the gain arrives with the 2- and 3-way join SITs.

#include <cstdio>

#include "bench_common.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 20);

  for (int j : {3, 5, 7}) {
    const std::vector<Query> workload = env.Workload(j, num_queries);
    Runner runner(&env.catalog, env.evaluator.get());

    std::printf("\nFigure 7(%c): %d-way join queries (%d queries)\n\n",
                j == 3 ? 'a' : (j == 5 ? 'b' : 'c'), j, num_queries);
    std::vector<std::string> header = {"pool",    "#SITs",   "noSit",
                                       "GVM",     "GS-nInd", "GS-Diff",
                                       "GS-Opt"};
    std::vector<std::vector<std::string>> rows;
    for (int pool_j = 0; pool_j <= j; ++pool_j) {
      const SitPool pool = GenerateSitPool(workload, pool_j, *env.builder);
      std::vector<std::string> row = {"J" + std::to_string(pool_j),
                                      std::to_string(pool.size())};
      for (Technique t : {Technique::kNoSit, Technique::kGvm,
                          Technique::kGsNInd, Technique::kGsDiff,
                          Technique::kGsOpt}) {
        row.push_back(
            FormatDouble(runner.Run(workload, pool, t).avg_abs_error, 1));
      }
      rows.push_back(std::move(row));
    }
    PrintTable(header, rows);
  }
  std::printf(
      "\nExpected shape: noSit is flat (it ignores SITs); all SIT-aware\n"
      "techniques drop sharply once 1-3 join expressions are available;\n"
      "GS-Diff ~ GS-Opt <= GVM, with GS-nInd in between on rich pools.\n");
  return 0;
}
