// Robustness check: the headline result shapes must be stable across the
// data scale (our substitution for the paper's full-size testbed runs at
// a reduced default scale; see DESIGN.md). Runs the Figure 7 core —
// noSit vs GVM vs GS-Diff at J0 and J2 — at three scales and reports the
// improvement ratios, which should stay in the same band.

#include <cstdio>

#include "condsel/datagen/snowflake.h"
#include "condsel/datagen/workload.h"
#include "condsel/harness/report.h"
#include "condsel/harness/runner.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: bench brevity

int main() {
  std::printf("scale sweep: error ratios vs noSit (4-way joins)\n\n");
  std::vector<std::string> header = {"scale",        "fact rows",
                                     "noSit err",    "GVM ratio",
                                     "GS-Diff ratio"};
  std::vector<std::vector<std::string>> rows;

  for (const double scale : {0.005, 0.01, 0.03}) {
    SnowflakeOptions opt;
    opt.scale = scale;
    const Catalog catalog = BuildSnowflake(opt);
    CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);

    WorkloadOptions wopt;
    wopt.num_queries = 10;
    wopt.num_joins = 4;
    const std::vector<Query> workload =
        GenerateWorkload(catalog, &evaluator, wopt);
    SitBuilder builder(&evaluator, SitBuildOptions{});
    const SitPool pool = GenerateSitPool(workload, 2, builder);
    Runner runner(&catalog, &evaluator);

    const double no_sit =
        runner.Run(workload, pool, Technique::kNoSit).avg_abs_error;
    const double gvm =
        runner.Run(workload, pool, Technique::kGvm).avg_abs_error;
    const double gs =
        runner.Run(workload, pool, Technique::kGsDiff).avg_abs_error;
    char scale_s[16];
    std::snprintf(scale_s, sizeof(scale_s), "%.3f", scale);
    rows.push_back(
        {scale_s,
         std::to_string(
             catalog.table(catalog.FindTable("fact")).num_rows()),
         FormatDouble(no_sit, 1),
         FormatDouble(no_sit > 0 ? gvm / no_sit : 1.0, 3),
         FormatDouble(no_sit > 0 ? gs / no_sit : 1.0, 3)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: absolute errors grow with scale while the\n"
      "improvement ratios hold or get *stronger* (skew effects compound\n"
      "with size) — the reduced default scale, if anything, understates\n"
      "the SIT benefit the paper reports at full scale.\n");
  return 0;
}
