// Robustness check: the headline result shapes must be stable across the
// data scale (our substitution for the paper's full-size testbed runs at
// a reduced default scale; see DESIGN.md). Runs the Figure 7 core —
// noSit vs GVM vs GS-Diff at J0 and J2 — at three scales and reports the
// improvement ratios, which should stay in the same band.
//
// The largest configuration additionally times the parallel
// getSelectivity driver (EstimationBudget::threads) against the
// sequential recursion over every optimizer sub-plan, checks the
// estimates are bit-identical, and reports the speedup. Everything is
// written to BENCH_scale_sweep.json so CI can track the perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/error_function.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

std::string Hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

struct ThreadedRun {
  double seconds = 0.0;               // best-of-repetition wall time
  std::vector<std::string> estimates; // hexfloat transcript, all sub-plans
  Json per_query = Json::Array();     // wall time + subproblems + estimate
  // Work-stealing scheduler totals over the final repetition (zero on the
  // sequential run): how much the in-level scheduler had to rebalance.
  uint64_t steals = 0;
  uint64_t stolen_subsets = 0;
  uint64_t parallel_levels = 0;
  uint64_t max_level_width = 0;
};

// Times GS-Diff with the given thread count over every sub-plan of every
// workload query. Timing is best-of-`reps`; the transcript and per-query
// stats come from the final repetition (they are deterministic anyway).
ThreadedRun RunThreaded(const std::vector<Query>& workload,
                        const SitPool& pool, int threads, int reps) {
  DiffError diff;
  EstimationBudget budget;
  budget.threads = threads;
  ThreadedRun run;
  run.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    run.estimates.clear();
    run.per_query = Json::Array();
    run.steals = run.stolen_subsets = 0;
    run.parallel_levels = run.max_level_width = 0;
    double total = 0.0;
    for (const Query& q : workload) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider provider(&matcher, &diff);
      GetSelectivity gs(&q, &provider, &budget);
      const auto start = std::chrono::steady_clock::now();
      // Root request first — the optimizer's whole-query estimate solves
      // the full reachable lattice in one session (one parallel batch);
      // the sub-plan requests below are then memo-served, exactly as a
      // DP join enumerator consuming the shared memo would see them.
      SelEstimate full = gs.Compute(q.all_predicates());
      for (PredSet p : SubPlanFamily(q)) {
        full = gs.Compute(p);
        run.estimates.push_back(Hex(full.selectivity) + " " +
                                Hex(full.error));
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      total += seconds;
      const GsStats& stats = gs.stats();
      run.steals += stats.steals;
      run.stolen_subsets += stats.stolen_subsets;
      run.parallel_levels += stats.parallel_levels;
      run.max_level_width =
          std::max(run.max_level_width, stats.max_level_width);
      run.per_query.Push(Json::Object()
                             .Set("seconds", seconds)
                             .Set("subproblems", stats.subproblems)
                             .Set("estimate", full.selectivity)
                             .Set("steals", stats.steals)
                             .Set("stolen_subsets", stats.stolen_subsets));
    }
    run.seconds = std::min(run.seconds, total);
  }
  return run;
}

}  // namespace

int main() {
  std::printf("scale sweep: error ratios vs noSit (4-way joins)\n\n");
  std::vector<std::string> header = {"scale",        "fact rows",
                                     "noSit err",    "GVM ratio",
                                     "GS-Diff ratio"};
  std::vector<std::vector<std::string>> rows;
  Json scales = Json::Array();

  const std::vector<double> sweep = {0.005, 0.01, 0.03};
  for (const double scale : sweep) {
    SnowflakeOptions opt;
    opt.scale = scale;
    const Catalog catalog = BuildSnowflake(opt);
    CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);

    WorkloadOptions wopt;
    wopt.num_queries = 10;
    wopt.num_joins = 4;
    const std::vector<Query> workload =
        GenerateWorkload(catalog, &evaluator, wopt);
    SitBuilder builder(&evaluator, SitBuildOptions{});
    const SitPool pool = GenerateSitPool(workload, 2, builder);
    Runner runner(&catalog, &evaluator);

    const WorkloadRunResult no_sit_run =
        runner.Run(workload, pool, Technique::kNoSit);
    const WorkloadRunResult gvm_run =
        runner.Run(workload, pool, Technique::kGvm);
    const uint64_t gs_alloc0 = AllocCount();
    const WorkloadRunResult gs_run =
        runner.Run(workload, pool, Technique::kGsDiff);
    const double gs_allocs = static_cast<double>(AllocCount() - gs_alloc0) /
                             static_cast<double>(workload.size());
    const double no_sit = no_sit_run.avg_abs_error;
    const double gvm = gvm_run.avg_abs_error;
    const double gs = gs_run.avg_abs_error;
    char scale_s[16];
    std::snprintf(scale_s, sizeof(scale_s), "%.3f", scale);
    rows.push_back(
        {scale_s,
         std::to_string(
             catalog.table(catalog.FindTable("fact")).num_rows()),
         FormatDouble(no_sit, 1),
         FormatDouble(no_sit > 0 ? gvm / no_sit : 1.0, 3),
         FormatDouble(no_sit > 0 ? gs / no_sit : 1.0, 3)});
    Json per_query = Json::Array();
    for (size_t i = 0; i < gs_run.per_query.size(); ++i) {
      per_query.Push(
          Json::Object()
              .Set("estimate_seconds", gs_run.per_query[i].estimate_seconds)
              .Set("full_query_est", gs_run.per_query[i].full_query_est)
              .Set("full_query_true", gs_run.per_query[i].full_query_true));
    }
    scales.Push(
        Json::Object()
            .Set("scale", scale)
            .Set("fact_rows",
                 catalog.table(catalog.FindTable("fact")).num_rows())
            .Set("nosit_avg_abs_error", no_sit)
            .Set("gvm_ratio", no_sit > 0 ? gvm / no_sit : 1.0)
            .Set("gs_diff_ratio", no_sit > 0 ? gs / no_sit : 1.0)
            .Set("gs_diff_allocs_per_estimate", gs_allocs)
            .Set("gs_diff_per_query", std::move(per_query)));
  }
  PrintTable(header, rows);

  // Parallel driver on the largest configuration: a wider join graph,
  // deeper pool, and finer histograms than the sweep rows, so candidate
  // scoring — the work the level-parallel driver spreads across its
  // workers — dominates the subset lattice's bookkeeping.
  std::printf("\nparallel getSelectivity, largest configuration\n\n");
  Json parallel = Json::Object();
  {
    SnowflakeOptions opt;
    opt.scale = sweep.back();
    const Catalog catalog = BuildSnowflake(opt);
    CardinalityCache cache;
    Evaluator evaluator(&catalog, &cache);
    WorkloadOptions wopt;
    wopt.num_queries = EnvInt("CONDSEL_QUERIES", 10);
    wopt.num_joins = 7;
    wopt.num_filters = 4;
    const std::vector<Query> workload =
        GenerateWorkload(catalog, &evaluator, wopt);
    SitBuildOptions bopt;
    bopt.max_buckets = 2000;
    SitBuilder builder(&evaluator, bopt);
    const SitPool pool = GenerateSitPool(workload, 4, builder);

    const int reps = EnvInt("CONDSEL_REPS", 3);
    const uint64_t seq_alloc0 = AllocCount();
    const ThreadedRun seq = RunThreaded(workload, pool, /*threads=*/1, reps);
    const uint64_t par_alloc0 = AllocCount();
    const ThreadedRun par = RunThreaded(workload, pool, /*threads=*/4, reps);
    const double runs = static_cast<double>(workload.size()) *
                        static_cast<double>(reps);
    const double seq_allocs =
        static_cast<double>(par_alloc0 - seq_alloc0) / runs;
    const double par_allocs =
        static_cast<double>(AllocCount() - par_alloc0) / runs;
    const bool identical = seq.estimates == par.estimates;
    const double speedup = seq.seconds / std::max(1e-12, par.seconds);
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("  threads=1: %.3f ms   threads=4: %.3f ms   "
                "speedup: %.2fx   estimates %s   (%u core(s))\n",
                seq.seconds * 1e3, par.seconds * 1e3, speedup,
                identical ? "bit-identical" : "DIVERGED", cores);
    if (cores < 4) {
      std::printf("  note: fewer than 4 hardware cores — threads "
                  "time-slice, so the speedup target applies only on "
                  "multi-core hosts (bit-identity is checked anywhere)\n");
    }
    parallel.Set("num_joins", 7)
        .Set("num_filters", 4)
        .Set("scale", sweep.back())
        .Set("hardware_cores", static_cast<uint64_t>(cores))
        .Set("threads_1_seconds", seq.seconds)
        .Set("threads_4_seconds", par.seconds)
        .Set("threads_1_allocs_per_estimate", seq_allocs)
        .Set("threads_4_allocs_per_estimate", par_allocs)
        .Set("speedup", speedup)
        .Set("bit_identical", identical)
        .Set("threads_4_steals", par.steals)
        .Set("threads_4_stolen_subsets", par.stolen_subsets)
        .Set("threads_4_parallel_levels", par.parallel_levels)
        .Set("threads_4_max_level_width", par.max_level_width)
        .Set("threads_1_per_query", seq.per_query)
        .Set("threads_4_per_query", par.per_query);
    if (!identical) {
      std::fprintf(stderr, "parallel estimates diverged from sequential\n");
      return 1;
    }
  }

  WriteBenchJson("BENCH_scale_sweep.json",
                 Json::Object()
                     .Set("bench", "scale_sweep")
                     .Set("scales", std::move(scales))
                     .Set("parallel", std::move(parallel)));
  std::printf(
      "\nExpected shape: absolute errors grow with scale while the\n"
      "improvement ratios hold or get *stronger* (skew effects compound\n"
      "with size) — the reduced default scale, if anything, understates\n"
      "the SIT benefit the paper reports at full scale.\n");
  return 0;
}
