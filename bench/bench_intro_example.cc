// Figures 1 and 2: the introduction's TPC-H example as a table.
//
// Reports the cardinality estimate of
//   lineitem JOIN orders JOIN customer
//   WHERE o_totalprice > P AND c_nation = 'USA'
// under four statistics configurations, sweeping the price cutoff (the
// deeper into the skewed tail, the worse the independence assumption).

#include <cstdio>

#include "condsel/datagen/tpch_lite.h"
#include "condsel/exec/evaluator.h"
#include "condsel/harness/metrics.h"
#include "condsel/harness/report.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_builder.h"
#include "condsel/sit/sit_pool.h"

using namespace condsel;  // NOLINT: bench brevity

int main() {
  TpchLiteOptions opt;
  opt.scale = 0.05;
  opt.zipf_theta = 1.2;
  const Catalog catalog = BuildTpchLite(opt);
  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});

  const ColumnRef l_okey = catalog.ResolveColumn("lineitem", "l_orderkey");
  const ColumnRef o_okey = catalog.ResolveColumn("orders", "o_orderkey");
  const ColumnRef o_ckey = catalog.ResolveColumn("orders", "o_custkey");
  const ColumnRef c_ckey = catalog.ResolveColumn("customer", "c_custkey");
  const ColumnRef o_price = catalog.ResolveColumn("orders", "o_totalprice");
  const ColumnRef c_nation = catalog.ResolveColumn("customer", "c_nation");

  std::printf(
      "Figures 1-2: estimate of |L JOIN O JOIN C WHERE price>P AND "
      "nation=USA|\n(values are estimate/true ratios; 1.00 is perfect)\n\n");
  std::vector<std::string> header = {"price cutoff", "true",  "no SITs",
                                     "SIT(b) only",  "SIT(c) only",
                                     "both (Fig.2)"};
  std::vector<std::vector<std::string>> rows;

  for (const int64_t cutoff : {25000, 50000, 75000, 90000}) {
    const Query query({Predicate::Join(l_okey, o_okey),      // 0
                       Predicate::Join(o_ckey, c_ckey),      // 1
                       Predicate::Filter(o_price, cutoff, 2000000),
                       Predicate::Equals(c_nation, 0)});
    const double truth =
        evaluator.Cardinality(query, query.all_predicates());
    const double cross =
        CrossProductCardinality(catalog, query, query.all_predicates());

    SitPool bases;
    for (const ColumnRef& c :
         {l_okey, o_okey, o_ckey, c_ckey, o_price, c_nation}) {
      bases.Add(builder.Build(c, {}));
    }
    const Sit sit_b = builder.Build(o_price, {query.predicate(0)});
    const Sit sit_c = builder.Build(c_nation, {query.predicate(1)});

    auto ratio = [&](const SitPool& pool) {
      SitMatcher matcher(&pool);
      matcher.BindQuery(&query);
      DiffError diff;
      AtomicSelectivityProvider approx(&matcher, &diff);
      GetSelectivity gs(&query, &approx);
      const double est =
          gs.Compute(query.all_predicates()).selectivity * cross;
      return truth > 0 ? est / truth : 0.0;
    };

    SitPool pool_b = bases;
    pool_b.Add(sit_b);
    SitPool pool_c = bases;
    pool_c.Add(sit_c);
    SitPool pool_both = pool_b;
    pool_both.Add(sit_c);

    rows.push_back({std::to_string(cutoff), FormatCount(truth),
                    FormatDouble(ratio(bases), 2),
                    FormatDouble(ratio(pool_b), 2),
                    FormatDouble(ratio(pool_c), 2),
                    FormatDouble(ratio(pool_both), 2)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: the traditional estimate degrades with the cutoff\n"
      "(independence between price and the L-O join); each SIT fixes one\n"
      "assumption; using both together is closest to the truth.\n");
  return 0;
}
