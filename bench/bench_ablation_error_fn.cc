// Ablation: error-function behaviour, including the paper's Example 4.
//
// Part 1 — Example 4 microbenchmark: R JOIN S JOIN T (both key-foreign
// key), filter on S.a. SIT(S.a | R JOIN S) carries real information;
// SIT(S.a | S JOIN T) is distribution-preserving (referential integrity
// holds), so its diff is ~0 and Diff refuses to prefer it, while nInd
// scores both identically and must tie-break blindly.
//
// Part 2 — full-workload comparison of nInd / Diff / Opt rankings.

#include <cstdio>

#include "bench_common.h"
#include "condsel/common/zipf.h"
#include "condsel/selectivity/get_selectivity.h"
#include "condsel/sit/sit_matcher.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

namespace {

void Example4() {
  // Build R(fk -> S) and T with S -> T a clean FK join, S.a correlated
  // with R's reference skew.
  Catalog catalog;
  Rng rng(11);
  {
    TableSchema s;
    s.name = "S";
    s.columns = {{"pk", 0, 499, true}, {"a", 0, 99, false},
                 {"t_fk", 0, 49, true}};
    Table t(s);
    for (int64_t k = 0; k < 500; ++k) {
      // S.a tracks the key: popular (low) keys have low a.
      t.AppendRow({k, k / 5, rng.NextInRange(0, 49)});
    }
    catalog.AddTable(std::move(t));
  }
  {
    TableSchema s;
    s.name = "R";
    s.columns = {{"s_fk", 0, 499, true}, {"x", 0, 9, false}};
    Table t(s);
    ZipfSampler zipf(500, 1.2);
    for (int64_t k = 0; k < 5000; ++k) {
      t.AppendRow({zipf.Next(rng), rng.NextInRange(0, 9)});
    }
    catalog.AddTable(std::move(t));
  }
  {
    TableSchema s;
    s.name = "T";
    s.columns = {{"pk", 0, 49, true}, {"y", 0, 9, false}};
    Table t(s);
    for (int64_t k = 0; k < 50; ++k) {
      t.AppendRow({k, rng.NextInRange(0, 9)});
    }
    catalog.AddTable(std::move(t));
  }

  CardinalityCache cache;
  Evaluator evaluator(&catalog, &cache);
  SitBuilder builder(&evaluator, SitBuildOptions{});

  const ColumnRef s_pk = catalog.ResolveColumn("S", "pk");
  const ColumnRef s_a = catalog.ResolveColumn("S", "a");
  const ColumnRef s_tfk = catalog.ResolveColumn("S", "t_fk");
  const ColumnRef r_fk = catalog.ResolveColumn("R", "s_fk");
  const ColumnRef t_pk = catalog.ResolveColumn("T", "pk");

  const Query query({Predicate::Join(r_fk, s_pk),    // 0: R JOIN S
                     Predicate::Join(s_tfk, t_pk),   // 1: S JOIN T (FK)
                     Predicate::Filter(s_a, 0, 9)}); // 2: S.a < 10

  const Sit h1 = builder.Build(s_a, {query.predicate(0)});
  const Sit h2 = builder.Build(s_a, {query.predicate(1)});
  std::printf("Example 4: candidate SITs for Sel(S.a<10 | RS, ST)\n");
  std::printf("  H1 = SIT(S.a | R JOIN S): diff = %.4f  <- informative\n",
              h1.diff);
  std::printf("  H2 = SIT(S.a | S JOIN T): diff = %.4f  <- FK join, no info\n",
              h2.diff);

  const double truth =
      evaluator.TrueConditionalSelectivity(query, 0b100, 0b011);
  std::printf("  true Sel(S.a<10 | RS, ST) = %.4f\n", truth);
  std::printf("  estimate via H1 = %.4f, via H2 = %.4f\n",
              h1.histogram.RangeSelectivity(0, 9),
              h2.histogram.RangeSelectivity(0, 9));
  std::printf(
      "  nInd scores both 1/2 (tie); Diff ranks H1 first because\n"
      "  diff(H2) ~ 0 means H2 adds nothing over the base histogram.\n\n");
}

void WorkloadComparison() {
  BenchEnv env;
  const int num_queries = EnvInt("CONDSEL_QUERIES", 10);
  const std::vector<Query> workload = env.Workload(5, num_queries);
  Runner runner(&env.catalog, env.evaluator.get());

  std::printf("error-function ablation, 5-way joins, pools J0..J5:\n\n");
  std::vector<std::string> header = {"pool", "GS-nInd", "GS-Diff", "GS-Opt",
                                     "Diff/Opt ratio"};
  std::vector<std::vector<std::string>> rows;
  for (int j = 0; j <= 5; ++j) {
    const SitPool pool = GenerateSitPool(workload, j, *env.builder);
    const double e_n =
        runner.Run(workload, pool, Technique::kGsNInd).avg_abs_error;
    const double e_d =
        runner.Run(workload, pool, Technique::kGsDiff).avg_abs_error;
    const double e_o =
        runner.Run(workload, pool, Technique::kGsOpt).avg_abs_error;
    rows.push_back({"J" + std::to_string(j), FormatDouble(e_n, 1),
                    FormatDouble(e_d, 1), FormatDouble(e_o, 1),
                    FormatDouble(e_o > 0 ? e_d / e_o : 1.0, 2)});
  }
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: Diff stays within a small factor of the Opt\n"
      "oracle; nInd is looser, especially on sparse pools where its\n"
      "syntactic ties hide bad choices.\n");
}

}  // namespace

int main() {
  Example4();
  WorkloadComparison();
  return 0;
}
