// Ablation (extension): SITs whose generating expressions contain FILTER
// predicates, not just joins.
//
// The paper's pools condition only on join expressions; the framework
// (and ours) allows arbitrary expressions. When a workload keeps reusing
// the same filter — "region = X" style — a SIT conditioned on
// (joins AND that filter) models the remaining predicates' distribution
// on exactly the relevant slice, eliminating one more independence
// assumption than any join-only SIT can.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "condsel/harness/metrics.h"
#include "condsel/selectivity/get_selectivity.h"

using namespace condsel;        // NOLINT: bench brevity
using namespace condsel::bench; // NOLINT: bench brevity

int main() {
  // Scenario: fact joins dim1; the workload always filters
  // dim1.a_corr to the "premium" slice (correlated with key popularity),
  // and varies a second filter on fact.a_corr1.
  BenchEnv env;
  const Catalog& catalog = env.catalog;
  const ColumnRef d1_pk = catalog.ResolveColumn("dim1", "pk");
  const ColumnRef f_fk1 = catalog.ResolveColumn("fact", "fk_d1");
  const ColumnRef d1_corr = catalog.ResolveColumn("dim1", "a_corr");
  const ColumnRef f_corr = catalog.ResolveColumn("fact", "a_corr1");

  const Predicate join = Predicate::Join(f_fk1, d1_pk);
  const Predicate premium = Predicate::Filter(d1_corr, 0, 99);  // popular

  // Pools: bases; + join SITs; + the filter-bearing SIT.
  SitPool bases;
  for (const ColumnRef& c : {d1_pk, f_fk1, d1_corr, f_corr}) {
    bases.Add(env.builder->Build(c, {}));
  }
  SitPool join_sits = bases;
  join_sits.Add(env.builder->Build(d1_corr, {join}));
  join_sits.Add(env.builder->Build(f_corr, {join}));
  SitPool filter_sits = join_sits;
  filter_sits.Add(env.builder->Build(f_corr, {join, premium}));

  DiffError diff;
  auto avg_err = [&](const SitPool& pool) {
    double total = 0.0;
    int n = 0;
    for (int64_t lo = 0; lo <= 800; lo += 100) {
      const Query q({join, premium,
                     Predicate::Filter(f_corr, lo, lo + 149)});
      SitMatcher matcher(&pool);
      matcher.BindQuery(&q);
      AtomicSelectivityProvider fa(&matcher, &diff);
      GetSelectivity gs(&q, &fa);
      const double cross =
          CrossProductCardinality(catalog, q, q.all_predicates());
      const double truth =
          env.evaluator->Cardinality(q, q.all_predicates());
      total += std::abs(
          gs.Compute(q.all_predicates()).selectivity * cross - truth);
      ++n;
    }
    return total / n;
  };

  const double e_base = avg_err(bases);
  const double e_join = avg_err(join_sits);
  const double e_filter = avg_err(filter_sits);
  std::printf("\nfilter-bearing SIT expressions (premium-slice workload)\n\n");
  std::vector<std::string> header = {"pool", "avg abs error", "vs bases"};
  std::vector<std::vector<std::string>> rows = {
      {"base histograms", FormatDouble(e_base, 1), "1.00"},
      {"+ join SITs", FormatDouble(e_join, 1),
       FormatDouble(e_base > 0 ? e_join / e_base : 1.0, 2)},
      {"+ SIT(fact.a | join, premium-filter)", FormatDouble(e_filter, 1),
       FormatDouble(e_base > 0 ? e_filter / e_base : 1.0, 2)},
  };
  PrintTable(header, rows);
  std::printf(
      "\nExpected shape: join SITs fix the filter-vs-join assumptions; the\n"
      "filter-bearing SIT additionally captures the dependence between the\n"
      "two filters through the join, cutting the error further. The\n"
      "matcher needs no changes — rule 2 (Q' subset of Q) covers it.\n");
  return 0;
}
